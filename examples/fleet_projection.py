#!/usr/bin/env python3
"""Fleet projection: the paper's full telemetry-to-savings pipeline.

Generates a scaled Frontier campaign (scheduler traffic + out-of-band
telemetry), joins the two data sources, decomposes the power distribution
into the four operating regions, and projects the system-scale energy
savings for frequency and power capping — Tables IV and V, normalized to
the paper's 16 820 MWh three-month campaign.

Run:  python examples/fleet_projection.py [--nodes 96] [--days 4]
"""

import argparse

from repro import units
from repro.core import (
    decompose_modes,
    join_campaign,
    measured_factors,
    project_savings,
    report,
)
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator

CAMPAIGN_MWH = 16820.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=96)
    parser.add_argument("--days", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"simulating {args.nodes} nodes for {args.days} days ...")
    mix = default_mix(fleet_nodes=args.nodes)
    log = SlurmSimulator(mix).run(units.days(args.days), rng=args.seed)
    print(
        f"  {len(log.jobs)} jobs, utilization "
        f"{100 * log.utilization():.0f} %"
    )

    generator = FleetTelemetryGenerator(log, mix, seed=args.seed + 1)
    cube = join_campaign(generator.chunks(), log)
    print(
        f"  {cube.total_gpu_hours:,.0f} GPU-hours of telemetry joined\n"
    )

    print(report.render_table4(decompose_modes(cube)))
    print()
    for knob in ("frequency", "power"):
        table = project_savings(
            cube,
            measured_factors(knob),
            campaign_energy_mwh=CAMPAIGN_MWH,
        )
        print(report.render_table5(table))
        print()

    freq = project_savings(
        cube, measured_factors("frequency"), campaign_energy_mwh=CAMPAIGN_MWH
    )
    best = freq.best_no_slowdown_row
    print(
        f"headline: {best.savings_no_slowdown_pct:.1f} % of campaign GPU "
        f"energy ({best.savings_no_slowdown_pct / 100 * CAMPAIGN_MWH:.0f} "
        f"MWh) is saveable with no slowdown at a {best.cap:.0f} MHz cap.\n"
        "(paper: 8.5 %, 1438 MWh, 900 MHz)"
    )


if __name__ == "__main__":
    main()
