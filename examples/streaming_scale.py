#!/usr/bin/env python3
"""Streaming at scale: analyzing a campaign that won't fit in memory.

The paper's dataset — 9408 nodes x 91 days at 15 s — is ~2 x 10^10 GPU
samples. This example shows how the pipeline handles arbitrary scale:
telemetry is generated and joined one node block at a time (optionally
across worker processes) into O(bins) streaming accumulators, and the
final cube yields the same Tables IV/V as the materialized path.

Run:  python examples/streaming_scale.py [--nodes 256] [--days 7] [--workers 4]
"""

import argparse
import time

from repro import units
from repro.core import decompose_modes, measured_factors, project_savings, report
from repro.core.pipeline import memory_footprint_estimate, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--days", type=float, default=7.0)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    est = memory_footprint_estimate(args.nodes, args.days)
    full = memory_footprint_estimate(9408, 91)
    print(
        f"this run:   {est['samples']:.2e} GPU samples, "
        f"{est['materialized_bytes'] / 1e6:.0f} MB materialized vs "
        f"{est['streamed_bytes'] / 1e6:.0f} MB streamed"
    )
    print(
        f"full scale: {full['samples']:.2e} GPU samples, "
        f"{full['materialized_bytes'] / 1e9:.0f} GB materialized vs "
        f"{full['streamed_bytes'] / 1e6:.0f} MB streamed "
        f"({full['ratio']:.0f}x)"
    )

    t0 = time.time()
    run = run_campaign(
        fleet_nodes=args.nodes,
        days=args.days,
        seed=0,
        workers=args.workers,
    )
    elapsed = time.time() - t0
    cube = run.cube
    rate = cube.histogram.total_count / elapsed
    print(
        f"\njoined {cube.histogram.total_count:.2e} samples in "
        f"{elapsed:.1f} s ({rate:.2e} samples/s with "
        f"{args.workers} workers)\n"
    )

    print(report.render_table4(decompose_modes(cube)))
    print()
    table = project_savings(
        cube, measured_factors("frequency"), campaign_energy_mwh=16820.0
    )
    print(report.render_table5(table))

    hours_full = 9408 * 4 * units.days(91) / 3600
    eta = hours_full / (cube.total_gpu_hours / elapsed) / args.workers
    print(
        f"\nextrapolation: the full 9408-node, 91-day campaign would "
        f"stream through this pipeline in ~{eta / 60:.0f} min per worker "
        "wave at this rate."
    )


if __name__ == "__main__":
    main()
