#!/usr/bin/env python3
"""Benchmark characterization: roofline, VAI sweep, and Table III.

Reproduces the paper's Section IV workflow on the simulated device:

1. probe the empirical roofline (peak flops, peak bandwidth, ridge);
2. trace the roofline with the VAI benchmark and locate the power peak;
3. measure Table III — the cap-response percentages that feed the
   system-scale projection.

Run:  python examples/benchmark_characterization.py
"""

import numpy as np

from repro.bench import VAIBenchmark, compute_table3, measure_roofline
from repro.core import report
from repro.gpu import GPUDevice


def main() -> None:
    device = GPUDevice()

    ert = measure_roofline(device)
    print(
        f"empirical roofline: {ert.peak_tflops:.1f} TFLOP/s, "
        f"{ert.peak_gbps:.0f} GB/s, ridge at "
        f"{ert.ridge_intensity:.1f} flops/byte"
    )

    result = VAIBenchmark().run(device)
    powers = result.column("power_w")
    peak = result.points[int(np.argmax(powers))]
    print(
        f"VAI sweep: power peaks at {peak.power_w:.0f} W for "
        f"AI={peak.intensity:g} (paper: 540 W at AI=4); "
        f"memory-bound floor {powers.min():.0f} W\n"
    )
    print(
        report.render_series(
            "VAI roofline trace (uncapped)",
            "AI",
            result.intensities.tolist(),
            {
                "TFLOP/s": result.column("tflops"),
                "GB/s": result.column("gbps"),
                "power W": powers,
            },
        )
    )

    print()
    for knob in ("frequency", "power"):
        print(report.render_table3(compute_table3(knob=knob)))
        print()


if __name__ == "__main__":
    main()
