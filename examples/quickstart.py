#!/usr/bin/env python3
"""Quickstart: run kernels on the simulated MI250X under both knobs.

Demonstrates the lowest layer of the library: build a kernel, run it on a
device, and see how a frequency cap and a power cap change runtime, power
and energy — including the paper's key asymmetry (frequency caps reach
HBM power; power caps do not).

Run:  python examples/quickstart.py
"""

from repro import GPUDevice, KernelSpec, units


def show(label: str, result) -> None:
    print(
        f"  {label:<22} {result.time_s:7.2f} s  {result.power_w:6.1f} W  "
        f"{units.to_wh(result.energy_j):8.1f} Wh  ({result.bound}-bound, "
        f"core at {units.to_mhz(result.f_core_hz):.0f} MHz"
        + (", CAP BREACHED)" if result.cap_breached else ")")
    )


def main() -> None:
    # A memory-bound stream (arithmetic intensity 1/8) and a compute-bound
    # FMA kernel (intensity 64), each sized for ~20 s of runtime.
    stream = KernelSpec(
        "stream", flops=8e12, hbm_bytes=64e12, issue_bw_factor=2.7
    )
    fma = KernelSpec("fma", flops=240e12, hbm_bytes=3.75e12)

    for kernel in (stream, fma):
        print(f"kernel {kernel.name!r} "
              f"(AI = {kernel.arithmetic_intensity:g} flops/byte)")
        show("uncapped", GPUDevice().run(kernel))
        show(
            "900 MHz frequency cap",
            GPUDevice(frequency_cap_hz=units.mhz(900)).run(kernel),
        )
        show("300 W power cap", GPUDevice(power_cap_w=300.0).run(kernel))
        print()

    print(
        "Note how the frequency cap cuts the stream kernel's power with\n"
        "no slowdown (the paper's memory-intensive savings), while the\n"
        "300 W power cap cannot touch it: the controller only meters the\n"
        "core domain, so HBM-heavy kernels breach low caps (Fig 6d)."
    )


if __name__ == "__main__":
    main()
