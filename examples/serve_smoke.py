#!/usr/bin/env python3
"""CI smoke test: the control plane end to end, over real TCP.

Stands up a live :class:`repro.serve.ControlPlane`, streams a small
simulated campaign into it while polling the HTTP API, and verifies the
serving contract:

1. ``/v1/fleet/cap`` answers before ingest starts (initial snapshot)
   and its ``version`` advances as windows seal;
2. the cap decision matches the stream layer's Table V advisor
   (slowdown-objective parity) once the campaign is drained;
3. ``POST /v1/policy`` switches the objective live and bumps the
   policy version;
4. one ``/metrics`` scrape covers both sides: ``serve_requests_total``
   (serving) and ``stream_samples_in`` (ingest);
5. ``POST /v1/admin/shutdown`` requests a graceful stop.

Run:  python examples/serve_smoke.py

Exits non-zero on the first violated expectation; CI runs this in the
serve-gate job.
"""

import json
import sys
import time
import urllib.request

from repro.obs.httpd import post_url
from repro.serve import ControlPlane
from repro.stream import simulated_fleet


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.loads(resp.read().decode())


def main() -> int:
    log, source = simulated_fleet(fleet_nodes=16, days=0.25, seed=0)
    plane = ControlPlane(log)

    with plane:
        server = plane.serve(port=0)
        url = server.url
        print(f"control plane on {url}")

        first = get_json(url + "/v1/fleet/cap")
        if first["version"] != 1:
            return fail(f"initial snapshot version {first['version']}")

        deadline = time.monotonic() + 120
        fresh = first
        for i, chunk in enumerate(source):
            plane.ingest(chunk)
            if (i + 1) % 10 == 0:
                fresh = get_json(url + "/v1/fleet/cap")
            if time.monotonic() > deadline:
                return fail("ingest did not finish within the deadline")
        if fresh["version"] <= 1 or fresh["windows_folded"] == 0:
            return fail("snapshot never advanced during ingest")
        print(
            f"snapshot advanced to version {fresh['version']} "
            f"({fresh['windows_folded']} windows folded) mid-ingest"
        )
        plane.drain()

        final = get_json(url + "/v1/fleet/cap")
        decision, advisor = final["decision"], final["advisor"]
        if advisor is None:
            return fail("drained campaign produced no advisor")
        if decision["cap"] != advisor["cap"]:
            return fail(
                f"slowdown decision cap {decision['cap']} != Table V "
                f"advisor cap {advisor['cap']}"
            )
        print(
            f"decision parity: cap {decision['cap']} "
            f"({decision['savings_pct']:.2f} % saving) matches the "
            f"advisor"
        )

        status, body = post_url(
            url + "/v1/policy", {"objective": "edp"},
        )
        doc = json.loads(body)
        if status != 200 or doc["policy"]["objective"] != "edp":
            return fail(f"policy switch answered {status}: {body[:200]}")
        if doc["policy_version"] < 2:
            return fail(f"policy version stuck at {doc['policy_version']}")
        print(f"policy switched to edp (v{doc['policy_version']})")

        with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
            metrics = resp.read().decode()
        for needle in ("serve_requests_total", "stream_samples_in",
                       "serve_request_seconds"):
            if needle not in metrics:
                return fail(f"/metrics is missing {needle}")
        print("one /metrics scrape covers serving + ingest")

        status, _body = post_url(url + "/v1/admin/shutdown")
        if status != 200 or not plane.stop_event.is_set():
            return fail("graceful shutdown was not requested")

    print("OK: control plane served, converged, switched policy, shut down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
