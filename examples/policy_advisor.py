#!/usr/bin/env python3
"""Policy advisor: from savings *projection* to savings *policy*.

The paper bounds what fleet-wide capping could save; its discussion asks
for "application fingerprinting with sensitivity prediction".  This
example runs that extension end to end:

1. generate a campaign and fingerprint every job from telemetry alone;
2. recommend a per-job frequency cap under a 5 % slowdown budget;
3. compare against a uniform 900 MHz cap and the oracle upper bound.

Run:  python examples/policy_advisor.py [--nodes 96] [--days 4]
"""

import argparse
from collections import Counter

from repro import units
from repro.core import measured_factors
from repro.policy import CapAdvisor, evaluate_policies, fingerprint_jobs
from repro.policy.evaluate import format_outcomes
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=96)
    parser.add_argument("--days", type=float, default=4.0)
    parser.add_argument("--budget", type=float, default=5.0,
                        help="max slowdown per job, percent")
    args = parser.parse_args()

    mix = default_mix(fleet_nodes=args.nodes)
    log = SlurmSimulator(mix).run(units.days(args.days), rng=0)
    generator = FleetTelemetryGenerator(log, mix, seed=1)

    fingerprints = fingerprint_jobs(generator.chunks(), log)
    families = Counter(fp.family for fp in fingerprints.values())
    print(f"fingerprinted {len(fingerprints)} jobs:")
    for family, count in sorted(families.items()):
        print(f"  {family:<18} {count}")

    factors = measured_factors("frequency")
    advisor = CapAdvisor(factors, max_slowdown_pct=args.budget)
    sample = list(fingerprints.values())[:5]
    print("\nsample recommendations:")
    for fp in sample:
        rec = advisor.recommend(fp)
        cap = f"{rec.cap:.0f} MHz" if rec.capped else "uncapped"
        print(
            f"  job {fp.job_id:>4} [{fp.domain}/{fp.family:<17}] -> {cap}"
            f"  (expected dT {rec.expected_slowdown_pct:.1f} %)"
        )

    print()
    outcomes = evaluate_policies(
        fingerprints, factors, max_slowdown_pct=args.budget
    )
    print(format_outcomes(outcomes))
    capture = outcomes["per_job"].saving_j / outcomes["oracle"].saving_j
    print(
        f"\nthe advisor banks {100 * capture:.0f} % of the oracle ceiling "
        f"while honouring the {args.budget:g} % per-job slowdown budget."
    )


if __name__ == "__main__":
    main()
