#!/usr/bin/env python3
"""Louvain case study: a real graph application under power management.

Reproduces Section IV-C: run Louvain community detection (the algorithm
executes for real — communities and modularity are genuine) on a road
network and a social network, then sweep GPU frequency caps and compare
the two topologies' sensitivity, as in the paper's Fig 7.

Run:  python examples/louvain_case_study.py [--edges 200000]
"""

import argparse

from repro import units
from repro.core import report
from repro.graph import (
    GPULouvainRunner,
    degree_stats,
    louvain,
    road_network,
    social_network,
)
from repro.gpu import GPUDevice

FREQS_MHZ = (1700, 1300, 1100, 900, 700, 500)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--edges", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    networks = {
        "road": road_network(args.edges, rng=args.seed),
        "social": social_network(args.edges, rng=args.seed),
    }
    for name, graph in networks.items():
        stats = degree_stats(graph)
        print(
            f"{name} network: {graph.n_edges:,} edges, "
            f"d_max={stats.d_max}, d_avg={stats.d_avg:.1f}"
        )
        communities = louvain(graph)
        print(
            f"  Louvain: {communities.n_communities} communities, "
            f"modularity {communities.modularity:.3f}, "
            f"{len(communities.passes)} passes"
        )

        base = GPULouvainRunner(GPUDevice()).run(
            graph, precomputed=communities
        )
        rows = {"runtime_x": [], "avg_power_w": [], "energy_saving_%": []}
        for mhz in FREQS_MHZ:
            device = (
                GPUDevice()
                if mhz == 1700
                else GPUDevice(frequency_cap_hz=units.mhz(mhz))
            )
            r = GPULouvainRunner(device).run(graph, precomputed=communities)
            rows["runtime_x"].append(r.total_time_s / base.total_time_s)
            rows["avg_power_w"].append(r.avg_power_w)
            rows["energy_saving_%"].append(
                100 * (1 - r.energy_j / base.energy_j)
            )
        print(
            report.render_series(
                f"  GPU peak power {base.max_power_w:.0f} W",
                "MHz",
                list(FREQS_MHZ),
                rows,
            )
        )
        print()

    print(
        "The bounded-degree road network is clock-sensitive (latency\n"
        "bound), while the power-law social network rides the HBM roof:\n"
        "mid-frequency caps save energy on it almost for free — the\n"
        "behaviour the paper generalizes to the memory-intensive region."
    )


if __name__ == "__main__":
    main()
