#!/usr/bin/env python3
"""CI smoke test: the health layer end to end, over real TCP.

Streams a deliberately broken delivery — no lateness allowance and an
event-time window far below the delivery jitter, so a deterministic
share of samples arrives behind the sealed frontier and drops — with a
live health exporter attached, then verifies the whole alert path:

1. ``/metrics`` serves Prometheus text including the ``stream_*``
   ingest gauges and the alert-state mirrors;
2. the default ``stream_late_dropped_spike`` rate rule fires;
3. ``/health`` answers 503 (readiness probe semantics) while it does;
4. ``repro obs alerts --url ... --check`` exits non-zero.

Run:  python examples/health_smoke.py

Exits non-zero on the first violated expectation; CI runs this in the
bench-gate job.
"""

import json
import sys
import urllib.error
import urllib.request

from repro import constants, units
from repro.cli import main as cli_main
from repro.obs.health import HealthMonitor, HealthServer, render_events
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import StreamEngine, perturb
from repro.telemetry import FleetTelemetryGenerator


def fail(message: str) -> int:
    print(f"FAIL: {message}")
    return 1


def main() -> int:
    nodes, days = 16, 0.25
    jitter_s = 8 * constants.TELEMETRY_INTERVAL_S

    mix = default_mix(fleet_nodes=nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=1000).generate()

    monitor = HealthMonitor()
    engine = StreamEngine(
        log, window_s=jitter_s / 4, lateness_s=0.0
    ).attach_health(monitor)

    with HealthServer(monitor=monitor) as srv:
        print(f"health exporter on {srv.url}")
        engine.run(perturb(
            store, seed=2, lateness_s=jitter_s, rows_per_chunk=512,
        ))
        stats = engine.stats
        if stats.late_dropped == 0:
            return fail("broken delivery produced no late drops")

        with urllib.request.urlopen(srv.url + "/metrics", timeout=5) as r:
            if r.status != 200:
                return fail(f"/metrics answered {r.status}")
            metrics = r.read().decode()
        if "stream_late_dropped" not in metrics:
            return fail("/metrics is missing the stream ingest gauges")
        if 'health_rule_state{rule="stream_late_dropped_spike"} 2' \
                not in metrics:
            return fail(
                "stream_late_dropped_spike is not firing in /metrics"
            )

        try:
            urllib.request.urlopen(srv.url + "/health", timeout=5)
            return fail("/health answered 200 while alerts fire")
        except urllib.error.HTTPError as exc:
            if exc.code != 503:
                return fail(f"/health answered {exc.code}, expected 503")
            health = json.loads(exc.read().decode())
        firing = {
            r["name"] for r in health["rules"] if r["state"] == "firing"
        }
        if "stream_late_dropped_spike" not in firing:
            return fail(f"/health firing set is {sorted(firing)}")

        rc = cli_main(["obs", "alerts", "--url", srv.url, "--check"])
        if rc != 1:
            return fail(f"obs alerts --check exited {rc}, expected 1")

    print(render_events(monitor.events, title="alert timeline:"))
    print(
        f"OK: {stats.late_dropped} of {stats.samples_in} samples dropped "
        "late; stream_late_dropped_spike fired; /health answered 503; "
        "obs alerts --check exited 1"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
