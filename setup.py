"""Setuptools shim.

Allows `python setup.py develop` in offline environments that lack the
`wheel` package required by PEP 517 editable installs; `pip install -e .`
remains the recommended path everywhere else.
"""
from setuptools import setup

setup()
