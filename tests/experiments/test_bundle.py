"""Tests for the one-file campaign report."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.bundle import (
    REPORT_SECTIONS,
    build_report,
    write_report,
)
from repro.cli import main

TINY = ExperimentConfig(
    fleet_nodes=12, days=0.4, seed=0, graph_scale=0.002
)


@pytest.fixture(scope="module")
def report_text():
    return build_report(TINY, include_extensions=False)


class TestBuildReport:
    def test_all_paper_sections_present(self, report_text):
        for section, _ids in REPORT_SECTIONS:
            if section == "Extensions":
                continue
            assert f"## {section}" in report_text

    def test_config_recorded(self, report_text):
        assert "12 nodes" in report_text
        assert "16,820 MWh" in report_text

    def test_headline_artifacts_included(self, report_text):
        assert "### table5" in report_text
        assert "### table4" in report_text
        assert "### fig7" in report_text

    def test_extensions_toggle(self, report_text):
        assert "ext_policy" not in report_text

    def test_write_report(self, tmp_path):
        out = write_report(
            tmp_path / "sub" / "REPORT.md",
            TINY,
            include_extensions=False,
        )
        assert out.exists()
        assert out.read_text().startswith("# Campaign report")


class TestCLIReport:
    def test_report_command(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        code = main(
            [
                "report", "--out", str(out),
                "--nodes", "12", "--days", "0.4",
                "--graph-scale", "0.002", "--no-extensions",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
