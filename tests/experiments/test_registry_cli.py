"""Tests for the experiment registry and the CLI."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENT_IDS,
    ExperimentConfig,
    get_experiment,
    run,
)
from repro.cli import main

TINY = ExperimentConfig(
    fleet_nodes=16, days=0.5, seed=0, graph_scale=0.002
)


class TestRegistry:
    def test_all_artifacts_registered(self):
        paper = {f"fig{i}" for i in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)} | {
            f"table{i}" for i in (1, 2, 3, 4, 5, 6, 7)
        }
        extensions = {"ext_policy", "ext_validation", "ext_robustness",
                      "ext_replay", "ext_proxies", "ext_budget",
                      "ext_governor", "ext_boost", "ext_sensitivity",
                      "ext_stream", "ext_frontier", "ext_controlplane",
                      "ext_incidents", "ext_slo"}
        assert set(EXPERIMENT_IDS) == paper | extensions

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_every_runner_resolves(self):
        for exp_id in EXPERIMENT_IDS:
            assert callable(get_experiment(exp_id))

    def test_config_overrides(self):
        cfg = ExperimentConfig().with_overrides(fleet_nodes=8)
        assert cfg.fleet_nodes == 8
        assert cfg.days == ExperimentConfig().days


class TestStaticTables:
    def test_table1(self):
        result = run("table1", TINY)
        assert "9408" in result.text
        assert "560 W" in result.text

    def test_table2(self):
        result = run("table2", TINY)
        assert "15 s" in result.text

    def test_table7(self):
        result = run("table7", TINY)
        assert "5645 - 9408" in result.text
        assert result.title


class TestCampaignExperiments:
    def test_table4(self):
        result = run("table4", TINY)
        assert "memory intensive" in result.text
        assert abs(sum(result.data["gpu_hours_pct"]) - 100.0) < 1e-6

    def test_table5_headline_fields(self):
        result = run("table5", TINY)
        table = result.data["frequency"]
        assert table.total_energy_mwh == pytest.approx(16820.0)
        assert table.best_row.savings_pct > 0

    def test_fig8_modes(self):
        result = run("fig8", TINY)
        assert len(result.data["mode_powers_w"]) >= 2

    def test_result_persisted(self, tmp_path):
        cfg = TINY.with_overrides(out_dir=str(tmp_path))
        run("table7", cfg)
        assert (tmp_path / "table7.txt").exists()


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table5" in out

    def test_run_static_table(self, capsys):
        code = main(["run", "table7", "--nodes", "16", "--days", "0.5"])
        assert code == 0
        assert "Scheduling policy" in capsys.readouterr().out

    def test_run_unknown_fails(self, capsys):
        code = main(["run", "nope"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err
