"""Tests for CSV export of experiment data."""

import csv

import numpy as np
import pytest

from repro.experiments.export import export_csv
from repro.experiments.registry import ExperimentResult


def result_with(data):
    return ExperimentResult(exp_id="demo", title="t", text="x", data=data)


class TestExportCsv:
    def test_groups_by_length(self, tmp_path):
        written = export_csv(
            result_with(
                {
                    "x": np.arange(4.0),
                    "y": np.arange(4.0) ** 2,
                    "scalar": 3.5,
                }
            ),
            tmp_path,
        )
        assert len(written) == 2
        by_name = {p.name: p for p in written}
        with by_name["demo_4.csv"].open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["x", "y"]
        assert rows[2] == ["1", "1"]
        with by_name["demo_1.csv"].open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["scalar"]
        assert float(rows[1][0]) == pytest.approx(3.5)

    def test_nested_dicts_get_dotted_names(self, tmp_path):
        written = export_csv(
            result_with({"outer": {"inner": [1.0, 2.0]}}), tmp_path
        )
        with written[0].open() as fh:
            header = fh.readline().strip()
        assert header == "outer.inner"

    def test_2d_arrays_become_rows(self, tmp_path):
        written = export_csv(
            result_with({"m": np.arange(6.0).reshape(2, 3)}), tmp_path
        )
        with written[0].open() as fh:
            header = fh.readline().strip().split(",")
        assert header == ["m[0]", "m[1]"]

    def test_non_numeric_skipped(self, tmp_path):
        written = export_csv(
            result_with({"names": ["a", "b"], "obj": object()}), tmp_path
        )
        assert written == []

    def test_roundtrip_values(self, tmp_path):
        data = {"v": np.array([1.5, 2.25, 1e-7])}
        written = export_csv(result_with(data), tmp_path)
        loaded = np.loadtxt(written[0], delimiter=",", skiprows=1)
        np.testing.assert_allclose(loaded, data["v"])
