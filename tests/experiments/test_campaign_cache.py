"""The process-wide campaign cache must be aliasing-safe."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run
from repro.experiments._campaign import build_campaign, campaign_cube

CONFIG = ExperimentConfig(fleet_nodes=16, days=0.5, seed=0)


def test_cached_cube_arrays_are_read_only():
    cube = campaign_cube(CONFIG)
    for arr in (
        cube.energy_j,
        cube.gpu_hours,
        cube.histogram.counts,
        cube.histogram.weight_sums,
    ):
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[...] = 0.0
    for hist in cube.domain_histograms.values():
        assert not hist.counts.flags.writeable
        assert not hist.weight_sums.flags.writeable


def test_cache_returns_the_same_object():
    a = build_campaign(CONFIG.fleet_nodes, CONFIG.days, CONFIG.seed)
    b = build_campaign(CONFIG.fleet_nodes, CONFIG.days, CONFIG.seed)
    assert a[1] is b[1]


def test_experiments_do_not_corrupt_the_shared_cube():
    # Every cached-cube consumer reruns identically: any in-place edit
    # by the first pass would change the second (or raise on write).
    before = campaign_cube(CONFIG).energy_j.copy()
    first = {e: run(e, CONFIG).text for e in ("table4", "table5")}
    second = {e: run(e, CONFIG).text for e in ("table4", "table5")}
    assert first == second
    assert np.array_equal(campaign_cube(CONFIG).energy_j, before)
