"""End-to-end test of the `repro advise` operator command."""

import pytest

from repro import units
from repro.cli import main
from repro.scheduler import SlurmSimulator, default_mix
from repro.scheduler.sacct import write_sacct
from repro.telemetry import FleetTelemetryGenerator
from repro.telemetry.io_csv import write_telemetry_csv


@pytest.fixture(scope="module")
def real_format_files(tmp_path_factory):
    """Simulated data exported through the real-data adapters."""
    tmp = tmp_path_factory.mktemp("advise")
    mix = default_mix(fleet_nodes=12)
    log = SlurmSimulator(mix).run(units.hours(6), rng=2)
    sacct = tmp / "sacct.txt"
    write_sacct(log, sacct)
    store = FleetTelemetryGenerator(log, mix, seed=3).generate()
    csv = tmp / "telemetry.csv"
    write_telemetry_csv(store, csv)
    return str(sacct), str(csv)


class TestAdvise:
    def test_prints_recommendations(self, real_format_files, capsys):
        sacct, csv = real_format_files
        assert main(["advise", sacct, csv, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "jobs fingerprinted" in out
        assert "expected saving" in out
        assert "cap" in out

    def test_budget_flag_respected(self, real_format_files, capsys):
        sacct, csv = real_format_files
        assert main(
            ["advise", sacct, csv, "--max-slowdown", "0.0"]
        ) == 0
        out = capsys.readouterr().out
        # Zero tolerance: every printed per-job dT is 0.00.
        for line in out.splitlines():
            cols = line.split()
            if len(cols) == 7 and cols[0].isdigit():
                assert float(cols[-1]) == 0.0

    def test_missing_file_fails_cleanly(self, real_format_files, capsys):
        _sacct, csv = real_format_files
        with pytest.raises(SystemExit):
            main(["advise"])  # argparse: missing positionals
        code = main(["advise", "/nonexistent/sacct", csv])
        assert code == 1
        assert "FAILED" in capsys.readouterr().err
