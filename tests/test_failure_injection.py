"""Failure-injection tests: corrupted inputs fail loudly or degrade safely.

A telemetry pipeline in production sees sensor glitches, clock skew, and
accounting holes; these tests pin down which failures the library
rejects at the boundary and which it absorbs with defined semantics.
"""

import numpy as np
import pytest

from repro import units
from repro.core import join_campaign
from repro.errors import TelemetryError
from repro.policy import fingerprint_jobs
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator, TelemetryStore
from repro.telemetry.schema import TelemetryChunk


@pytest.fixture(scope="module")
def small_campaign():
    mix = default_mix(fleet_nodes=8)
    log = SlurmSimulator(mix).run(units.hours(4), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=0).generate()
    return log, store


def chunk_with(gpu_power, time_s=None):
    n = len(gpu_power)
    return TelemetryChunk(
        time_s=np.arange(n, dtype=float) if time_s is None else time_s,
        node_id=np.zeros(n, dtype=np.int32),
        gpu_power_w=np.asarray(gpu_power, dtype=np.float32),
        cpu_power_w=np.zeros(n, dtype=np.float32),
    )


class TestSensorGlitches:
    def test_nan_power_rejected(self):
        bad = np.full((3, 4), 300.0)
        bad[1, 2] = np.nan
        with pytest.raises(TelemetryError):
            chunk_with(bad)

    def test_inf_power_rejected(self):
        bad = np.full((3, 4), 300.0)
        bad[0, 0] = np.inf
        with pytest.raises(TelemetryError):
            chunk_with(bad)

    def test_negative_power_rejected(self):
        bad = np.full((3, 4), 300.0)
        bad[2, 3] = -5.0
        with pytest.raises(TelemetryError):
            chunk_with(bad)

    def test_nan_timestamp_rejected(self):
        good = np.full((3, 4), 300.0)
        t = np.array([0.0, np.nan, 30.0])
        with pytest.raises(TelemetryError):
            chunk_with(good, time_s=t)


class TestAccountingHoles:
    def test_unsorted_samples_join_identically(self, small_campaign):
        # Out-of-order rows (a realistic collector artifact) must not
        # change any aggregate.
        log, store = small_campaign
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(store))
        c = store.chunk
        shuffled = TelemetryStore(
            TelemetryChunk(
                time_s=c.time_s[perm],
                node_id=c.node_id[perm],
                gpu_power_w=c.gpu_power_w[perm],
                cpu_power_w=c.cpu_power_w[perm],
            )
        )
        a = join_campaign(store, log)
        b = join_campaign(shuffled, log)
        np.testing.assert_allclose(a.energy_j, b.energy_j)

    def test_telemetry_outside_job_windows_counts_as_idle(
        self, small_campaign
    ):
        # Samples after the last job ends are attributed to the idle
        # pseudo-domain, never silently dropped.
        log, store = small_campaign
        tail = store.filter_time(
            max(j.end_time_s for j in log.jobs), units.hours(400)
        )
        if len(tail) == 0:
            pytest.skip("no post-campaign samples in this draw")
        cube = join_campaign(tail, log)
        busy = cube.busy_view()
        assert busy.total_gpu_hours == 0.0
        assert cube.total_gpu_hours == pytest.approx(tail.gpu_hours)

    def test_node_missing_from_log_is_idle(self, small_campaign):
        log, store = small_campaign
        # Fabricate telemetry for a node id the scheduler never used.
        c = store.filter_nodes([0]).chunk
        ghost = TelemetryStore(
            TelemetryChunk(
                time_s=c.time_s,
                node_id=np.full(len(c), log.n_nodes + 5, dtype=np.int32),
                gpu_power_w=c.gpu_power_w,
                cpu_power_w=c.cpu_power_w,
            )
        )
        cube = join_campaign(ghost, log)
        # All of it lands on the idle pseudo-domain.
        assert cube.busy_view().total_gpu_hours == 0.0

    def test_fingerprints_skip_unsampled_jobs(self, small_campaign):
        log, store = small_campaign
        # Telemetry truncated to the first hour: jobs entirely after it
        # must be absent from fingerprints, not present with zeros.
        head = store.filter_time(0.0, units.hours(1))
        fps = fingerprint_jobs(head, log)
        late = [
            j.job_id for j in log.jobs if j.start_time_s > units.hours(1)
        ]
        assert all(jid not in fps for jid in late)
        for fp in fps.values():
            assert fp.gpu_hours > 0


class TestNumericalEdges:
    def test_zero_power_samples_survive(self, small_campaign):
        # A powered-off module (0 W) is unusual but legal telemetry.
        log, _store = small_campaign
        chunk = chunk_with(np.zeros((4, 4)))
        cube = join_campaign([chunk], log)
        assert cube.total_energy_j == 0.0
        assert cube.total_gpu_hours > 0.0

    def test_extreme_power_clips_into_histogram_edge(self, small_campaign):
        log, _store = small_campaign
        chunk = chunk_with(np.full((4, 4), 5000.0))
        cube = join_campaign([chunk], log)
        # Samples beyond the histogram range are clipped and counted.
        assert cube.histogram.n_clipped == 16
        assert cube.histogram.total_count == 16
        # Region binning still assigns them (to the boost region).
        assert cube.region_gpu_hours()[3] == pytest.approx(
            cube.total_gpu_hours
        )
