"""Edge-case tests across layers (behaviours not covered elsewhere)."""

import numpy as np
import pytest

from repro import units
from repro.core.report import format_table, render_table5
from repro.core import measured_factors, project_savings
from repro.gpu import GPUDevice
from repro.policy import CapAdvisor, JobFingerprint
from repro.scheduler import SlurmSimulator, default_mix
from tests.conftest import make_vai_kernel


class TestReportEdges:
    def test_format_table_no_rows(self):
        text = format_table(["a", "bb"], [])
        assert "a" in text and "bb" in text
        assert text.count("\n") == 1  # header + rule only

    def test_render_table5_hides_zero_baseline_row(self, cube=None):
        from tests.conftest import make_vai_kernel  # noqa: F401
        from repro.core.projection import ProjectionRow, ProjectionTable

        table = ProjectionTable(
            knob="frequency",
            total_energy_mwh=100.0,
            rows=[
                ProjectionRow(1700.0, 0, 0, 0, 0, 0, 0),
                ProjectionRow(900.0, 1, 2, 3, 3.0, 1.0, 2.0),
            ],
        )
        text = render_table5(table)
        assert "900" in text
        # The all-zero uncapped baseline row is omitted from the print.
        assert "\n     1700 " not in text


class TestSchedulerEdges:
    def test_zero_backfill_depth_is_pure_fifo(self):
        mix = default_mix(fleet_nodes=16)
        log = SlurmSimulator(mix, backfill_depth=0).run(
            units.hours(8), rng=1
        )
        log.validate_no_overlap()
        # FIFO without backfill: start order respects submit order.
        starts = [(j.submit_time_s, j.start_time_s) for j in log.jobs]
        by_submit = sorted(starts)
        assert all(
            a[1] <= b[1] + 1e-6 for a, b in zip(by_submit, by_submit[1:])
        )

    def test_single_node_fleet(self):
        mix = default_mix(fleet_nodes=1)
        log = SlurmSimulator(mix).run(units.hours(6), rng=0)
        log.validate_no_overlap()
        assert all(j.num_nodes == 1 for j in log.jobs)


class TestDeviceEdges:
    def test_power_trace_respects_interval(self, device):
        r = device.run(make_vai_kernel(1.0, volume_bytes=1e13))
        fine = device.power_trace(r, interval_s=0.5, rng=0)
        coarse = device.power_trace(r, interval_s=5.0, rng=0)
        assert len(fine) > len(coarse)
        assert len(fine) == int(np.ceil(r.time_s / 0.5))

    def test_device_thermal_attached(self, device):
        # The boost window in traces comes from the device's own thermal
        # model; it must be present and sane.
        assert device.thermal.sustainable_power_w() >= device.spec.tdp_w

    def test_repeat_runs_are_stateless(self, device):
        k = make_vai_kernel(4.0)
        a = device.run(k)
        b = device.run(k)
        assert a.power_w == b.power_w
        assert a.time_s == b.time_s


class TestAdvisorEdges:
    def _fp(self, region_energy):
        region_energy = np.asarray(region_energy, dtype=float)
        return JobFingerprint(
            job_id=1, domain="X", size_class="C", num_nodes=1,
            gpu_hours=1.0, energy_j=float(region_energy.sum()),
            region_hours=region_energy / region_energy.sum(),
            region_energy_j=region_energy,
        )

    def test_min_saving_floor_suppresses_marginal_caps(self):
        factors = measured_factors("frequency")
        # A job with a tiny MI share: savings exist but are below 5 %.
        fp = self._fp([1e9, 2e7, 1e6, 0.0])
        greedy = CapAdvisor(factors, min_saving_fraction=0.0).recommend(fp)
        strict = CapAdvisor(factors, min_saving_fraction=0.05).recommend(fp)
        assert greedy.capped
        assert not strict.capped

    def test_boost_only_job_left_alone(self):
        factors = measured_factors("frequency")
        fp = self._fp([1e6, 0.0 + 1e3, 1e3, 1e9])
        rec = CapAdvisor(factors).recommend(fp)
        # Region 4 is uncharacterized: nothing to credit, no cap.
        assert not rec.capped


class TestProjectionEdges:
    def test_idle_only_campaign_projects_zero(self):
        from repro.core.histogram import StreamingHistogram
        from repro.core.join import CampaignCube

        hist = StreamingHistogram()
        hist.add(np.full(100, 89.0))
        energy = np.zeros((1, 1, 4))
        energy[0, 0, 0] = 1e9   # all in region 1
        cube = CampaignCube(
            domains=["_idle"], classes=["-"],
            energy_j=energy, gpu_hours=energy / 3.6e5,
            histogram=hist, domain_histograms={"_idle": hist},
        )
        table = project_savings(cube, measured_factors("frequency"))
        assert all(r.total_mwh == 0.0 for r in table.rows)

    def test_uncapped_device_tdp_cap_equivalence(self):
        # A power cap at exactly TDP behaves as uncapped for any kernel.
        k = make_vai_kernel(4.0)
        base = GPUDevice().run(k)
        at_tdp = GPUDevice(power_cap_w=560.0).run(k)
        assert at_tdp.time_s == pytest.approx(base.time_s, rel=1e-6)
        assert at_tdp.power_w == pytest.approx(base.power_w, rel=1e-6)
