"""Unit tests for the steady-state power model."""

import pytest

from repro import units
from repro.gpu.perf import execute
from repro.gpu.power import energy, idle_power, metered_power, steady_power
from tests.conftest import make_membench_kernel, make_vai_kernel


def power_at(spec, intensity, f_hz, *, capped=False):
    profile = execute(spec, make_vai_kernel(intensity), f_hz)
    return steady_power(spec, profile, f_core_hz=f_hz, uncore_capped=capped)


class TestAnchors:
    """The paper's measured power anchors at maximum frequency."""

    def test_memory_bound_anchor(self, spec):
        # Paper: ~380 W at arithmetic intensity 1/16.
        assert power_at(spec, 1 / 16, spec.f_max_hz) == pytest.approx(380, abs=10)

    def test_ridge_anchor(self, spec):
        # Paper: 540 W peak at arithmetic intensity 4.
        assert power_at(spec, 4.0, spec.f_max_hz) == pytest.approx(540, abs=8)

    def test_compute_tail_anchor(self, spec):
        # Paper: decreases to ~420 W at high intensities.
        assert power_at(spec, 1024.0, spec.f_max_hz) == pytest.approx(420, abs=10)

    def test_peak_is_at_ridge(self, spec):
        intensities = [0.0, 0.25, 1.0, 2.0, 4.0, 8.0, 64.0, 1024.0]
        powers = [power_at(spec, i, spec.f_max_hz) for i in intensities]
        assert max(powers) == powers[intensities.index(4.0)]

    def test_never_exceeds_tdp(self, spec):
        for i in (0.0, 1.0, 4.0, 16.0):
            assert power_at(spec, i, spec.f_max_hz) <= spec.tdp_w


class TestScaling:
    def test_power_monotone_in_frequency(self, spec):
        for intensity in (0.5, 4.0, 256.0):
            powers = [
                power_at(spec, intensity, units.mhz(m), capped=True)
                for m in (700, 900, 1100, 1300, 1500)
            ]
            assert all(a <= b for a, b in zip(powers, powers[1:]))

    def test_frequency_cap_reduces_memory_power(self, spec):
        # The uncore P-state step: capping drops HBM-stream power even when
        # bandwidth (and runtime) are unchanged.
        k = make_membench_kernel(units.gib(1))
        prof_hi = execute(spec, k, spec.f_max_hz)
        p_uncapped = steady_power(spec, prof_hi, uncore_capped=False)
        prof_capped = execute(spec, k, units.mhz(1500))
        p_capped = steady_power(spec, prof_capped, uncore_capped=True)
        assert p_capped < 0.92 * p_uncapped
        assert prof_capped.time_s == pytest.approx(prof_hi.time_s, rel=0.01)

    def test_idle_power(self, spec):
        assert idle_power(spec) == spec.idle_w


class TestMeteredPower:
    def test_metered_below_actual_for_memory_kernels(self, spec):
        k = make_membench_kernel(units.gib(1))
        profile = execute(spec, k, spec.f_max_hz)
        actual = steady_power(spec, profile, uncore_capped=False)
        metered = metered_power(spec, profile, spec.f_max_hz)
        assert metered < actual

    def test_metered_equals_actual_for_pure_compute(self, spec):
        k = make_vai_kernel(1e6)  # negligible memory traffic
        profile = execute(spec, k, spec.f_max_hz)
        actual = steady_power(spec, profile, uncore_capped=False)
        metered = metered_power(spec, profile, spec.f_max_hz)
        assert metered == pytest.approx(actual, rel=0.01)

    def test_metered_monotone_in_frequency(self, spec):
        k = make_vai_kernel(4.0)
        vals = []
        for m in (700, 900, 1100, 1300, 1500, 1700):
            profile = execute(spec, k, units.mhz(m))
            vals.append(metered_power(spec, profile, units.mhz(m)))
        assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))


def test_energy_is_power_times_time():
    assert energy(100.0, 60.0) == pytest.approx(6000.0)
