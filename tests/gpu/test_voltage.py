"""Unit tests for the DVFS voltage curve and power scale factors."""

import numpy as np
import pytest

from repro import units
from repro.gpu import voltage


class TestVoltage:
    def test_voltage_at_fmax(self, spec):
        assert voltage.voltage(spec, spec.f_max_hz) == pytest.approx(
            spec.v0 + spec.v1
        )

    def test_voltage_monotone_increasing(self, spec):
        f = voltage.frequency_grid(spec, 32)
        v = voltage.voltage(spec, f)
        assert np.all(np.diff(v) > 0)


class TestCoreScale:
    def test_unity_at_fmax(self, spec):
        assert voltage.core_scale(spec, spec.f_max_hz) == pytest.approx(1.0)

    def test_monotone_increasing(self, spec):
        f = voltage.frequency_grid(spec, 64)
        phi = voltage.core_scale(spec, f)
        assert np.all(np.diff(phi) > 0)

    def test_superlinear_in_frequency(self, spec):
        # f * v(f)^2 falls faster than f alone when lowering the clock.
        f = units.mhz(850)
        assert voltage.core_scale(spec, f) < f / spec.f_max_hz

    def test_scalar_in_scalar_out(self, spec):
        out = voltage.core_scale(spec, units.mhz(1000))
        assert isinstance(out, float)

    def test_array_in_array_out(self, spec):
        out = voltage.core_scale(spec, np.array([units.mhz(1000)]))
        assert isinstance(out, np.ndarray)


class TestUncoreScale:
    def test_uncapped_is_unity_everywhere(self, spec):
        f = voltage.frequency_grid(spec, 16)
        psi = voltage.uncore_scale(spec, f, capped=False)
        assert np.allclose(psi, 1.0)

    def test_capped_engages_low_pstate(self, spec):
        # Any DVFS ceiling drops the uncore scale well below 1 (the step
        # response measured by Table III's MB column).
        psi = voltage.uncore_scale(spec, spec.f_max_hz, capped=True)
        assert psi == pytest.approx(spec.psi_cap0 + spec.psi_cap1)
        assert psi < 0.9

    def test_capped_weakly_increasing_in_f(self, spec):
        f = voltage.frequency_grid(spec, 16)
        psi = voltage.uncore_scale(spec, f, capped=True)
        assert np.all(np.diff(psi) >= 0)

    def test_capped_below_uncapped(self, spec):
        f = voltage.frequency_grid(spec, 16)
        assert np.all(
            voltage.uncore_scale(spec, f, capped=True)
            < voltage.uncore_scale(spec, f, capped=False)
        )


def test_frequency_grid_spans_dvfs_range(spec):
    f = voltage.frequency_grid(spec, 10)
    assert f[0] == spec.f_min_hz
    assert f[-1] == spec.f_max_hz
    assert len(f) == 10
