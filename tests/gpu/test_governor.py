"""Tests for the per-kernel sensitivity governor."""

import pytest

from repro import units
from repro.errors import CapError
from repro.gpu import GPUDevice
from repro.gpu.governor import SensitivityGovernor, governor_vs_static
from tests.conftest import make_membench_kernel, make_vai_kernel


@pytest.fixture(scope="module")
def governor():
    return SensitivityGovernor()


class TestDecide:
    def test_deep_issue_stream_downclocks_hard(self, governor):
        d = governor.decide(make_membench_kernel(units.gib(1)))
        assert d.capped
        assert d.f_mhz <= 900
        assert d.predicted_slowdown <= 1.02

    def test_compute_kernel_stays_fast(self, governor):
        d = governor.decide(make_vai_kernel(1024.0))
        # 2 % tolerance forbids any real downclock for 1/f kernels...
        assert d.f_mhz == 1700
        # ...but engaging the uncore P-state at f_max is free.
        assert d.predicted_slowdown == pytest.approx(1.0, abs=1e-9)

    def test_tolerance_widens_choices(self):
        strict = SensitivityGovernor(slowdown_tolerance=0.0)
        loose = SensitivityGovernor(slowdown_tolerance=0.5)
        kernel = make_vai_kernel(1024.0)
        assert loose.decide(kernel).f_mhz <= strict.decide(kernel).f_mhz

    def test_decision_power_consistent_with_run(self, governor):
        kernel = make_membench_kernel(units.gib(1))
        decision = governor.decide(kernel)
        result = governor.run(kernel)
        assert result.power_w == pytest.approx(
            decision.predicted_power_w, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(CapError):
            SensitivityGovernor(slowdown_tolerance=-0.1)
        with pytest.raises(CapError):
            SensitivityGovernor(menu_mhz=())


class TestGovernorVsStatic:
    @pytest.fixture(scope="class")
    def comparison(self):
        # Volumes sized so memory streams and compute kernels carry
        # comparable energy in the stream.
        kernels = (
            [make_membench_kernel(units.gib(1), volume_bytes=640e9)] * 3
            + [make_vai_kernel(16.0), make_vai_kernel(256.0)]
        )
        return governor_vs_static(kernels, static_cap_mhz=900.0)

    def test_governor_never_slows_past_tolerance(self, comparison):
        assert comparison["governor"]["slowdown_pct"] <= 2.0 + 1e-6

    def test_static_cap_pays_runtime(self, comparison):
        assert comparison["static"]["slowdown_pct"] > 20.0

    def test_governor_saves_energy(self, comparison):
        assert comparison["governor"]["saving_pct"] > 2.0

    def test_energy_accounting(self, comparison):
        for row in comparison.values():
            assert row["energy_j"] > 0
            assert row["time_s"] > 0


def test_governor_dominates_static_on_memory_streams():
    # On a pure memory stream the governor matches the static cap's
    # savings with none of its (zero) cost — and beats uncapped.
    kernels = [make_membench_kernel(units.gib(1))] * 4
    cmp = governor_vs_static(kernels, static_cap_mhz=900.0)
    assert cmp["governor"]["saving_pct"] >= cmp["static"]["saving_pct"] - 1.0
    assert cmp["governor"]["slowdown_pct"] < cmp["static"]["slowdown_pct"] + 1.0
    baseline = GPUDevice().run(make_membench_kernel(units.gib(1)))
    assert cmp["governor"]["energy_j"] < 4 * baseline.energy_j
