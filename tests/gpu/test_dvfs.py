"""Unit tests for the frequency-cap governor."""

import pytest

from repro import units
from repro.errors import CapError
from repro.gpu.dvfs import DVFS_STEP_HZ, boost_frequency, resolve_frequency_cap


class TestResolveFrequencyCap:
    def test_none_means_fmax(self, spec):
        assert resolve_frequency_cap(spec, None) == spec.f_max_hz

    def test_in_range_cap_passes_through(self, spec):
        assert resolve_frequency_cap(spec, units.mhz(900)) == units.mhz(900)

    def test_above_fmax_clamps(self, spec):
        assert resolve_frequency_cap(spec, units.mhz(2000)) == spec.f_max_hz

    def test_below_fmin_raises(self, spec):
        with pytest.raises(CapError):
            resolve_frequency_cap(spec, units.mhz(400))

    def test_nonpositive_raises(self, spec):
        with pytest.raises(CapError):
            resolve_frequency_cap(spec, 0.0)
        with pytest.raises(CapError):
            resolve_frequency_cap(spec, -units.mhz(900))

    def test_quantize_floors_to_step(self, spec):
        f = resolve_frequency_cap(spec, units.mhz(925), quantize=True)
        assert f == pytest.approx(units.mhz(900))
        assert f % DVFS_STEP_HZ == pytest.approx(0.0)

    def test_quantize_never_below_fmin(self, spec):
        f = resolve_frequency_cap(spec, spec.f_min_hz + 1.0, quantize=True)
        assert f >= spec.f_min_hz


def test_boost_frequency_above_fmax(spec):
    assert boost_frequency(spec) > spec.f_max_hz
    assert boost_frequency(spec) == pytest.approx(
        spec.f_max_hz * spec.boost_f_factor
    )
