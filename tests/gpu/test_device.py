"""Unit tests for the GPUDevice facade."""

import numpy as np
import pytest

from repro import constants, units
from repro.errors import CapError
from repro.gpu import GPUDevice
from tests.conftest import make_membench_kernel, make_vai_kernel


class TestKnobs:
    def test_defaults_uncapped(self, spec):
        dev = GPUDevice(spec)
        assert dev.uncapped
        assert dev.frequency_cap_hz is None
        assert dev.power_cap_w is None

    def test_set_and_clear_frequency_cap(self, spec):
        dev = GPUDevice(spec)
        dev.set_frequency_cap(units.mhz(900))
        assert dev.frequency_cap_hz == units.mhz(900)
        assert not dev.uncapped
        dev.set_frequency_cap(None)
        assert dev.uncapped

    def test_invalid_caps_raise_at_set_time(self, spec):
        dev = GPUDevice(spec)
        with pytest.raises(CapError):
            dev.set_frequency_cap(units.mhz(100))
        with pytest.raises(CapError):
            dev.set_power_cap(10.0)

    def test_power_cap_at_tdp_counts_as_uncapped(self, spec):
        dev = GPUDevice(spec, power_cap_w=spec.tdp_w)
        assert dev.uncapped


class TestRun:
    def test_result_fields_consistent(self, device):
        r = device.run(make_vai_kernel(4.0))
        assert r.energy_j == pytest.approx(r.power_w * r.time_s)
        assert r.f_core_hz == device.spec.f_max_hz
        assert r.arithmetic_intensity == pytest.approx(4.0)
        assert not r.cap_breached

    def test_frequency_cap_slows_compute_kernel(self, spec):
        base = GPUDevice(spec).run(make_vai_kernel(1024.0))
        capped = GPUDevice(spec, frequency_cap_hz=units.mhz(850)).run(
            make_vai_kernel(1024.0)
        )
        assert capped.time_s == pytest.approx(2 * base.time_s, rel=0.01)
        assert capped.power_w < base.power_w

    def test_power_cap_breach_flagged(self, spec):
        dev = GPUDevice(spec, power_cap_w=200.0)
        r = dev.run(make_membench_kernel(units.gib(1)))
        assert r.cap_breached
        assert r.power_w > 200.0

    def test_both_knobs_most_restrictive_wins(self, spec):
        k = make_vai_kernel(1024.0)
        dev = GPUDevice(
            spec, frequency_cap_hz=units.mhz(700), power_cap_w=550.0
        )
        r = dev.run(k)
        # The 550 W cap is a no-op for this kernel; the 700 MHz cap rules.
        assert r.f_core_hz == pytest.approx(units.mhz(700))

    def test_idle_result(self, device):
        r = device.idle_result(60.0)
        assert r.power_w == device.spec.idle_w
        assert r.energy_j == pytest.approx(60.0 * device.spec.idle_w)
        assert r.bound == "idle"


class TestPowerTrace:
    def test_trace_length_covers_runtime(self, device, rng):
        r = device.run(make_vai_kernel(4.0, volume_bytes=1e12))
        trace = device.power_trace(r, rng=rng)
        expected = int(np.ceil(r.time_s / constants.SENSOR_INTERVAL_S))
        assert len(trace) == expected

    def test_trace_steady_state_near_model_power(self, device, rng):
        r = device.run(make_vai_kernel(1.0, volume_bytes=6e13))
        trace = device.power_trace(r, rng=rng, boost=False)
        steady = trace[len(trace) // 2 :]
        assert np.mean(steady) == pytest.approx(r.power_w, rel=0.02)

    def test_uncapped_near_tdp_run_shows_boost_samples(self, device, rng):
        # Table IV region 4: the >=560 W samples come from boost transients
        # at the start of uncapped near-TDP kernels.
        r = device.run(make_vai_kernel(4.0, volume_bytes=2e12))
        trace = device.power_trace(r, rng=rng)
        assert trace.max() > device.spec.tdp_w * 0.98

    def test_capped_run_has_no_boost(self, spec, rng):
        dev = GPUDevice(spec, frequency_cap_hz=units.mhz(1500))
        r = dev.run(make_vai_kernel(4.0, volume_bytes=2e12))
        trace = dev.power_trace(r, rng=rng)
        assert trace.max() < spec.tdp_w

    def test_trace_nonnegative(self, device, rng):
        r = device.run(make_vai_kernel(0.0))
        trace = device.power_trace(r, rng=rng)
        assert (trace >= 0).all()

    def test_trace_deterministic_given_seed(self, device):
        r = device.run(make_vai_kernel(2.0, volume_bytes=1e12))
        t1 = device.power_trace(r, rng=7)
        t2 = device.power_trace(r, rng=7)
        assert np.array_equal(t1, t2)
