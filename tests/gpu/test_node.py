"""Unit tests for the Frontier node model."""

import numpy as np
import pytest

from repro import units
from repro.gpu import FrontierNode
from tests.conftest import make_vai_kernel


class TestFrontierNode:
    def test_has_four_gpus(self):
        node = FrontierNode()
        assert len(node.gpus) == 4

    def test_replicated_run_identical_results(self):
        node = FrontierNode()
        results = node.run_replicated(make_vai_kernel(4.0))
        assert len(results) == 4
        assert len({r.power_w for r in results}) == 1
        assert len({r.time_s for r in results}) == 1

    def test_node_wide_caps_apply_to_all_gpus(self):
        node = FrontierNode()
        node.set_frequency_cap(units.mhz(900))
        assert all(g.frequency_cap_hz == units.mhz(900) for g in node.gpus)
        node.set_power_cap(400.0)
        assert all(g.power_cap_w == 400.0 for g in node.gpus)

    def test_sample_totals(self):
        node = FrontierNode()
        s = node.sample([400.0, 400.0, 400.0, 400.0], cpu_load=0.5)
        expected_cpu = node.spec.cpu_power_w(0.5)
        assert s.node_input_w == pytest.approx(
            1600.0 + expected_cpu + node.spec.overhead_w
        )

    def test_gpu_fraction_dominates_under_load(self):
        # Paper discussion: non-GPU components are dwarfed (<20 %) on a
        # fully-utilized node.
        node = FrontierNode()
        busy = node.sample([540.0] * 4, cpu_load=1.0)
        assert busy.gpu_fraction > 0.8

    def test_gpu_fraction_lower_when_idle(self):
        node = FrontierNode()
        idle_gpu = node.spec.gpu.idle_w
        idle = node.sample([idle_gpu] * 4, cpu_load=0.0)
        busy = node.sample([540.0] * 4, cpu_load=0.0)
        assert idle.gpu_fraction < busy.gpu_fraction

    def test_sample_validates_shape(self):
        node = FrontierNode()
        with pytest.raises(ValueError):
            node.sample([400.0, 400.0], cpu_load=0.5)

    def test_sample_copies_are_independent(self):
        node = FrontierNode()
        arr = np.array([100.0, 200.0, 300.0, 400.0])
        s = node.sample(arr, cpu_load=0.0)
        assert s.gpu_power_w.sum() == pytest.approx(1000.0)
