"""Tests for the cache simulator and the hit-model validation."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.gpu.cachesim import (
    CacheGeometry,
    SetAssociativeCache,
    cyclic_hit_rate,
    cyclic_stream,
)

GEO = CacheGeometry(capacity_bytes=64 * 1024, line_bytes=128, ways=8)


class TestGeometry:
    def test_derived_counts(self):
        assert GEO.n_lines == 512
        assert GEO.n_sets == 64

    def test_validation(self):
        with pytest.raises(SpecError):
            CacheGeometry(capacity_bytes=0)
        with pytest.raises(SpecError):
            CacheGeometry(capacity_bytes=1000, line_bytes=128, ways=8)


class TestCache:
    def test_repeated_line_hits(self):
        cache = SetAssociativeCache(GEO)
        stream = np.zeros(10, dtype=np.int64)
        assert cache.access_lines(stream) == 9  # first touch misses

    def test_distinct_lines_all_miss(self):
        cache = SetAssociativeCache(GEO)
        stream = np.arange(GEO.n_lines, dtype=np.int64)
        assert cache.access_lines(stream) == 0

    def test_unknown_policy(self):
        with pytest.raises(SpecError):
            SetAssociativeCache(GEO, policy="fifo")

    def test_cyclic_stream_shape(self):
        s = cyclic_stream(1024, 128, rounds=3)
        assert len(s) == 8 * 3
        assert s.max() == 7


class TestCyclicHitRates:
    def test_resident_set_hits_fully(self):
        assert cyclic_hit_rate(GEO, GEO.capacity_bytes // 2) == 1.0

    def test_lru_cliff_past_capacity(self):
        # The textbook cyclic pathology, at set granularity: at 1.1x
        # capacity only the few still-resident sets hit; by 1.25x every
        # set thrashes and the rate is exactly zero.
        slightly_over = int(1.1 * GEO.capacity_bytes)
        assert cyclic_hit_rate(GEO, slightly_over, policy="lru") < 0.3
        well_over = int(1.25 * GEO.capacity_bytes)
        assert cyclic_hit_rate(GEO, well_over, policy="lru") == 0.0

    def test_random_replacement_decays_smoothly(self):
        rates = [
            cyclic_hit_rate(
                GEO, int(r * GEO.capacity_bytes), policy="random", rng=0
            )
            for r in (1.2, 1.6, 2.5)
        ]
        assert rates == sorted(rates, reverse=True)
        assert 0.0 < rates[0] < 1.0

    def test_analytic_model_brackets_the_policies(self):
        from repro.gpu.cache import l2_hit_fraction
        from repro.gpu.specs import default_spec

        spec = default_spec().with_overrides(
            l2_bytes=float(GEO.capacity_bytes)
        )
        for ratio in (1.2, 1.5, 1.8):
            ws = int(ratio * GEO.capacity_bytes)
            lru = cyclic_hit_rate(GEO, ws, policy="lru")
            rnd = cyclic_hit_rate(GEO, ws, policy="random", rng=1)
            model = l2_hit_fraction(spec, ws)
            assert lru - 0.05 <= model
            assert model <= rnd + 0.35

    def test_validation(self):
        with pytest.raises(SpecError):
            cyclic_hit_rate(GEO, 1024, rounds=1, warmup_rounds=2)
