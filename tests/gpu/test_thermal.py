"""Tests for the thermal model (boost transience)."""

import numpy as np
import pytest

from repro.errors import SpecError
from repro.gpu.thermal import ThermalModel, ThermalParams


@pytest.fixture
def model():
    return ThermalModel()


class TestSteadyState:
    def test_idle_runs_cool(self, model):
        assert model.steady_temp_c(89.0) < 50.0

    def test_tdp_sustainable(self, model):
        # 560 W must be sustainable (it is the spec TDP)...
        assert model.steady_temp_c(560.0) < model.params.throttle_c
        assert model.sustainable_power_w() >= 560.0

    def test_boost_not_sustainable(self, model):
        # ... while boost power is not (region 4 is transient).
        assert model.steady_temp_c(600.0) > model.params.throttle_c


class TestDynamics:
    def test_exponential_approach(self, model):
        t_inf = model.steady_temp_c(500.0)
        t1 = model.temp_after(40.0, 500.0, model.params.tau_s)
        # One time constant covers ~63 % of the gap.
        assert t1 == pytest.approx(t_inf - (t_inf - 40.0) * np.exp(-1))

    def test_long_hold_reaches_steady(self, model):
        assert model.temp_after(40.0, 500.0, 50 * model.params.tau_s) == (
            pytest.approx(model.steady_temp_c(500.0), abs=1e-6)
        )

    def test_monotone_in_time_when_heating(self, model):
        temps = [model.temp_after(40.0, 560.0, dt) for dt in (0, 5, 15, 60)]
        assert temps == sorted(temps)

    def test_negative_dt_rejected(self, model):
        with pytest.raises(SpecError):
            model.temp_after(40.0, 500.0, -1.0)


class TestBoostWindow:
    def test_boost_window_finite_from_hot_start(self, model):
        # Starting from the steady temperature of a near-TDP workload,
        # boost holds for seconds-to-a-minute, not indefinitely.
        t0 = model.steady_temp_c(540.0)
        window = model.boost_window_s(t0, 600.0)
        assert 1.0 < window < 120.0

    def test_boost_window_longer_from_cold(self, model):
        cold = model.boost_window_s(40.0, 600.0)
        hot = model.boost_window_s(model.steady_temp_c(540.0), 600.0)
        assert cold > hot

    def test_sustainable_power_gives_infinite_window(self, model):
        assert model.boost_window_s(40.0, 500.0) == float("inf")

    def test_zero_window_at_limit(self, model):
        assert model.boost_window_s(model.params.throttle_c, 600.0) == 0.0


class TestDutyCycle:
    def test_boost_residency_bounded_not_free(self, model):
        # Thermals cap boost residency well below 100 % over a compute
        # base, but do not by themselves force it to Table IV's 1.1 % —
        # the fleet's low region-4 share is workload-limited (phases that
        # can draw 600 W are rare), which ext_boost quantifies.
        duty = model.duty_cycle(600.0, 505.0)
        assert 0.05 < duty < 0.8

    def test_extremes(self, model):
        assert model.duty_cycle(500.0, 400.0) == 1.0   # sustainable
        assert model.duty_cycle(700.0, 590.0) == 0.0   # no recovery

    def test_duty_monotone_in_base_power(self, model):
        duties = [
            model.duty_cycle(600.0, base) for base in (300.0, 450.0, 540.0)
        ]
        assert duties == sorted(duties, reverse=True)


class TestParams:
    def test_validation(self):
        with pytest.raises(SpecError):
            ThermalParams(r_th_k_per_w=0.0)
        with pytest.raises(SpecError):
            ThermalParams(tau_s=-1.0)
        with pytest.raises(SpecError):
            ThermalParams(throttle_c=20.0, coolant_c=32.0)

    def test_heat_capacity_derived(self):
        p = ThermalParams(r_th_k_per_w=0.1, tau_s=20.0)
        assert p.c_th_j_per_k == pytest.approx(200.0)
