"""Batch/scalar equivalence: ``run_batch`` against the ``run`` oracle.

The batched engine mirrors the scalar model expression-for-expression, so
the contract is tight: every column of a :class:`BatchResult` row must
match the scalar :class:`KernelResult` of the same (kernel, caps) point
within ``rtol=1e-9`` — in practice the paths agree bitwise — across the
full Fig 4/5 grid, both knobs, and every edge the cap logic has.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants, units
from repro.bench.membench import membench_kernel, working_set_grid
from repro.bench.sweep import CapSweep
from repro.bench.vai import vai_kernel
from repro.errors import CapError
from repro.gpu import GPUDevice, KernelBatch, KernelSpec, default_spec
from repro.gpu.powercap import clear_powercap_cache

RTOL = 1e-9

#: Columns compared between a BatchResult row and a KernelResult.
_NUMERIC = (
    "time_s",
    "power_w",
    "energy_j",
    "f_core_hz",
    "achieved_flops",
    "achieved_bw",
)


def assert_rows_match(batch, scalars):
    """Every batch row equals its scalar oracle result."""
    assert len(batch) == len(scalars)
    for i, ref in enumerate(scalars):
        for col in _NUMERIC:
            np.testing.assert_allclose(
                getattr(batch, col)[i],
                getattr(ref, col),
                rtol=RTOL,
                err_msg=f"row {i} ({ref.kernel.name}) column {col}",
            )
        assert batch.bound[i] == ref.bound, f"row {i} bound"
        assert bool(batch.cap_breached[i]) == ref.cap_breached, (
            f"row {i} cap_breached"
        )


def vai_grid_kernels():
    return [
        vai_kernel(ai, global_wis=2**24) for ai in constants.VAI_INTENSITIES
    ]


def membench_grid_kernels():
    return [membench_kernel(ws) for ws in working_set_grid()]


class TestFullGrids:
    """The paper's Fig 4/5 grid: every cap x intensity point, both knobs."""

    def test_fig4_frequency_grid(self, spec):
        kernels = vai_grid_kernels()
        caps_hz = [None] + [
            units.mhz(c) for c in constants.FREQUENCY_CAPS_MHZ[1:]
        ]
        batch_kernels, batch_caps, scalars = [], [], []
        for cap in caps_hz:
            device = GPUDevice(spec, frequency_cap_hz=cap)
            for k in kernels:
                batch_kernels.append(k)
                batch_caps.append(cap)
                scalars.append(device.run(k))
        result = GPUDevice(spec).run_batch(
            batch_kernels, frequency_caps_hz=batch_caps
        )
        assert_rows_match(result, scalars)

    def test_fig4_power_grid(self, spec):
        kernels = vai_grid_kernels()
        caps_w = [None, 500.0, 400.0, 300.0, 200.0, 100.0]
        batch_kernels, batch_caps, scalars = [], [], []
        clear_powercap_cache()
        for cap in caps_w:
            device = GPUDevice(spec, power_cap_w=cap)
            for k in kernels:
                batch_kernels.append(k)
                batch_caps.append(cap)
                scalars.append(device.run(k))
        result = GPUDevice(spec).run_batch(
            batch_kernels, power_caps_w=batch_caps
        )
        assert_rows_match(result, scalars)

    def test_fig6_membench_power_grid(self, spec):
        """The deep-cap membench grid, including breached HBM-floor rows."""
        kernels = membench_grid_kernels()
        caps_w = [None] + [float(c) for c in constants.MEMBENCH_POWER_CAPS_W]
        batch_kernels, batch_caps, scalars = [], [], []
        clear_powercap_cache()
        for cap in caps_w:
            device = GPUDevice(spec, power_cap_w=cap)
            for k in kernels:
                batch_kernels.append(k)
                batch_caps.append(cap)
                scalars.append(device.run(k))
        result = GPUDevice(spec).run_batch(
            batch_kernels, power_caps_w=batch_caps
        )
        assert_rows_match(result, scalars)
        # The 140 W column must actually exercise the breach path.
        assert result.cap_breached.any()

    def test_capsweep_batched_equals_scalar(self, spec):
        """The harness-level contract behind Fig 4: identical sweep output."""
        from repro.bench.vai import VAIBenchmark

        bench = VAIBenchmark(global_wis=2**24, min_runtime_s=1.0)
        scalar = CapSweep(bench, spec, batched=False).power_sweep((300.0,))
        batched = CapSweep(bench, spec).power_sweep((300.0,))
        for cap in scalar:
            for a, b in zip(
                scalar[cap].result.points, batched[cap].result.points
            ):
                assert a == b


class TestCapEdges:
    """Boundary caps, mixed knobs, and degenerate grids."""

    def test_power_cap_exactly_idle(self, spec):
        """cap == idle_w is the lowest legal cap; everything parks/breaches."""
        kernels = [vai_kernel(4.0, global_wis=2**24), membench_kernel(2**30)]
        scalars = [
            GPUDevice(spec, power_cap_w=spec.idle_w).run(k) for k in kernels
        ]
        result = GPUDevice(spec).run_batch(kernels, power_caps_w=spec.idle_w)
        assert_rows_match(result, scalars)
        assert result.cap_breached.all()

    def test_power_cap_exactly_tdp(self, spec):
        """cap == tdp_w never throttles (steady power is clamped at TDP)."""
        kernels = vai_grid_kernels()
        scalars = [
            GPUDevice(spec, power_cap_w=spec.tdp_w).run(k) for k in kernels
        ]
        result = GPUDevice(spec).run_batch(kernels, power_caps_w=spec.tdp_w)
        assert_rows_match(result, scalars)
        assert not result.cap_breached.any()
        np.testing.assert_array_equal(result.f_core_hz, spec.f_max_hz)

    def test_mixed_knobs_more_restrictive_wins(self, spec):
        """Frequency and power caps together, each restrictive in turn."""
        kernels = [
            vai_kernel(0.0625, global_wis=2**24),
            vai_kernel(4.0, global_wis=2**24),
            vai_kernel(1024.0, global_wis=2**24),
            membench_kernel(2**30),
        ]
        cases = [
            (units.mhz(700), 500.0),    # frequency knob dominates
            (units.mhz(1500), 200.0),   # power knob dominates
            (units.mhz(900), 300.0),    # kernel-dependent winner
        ]
        for f_cap, p_cap in cases:
            device = GPUDevice(
                spec, frequency_cap_hz=f_cap, power_cap_w=p_cap
            )
            scalars = [device.run(k) for k in kernels]
            result = GPUDevice(spec).run_batch(
                kernels, frequency_caps_hz=f_cap, power_caps_w=p_cap
            )
            assert_rows_match(result, scalars)
            # The winning knob really is the more restrictive one.
            f_only = GPUDevice(spec).run_batch(
                kernels, frequency_caps_hz=f_cap
            )
            p_only = GPUDevice(spec).run_batch(kernels, power_caps_w=p_cap)
            np.testing.assert_allclose(
                result.f_core_hz,
                np.minimum(f_only.f_core_hz, p_only.f_core_hz),
                rtol=RTOL,
            )

    def test_per_point_mixed_cap_columns(self, spec):
        """Each point carries its own knob settings, None = uncapped."""
        kernels = [vai_kernel(4.0, global_wis=2**24)] * 4
        fcaps = [None, units.mhz(900), None, units.mhz(1300)]
        pcaps = [None, None, 300.0, 250.0]
        scalars = [
            GPUDevice(spec, frequency_cap_hz=f, power_cap_w=p).run(k)
            for k, f, p in zip(kernels, fcaps, pcaps)
        ]
        result = GPUDevice(spec).run_batch(
            kernels, frequency_caps_hz=fcaps, power_caps_w=pcaps
        )
        assert_rows_match(result, scalars)

    def test_device_knob_inheritance(self, spec):
        """run_batch with no cap arguments inherits the device's knobs."""
        device = GPUDevice(spec, frequency_cap_hz=units.mhz(1100))
        kernels = vai_grid_kernels()
        scalars = [device.run(k) for k in kernels]
        assert_rows_match(device.run_batch(kernels), scalars)

        capped = GPUDevice(spec, power_cap_w=250.0)
        scalars = [capped.run(k) for k in kernels]
        assert_rows_match(capped.run_batch(kernels), scalars)

    def test_single_point_grid(self, spec):
        kernel = membench_kernel(2**31)
        result = GPUDevice(spec).run_batch([kernel], power_caps_w=[200.0])
        ref = GPUDevice(spec, power_cap_w=200.0).run(kernel)
        assert len(result) == 1
        assert_rows_match(result, [ref])

    def test_empty_grid(self, spec):
        result = GPUDevice(spec).run_batch([])
        assert len(result) == 0
        assert result.time_s.shape == (0,)
        assert result.cap_breached.shape == (0,)

    def test_prepacked_batch_and_slicing(self, spec):
        kernels = vai_grid_kernels()
        batch = KernelBatch.from_kernels(kernels)
        result = GPUDevice(spec).run_batch(batch, power_caps_w=300.0)
        head = result[:4]
        assert len(head) == 4
        np.testing.assert_array_equal(head.power_w, result.power_w[:4])


class TestCapValidation:
    """CapError parity between scalar and batched paths."""

    def test_zero_power_cap_rejected(self, spec):
        with pytest.raises(CapError):
            GPUDevice(spec).run_batch(
                [vai_kernel(4.0)], power_caps_w=[0.0]
            )

    def test_sub_idle_power_cap_rejected(self, spec):
        with pytest.raises(CapError):
            GPUDevice(spec).run_batch(
                [vai_kernel(4.0)], power_caps_w=spec.idle_w - 1.0
            )

    def test_sub_fmin_frequency_cap_rejected(self, spec):
        with pytest.raises(CapError):
            GPUDevice(spec).run_batch(
                [vai_kernel(4.0)], frequency_caps_hz=units.mhz(400)
            )

    def test_wrong_length_cap_column_rejected(self, spec):
        with pytest.raises(CapError):
            GPUDevice(spec).run_batch(
                [vai_kernel(4.0), vai_kernel(8.0)],
                power_caps_w=[300.0, 300.0, 300.0],
            )
