"""Unit tests for device specifications."""

import pytest

from repro import constants, units
from repro.errors import SpecError
from repro.gpu.specs import MI250XSpec, NodeSpec, default_spec


class TestMI250XSpec:
    def test_default_matches_table1(self, spec):
        assert spec.f_max_hz == units.mhz(1700)
        assert spec.f_min_hz == units.mhz(500)
        assert spec.tdp_w == 560.0
        assert spec.hbm_bytes == 2 * units.gib(64)

    def test_idle_in_paper_range(self, spec):
        assert 88.0 <= spec.idle_w <= 90.0

    def test_ridge_intensity_is_four(self, spec):
        # The paper's VAI sweep peaks at arithmetic intensity 4.
        assert spec.ridge_intensity == pytest.approx(4.0)

    def test_max_steady_power_near_observed_peak(self, spec):
        # Paper: maximum observed steady power is 540 W, below the 560 W TDP.
        assert 530.0 <= spec.max_steady_power_w <= spec.tdp_w

    def test_clamp_frequency(self, spec):
        assert spec.clamp_frequency(units.mhz(2000)) == spec.f_max_hz
        assert spec.clamp_frequency(units.mhz(100)) == spec.f_min_hz
        assert spec.clamp_frequency(units.mhz(900)) == units.mhz(900)

    def test_with_overrides_returns_new_spec(self, spec):
        other = spec.with_overrides(idle_w=95.0)
        assert other.idle_w == 95.0
        assert spec.idle_w != 95.0

    def test_rejects_inverted_frequency_range(self):
        with pytest.raises(SpecError):
            MI250XSpec(f_min_hz=units.mhz(1800))

    def test_rejects_idle_above_tdp(self):
        with pytest.raises(SpecError):
            MI250XSpec(idle_w=600.0)

    def test_rejects_achievable_above_peak(self):
        with pytest.raises(SpecError):
            MI250XSpec(achievable_flops=units.tflops(100))
        with pytest.raises(SpecError):
            MI250XSpec(achievable_hbm_bw=units.tbps(10))

    def test_rejects_non_monotone_cross_term(self):
        with pytest.raises(SpecError):
            MI250XSpec(cross_power_w=400.0)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(SpecError):
            MI250XSpec(l2_power_w=-1.0)


class TestNodeSpec:
    def test_default_gpu_count(self):
        node = NodeSpec()
        assert node.gpus_per_node == constants.GPUS_PER_NODE == 4

    def test_cpu_power_bounds(self):
        node = NodeSpec()
        assert node.cpu_power_w(0.0) == node.cpu_idle_w
        assert node.cpu_power_w(1.0) == node.cpu_max_w
        # Loads outside [0, 1] are clamped, not an error.
        assert node.cpu_power_w(2.0) == node.cpu_max_w
        assert node.cpu_power_w(-1.0) == node.cpu_idle_w

    def test_cpu_power_monotone(self):
        node = NodeSpec()
        loads = [0.0, 0.25, 0.5, 0.75, 1.0]
        powers = [node.cpu_power_w(x) for x in loads]
        assert powers == sorted(powers)

    def test_rejects_zero_gpus(self):
        with pytest.raises(SpecError):
            NodeSpec(gpus_per_node=0)

    def test_rejects_inverted_cpu_range(self):
        with pytest.raises(SpecError):
            NodeSpec(cpu_idle_w=300.0, cpu_max_w=200.0)


def test_default_spec_is_fresh_instance():
    assert default_spec() == default_spec()
    assert default_spec() is not None
