"""Unit tests for the power-cap feedback controller."""

import pytest

from repro import units
from repro.errors import CapError
from repro.gpu.powercap import enforce_power_cap
from tests.conftest import make_membench_kernel, make_vai_kernel


class TestEnforcePowerCap:
    def test_cap_above_draw_is_noop(self, spec):
        # Paper: "a power limit only affects codes surpassing the limit".
        k = make_vai_kernel(1 / 16)  # draws ~380 W actual, less metered
        sol = enforce_power_cap(spec, k, 550.0)
        assert sol.f_core_hz == spec.f_max_hz
        assert not sol.breached

    def test_cap_throttles_compute_kernel(self, spec):
        k = make_vai_kernel(1024.0)  # ~420 W, almost all metered
        sol = enforce_power_cap(spec, k, 300.0)
        assert sol.f_core_hz < spec.f_max_hz
        assert sol.power_w <= 300.0 + 1.0
        assert not sol.breached

    def test_tight_cap_meets_metered_target(self, spec):
        k = make_vai_kernel(4.0)
        sol = enforce_power_cap(spec, k, 350.0)
        assert sol.metered_w <= 350.0 + 0.5

    def test_hbm_stream_unaffected_by_300w_cap(self, spec):
        # Paper Table III(b): a 300 W cap leaves the ~374 W memory stream
        # untouched because the controller cannot meter most of HBM power.
        k = make_membench_kernel(units.gib(1))
        base = enforce_power_cap(spec, k, 560.0)
        sol = enforce_power_cap(spec, k, 300.0)
        assert sol.profile.time_s == pytest.approx(base.profile.time_s, rel=0.02)
        assert sol.power_w == pytest.approx(base.power_w, rel=0.02)
        assert sol.power_w > 300.0  # actual power exceeds the cap

    def test_hbm_stream_breaches_200w_cap(self, spec):
        # Paper Fig 6(d): at 200 W the core parks at f_min, runtime grows
        # ~26 %, and the module still draws far above the cap.
        k = make_membench_kernel(units.gib(1))
        sol = enforce_power_cap(spec, k, 200.0)
        assert sol.f_core_hz == spec.f_min_hz
        assert sol.breached
        assert sol.power_w > 200.0

    def test_throttle_monotone_in_cap(self, spec):
        k = make_vai_kernel(4.0)
        freqs = [
            enforce_power_cap(spec, k, cap).f_core_hz
            for cap in (560.0, 450.0, 350.0, 250.0)
        ]
        assert all(a >= b for a, b in zip(freqs, freqs[1:]))

    def test_rejects_nonpositive_cap(self, spec):
        k = make_vai_kernel(1.0)
        with pytest.raises(CapError):
            enforce_power_cap(spec, k, 0.0)

    def test_rejects_cap_below_idle(self, spec):
        k = make_vai_kernel(1.0)
        with pytest.raises(CapError):
            enforce_power_cap(spec, k, spec.idle_w / 2)
