"""Property-based tests (hypothesis) for the GPU simulator invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.gpu import GPUDevice, KernelSpec
from repro.gpu.perf import execute
from repro.gpu.power import metered_power, steady_power
from repro.gpu.specs import default_spec

SPEC = default_spec()

intensities = st.floats(min_value=1e-3, max_value=4096.0)
frequencies = st.floats(min_value=SPEC.f_min_hz, max_value=SPEC.f_max_hz)
volumes = st.floats(min_value=1e6, max_value=1e13)
issue_factors = st.floats(min_value=0.5, max_value=8.0)
occupancies = st.floats(min_value=0.01, max_value=1.0)


def kernel_of(intensity, volume, issue=1.5, occupancy=1.0):
    return KernelSpec(
        "hk",
        flops=intensity * volume,
        hbm_bytes=volume,
        issue_bw_factor=issue,
        occupancy=occupancy,
    )


@given(intensities, frequencies, volumes, issue_factors)
@settings(max_examples=80, deadline=None)
def test_power_between_idle_and_tdp(intensity, f_hz, volume, issue):
    profile = execute(SPEC, kernel_of(intensity, volume, issue), f_hz)
    p = steady_power(SPEC, profile, f_core_hz=f_hz, uncore_capped=False)
    assert SPEC.idle_w <= p <= SPEC.tdp_w + 1e-9


@given(intensities, frequencies, volumes)
@settings(max_examples=60, deadline=None)
def test_capped_power_never_above_uncapped(intensity, f_hz, volume):
    profile = execute(SPEC, kernel_of(intensity, volume), f_hz)
    capped = steady_power(SPEC, profile, f_core_hz=f_hz, uncore_capped=True)
    uncapped = steady_power(SPEC, profile, f_core_hz=f_hz, uncore_capped=False)
    assert capped <= uncapped + 1e-9


@given(intensities, volumes, issue_factors)
@settings(max_examples=60, deadline=None)
def test_time_monotone_nonincreasing_in_frequency(intensity, volume, issue):
    k = kernel_of(intensity, volume, issue)
    f_grid = [SPEC.f_min_hz, units.mhz(900), units.mhz(1300), SPEC.f_max_hz]
    times = [execute(SPEC, k, f).time_s for f in f_grid]
    assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))


@given(intensities, volumes)
@settings(max_examples=60, deadline=None)
def test_roofline_never_exceeded(intensity, volume):
    profile = execute(SPEC, kernel_of(intensity, volume), SPEC.f_max_hz)
    assert profile.achieved_flops <= SPEC.achievable_flops * (1 + 1e-9)
    assert profile.achieved_bw <= SPEC.l2_bw_max * (1 + 1e-9)


@given(intensities, volumes, occupancies)
@settings(max_examples=60, deadline=None)
def test_occupancy_never_speeds_up(intensity, volume, occupancy):
    full = execute(SPEC, kernel_of(intensity, volume), SPEC.f_max_hz)
    derated = execute(
        SPEC, kernel_of(intensity, volume, occupancy=occupancy), SPEC.f_max_hz
    )
    assert derated.time_s >= full.time_s - 1e-12


@given(intensities, volumes, st.floats(min_value=100.0, max_value=560.0))
@settings(max_examples=60, deadline=None)
def test_device_energy_consistent(intensity, volume, cap_w):
    dev = GPUDevice(power_cap_w=cap_w)
    r = dev.run(kernel_of(intensity, volume))
    assert math.isclose(r.energy_j, r.power_w * r.time_s, rel_tol=1e-12)
    assert r.time_s > 0
    assert SPEC.f_min_hz <= r.f_core_hz <= SPEC.f_max_hz


@given(intensities, volumes)
@settings(max_examples=60, deadline=None)
def test_metered_never_above_actual(intensity, volume):
    profile = execute(SPEC, kernel_of(intensity, volume), SPEC.f_max_hz)
    actual = steady_power(SPEC, profile, uncore_capped=False)
    metered = metered_power(SPEC, profile, SPEC.f_max_hz)
    assert metered <= actual + 1e-9


@given(st.floats(min_value=0.0, max_value=4096.0), volumes)
@settings(max_examples=60, deadline=None)
def test_scaled_kernel_scales_time_not_power(intensity, volume):
    dev = GPUDevice()
    base_kernel = (
        KernelSpec("s", flops=0.0, hbm_bytes=volume)
        if intensity == 0
        else kernel_of(intensity, volume)
    )
    base = dev.run(base_kernel)
    big = dev.run(base_kernel.scaled(3.0))
    assert math.isclose(big.time_s, 3 * base.time_s, rel_tol=1e-9)
    assert math.isclose(big.power_w, base.power_w, rel_tol=1e-9)
