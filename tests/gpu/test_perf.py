"""Unit tests for the roofline execution model."""

import pytest

from repro import units
from repro.gpu import KernelSpec
from repro.gpu.perf import compute_roof, execute
from tests.conftest import make_vai_kernel


class TestComputeRoof:
    def test_full_roof_at_fmax(self, spec):
        k = KernelSpec("k", flops=1.0, hbm_bytes=0.0)
        assert compute_roof(spec, k, spec.f_max_hz) == pytest.approx(
            spec.achievable_flops
        )

    def test_scales_linearly_with_clock(self, spec):
        k = KernelSpec("k", flops=1.0, hbm_bytes=0.0)
        assert compute_roof(spec, k, spec.f_max_hz / 2) == pytest.approx(
            spec.achievable_flops / 2
        )

    def test_derated_by_kernel_character(self, spec):
        k = KernelSpec(
            "k", flops=1.0, hbm_bytes=0.0,
            compute_efficiency=0.5, occupancy=0.5, divergence=0.5,
        )
        assert compute_roof(spec, k, spec.f_max_hz) == pytest.approx(
            spec.achievable_flops * 0.5 * 0.5 * 0.5
        )


class TestExecute:
    def test_memory_bound_below_ridge(self, spec):
        p = execute(spec, make_vai_kernel(1.0), spec.f_max_hz)
        assert p.bound == "memory"
        assert p.achieved_bw == pytest.approx(spec.achievable_hbm_bw, rel=0.01)

    def test_compute_bound_above_ridge(self, spec):
        p = execute(spec, make_vai_kernel(64.0), spec.f_max_hz)
        assert p.bound == "compute"
        assert p.achieved_flops == pytest.approx(spec.achievable_flops, rel=0.01)

    def test_ridge_saturates_both(self, spec):
        p = execute(spec, make_vai_kernel(spec.ridge_intensity), spec.f_max_hz)
        assert p.core_activity == pytest.approx(1.0, rel=0.02)
        assert p.hbm_activity == pytest.approx(1.0, rel=0.02)

    def test_time_monotone_nonincreasing_in_frequency(self, spec):
        k = make_vai_kernel(8.0)
        times = [
            execute(spec, k, units.mhz(m)).time_s
            for m in (700, 900, 1100, 1300, 1500, 1700)
        ]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_compute_bound_time_inverse_in_frequency(self, spec):
        k = make_vai_kernel(1024.0)
        t_full = execute(spec, k, spec.f_max_hz).time_s
        t_half = execute(spec, k, spec.f_max_hz / 2).time_s
        assert t_half == pytest.approx(2 * t_full, rel=0.01)

    def test_deep_issue_memory_kernel_flat_under_dvfs(self, spec, membench_kernel):
        # The paper's central DVFS observation: HBM-bound work does not
        # slow down between 1700 and 700 MHz.
        k = membench_kernel(units.gib(1))
        t_full = execute(spec, k, units.mhz(1700)).time_s
        t_low = execute(spec, k, units.mhz(700)).time_s
        assert t_low == pytest.approx(t_full, rel=0.015)

    def test_vai_memory_kernel_slows_under_dvfs(self, spec):
        # ... while the VAI kernel (shallow issue) slows even when
        # memory-bound, as the paper notes for contiguous SIMD access.
        k = make_vai_kernel(0.25)
        t_full = execute(spec, k, units.mhz(1700)).time_s
        t_low = execute(spec, k, units.mhz(700)).time_s
        assert t_low > 1.5 * t_full

    def test_clamps_out_of_range_frequency(self, spec):
        k = make_vai_kernel(1.0)
        p = execute(spec, k, units.mhz(5000))
        assert p.f_hz == spec.f_max_hz

    def test_launch_overhead_dominates_tiny_kernels(self, spec):
        k = KernelSpec(
            "tiny", flops=1e3, hbm_bytes=1e3, launch_overhead_s=1e-3
        )
        p = execute(spec, k, spec.f_max_hz)
        assert p.bound == "overhead"
        assert p.time_s >= 1e-3

    def test_occupancy_slows_execution(self, spec):
        full = execute(spec, make_vai_kernel(1.0), spec.f_max_hz)
        sparse = execute(
            spec, make_vai_kernel(1.0).with_overrides(occupancy=0.25),
            spec.f_max_hz,
        )
        assert sparse.time_s > 3 * full.time_s

    def test_activities_in_unit_interval(self, spec):
        for intensity in (0.0, 0.5, 4.0, 128.0):
            p = execute(spec, make_vai_kernel(intensity), units.mhz(900))
            assert 0.0 <= p.core_activity <= 1.0
            assert 0.0 <= p.hbm_activity <= 1.0
            assert 0.0 <= p.l2_activity <= 1.0
