"""Unit tests for kernel descriptors."""

import pytest

from repro.errors import KernelError
from repro.gpu import KernelSpec


class TestValidation:
    def test_rejects_negative_flops(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=-1.0, hbm_bytes=1.0)

    def test_rejects_no_work(self):
        with pytest.raises(KernelError):
            KernelSpec("empty", flops=0.0, hbm_bytes=0.0)

    def test_rejects_bad_issue_factor(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, issue_bw_factor=0.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, compute_efficiency=1.5)
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, compute_efficiency=0.0)

    def test_rejects_bad_occupancy(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, occupancy=0.0)

    def test_rejects_full_divergence(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, divergence=1.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(KernelError):
            KernelSpec("bad", flops=1.0, hbm_bytes=1.0, launch_overhead_s=-1.0)


class TestDerived:
    def test_arithmetic_intensity(self):
        k = KernelSpec("k", flops=400.0, hbm_bytes=100.0)
        assert k.arithmetic_intensity == pytest.approx(4.0)

    def test_arithmetic_intensity_counts_l2_traffic(self):
        k = KernelSpec("k", flops=400.0, hbm_bytes=50.0, l2_bytes=50.0)
        assert k.arithmetic_intensity == pytest.approx(4.0)
        assert k.total_bytes == pytest.approx(100.0)

    def test_compute_only_kernel_has_infinite_intensity(self):
        k = KernelSpec("k", flops=100.0, hbm_bytes=0.0)
        assert k.arithmetic_intensity == float("inf")

    def test_scaled_preserves_intensity(self):
        k = KernelSpec("k", flops=400.0, hbm_bytes=100.0, l2_bytes=10.0)
        s = k.scaled(7.0)
        assert s.flops == pytest.approx(2800.0)
        assert s.hbm_bytes == pytest.approx(700.0)
        assert s.l2_bytes == pytest.approx(70.0)
        assert s.arithmetic_intensity == pytest.approx(k.arithmetic_intensity)

    def test_scaled_rejects_nonpositive(self):
        k = KernelSpec("k", flops=1.0, hbm_bytes=1.0)
        with pytest.raises(KernelError):
            k.scaled(0.0)

    def test_with_overrides(self):
        k = KernelSpec("k", flops=1.0, hbm_bytes=1.0)
        other = k.with_overrides(occupancy=0.5)
        assert other.occupancy == 0.5
        assert k.occupancy == 1.0
