"""Unit tests for the L2/HBM hierarchy model."""

import pytest

from repro import units
from repro.errors import KernelError
from repro.gpu import KernelSpec
from repro.gpu.cache import (
    issue_ceiling,
    l2_bandwidth,
    l2_hit_fraction,
    resolve_traffic,
)


class TestHitFraction:
    def test_fully_resident(self, spec):
        assert l2_hit_fraction(spec, spec.l2_bytes / 2) == 1.0
        assert l2_hit_fraction(spec, spec.l2_bytes) == 1.0

    def test_thrash_band_partial_residency(self, spec):
        assert l2_hit_fraction(spec, 1.5 * spec.l2_bytes) == pytest.approx(0.5)

    def test_cyclic_thrash_collapses_beyond_twice_capacity(self, spec):
        # LRU worst case: cyclic streaming misses everything once the
        # working set clears the thrash band.
        assert l2_hit_fraction(spec, 2 * spec.l2_bytes) == 0.0
        assert l2_hit_fraction(spec, units.gib(8)) == 0.0

    def test_rejects_nonpositive_working_set(self, spec):
        with pytest.raises(KernelError):
            l2_hit_fraction(spec, 0.0)


class TestBandwidths:
    def test_l2_scales_with_clock(self, spec):
        full = l2_bandwidth(spec, spec.f_max_hz)
        half = l2_bandwidth(spec, spec.f_max_hz / 2)
        assert full == pytest.approx(spec.l2_bw_max)
        assert half == pytest.approx(spec.l2_bw_max / 2)

    def test_issue_ceiling_scales_with_clock_and_factor(self, spec):
        k = KernelSpec("k", flops=0.0, hbm_bytes=1.0, issue_bw_factor=2.0)
        at_max = issue_ceiling(spec, k, spec.f_max_hz)
        assert at_max == pytest.approx(2.0 * spec.achievable_hbm_bw)
        at_half = issue_ceiling(spec, k, spec.f_max_hz / 2)
        assert at_half == pytest.approx(at_max / 2)


class TestResolveTraffic:
    def test_explicit_split_respected(self, spec):
        k = KernelSpec("k", flops=0.0, hbm_bytes=75.0, l2_bytes=25.0)
        t = resolve_traffic(spec, k, spec.f_max_hz)
        assert t.hbm_bytes == 75.0
        assert t.l2_bytes == 25.0
        assert t.l2_hit_fraction == pytest.approx(0.25)

    def test_working_set_derives_split(self, spec):
        k = KernelSpec(
            "k",
            flops=0.0,
            hbm_bytes=100.0,
            working_set_bytes=int(1.5 * spec.l2_bytes),
        )
        t = resolve_traffic(spec, k, spec.f_max_hz)
        assert t.l2_hit_fraction == pytest.approx(0.5)
        assert t.l2_bytes == pytest.approx(50.0)
        assert t.hbm_bytes == pytest.approx(50.0)

    def test_l2_resident_is_faster_than_hbm(self, spec):
        small = KernelSpec(
            "small", flops=0.0, hbm_bytes=1e9,
            working_set_bytes=spec.l2_bytes / 2, issue_bw_factor=5.0,
        )
        large = KernelSpec(
            "large", flops=0.0, hbm_bytes=1e9,
            working_set_bytes=units.gib(4), issue_bw_factor=5.0,
        )
        bw_small = resolve_traffic(spec, small, spec.f_max_hz).effective_bw
        bw_large = resolve_traffic(spec, large, spec.f_max_hz).effective_bw
        assert bw_small > bw_large
        assert bw_large == pytest.approx(spec.achievable_hbm_bw, rel=0.05)

    def test_effective_bw_between_levels(self, spec):
        k = KernelSpec(
            "mid", flops=0.0, hbm_bytes=1e9,
            working_set_bytes=int(1.5 * spec.l2_bytes), issue_bw_factor=5.0,
        )
        t = resolve_traffic(spec, k, spec.f_max_hz)
        assert spec.achievable_hbm_bw < t.effective_bw < spec.l2_bw_max

    def test_issue_ceiling_binds_at_low_clock(self, spec):
        k = KernelSpec("k", flops=0.0, hbm_bytes=1e9, issue_bw_factor=1.05)
        low = resolve_traffic(spec, k, spec.f_min_hz)
        assert low.issue_limited
        assert low.effective_bw < spec.achievable_hbm_bw

    def test_deep_issue_kernel_unaffected_by_clock(self, spec):
        k = KernelSpec("k", flops=0.0, hbm_bytes=1e9, issue_bw_factor=4.0)
        low = resolve_traffic(spec, k, units.mhz(900))
        assert not low.issue_limited
        assert low.effective_bw == pytest.approx(spec.achievable_hbm_bw)

    def test_occupancy_scales_bandwidth(self, spec):
        k = KernelSpec("k", flops=0.0, hbm_bytes=1e9, occupancy=0.25)
        t = resolve_traffic(spec, k, spec.f_max_hz)
        assert t.effective_bw == pytest.approx(0.25 * spec.achievable_hbm_bw)
