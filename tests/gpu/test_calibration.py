"""Calibration tests: the simulator vs the paper's measured anchors.

These are the tests that pin the substrate to the publication.  Tolerances
are deliberately loose enough to allow model refactoring but tight enough
that the Table III *shape* (orderings, crossovers, best-cap locations)
cannot drift.
"""

import numpy as np
import pytest

from repro import constants, units
from repro.gpu import GPUDevice
from tests.conftest import make_membench_kernel, make_vai_kernel

AIS = list(constants.VAI_INTENSITIES)

# Paper Table III(a), VAI columns: freq cap -> (avg power %, runtime %).
PAPER_VAI_FREQ = {
    1500: (83.7, 112.8),
    1300: (68.2, 129.8),
    1100: (61.8, 152.2),
    900: (53.3, 182.4),
    700: (46.0, 231.0),
}

# Paper Table III(a), MB columns (HBM-resident region): power %, runtime %.
PAPER_MB_FREQ = {
    1500: (87.2, 99.7),
    1300: (84.5, 99.5),
    1100: (84.9, 98.9),
    900: (79.7, 99.0),
    700: (82.9, 99.1),
}

# Paper Table III(b), VAI columns: power cap -> (avg power %, runtime %).
PAPER_VAI_POWER = {
    500: (99.3, 100.4),
    400: (90.8, 105.2),
    300: (72.7, 128.4),
    200: (49.3, 222.3),
}


def vai_sweep(device):
    return [device.run(make_vai_kernel(i)) for i in AIS]


@pytest.fixture(scope="module")
def baseline():
    dev = GPUDevice()
    return vai_sweep(dev), dev.run(make_membench_kernel(units.gib(1)))


class TestVAIFrequencyColumn:
    @pytest.mark.parametrize("cap_mhz", sorted(PAPER_VAI_FREQ))
    def test_avg_power_pct(self, baseline, cap_mhz):
        base_vai, _ = baseline
        dev = GPUDevice(frequency_cap_hz=units.mhz(cap_mhz))
        capped = vai_sweep(dev)
        pct = 100 * np.mean([r.power_w for r in capped]) / np.mean(
            [r.power_w for r in base_vai]
        )
        assert pct == pytest.approx(PAPER_VAI_FREQ[cap_mhz][0], abs=6.0)

    @pytest.mark.parametrize("cap_mhz", sorted(PAPER_VAI_FREQ))
    def test_runtime_pct(self, baseline, cap_mhz):
        base_vai, _ = baseline
        dev = GPUDevice(frequency_cap_hz=units.mhz(cap_mhz))
        capped = vai_sweep(dev)
        pct = 100 * np.mean(
            [c.time_s / b.time_s for c, b in zip(capped, base_vai)]
        )
        assert pct == pytest.approx(PAPER_VAI_FREQ[cap_mhz][1], abs=10.0)

    def test_energy_dip_at_mid_frequencies(self, baseline):
        # Paper: best energy-to-solution around 1300 MHz; 700 MHz costs
        # *more* energy than uncapped.
        base_vai, _ = baseline

        def energy_pct(cap_mhz):
            dev = GPUDevice(frequency_cap_hz=units.mhz(cap_mhz))
            capped = vai_sweep(dev)
            return 100 * np.mean(
                [c.energy_j / b.energy_j for c, b in zip(capped, base_vai)]
            )

        e1300 = energy_pct(1300)
        e700 = energy_pct(700)
        assert e1300 < 95.0          # a real saving exists mid-range
        assert e700 > e1300 + 5.0    # and evaporates at 700 MHz
        assert e700 > 97.0


class TestMBFrequencyColumn:
    @pytest.mark.parametrize("cap_mhz", sorted(PAPER_MB_FREQ))
    def test_power_pct(self, baseline, cap_mhz):
        _, base_mb = baseline
        dev = GPUDevice(frequency_cap_hz=units.mhz(cap_mhz))
        r = dev.run(make_membench_kernel(units.gib(1)))
        pct = 100 * r.power_w / base_mb.power_w
        assert pct == pytest.approx(PAPER_MB_FREQ[cap_mhz][0], abs=5.0)

    @pytest.mark.parametrize("cap_mhz", sorted(PAPER_MB_FREQ))
    def test_runtime_flat(self, baseline, cap_mhz):
        _, base_mb = baseline
        dev = GPUDevice(frequency_cap_hz=units.mhz(cap_mhz))
        r = dev.run(make_membench_kernel(units.gib(1)))
        pct = 100 * r.time_s / base_mb.time_s
        assert pct == pytest.approx(100.0, abs=4.0)


class TestVAIPowerColumn:
    @pytest.mark.parametrize("cap_w", sorted(PAPER_VAI_POWER))
    def test_avg_power_pct(self, baseline, cap_w):
        base_vai, _ = baseline
        dev = GPUDevice(power_cap_w=float(cap_w))
        capped = vai_sweep(dev)
        pct = 100 * np.mean([r.power_w for r in capped]) / np.mean(
            [r.power_w for r in base_vai]
        )
        assert pct == pytest.approx(PAPER_VAI_POWER[cap_w][0], abs=7.0)

    @pytest.mark.parametrize("cap_w", sorted(PAPER_VAI_POWER))
    def test_runtime_pct(self, baseline, cap_w):
        base_vai, _ = baseline
        dev = GPUDevice(power_cap_w=float(cap_w))
        capped = vai_sweep(dev)
        pct = 100 * np.mean(
            [c.time_s / b.time_s for c, b in zip(capped, base_vai)]
        )
        # The 200 W point is controller-behaviour dominated; allow more.
        tol = 15.0 if cap_w > 200 else 35.0
        assert pct == pytest.approx(PAPER_VAI_POWER[cap_w][1], abs=tol)


class TestMBPowerColumn:
    def test_300w_cap_is_noop(self, baseline):
        # Paper Table III(b): 300 W cap leaves the memory stream untouched.
        _, base_mb = baseline
        dev = GPUDevice(power_cap_w=300.0)
        r = dev.run(make_membench_kernel(units.gib(1)))
        assert r.time_s == pytest.approx(base_mb.time_s, rel=0.02)
        assert r.power_w == pytest.approx(base_mb.power_w, rel=0.02)

    def test_200w_cap_slows_and_breaches(self, baseline):
        # Paper: runtime 125.7 %, power ~85 % (far above the cap).
        _, base_mb = baseline
        dev = GPUDevice(power_cap_w=200.0)
        r = dev.run(make_membench_kernel(units.gib(1)))
        assert 100 * r.time_s / base_mb.time_s == pytest.approx(125.7, abs=8.0)
        assert 100 * r.power_w / base_mb.power_w == pytest.approx(85.0, abs=6.0)
        assert r.cap_breached
