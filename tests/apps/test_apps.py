"""Tests for the proxy-application layer."""

import numpy as np
import pytest

from repro import units
from repro.apps import (
    Application,
    HostPhase,
    KernelPhase,
    checkpoint_proxy,
    gemm_proxy,
    stencil_proxy,
)
from repro.errors import KernelError
from repro.gpu import GPUDevice, KernelSpec


def tiny_kernel():
    return KernelSpec("k", flops=1e12, hbm_bytes=1e12)


class TestPhases:
    def test_validation(self):
        with pytest.raises(KernelError):
            KernelPhase("k", tiny_kernel(), repeats=0)
        with pytest.raises(KernelError):
            HostPhase("h", 0.0)
        with pytest.raises(KernelError):
            Application("empty", [])


class TestApplication:
    @pytest.fixture
    def app(self):
        return Application(
            "demo",
            [
                KernelPhase("work", tiny_kernel(), repeats=3),
                HostPhase("io", 5.0),
            ],
        )

    def test_accounting(self, app, device):
        run = app.run(device)
        assert run.total_time_s == pytest.approx(
            run.gpu_time_s + run.host_time_s
        )
        assert run.host_time_s == pytest.approx(5.0)
        assert run.energy_j == pytest.approx(
            sum(p.energy_j for p in run.phases)
        )
        assert run.avg_power_w * run.total_time_s == pytest.approx(
            run.energy_j
        )

    def test_repeats_scale_time(self, device):
        once = Application("a", [KernelPhase("k", tiny_kernel())]).run(device)
        thrice = Application(
            "b", [KernelPhase("k", tiny_kernel(), repeats=3)]
        ).run(device)
        assert thrice.gpu_time_s == pytest.approx(3 * once.gpu_time_s)

    def test_host_phase_at_idle_power(self, app, device):
        run = app.run(device)
        host = [p for p in run.phases if p.kind == "host"][0]
        assert host.power_w == device.spec.idle_w

    def test_power_trace_matches_phases(self, app, device):
        run = app.run(device)
        trace = run.power_trace(interval_s=1.0)
        assert len(trace) == int(np.ceil(run.total_time_s))
        # The tail of the trace is the host phase at idle power.
        assert trace[-1] == pytest.approx(device.spec.idle_w)
        assert trace.max() == pytest.approx(run.max_power_w, rel=0.01)

    def test_gpu_fraction(self, app, device):
        frac = app.gpu_fraction(device)
        run = app.run(device)
        assert frac == pytest.approx(run.gpu_time_s / run.total_time_s)


class TestProxies:
    def test_families_by_power(self, device):
        # Each proxy lands in its designed Table IV region (by avg power
        # while the GPU is busy / overall character).
        gemm = gemm_proxy().run(device)
        stencil = stencil_proxy().run(device)
        ckpt = checkpoint_proxy().run(device)
        assert gemm.avg_power_w > 400            # compute intensive
        assert 200 < stencil.avg_power_w <= 420  # memory intensive
        assert ckpt.avg_power_w < 200            # latency/IO bound

    def test_cap_sensitivity_ordering(self, spec):
        # Paper shape: frequency caps cost the compute proxy runtime,
        # are free for the stencil, and are mild for the IO-bound app.
        capped = GPUDevice(spec, frequency_cap_hz=units.mhz(900))
        base = GPUDevice(spec)

        def slowdown(factory):
            b = factory().run(base)
            c = factory().run(capped)
            return c.total_time_s / b.total_time_s

        assert slowdown(gemm_proxy) > 1.5
        assert slowdown(stencil_proxy) < 1.02
        assert slowdown(checkpoint_proxy) < 1.05

    def test_stencil_saves_energy_for_free(self, spec):
        base = stencil_proxy().run(GPUDevice(spec))
        capped = stencil_proxy().run(
            GPUDevice(spec, frequency_cap_hz=units.mhz(900))
        )
        saving = 1 - capped.energy_j / base.energy_j
        assert saving > 0.10
        assert capped.total_time_s == pytest.approx(
            base.total_time_s, rel=0.02
        )

    def test_scale_parameter(self, device):
        small = stencil_proxy(scale=0.5).run(device)
        large = stencil_proxy(scale=1.0).run(device)
        assert large.total_time_s == pytest.approx(
            2 * small.total_time_s, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(KernelError):
            gemm_proxy(steps=0)
        with pytest.raises(KernelError):
            stencil_proxy(scale=-1.0)
        with pytest.raises(KernelError):
            checkpoint_proxy(steps=0)
