"""Property-based tests for applications and the thermal model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.apps import Application, HostPhase, KernelPhase
from repro.gpu import GPUDevice, KernelSpec
from repro.gpu.thermal import ThermalModel

DEVICE = GPUDevice()
CAPPED = GPUDevice(frequency_cap_hz=units.mhz(900))
THERMAL = ThermalModel()

flops = st.floats(min_value=1e9, max_value=1e14)
volumes = st.floats(min_value=1e9, max_value=1e13)
host_s = st.floats(min_value=0.1, max_value=100.0)
powers = st.floats(min_value=0.0, max_value=700.0)
temps = st.floats(min_value=32.0, max_value=104.0)


@st.composite
def applications(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    phases = []
    for i in range(n):
        if draw(st.booleans()):
            phases.append(
                KernelPhase(
                    f"k{i}",
                    KernelSpec(
                        f"k{i}",
                        flops=draw(flops),
                        hbm_bytes=draw(volumes),
                        issue_bw_factor=draw(
                            st.floats(min_value=1.0, max_value=3.0)
                        ),
                    ),
                    repeats=draw(st.integers(min_value=1, max_value=3)),
                )
            )
        else:
            phases.append(HostPhase(f"h{i}", draw(host_s)))
    if not any(isinstance(p, KernelPhase) for p in phases):
        phases.append(
            KernelPhase("pad", KernelSpec("pad", flops=1e10, hbm_bytes=1e10))
        )
    return Application("hyp-app", phases)


@given(applications())
@settings(max_examples=40, deadline=None)
def test_app_accounting_closes(app):
    run = app.run(DEVICE)
    assert run.total_time_s > 0
    assert abs(run.total_time_s - (run.gpu_time_s + run.host_time_s)) < 1e-9
    assert abs(run.energy_j - sum(p.energy_j for p in run.phases)) < 1e-6
    assert DEVICE.spec.idle_w <= run.max_power_w <= DEVICE.spec.tdp_w


@given(applications())
@settings(max_examples=40, deadline=None)
def test_caps_never_speed_up_apps(app):
    base = app.run(DEVICE)
    capped = app.run(CAPPED)
    assert capped.total_time_s >= base.total_time_s - 1e-9
    assert capped.host_time_s == base.host_time_s


@given(applications())
@settings(max_examples=30, deadline=None)
def test_power_trace_bounded_by_phase_powers(app):
    run = app.run(DEVICE)
    trace = run.power_trace(interval_s=1.0)
    assert trace.max() <= run.max_power_w + 1e-6
    assert trace.min() >= min(p.power_w for p in run.phases) - 1e-6


@given(temps, powers, st.floats(min_value=0.0, max_value=600.0))
@settings(max_examples=80, deadline=None)
def test_thermal_stays_between_start_and_steady(t0, power, dt):
    t_inf = THERMAL.steady_temp_c(power)
    t1 = THERMAL.temp_after(t0, power, dt)
    lo, hi = sorted([t0, t_inf])
    assert lo - 1e-9 <= t1 <= hi + 1e-9


@given(temps, st.floats(min_value=560.0, max_value=700.0))
@settings(max_examples=60, deadline=None)
def test_boost_window_nonnegative_and_monotone_in_power(t0, p_boost):
    w1 = THERMAL.boost_window_s(t0, p_boost)
    w2 = THERMAL.boost_window_s(t0, p_boost + 50.0)
    assert w1 >= 0.0
    assert w2 <= w1 + 1e-9  # hotter boost trips sooner


@given(powers, powers)
@settings(max_examples=60, deadline=None)
def test_duty_cycle_is_a_fraction(p_boost, p_base):
    duty = THERMAL.duty_cycle(max(p_boost, p_base), min(p_boost, p_base))
    assert 0.0 <= duty <= 1.0


def test_trace_total_samples():
    app = Application(
        "t",
        [
            KernelPhase("k", KernelSpec("k", flops=1e12, hbm_bytes=3e12)),
            HostPhase("h", 10.0),
        ],
    )
    run = app.run(DEVICE)
    trace = run.power_trace(interval_s=0.5)
    assert len(trace) == int(np.ceil(run.total_time_s / 0.5))
