"""Metrics registry: counters, gauges, histograms, exporters, merge."""

from __future__ import annotations

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    parse_histograms,
    parse_prometheus_series,
    parse_prometheus_text,
)


class TestSeries:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc()
        reg.counter("events_total").inc(2.5)
        assert reg.counter("events_total").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("events_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("lag_seconds")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("rows_total", experiment="a").inc(1)
        reg.counter("rows_total", experiment="b").inc(10)
        values = reg.counter_values()
        assert values['rows_total{experiment="a"}'] == 1
        assert values['rows_total{experiment="b"}'] == 10

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad name")
        with pytest.raises(ObservabilityError):
            reg.counter("ok_total", **{"0bad": "x"})

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("x_total")


class TestHistogram:
    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(buckets=())

    def test_observe_fills_cumulative_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)

    def test_default_buckets_cover_timings(self):
        h = Histogram()
        assert h.buckets == DEFAULT_BUCKETS
        h.observe(1e9)           # beyond every bound -> +Inf bucket
        assert h.bucket_counts[-1] == 1


class TestExport:
    def _filled(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events_total", "things that happened").inc(4)
        reg.gauge("lag_seconds").set(2.5)
        reg.histogram("op_seconds", buckets=(0.1, 1.0)).observe(0.05)
        reg.histogram("op_seconds", buckets=(0.1, 1.0)).observe(5.0)
        return reg

    def test_prometheus_text_format(self):
        text = self._filled().to_prometheus()
        assert "# HELP events_total things that happened" in text
        assert "# TYPE events_total counter" in text
        assert "events_total 4" in text
        assert "lag_seconds 2.5" in text
        assert 'op_seconds_bucket{le="0.1"} 1' in text
        # Cumulative buckets: +Inf always equals the count.
        assert 'op_seconds_bucket{le="+Inf"} 2' in text
        assert "op_seconds_count 2" in text

    def test_json_roundtrip_via_merge(self):
        reg = self._filled()
        other = MetricsRegistry()
        other.merge_state(reg.state())
        assert other.to_dict() == reg.to_dict()

    def test_merge_is_additive_for_counters_and_histograms(self):
        a, b = self._filled(), self._filled()
        a.merge_state(b.state())
        assert a.counter("events_total").value == 8
        assert a.histogram("op_seconds", buckets=(0.1, 1.0)).count == 4
        # Gauges are last-write-wins, not summed.
        assert a.gauge("lag_seconds").value == 2.5

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("op_seconds", buckets=(0.1, 1.0)).observe(0.5)
        state = a.state()
        b = MetricsRegistry()
        b.histogram("op_seconds", buckets=(0.5, 2.0))
        with pytest.raises(ObservabilityError):
            b.merge_state(state)


class TestSortedLabelExport:
    """Exposition text is byte-stable across label insertion orders."""

    def test_label_keys_emit_sorted(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", zeta="1", alpha="2").inc()
        assert 'reqs_total{alpha="2",zeta="1"} 1' in reg.to_prometheus()

    def test_histogram_bucket_labels_emit_sorted(self):
        reg = MetricsRegistry()
        reg.histogram(
            "lat_seconds", buckets=(0.1,), route="/x", method="GET"
        ).observe(0.05)
        text = reg.to_prometheus()
        # ``le`` sorts into place with the series labels, not appended.
        assert (
            'lat_seconds_bucket{le="0.1",method="GET",route="/x"} 1'
            in text
        )
        assert (
            'lat_seconds_bucket{le="+Inf",method="GET",route="/x"} 1'
            in text
        )

    def test_byte_stable_across_insertion_orders(self):
        def build(order):
            reg = MetricsRegistry()
            for kwargs in order:
                reg.counter("reqs_total", **kwargs).inc()
                reg.histogram(
                    "lat_seconds", buckets=(0.1, 1.0), **kwargs
                ).observe(0.5)
            return reg.to_prometheus()

        a = build([{"b": "x", "a": "y"}, {"a": "q", "b": "p"}])
        b = build([{"a": "q", "b": "p"}, {"b": "x", "a": "y"}])
        assert a == b


class TestPrometheusParsing:
    TEXT = (
        "# HELP serve_request_seconds latency\n"
        "# TYPE serve_request_seconds histogram\n"
        'serve_request_seconds_bucket{endpoint="/v1/jobs",le="0.001"} 5\n'
        'serve_request_seconds_bucket{endpoint="/v1/jobs",le="0.01"} 9\n'
        'serve_request_seconds_bucket{endpoint="/v1/jobs",le="+Inf"} 10\n'
        'serve_request_seconds_sum{endpoint="/v1/jobs"} 0.042\n'
        'serve_request_seconds_count{endpoint="/v1/jobs"} 10\n'
        "plain_gauge 3.5\n"
        'labeled_total{job="a b",esc="q\\"x\\\\y"} 7\n'
    )

    def test_flat_parse_keeps_label_strings_verbatim(self):
        flat = parse_prometheus_text(self.TEXT)
        assert flat["plain_gauge"] == 3.5
        labeled = [k for k in flat if k.startswith("labeled_total{")]
        assert len(labeled) == 1 and flat[labeled[0]] == 7.0

    def test_series_parse_carries_labels_and_escapes(self):
        series = parse_prometheus_series(self.TEXT)
        assert series["plain_gauge"] == [({}, 3.5)]
        ((labels, value),) = series["labeled_total"]
        assert value == 7.0
        assert labels == {"job": "a b", "esc": 'q"x\\y'}
        buckets = series["serve_request_seconds_bucket"]
        assert len(buckets) == 3
        assert buckets[0][0] == {"endpoint": "/v1/jobs", "le": "0.001"}

    def test_histograms_reassemble_per_label_set(self):
        hists = parse_histograms(self.TEXT)
        ((key, entry),) = hists["serve_request_seconds"].items()
        assert key == (("endpoint", "/v1/jobs"),)
        assert entry["labels"] == {"endpoint": "/v1/jobs"}
        assert entry["sum"] == pytest.approx(0.042)
        assert entry["count"] == 10.0
        assert entry["buckets"] == [
            (0.001, 5.0), (0.01, 9.0), (math.inf, 10.0)
        ]
        # Families with no _bucket lines are not histograms.
        assert "plain_gauge" not in hists
        assert "labeled_total" not in hists

    def test_registry_roundtrip_through_the_parser(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "op_seconds", buckets=(0.1, 1.0), endpoint="/x"
        )
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        hists = parse_histograms(reg.to_prometheus())
        ((_key, entry),) = hists["op_seconds"].items()
        assert entry["count"] == 3.0
        assert entry["buckets"] == [
            (0.1, 1.0), (1.0, 2.0), (math.inf, 3.0)
        ]
        assert entry["sum"] == pytest.approx(5.55)


class TestHistogramQuantile:
    BUCKETS = [(0.001, 5.0), (0.01, 9.0), (math.inf, 10.0)]

    def test_interpolates_within_a_bucket(self):
        # rank 5 sits exactly at the first bound.
        assert histogram_quantile(self.BUCKETS, 0.5) == pytest.approx(
            0.001
        )
        # rank 9 sits at the second bound; rank 7 is halfway into it.
        assert histogram_quantile(self.BUCKETS, 0.9) == pytest.approx(
            0.01
        )
        assert histogram_quantile(self.BUCKETS, 0.7) == pytest.approx(
            0.001 + (0.01 - 0.001) * 2.0 / 4.0
        )

    def test_first_bucket_interpolates_from_zero(self):
        assert histogram_quantile(self.BUCKETS, 0.25) == pytest.approx(
            0.001 * 2.5 / 5.0
        )

    def test_inf_rank_clamps_to_highest_finite_bound(self):
        assert histogram_quantile(self.BUCKETS, 0.99) == pytest.approx(
            0.01
        )
        assert histogram_quantile(self.BUCKETS, 1.0) == pytest.approx(
            0.01
        )

    def test_degenerate_inputs_return_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(math.inf, 0.0)], 0.5) is None

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ObservabilityError):
            histogram_quantile(self.BUCKETS, 1.5)
        with pytest.raises(ObservabilityError):
            histogram_quantile(self.BUCKETS, -0.1)


class TestLabelValueEscaping:
    """Exposition escaping round-trips for every special character.

    Regression tests for the ``\\`` / ``"`` / newline escapes: an
    unescaped backslash or quote used to corrupt the label block and
    split one sample line into garbage for downstream parsers.
    """

    CASES = (
        "plain",
        'quo"te',
        "back\\slash",
        "new\nline",
        "\\",
        '\\"',
        "\\n",          # literal backslash-n, not a newline
        'mix\\"ed\nall\\three',
        "",
    )

    def test_escape_unescape_roundtrip(self):
        from repro.obs.metrics import (
            _escape_label_value,
            _unescape_label_value,
        )

        for value in self.CASES:
            escaped = _escape_label_value(value)
            assert "\n" not in escaped
            assert _unescape_label_value(escaped) == value, value

    def test_exporter_parser_roundtrip_per_value(self):
        for value in self.CASES:
            reg = MetricsRegistry()
            reg.counter("escape_total", "t", job=value).inc(2.0)
            series = parse_prometheus_series(reg.to_prometheus())
            ((labels, count),) = series["escape_total"]
            assert labels == {"job": value}
            assert count == 2.0

    def test_newline_value_keeps_exposition_line_oriented(self):
        reg = MetricsRegistry()
        reg.gauge("g", "t", job="two\nlines").set(1.0)
        sample_lines = [
            line for line in reg.to_prometheus().splitlines()
            if line.startswith("g{")
        ]
        assert len(sample_lines) == 1
        assert r"two\nlines" in sample_lines[0]

    def test_literal_backslash_n_distinct_from_newline(self):
        from repro.obs.metrics import _escape_label_value

        # The escaper must keep 'backslash then n' distinguishable
        # from a real newline after the round trip.
        assert _escape_label_value("\\n") == r"\\n"
        assert _escape_label_value("\n") == r"\n"
        reg = MetricsRegistry()
        reg.counter("c_total", "t", a="\\n", b="\n").inc()
        ((labels, _),) = parse_prometheus_series(
            reg.to_prometheus()
        )["c_total"]
        assert labels == {"a": "\\n", "b": "\n"}
