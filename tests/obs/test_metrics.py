"""Metrics registry: counters, gauges, histograms, exporters, merge."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestSeries:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("events_total").inc()
        reg.counter("events_total").inc(2.5)
        assert reg.counter("events_total").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("events_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("lag_seconds")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == 13.0

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        reg.counter("rows_total", experiment="a").inc(1)
        reg.counter("rows_total", experiment="b").inc(10)
        values = reg.counter_values()
        assert values['rows_total{experiment="a"}'] == 1
        assert values['rows_total{experiment="b"}'] == 10

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad name")
        with pytest.raises(ObservabilityError):
            reg.counter("ok_total", **{"0bad": "x"})

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("x_total")


class TestHistogram:
    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(buckets=())

    def test_observe_fills_cumulative_buckets(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)

    def test_default_buckets_cover_timings(self):
        h = Histogram()
        assert h.buckets == DEFAULT_BUCKETS
        h.observe(1e9)           # beyond every bound -> +Inf bucket
        assert h.bucket_counts[-1] == 1


class TestExport:
    def _filled(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("events_total", "things that happened").inc(4)
        reg.gauge("lag_seconds").set(2.5)
        reg.histogram("op_seconds", buckets=(0.1, 1.0)).observe(0.05)
        reg.histogram("op_seconds", buckets=(0.1, 1.0)).observe(5.0)
        return reg

    def test_prometheus_text_format(self):
        text = self._filled().to_prometheus()
        assert "# HELP events_total things that happened" in text
        assert "# TYPE events_total counter" in text
        assert "events_total 4" in text
        assert "lag_seconds 2.5" in text
        assert 'op_seconds_bucket{le="0.1"} 1' in text
        # Cumulative buckets: +Inf always equals the count.
        assert 'op_seconds_bucket{le="+Inf"} 2' in text
        assert "op_seconds_count 2" in text

    def test_json_roundtrip_via_merge(self):
        reg = self._filled()
        other = MetricsRegistry()
        other.merge_state(reg.state())
        assert other.to_dict() == reg.to_dict()

    def test_merge_is_additive_for_counters_and_histograms(self):
        a, b = self._filled(), self._filled()
        a.merge_state(b.state())
        assert a.counter("events_total").value == 8
        assert a.histogram("op_seconds", buckets=(0.1, 1.0)).count == 4
        # Gauges are last-write-wins, not summed.
        assert a.gauge("lag_seconds").value == 2.5

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("op_seconds", buckets=(0.1, 1.0)).observe(0.5)
        state = a.state()
        b = MetricsRegistry()
        b.histogram("op_seconds", buckets=(0.5, 2.0))
        with pytest.raises(ObservabilityError):
            b.merge_state(state)
