"""Span-linked profiling: sampler, exporters, budgets, CLI, invariance.

The profiling contract mirrors the rest of the observability layer:
attaching any profiler changes no output bit (asserted bitwise against
an unprofiled run), every artifact is a deterministic function of the
recorded samples/spans, and profiles merged across ``chunked_map``
workers account identically for any worker count.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.errors import ObservabilityError
from repro.obs import runtime
from repro.obs.profiling import (
    DEFAULT_BUDGET_PATH,
    ExactProfiler,
    SamplingProfiler,
    check_budget,
    collapse_samples,
    load_budget,
    profile_timings,
    render_attribution,
    to_chrome_trace,
    to_collapsed,
    write_profile_artifacts,
)
from repro.obs.trace import Tracer
from repro.parallel import chunked_map

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSamplingProfiler:
    def test_sample_once_records_callers_stack_root_first(self):
        prof = SamplingProfiler()
        sample = prof.sample_once(t_unix=1.0)
        assert sample is not None
        # Leafmost frame is this test function; the driver's own frame
        # is pruned.  Root side holds the interpreter entry frames.
        assert sample["stack"][-1].endswith(
            "test_sample_once_records_callers_stack_root_first"
        )
        assert "sampler.sample_once" not in sample["stack"]
        assert prof.sample_count == 1 and prof.dropped == 0

    def test_samples_tagged_with_innermost_active_span(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer=tracer)
        assert prof.sample_once(t_unix=1.0)["span"] is None
        with tracer.span("outer"):
            with tracer.span("inner"):
                tagged = prof.sample_once(t_unix=2.0)
        after = prof.sample_once(t_unix=3.0)
        assert tagged["span"] == "inner"
        assert tagged["span_id"] is not None
        assert after["span"] is None

    def test_exception_unwound_span_restores_active_tag(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer=tracer)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                assert prof.sample_once(t_unix=1.0)["span"] == "doomed"
                raise ValueError("boom")
        assert prof.sample_once(t_unix=2.0)["span"] is None
        assert tracer.finished[0]["error"] == "ValueError"

    def test_thread_sampler_profiles_a_busy_loop(self):
        prof = SamplingProfiler(interval_s=0.002).start()
        deadline = time.perf_counter() + 0.2
        x = 0
        while time.perf_counter() < deadline:
            x += 1
        prof.stop()
        assert prof.sample_count >= 1
        assert prof.samples and prof.samples[0]["stack"]
        # Stopping again is a no-op.
        prof.stop()

    def test_max_samples_bounds_memory_but_counts_all(self):
        prof = SamplingProfiler(max_samples=2)
        for i in range(5):
            prof.sample_once(t_unix=float(i))
        assert len(prof.samples) == 2
        assert prof.sample_count == 5
        assert prof.dropped == 3

    def test_deep_recursion_truncates_rootward(self):
        prof = SamplingProfiler(max_depth=10)
        captured = {}

        def recurse(n):
            if n == 0:
                captured["sample"] = prof.sample_once(t_unix=1.0)
                return
            recurse(n - 1)

        recurse(50)
        stack = captured["sample"]["stack"]
        assert stack[0] == "<truncated>"
        assert len(stack) == 11  # max_depth leafmost frames + marker
        assert stack[-1].endswith("recurse")

    def test_absorb_state_folds_counts_and_respects_bound(self):
        parent = SamplingProfiler(max_samples=3)
        parent.sample_once(t_unix=0.0)
        parent.sample_once(t_unix=1.0)
        worker = SamplingProfiler()
        for i in range(4):
            worker.sample_once(t_unix=float(i))
        parent.absorb_state(worker.state_dict())
        assert len(parent.samples) == 3
        assert parent.sample_count == 6
        assert parent.dropped == 3

    def test_export_config_builds_equivalent_worker_profiler(self):
        prof = SamplingProfiler(
            interval_s=0.25, memory=True, max_samples=7, max_depth=9
        )
        config = prof.export_config()
        twin = SamplingProfiler(**config)
        assert twin.interval_s == 0.25
        assert twin.max_samples == 7 and twin.max_depth == 9
        # Memory hooks stay parent-only: tracemalloc in every worker
        # would be pure overhead, so the config never carries it.
        assert twin.memory is False


class TestMemoryHooks:
    def test_spans_gain_memory_attrs_and_sites_are_captured(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer=tracer, memory=True,
                                interval_s=60.0).start()
        with tracer.span("alloc"):
            blob = bytearray(512 * 1024)
        prof.stop()
        del blob
        [rec] = tracer.finished
        assert rec["attrs"]["mem_net_kb"] >= 400.0
        assert rec["attrs"]["mem_peak_kb"] >= rec["attrs"]["mem_net_kb"]
        assert prof.memory_sites
        assert {"site", "kb", "count"} <= set(prof.memory_sites[0])


class TestExactProfiler:
    def test_function_table_counts_calls(self):
        exact = ExactProfiler().start()
        sum(i * i for i in range(1000))
        exact.stop()
        rows = exact.function_table(top=50)
        assert rows
        assert all(
            {"function", "ncalls", "self_s", "cum_s"} <= set(r)
            for r in rows
        )


class TestCollapsedExport:
    def test_folding_is_deterministic_and_span_rooted(self):
        samples = [
            {"stack": ["a", "b"], "span": "s1"},
            {"stack": ["a", "b"], "span": "s1"},
            {"stack": ["a", "c"], "span": None},
        ]
        folded = collapse_samples(samples)
        assert folded == {"span:s1;a;b": 2, "a;c": 1}
        text = to_collapsed(samples)
        assert text == "a;c 1\nspan:s1;a;b 2\n"
        assert to_collapsed([]) == ""

    def test_empty_stacks_are_skipped(self):
        assert collapse_samples([{"stack": [], "span": "x"}]) == {}


class TestChromeTrace:
    def test_spans_become_relative_complete_events(self):
        spans = [
            {"name": "parent", "span_id": "p", "parent_id": None,
             "pid": 7, "t0_unix": 100.0, "duration_s": 0.5,
             "attrs": {"rows": 3}, "error": None},
            {"name": "child", "span_id": "c", "parent_id": "p",
             "pid": 7, "t0_unix": 100.1, "duration_s": 0.2,
             "attrs": {}, "error": "ValueError"},
        ]
        samples = [{"t_unix": 100.2, "pid": 7,
                    "stack": ["a", "b"], "span": "child", "span_id": "c"}]
        doc = to_chrome_trace(spans, samples)
        events = doc["traceEvents"]
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        parent = next(e for e in events if e["name"] == "parent")
        child = next(e for e in events if e["name"] == "child")
        instant = next(e for e in events if e["ph"] == "i")
        assert parent["ts"] == 0.0 and parent["dur"] == 500000.0
        assert parent["args"]["rows"] == 3 and "error" not in parent["args"]
        assert child["args"]["error"] == "ValueError"
        assert instant["name"] == "b" and instant["args"]["span"] == "child"
        # Valid JSON end to end.
        assert json.loads(json.dumps(doc)) == doc

    def test_unwound_spans_export_from_a_real_tracer(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("unwind both")
        doc = to_chrome_trace(tracer.finished)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["inner"]["args"]["error"] == "RuntimeError"
        assert by_name["outer"]["args"]["error"] == "RuntimeError"
        assert by_name["inner"]["args"]["parent_id"] == \
            by_name["outer"]["args"]["span_id"]


def _profiled_work(lo, hi):
    # One deterministic sample per chunk, taken inside the
    # parallel.task span so the tag proves span linkage in workers.
    runtime.state().profiler.sample_once()
    return sum(range(lo, hi))


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_profile_accounting_is_worker_count_invariant(self, workers):
        chunks = [(0, 5), (5, 10), (10, 15)]
        # A huge interval keeps the sampler threads quiet: the only
        # samples are the deterministic per-chunk ones in the task.
        prof = runtime.start_profiling(interval_s=3600.0)
        out = chunked_map(_profiled_work, chunks, workers=workers)
        runtime.stop_profiling()
        assert out == [10, 35, 60]
        assert prof.sample_count == len(chunks)
        assert prof.dropped == 0
        assert [s["span"] for s in prof.samples] == ["parallel.task"] * 3
        assert all(s["stack"] for s in prof.samples)


class TestBudget:
    def _spans(self, duration):
        return [{"name": "hot.path", "span_id": "x", "parent_id": None,
                 "duration_s": duration}]

    def test_within_budget_passes(self):
        budget = {"budgets": {"hot.path": {"max_total_s": 1.0}}}
        check = check_budget(self._spans(0.5), budget)
        assert check.ok and "perf budget OK" in check.render()

    def test_total_breach_fails(self):
        budget = {"budgets": {"hot.path": {"max_total_s": 0.1}}}
        check = check_budget(self._spans(0.5), budget)
        assert not check.ok
        assert check.breaches[0]["span"] == "hot.path"
        assert "BREACHED" in check.render()

    def test_mean_breach_fails(self):
        budget = {"budgets": {
            "hot.path": {"max_total_s": 10.0, "max_mean_s": 0.1},
        }}
        assert not check_budget(self._spans(0.5), budget).ok

    def test_absent_span_reports_but_never_fails(self):
        budget = {"budgets": {"never.recorded": {"max_total_s": 1.0}}}
        check = check_budget(self._spans(0.5), budget)
        assert check.ok
        assert check.rows[0]["status"] == "absent"

    def test_shipped_budget_file_is_valid_and_covers_table5(self):
        doc = load_budget(REPO_ROOT / DEFAULT_BUDGET_PATH)
        assert "experiment.table5" in doc["budgets"]

    def test_malformed_budgets_are_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"budgets": {"x": {"max_total_s": -1}}}')
        with pytest.raises(ObservabilityError):
            load_budget(bad)
        bad.write_text('{"budgets": {}}')
        with pytest.raises(ObservabilityError):
            load_budget(bad)
        with pytest.raises(ObservabilityError):
            load_budget(tmp_path / "missing.json")


class TestArtifacts:
    def test_write_profile_artifacts_round_trips(self, tmp_path):
        tracer = Tracer()
        prof = SamplingProfiler(tracer=tracer)
        with tracer.span("unit.work"):
            prof.sample_once(t_unix=1.0)
        paths = write_profile_artifacts(
            tmp_path, spans=tracer.finished, profiler=prof,
            command="unit-test",
        )
        assert "span:unit.work;" in paths["collapsed"].read_text()
        trace = json.loads(paths["chrome_trace"].read_text())
        assert {e["name"] for e in trace["traceEvents"]} >= {"unit.work"}
        timings = json.loads(paths["timings"].read_text())
        assert timings["command"] == "unit-test"
        assert timings["sample_count"] == 1
        assert "span.unit.work_ms" in timings["timings"]

    def test_profile_timings_namespaces_span_keys(self):
        spans = [{"name": "a.b", "span_id": "1", "parent_id": None,
                  "duration_s": 0.25}]
        assert profile_timings(spans) == {"span.a.b_ms": 250.0}

    def test_render_attribution_includes_self_time_column(self):
        spans = [
            {"name": "child", "span_id": "c", "parent_id": "p",
             "duration_s": 0.3},
            {"name": "parent", "span_id": "p", "parent_id": None,
             "duration_s": 1.0},
        ]
        table = render_attribution(spans)
        assert "self s" in table
        assert "0.7000" in table  # parent self = 1.0 - 0.3


def _fresh_caches():
    from repro.experiments._campaign import build_campaign
    from repro.gpu.powercap import clear_powercap_cache

    build_campaign.cache_clear()
    clear_powercap_cache()


RUN_ARGS = ["--nodes", "24", "--days", "1", "--seed", "3"]


class TestCliProfile:
    def test_run_profile_is_bitwise_identical_and_writes_artifacts(
        self, tmp_path, capsys
    ):
        _fresh_caches()
        plain = tmp_path / "plain"
        assert cli_main(
            ["run", "table5", *RUN_ARGS, "--out", str(plain)]
        ) == 0

        _fresh_caches()
        profiled = tmp_path / "profiled"
        prof_dir = tmp_path / "artifacts"
        assert cli_main([
            "run", "table5", *RUN_ARGS,
            "--out", str(profiled), "--profile",
            "--profile-dir", str(prof_dir),
        ]) == 0
        assert not runtime.enabled()

        assert (
            (profiled / "table5.txt").read_bytes()
            == (plain / "table5.txt").read_bytes()
        )
        assert "===== profile" in capsys.readouterr().out
        trace = json.loads((prof_dir / "trace.json").read_text())
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert len(names) >= 10
        assert {"experiment.table5", "join.campaign",
                "gpu.run_batch"} <= names
        assert (prof_dir / "profile.collapsed").exists()
        timings = json.loads(
            (prof_dir / "profile_timings.json").read_text()
        )
        assert "span.experiment.table5_ms" in timings["timings"]

    def test_obs_profile_check_gates_on_the_budget(self, tmp_path, capsys):
        generous = tmp_path / "generous.json"
        generous.write_text(json.dumps({
            "budgets": {"experiment.table1": {"max_total_s": 600.0}},
        }))
        _fresh_caches()
        rc = cli_main([
            "obs", "profile", "table1", *RUN_ARGS,
            "--out", str(tmp_path / "ok"),
            "--budget", str(generous), "--check",
        ])
        assert rc == 0
        assert "perf budget OK" in capsys.readouterr().out
        assert not runtime.enabled()

        impossible = tmp_path / "impossible.json"
        impossible.write_text(json.dumps({
            "budgets": {"experiment.table1": {"max_total_s": 1e-9}},
        }))
        _fresh_caches()
        rc = cli_main([
            "obs", "profile", "table1", *RUN_ARGS,
            "--out", str(tmp_path / "over"),
            "--budget", str(impossible), "--check",
        ])
        assert rc == 1
        assert "BREACHED" in capsys.readouterr().out
        assert not runtime.enabled()
