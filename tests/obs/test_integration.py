"""Observability end-to-end: identical outputs, full traces, manifests.

The acceptance contract: enabling observability must not perturb a
single output bit — ``repro run`` artifacts and drained stream cubes are
compared bitwise against uninstrumented runs — while producing a
manifest, a two-digit set of distinct span names, and the stream ingest
gauges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants, units
from repro.cli import main as cli_main
from repro.experiments import ExperimentConfig
from repro.experiments import run as run_experiment
from repro.experiments._campaign import build_campaign
from repro.gpu.powercap import clear_powercap_cache
from repro.obs import load_manifest, runtime
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import StreamEngine, canonical_windows
from repro.telemetry import FleetTelemetryGenerator

CONFIG = dict(fleet_nodes=24, days=1.0, seed=3)


def _fresh_caches():
    """Clear every cross-run memo so both runs do identical work."""
    build_campaign.cache_clear()
    clear_powercap_cache()


class TestExperimentIdentity:
    def test_table5_is_bitwise_identical_with_obs_enabled(self, tmp_path):
        config = ExperimentConfig(
            **CONFIG, out_dir=str(tmp_path / "plain")
        )
        _fresh_caches()
        plain = run_experiment("table5", config)

        _fresh_caches()
        st = runtime.enable()
        traced = run_experiment(
            "table5", config.with_overrides(out_dir=str(tmp_path / "obs"))
        )

        assert traced.text == plain.text
        assert (
            (tmp_path / "obs" / "table5.txt").read_bytes()
            == (tmp_path / "plain" / "table5.txt").read_bytes()
        )
        names = {rec["name"] for rec in st.tracer.finished}
        assert len(names) >= 10
        assert "experiment.table5" in names
        assert "gpu.run_batch" in names
        assert "join.campaign" in names
        assert st.registry.counter("experiments_total").value == 1

    def test_per_experiment_manifest_written(self, tmp_path):
        _fresh_caches()
        runtime.enable()
        config = ExperimentConfig(**CONFIG, out_dir=str(tmp_path))
        run_experiment("table5", config)
        doc = load_manifest(tmp_path / "table5.manifest.json")
        assert doc["command"] == "repro run table5"
        assert doc["config"]["fleet_nodes"] == CONFIG["fleet_nodes"]
        assert "table5.txt" in doc["outputs"]
        # The slice holds only this experiment's spans.
        assert any(
            s["name"] == "experiment.table5" for s in doc["spans"]
        )


class TestStreamIdentity:
    @pytest.fixture(scope="class")
    def fleet(self):
        mix = default_mix(fleet_nodes=8)
        log = SlurmSimulator(mix).run(units.days(0.25), rng=0)
        gen = FleetTelemetryGenerator(log, mix, seed=1000)
        # Time-major delivery: event-time windows arrive in order, so
        # nothing is late and the drop counters must stay at zero.
        window_s = 40 * constants.TELEMETRY_INTERVAL_S
        return log, list(canonical_windows(gen.generate(), window_s=window_s))

    def _drained(self, log, chunks) -> StreamEngine:
        engine = StreamEngine(
            log, interval_s=constants.TELEMETRY_INTERVAL_S,
        )
        for chunk in chunks:
            engine.ingest(chunk)
        engine.drain()
        return engine

    def test_drained_cube_is_bitwise_identical_with_obs(self, fleet):
        log, chunks = fleet
        plain = self._drained(log, chunks).cube()
        st = runtime.enable()
        traced_engine = self._drained(log, chunks)
        traced = traced_engine.cube()

        assert np.array_equal(plain.energy_j, traced.energy_j)
        assert np.array_equal(plain.gpu_hours, traced.gpu_hours)
        assert np.array_equal(
            plain.histogram.counts, traced.histogram.counts
        )
        assert np.array_equal(
            plain.histogram.weight_sums, traced.histogram.weight_sums
        )
        assert plain.cpu_energy_j == traced.cpu_energy_j

        names = {rec["name"] for rec in st.tracer.finished}
        assert {"stream.ingest", "stream.push", "stream.drain"} <= names
        values = st.registry.counter_values()
        assert values["stream_chunks_in"] == len(chunks)
        assert values["stream_samples_in"] > 0
        assert "stream_watermark_lag_seconds" in values
        assert values["stream_late_dropped"] == 0
        assert values["stream_duplicates_dropped"] == 0

    def test_drained_cube_is_bitwise_identical_with_health(self, fleet):
        # The health layer reads a copied cube and the ingest counters,
        # so attaching a monitor (even a drifting one, with obs off and
        # no --watch) must leave every analytic output byte-identical.
        from repro.obs.health import HealthMonitor

        log, chunks = fleet
        plain = self._drained(log, chunks).cube()
        monitor = HealthMonitor()
        watched_engine = StreamEngine(
            log, interval_s=constants.TELEMETRY_INTERVAL_S,
        ).attach_health(monitor)
        for chunk in chunks:
            watched_engine.ingest(chunk)
        watched_engine.drain()
        watched = watched_engine.cube()

        assert np.array_equal(plain.energy_j, watched.energy_j)
        assert np.array_equal(plain.gpu_hours, watched.gpu_hours)
        assert np.array_equal(
            plain.histogram.counts, watched.histogram.counts
        )
        assert np.array_equal(
            plain.histogram.weight_sums, watched.histogram.weight_sums
        )
        assert plain.cpu_energy_j == watched.cpu_energy_j
        # ...while the monitor really evaluated along the way.
        assert monitor.alerts.evaluations > 0
        assert monitor.drift.last_report is not None


class TestCli:
    def test_run_obs_writes_manifest_and_prom(self, tmp_path, capsys):
        _fresh_caches()
        out = tmp_path / "artifacts"
        rc = cli_main([
            "run", "table1",
            "--nodes", "24", "--days", "1", "--seed", "3",
            "--out", str(out), "--obs",
        ])
        assert rc == 0
        doc = load_manifest(out / "manifest.json")
        assert doc["command"] == "repro run table1"
        assert "table1.txt" in doc["outputs"]
        assert (out / "metrics.prom").read_text()
        assert "observability" in capsys.readouterr().out
        # The CLI tears the global state back down.
        assert not runtime.enabled()

    def test_obs_summary_and_diff_commands(self, tmp_path, capsys):
        _fresh_caches()
        out = tmp_path / "a"
        cli_main([
            "run", "table1",
            "--nodes", "24", "--days", "1", "--seed", "3",
            "--out", str(out), "--obs",
        ])
        capsys.readouterr()

        assert cli_main(["obs", "summary", str(out / "manifest.json")]) == 0
        assert "manifest: repro run table1" in capsys.readouterr().out

        same = cli_main([
            "obs", "diff",
            str(out / "manifest.json"), str(out / "manifest.json"),
        ])
        assert same == 0
        assert "match" in capsys.readouterr().out

        _fresh_caches()
        other = tmp_path / "b"
        cli_main([
            "run", "table1",
            "--nodes", "24", "--days", "1", "--seed", "4",
            "--out", str(other), "--obs",
        ])
        capsys.readouterr()
        drifted = cli_main([
            "obs", "diff",
            str(out / "manifest.json"), str(other / "manifest.json"),
        ])
        assert drifted == 1
        assert "config.seed" in capsys.readouterr().out
