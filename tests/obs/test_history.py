"""History store: rollups, out-of-core parity, queries, compaction.

Small stores with tiny ``chunk_rows`` and rollup factors exercise every
segmentation path cheaply; the bitwise contracts mirror the full-size
gates (``ext_slo``, ``bench_query.py --check``).
"""

import numpy as np
import pytest

from repro.errors import HistoryError
from repro.obs.history import History, history_columns
from repro.obs.history.query import auto_level, select, verify_rollups
from repro.obs.history.store import HistoryStore, fold_values

W = 15.0
COLS = [
    ("t_start_s", "min"),
    ("t_end_s", "max"),
    ("e", "sum"),
    ("p", "max"),
    ("lo", "min"),
    ("c", "last"),
]


def make_store(dir=None, chunk_rows=8, factors=(4, 3)):
    return HistoryStore(
        COLS, dir=dir, chunk_rows=chunk_rows, rollup_factors=factors,
        window_s=W,
    )


def batch(r0, rows):
    """Rows [r0, r0+rows) of a deterministic synthetic series."""
    t = (r0 + np.arange(rows, dtype=np.float64)) * W
    block = np.empty((rows, len(COLS)))
    block[:, 0] = t
    block[:, 1] = t + W
    block[:, 2] = np.sin(t * 0.01) * 50.0 + 100.0
    block[:, 3] = np.cos(t * 0.02) * 25.0 + 300.0
    block[:, 4] = -block[:, 3]
    block[:, 5] = np.floor(t / (4 * W))
    return block


def fill(store, rows, *, chunk=7):
    for r0 in range(0, rows, chunk):
        store.append_batch(batch(r0, min(chunk, rows - r0)))
    return store


def all_columns(store):
    """Every column of every level as raw bytes."""
    out = []
    for level in range(store.n_levels):
        n = store.rows(level)
        for name, _agg in store.columns:
            out.append(store.column_slice(name, level, 0, n).tobytes())
    return out


class TestFold:
    def test_fold_aggs(self):
        v = np.array([3.0, 1.0, 2.0])
        assert fold_values(v, "sum") == 6.0
        assert fold_values(v, "min") == 1.0
        assert fold_values(v, "max") == 3.0
        assert fold_values(v, "last") == 2.0

    def test_sum_is_left_to_right_reduce(self):
        # The canonical fold is sequential np.add.reduce — the same
        # association the rollup and every refold must use.
        v = np.array([0.1, 0.2, 0.3, 1e16, -1e16])
        assert fold_values(v, "sum") == float(np.add.reduce(v))


class TestRollups:
    def test_level_rows_and_spans(self):
        store = fill(make_store(), 100)
        assert store.rows(0) == 100
        assert store.rows(1) == 25          # factor 4
        assert store.rows(2) == 8           # factor 4*3 = 12
        assert store.level_span_rows(1) == 4
        assert store.level_span_rows(2) == 12
        assert store.level_span_s(1) == 4 * W
        assert store.level_span_s(2) == 12 * W

    def test_rollups_refold_bitwise(self):
        assert verify_rollups(fill(make_store(), 157)) == []

    def test_rechunking_is_bitwise_invisible(self):
        a = fill(make_store(), 120, chunk=1)
        b = fill(make_store(), 120, chunk=17)
        c = make_store()
        c.append_batch(batch(0, 120))
        assert all_columns(a) == all_columns(b) == all_columns(c)

    def test_incomplete_buckets_stay_pending(self):
        store = fill(make_store(), 10)
        assert store.rows(1) == 2           # 10 // 4
        assert store.rows(2) == 0
        store.append_batch(batch(10, 2))
        assert store.rows(1) == 3
        assert store.rows(2) == 1

    def test_non_monotonic_time_rejected(self):
        store = fill(make_store(), 10)
        with pytest.raises(HistoryError, match="non-decreasing"):
            store.append_batch(batch(5, 3))

    def test_row_shape_mismatch_rejected(self):
        with pytest.raises(HistoryError, match="columns"):
            make_store().append_batch(np.zeros((3, 2)))

    def test_missing_row_column_rejected(self):
        with pytest.raises(HistoryError, match="missing column"):
            make_store().append_row({"t_start_s": 0.0})


class TestOutOfCore:
    def test_disk_matches_memory_bitwise(self, tmp_path):
        mem = fill(make_store(), 143)
        disk = fill(make_store(dir=tmp_path / "h"), 143)
        disk.sync()
        assert all_columns(mem) == all_columns(disk)

    def test_reads_are_memmapped(self, tmp_path):
        store = fill(make_store(dir=tmp_path / "h"), 64).sync()
        reopened = HistoryStore.open(tmp_path / "h")
        # Full chunk segments come back as read-only memmaps.
        seg = reopened._seg_array(reopened._levels[0].segments[0])
        assert isinstance(seg, np.memmap)
        store.close()
        reopened.close()

    def test_reopen_resumes_appends_and_rollups(self, tmp_path):
        whole = fill(make_store(), 100)
        first = fill(make_store(dir=tmp_path / "h"), 57)
        first.sync()
        first.close()
        resumed = HistoryStore.open(tmp_path / "h")
        # 57 = 14 full buckets + 1 pending level-0 row, re-staged.
        assert resumed.rows(0) == 57 and resumed.rows(1) == 14
        for r0 in range(57, 100, 9):
            resumed.append_batch(batch(r0, min(9, 100 - r0)))
        resumed.sync()
        assert all_columns(resumed) == all_columns(whole)
        assert verify_rollups(resumed) == []
        resumed.close()

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(HistoryError, match="manifest"):
            HistoryStore.open(tmp_path)

    def test_new_store_refuses_existing_dir(self, tmp_path):
        fill(make_store(dir=tmp_path / "h"), 10).sync()
        with pytest.raises(HistoryError, match="already holds"):
            make_store(dir=tmp_path / "h")


class TestCompactGc:
    def test_compact_merges_ragged_segments_bitwise(self, tmp_path):
        # Syncing after every small batch (the live-dashboard pattern)
        # flushes ragged tail segments at every level.
        store = make_store(dir=tmp_path / "h")
        for r0 in range(0, 90, 5):
            store.append_batch(batch(r0, 5))
            store.sync()
        before = all_columns(store)
        segs_before = store.segment_count()
        report = store.compact()
        store.sync()
        assert store.segment_count() <= segs_before
        assert all_columns(store) == before
        assert report["rewritten_segments"] > 0
        reopened = HistoryStore.open(tmp_path / "h")
        assert all_columns(reopened) == before
        reopened.close()

    def test_gc_drops_old_segments_and_counts_rows(self, tmp_path):
        store = fill(make_store(dir=tmp_path / "h"), 96)
        store.sync()
        span = store.time_span()
        store.gc(keep_s=span[1] - 10 * W)
        store.sync()
        assert store.dropped_rows(0) > 0
        assert store.rows(0) < 96
        # The newest rows survive and queries still answer.
        t0, t1 = store.time_span()
        assert t1 == span[1]
        r = select(store, "e", t0, t1 + W, W, level=0)
        assert r.values[-1] is not None
        # Refold skips gc'd constituents instead of failing.
        assert verify_rollups(store) == []


class TestSelect:
    def test_sum_buckets_match_numpy(self):
        store = fill(make_store(), 60)
        r = select(store, "e", 0.0, 60 * W, 10 * W, level=0)
        expect = batch(0, 60)[:, 2].reshape(6, 10).sum(axis=1)
        assert r.level == 0 and len(r.values) == 6
        np.testing.assert_allclose(r.values, expect, rtol=1e-12)

    def test_auto_level_picks_coarsest_fitting(self):
        store = fill(make_store(), 60)
        assert auto_level(store, W) == 0
        assert auto_level(store, 4 * W) == 1
        assert auto_level(store, 12 * W) == 2
        assert auto_level(store, 100 * W) == 2
        assert select(store, "e", 0.0, 60 * W, 12 * W).level == 2

    def test_rollup_answer_equals_level0_answer(self):
        store = fill(make_store(), 120)
        a = select(store, "e", 0.0, 120 * W, 12 * W, level=0)
        b = select(store, "e", 0.0, 120 * W, 12 * W, level=2)
        assert a.values == b.values
        assert b.rows_scanned < a.rows_scanned

    def test_mean_count_and_empty_buckets(self):
        store = fill(make_store(), 8)
        r = select(store, "e", 0.0, 16 * W, 4 * W, agg="mean", level=0)
        assert r.values[2] is None and r.values[3] is None
        np.testing.assert_allclose(
            r.values[0], batch(0, 4)[:, 2].mean(), rtol=1e-12
        )
        c = select(store, "e", 0.0, 16 * W, 4 * W, agg="count", level=0)
        assert c.values == [4.0, 4.0, None, None]

    def test_max_row_freezes_the_answer(self):
        store = fill(make_store(), 40)
        frozen = select(store, "e", 0.0, 80 * W, W, level=0, max_row=40)
        store.append_batch(batch(40, 40))
        live = select(store, "e", 0.0, 80 * W, W, level=0)
        again = select(store, "e", 0.0, 80 * W, W, level=0, max_row=40)
        assert frozen.values == again.values
        assert live.values[41] is not None
        assert frozen.values[41] is None

    def test_bad_queries_raise(self):
        store = fill(make_store(), 10)
        with pytest.raises(HistoryError, match="empty time range"):
            select(store, "e", 10.0, 10.0, W)
        with pytest.raises(HistoryError, match="step"):
            select(store, "e", 0.0, 10.0, 0.0)
        with pytest.raises(HistoryError, match="unknown series"):
            select(store, "nope", 0.0, 10.0, W)
        with pytest.raises(HistoryError, match="unknown aggregation"):
            select(store, "e", 0.0, 10.0, W, agg="p42")
        with pytest.raises(HistoryError, match="level"):
            select(store, "e", 0.0, 10.0, W, level=7)
        with pytest.raises(HistoryError, match="buckets"):
            select(store, "e", 0.0, 1e9, 1e-3)


class TestHistoryFacade:
    def _engine(self, history=None, *, windows=6, nodes=4):
        from repro import constants, units
        from repro.scheduler import SlurmSimulator, default_mix
        from repro.stream import replay_store
        from repro.stream.engine import StreamEngine
        from repro.telemetry.schema import TelemetryChunk
        from repro.telemetry.store import TelemetryStore

        ticks = windows * 4
        time_s = np.repeat(
            np.arange(ticks, dtype=np.float64)
            * constants.TELEMETRY_INTERVAL_S,
            nodes,
        )
        node_id = np.tile(np.arange(nodes, dtype=np.int32), ticks)
        store = TelemetryStore(TelemetryChunk(
            time_s=time_s,
            node_id=node_id,
            gpu_power_w=np.full(
                (ticks * nodes, constants.GPUS_PER_NODE), 320.0,
                dtype=np.float32,
            ),
            cpu_power_w=np.full(ticks * nodes, 110.0, dtype=np.float32),
        ))
        log = SlurmSimulator(default_mix(fleet_nodes=nodes)).run(
            units.days(0.1), rng=0
        )
        engine = StreamEngine(
            log,
            interval_s=constants.TELEMETRY_INTERVAL_S,
            window_s=4 * constants.TELEMETRY_INTERVAL_S,
        )
        if history is not None:
            engine.attach_history(history)
        for chunk in replay_store(store, chunk_ticks=4):
            engine.ingest(chunk)
        engine.drain()
        return engine

    def test_records_one_row_per_sealed_window(self):
        history = History()
        engine = self._engine(history)
        assert history.windows_recorded == engine.stats.windows_folded
        assert history.store.rows(0) == history.windows_recorded
        names = [n for n, _ in history.store.columns]
        assert names == [n for n, _ in history_columns()]

    def test_history_is_bitwise_invisible_to_the_cube(self):
        plain = self._engine(None)
        with_h = self._engine(History())
        a, b = plain.cube(), with_h.cube()
        assert np.array_equal(a.energy_j, b.energy_j)
        assert np.array_equal(a.gpu_hours, b.gpu_hours)
        assert a.cpu_energy_j == b.cpu_energy_j

    def test_energy_column_matches_the_cube_total(self):
        history = History()
        engine = self._engine(history)
        total = select(
            history.store, "energy_j", 0.0, 1e9, 1e9, level=0
        ).values[0]
        assert total == pytest.approx(
            float(engine.cube().energy_j.sum()), rel=1e-9
        )

    def test_reader_view_is_frozen(self):
        history = History()
        self._engine(history)
        view = history.reader_view()
        doc = view.series_doc()
        assert doc["levels"][0]["rows"] == history.windows_recorded
        span = view.span()
        assert span is not None and span[0] == 0.0
        r = view.select("energy_j", span[0], span[1] + 60.0, 60.0)
        assert any(v is not None for v in r.values)

    def test_metric_values_carry_slo_gauges(self):
        history = History()
        self._engine(history)
        values = history.metric_values()
        assert values["history_windows_total"] == history.windows_recorded
        assert "slo_cap_violation_burn_fast" in values
        assert values["slo_alerts_firing"] == 0.0
