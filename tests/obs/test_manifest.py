"""Run manifests: roundtrip, digests, summary, drift detection."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import manifest as m
from repro.obs import runtime


def _write(tmp_path, name: str, text: str):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestBuildAndRoundtrip:
    def test_roundtrip_through_disk(self, tmp_path):
        out = _write(tmp_path, "table5.txt", "rows\n")
        st = runtime.enable()
        with runtime.span("experiment.table5"):
            runtime.counter_inc("experiments_total")
        manifest = m.build_manifest(
            command="repro run table5",
            config={"seed": 0, "fleet_nodes": 96},
            outputs=[out],
            wall_s=1.25,
            cpu_s=1.0,
        )
        path = manifest.write(tmp_path / "manifest.json")
        doc = m.load_manifest(path)
        assert doc["schema"] == m.MANIFEST_SCHEMA
        assert doc["command"] == "repro run table5"
        assert doc["config"] == {"seed": 0, "fleet_nodes": 96}
        assert doc["wall_s"] == 1.25
        assert doc["outputs"]["table5.txt"]["bytes"] == 5
        assert [s["name"] for s in doc["spans"]] == ["experiment.table5"]
        assert "experiments_total" in doc["metrics"]
        assert doc["versions"]["python"]
        assert st is runtime.state()

    def test_digest_matches_content(self, tmp_path):
        a = _write(tmp_path, "a.txt", "same")
        b = _write(tmp_path, "b.txt", "same")
        c = _write(tmp_path, "c.txt", "other")
        assert m.digest_file(a)["sha256"] == m.digest_file(b)["sha256"]
        assert m.digest_file(a)["sha256"] != m.digest_file(c)["sha256"]

    def test_nonfinite_values_sanitized_to_null(self, tmp_path):
        runtime.enable()
        runtime.gauge_set("ok_gauge", 1.0)
        manifest = m.build_manifest(command="x")
        manifest.config = {"watermark": float("-inf")}
        path = manifest.write(tmp_path / "manifest.json")
        doc = json.loads(path.read_text())   # strict JSON must parse
        assert doc["config"]["watermark"] is None

    def test_missing_outputs_are_skipped(self, tmp_path):
        manifest = m.build_manifest(
            command="x", outputs=[tmp_path / "nope.txt"]
        )
        assert manifest.outputs == {}

    def test_load_rejects_non_manifest(self, tmp_path):
        path = _write(tmp_path, "junk.json", '{"no": "schema"}')
        with pytest.raises(ObservabilityError):
            m.load_manifest(path)
        with pytest.raises(ObservabilityError):
            m.load_manifest(tmp_path / "absent.json")

    def test_load_rejects_newer_schema(self, tmp_path):
        path = _write(
            tmp_path, "new.json",
            json.dumps({"schema": m.MANIFEST_SCHEMA + 1}),
        )
        with pytest.raises(ObservabilityError):
            m.load_manifest(path)


class TestSummary:
    def test_summary_lists_provenance_spans_and_counters(self, tmp_path):
        out = _write(tmp_path, "fig8.txt", "data\n")
        runtime.enable()
        with runtime.span("join.campaign"):
            runtime.counter_inc("join_samples_total", 100)
        doc = m.build_manifest(
            command="repro run fig8", outputs=[out], wall_s=0.5,
        ).to_dict()
        text = m.summarize_manifest(doc)
        assert "repro run fig8" in text
        assert "fig8.txt" in text
        assert "join.campaign" in text
        assert "join_samples_total" in text


def _doc(**overrides) -> dict:
    base = {
        "schema": 1,
        "command": "repro run table5",
        "config": {"seed": 0},
        "versions": {"numpy": "2.0"},
        "git": {"sha": "aaa", "dirty": False},
        "outputs": {"table5.txt": {"sha256": "d" * 64, "bytes": 10}},
        "spans": [
            {"name": "join.campaign", "duration_s": 1.0},
            {"name": "tiny", "duration_s": 1e-5},
        ],
    }
    base.update(overrides)
    return base


class TestDiff:
    def test_identical_runs_are_clean(self):
        diff = m.diff_manifests(_doc(), _doc())
        assert diff.clean
        assert "match" in diff.render()

    def test_config_and_version_drift_flagged(self):
        diff = m.diff_manifests(
            _doc(),
            _doc(config={"seed": 1}, versions={"numpy": "2.1"}),
        )
        assert any("config.seed" in x for x in diff.provenance_drift)
        assert any("versions.numpy" in x for x in diff.provenance_drift)

    def test_git_and_digest_drift_flagged(self):
        diff = m.diff_manifests(
            _doc(),
            _doc(
                git={"sha": "bbb", "dirty": False},
                outputs={"table5.txt": {"sha256": "e" * 64, "bytes": 10}},
            ),
        )
        assert any("git.sha" in x for x in diff.provenance_drift)
        assert any("digest changed" in x for x in diff.provenance_drift)

    def test_timing_drift_beyond_tolerance(self):
        slow = _doc(spans=[{"name": "join.campaign", "duration_s": 2.0}])
        diff = m.diff_manifests(_doc(), slow, timing_tolerance_pct=25.0)
        assert any("join.campaign" in x for x in diff.timing_drift)
        assert not diff.provenance_drift
        # Within tolerance: clean.
        near = _doc(spans=[{"name": "join.campaign", "duration_s": 1.1}])
        assert m.diff_manifests(_doc(), near).clean

    def test_sub_millisecond_spans_ignored(self):
        fast = _doc(spans=[{"name": "tiny", "duration_s": 5e-5}])
        base = _doc(spans=[{"name": "tiny", "duration_s": 1e-5}])
        assert m.diff_manifests(base, fast).clean

    def test_one_sided_span_is_a_note_not_drift(self):
        diff = m.diff_manifests(_doc(), _doc(spans=[]))
        assert diff.clean
        assert any("only in first" in x for x in diff.notes)


class TestRunArtifacts:
    def test_writes_manifest_and_prometheus_dump(self, tmp_path):
        runtime.enable()
        runtime.counter_inc("stream_chunks_in_total")
        paths = m.write_run_artifacts(
            tmp_path / "obs", command="repro stream", wall_s=0.1,
        )
        doc = m.load_manifest(paths["manifest"])
        assert doc["command"] == "repro stream"
        prom = paths["metrics"].read_text()
        assert "stream_chunks_in_total 1" in prom
