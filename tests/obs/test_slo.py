"""SLO burn-rate math, rule wiring, and live/replay parity."""

import numpy as np
import pytest

from repro.obs.health.rules import AlertEngine
from repro.obs.history.slo import (
    FAST_BURN,
    SLO,
    SLOW_BURN,
    BurnWindow,
    SLOEvaluator,
    default_slos,
    replay,
    slo_rules,
)
from repro.obs.history.store import HistoryStore
from repro.obs.metrics import MetricsRegistry

W = 15.0


def mini_slo(**kw) -> SLO:
    base = dict(
        name="t",
        objective=0.99,                # error budget 0.01
        bad_series="bad",
        total_series="total",
        fast=BurnWindow(short_s=2 * W, long_s=4 * W, threshold=10.0),
        slow=BurnWindow(short_s=8 * W, long_s=16 * W, threshold=2.0),
    )
    base.update(kw)
    return SLO(**base)


def feed(ev, windows):
    """Observe [(bad, total), ...] at consecutive W-second windows."""
    values = None
    for i, (bad, total) in enumerate(windows):
        values = ev.observe(
            i * W, (i + 1) * W, {"bad": bad, "total": total}
        )
    return values


class TestBurnMath:
    def test_steady_error_rate_burns_at_rate_over_budget(self):
        ev = SLOEvaluator([mini_slo()])
        # 2 % bad forever: burn = 0.02 / 0.01 = 2 in every window.
        values = feed(ev, [(2.0, 100.0)] * 32)
        assert values["slo_t_burn_fast"] == pytest.approx(2.0)
        assert values["slo_t_burn_slow"] == pytest.approx(2.0)

    def test_clean_service_burns_zero(self):
        values = feed(SLOEvaluator([mini_slo()]), [(0.0, 100.0)] * 8)
        assert values["slo_t_burn_fast"] == 0.0
        assert values["slo_t_burn_slow"] == 0.0
        assert values["slo_t_budget_remaining"] == 1.0

    def test_no_traffic_reads_as_zero_burn(self):
        values = feed(SLOEvaluator([mini_slo()]), [(0.0, 0.0)] * 4)
        assert values["slo_t_burn_fast"] == 0.0

    def test_two_window_and_is_the_min(self):
        ev = SLOEvaluator([mini_slo()])
        # Clean history, then one fully-bad window: the short (2-window)
        # trailing ratio is 1/2, the long (4-window) ratio is 1/4 —
        # the rule metric must report the *long* window's burn.
        values = feed(ev, [(0.0, 100.0)] * 15 + [(100.0, 100.0)])
        assert values["slo_t_burn_fast"] == pytest.approx(
            (1.0 / 4.0) / 0.01
        )

    def test_budget_remaining_tracks_spend_over_long_window(self):
        ev = SLOEvaluator([mini_slo()])
        # Burning at exactly 1x: the whole budget is gone exactly at
        # the end of the 16-window long horizon.
        values = feed(ev, [(1.0, 100.0)] * 16)
        assert values["slo_t_budget_remaining"] == pytest.approx(0.0)

    def test_burn_recovers_as_the_burst_slides_off(self):
        ev = SLOEvaluator([mini_slo()])
        feed(ev, [(100.0, 100.0)] * 4)
        during = ev.last_values["slo_t_burn_fast"]
        feed_rest = [(0.0, 100.0)] * 16
        for i, (bad, total) in enumerate(feed_rest, start=4):
            ev.observe(i * W, (i + 1) * W, {"bad": bad, "total": total})
        after = ev.last_values["slo_t_burn_fast"]
        assert during == pytest.approx(100.0)
        assert after == 0.0


class TestRules:
    def test_default_slos_cover_the_standard_schema(self):
        slos = {s.name: s for s in default_slos()}
        assert set(slos) == {
            "cap_violation", "energy_budget", "serve_latency",
        }
        assert slos["cap_violation"].objective == 0.999
        assert slos["cap_violation"].bad_series == "over_limit_samples"
        assert slos["energy_budget"].error_budget == pytest.approx(0.05)

    def test_standard_windows_are_the_sre_table(self):
        assert (FAST_BURN.short_s, FAST_BURN.long_s) == (300.0, 3600.0)
        assert FAST_BURN.threshold == 14.4
        assert (SLOW_BURN.short_s, SLOW_BURN.long_s) == (
            21600.0, 259200.0
        )
        assert SLOW_BURN.threshold == 6.0

    def test_rules_pair_fast_critical_slow_warning(self):
        rules = slo_rules(default_slos())
        assert len(rules) == 6
        by_name = {r.name: r for r in rules}
        fast = by_name["slo_cap_violation_fast_burn"]
        slow = by_name["slo_cap_violation_slow_burn"]
        assert fast.severity == "critical" and fast.value == 14.4
        assert slow.severity == "warning" and slow.value == 6.0
        assert fast.metric == "slo_cap_violation_burn_fast"

    def test_fast_rule_fires_before_slow_and_resolves_first(self):
        # Slow threshold 10 over the 16-window horizon needs two bad
        # windows before it binds, so the fast page leads going in;
        # its 2-window short window also clears first coming out.
        slo = mini_slo(slow=BurnWindow(8 * W, 16 * W, 10.0))
        ev = SLOEvaluator([slo])
        alerts = AlertEngine(slo_rules([slo]))
        windows = (
            [(0.0, 100.0)] * 16      # clean warmup
            + [(100.0, 100.0)] * 16  # sustained full burn
            + [(0.0, 100.0)] * 32    # recovery
        )
        for i, (bad, total) in enumerate(windows):
            values = ev.observe(
                i * W, (i + 1) * W, {"bad": bad, "total": total}
            )
            alerts.evaluate(values, (i + 1) * W)
        t = {
            (e["rule"], e["transition"]): e["t_s"]
            for e in alerts.history
        }
        assert t[("slo_t_fast_burn", "firing")] < (
            t[("slo_t_slow_burn", "firing")]
        )
        assert t[("slo_t_fast_burn", "resolved")] < (
            t[("slo_t_slow_burn", "resolved")]
        )
        assert not alerts.firing()


class TestReplay:
    def test_replay_matches_live_evaluator(self):
        slo = mini_slo()
        store = HistoryStore(
            [("t_start_s", "min"), ("t_end_s", "max"),
             ("bad", "sum"), ("total", "sum")],
            chunk_rows=8, window_s=W,
        )
        live = SLOEvaluator([slo])
        rng = np.random.default_rng(7)
        for i in range(50):
            bad = float(rng.integers(0, 5))
            row = {
                "t_start_s": i * W, "t_end_s": (i + 1) * W,
                "bad": bad, "total": 100.0,
            }
            store.append_row(row)
            live.observe(i * W, (i + 1) * W, row)
        replayed = replay(store, [slo], block_rows=7)
        assert replayed.last_values == live.last_values


class TestServeLatencyTotals:
    def test_histogram_totals_split_on_the_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "serve_request_seconds", "latency",
            buckets=(0.001, 0.005, 0.05), endpoint="/x",
        )
        for v in (0.0005, 0.002, 0.004, 0.02, 0.2):
            h.observe(v)
        total, fast = reg.histogram_totals(
            "serve_request_seconds", 0.005
        )
        assert total == 5.0 and fast == 3.0

    def test_missing_family_reads_zero(self):
        assert MetricsRegistry().histogram_totals("nope", 1.0) == (
            0.0, 0.0
        )
