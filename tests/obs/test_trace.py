"""Tracing spans: nesting, error capture, bounds, cross-process grafting."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs import runtime
from repro.obs.trace import NOOP_SPAN, Tracer, aggregate_spans
from repro.parallel import chunked_map


class TestTracer:
    def test_nested_spans_link_parent_child(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.finished
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["duration_s"] >= 0.0

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, outer = tracer.finished
        assert a["parent_id"] == b["parent_id"] == outer["span_id"]

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("op", rows=3) as sp:
            sp.set(sealed=1)
        [rec] = tracer.finished
        assert rec["attrs"] == {"rows": 3, "sealed": 1}

    def test_error_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.finished[0]["error"] == "ValueError"

    def test_max_spans_bounds_memory(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped == 3

    def test_root_parent_seeds_top_level_spans(self):
        tracer = Tracer(root_parent="abc-1")
        with tracer.span("child"):
            pass
        assert tracer.finished[0]["parent_id"] == "abc-1"

    def test_records_are_picklable(self):
        tracer = Tracer()
        with tracer.span("op", chunk=0):
            pass
        assert pickle.loads(pickle.dumps(tracer.finished)) == tracer.finished

    def test_absorb_respects_bound(self):
        tracer = Tracer(max_spans=3)
        with tracer.span("own"):
            pass
        worker = Tracer()
        for _ in range(4):
            with worker.span("remote"):
                pass
        tracer.absorb(worker.finished, worker.dropped)
        assert len(tracer.finished) == 3
        assert tracer.dropped == 2

    def test_absorbing_the_same_batch_twice_raises(self):
        tracer = Tracer()
        worker = Tracer()
        with worker.span("remote"):
            pass
        tracer.absorb(worker.finished)
        with pytest.raises(ObservabilityError, match="already absorbed"):
            tracer.absorb(worker.finished)
        # The guard rejects the duplicate before any double-counting.
        assert len(tracer.finished) == 1

    def test_distinct_batches_from_one_pooled_worker_absorb_fine(self):
        # A pooled worker process builds a fresh Tracer per task: same
        # pid, distinct tracer epochs, so single-span batches must not
        # collide in the fingerprint set.
        parent = Tracer()
        for _ in range(2):
            task_tracer = Tracer()
            with task_tracer.span("parallel.task"):
                pass
            parent.absorb(task_tracer.finished)
        assert len(parent.finished) == 2

    def test_span_ids_are_unique_across_tracer_instances(self):
        ids = set()
        for _ in range(3):
            tracer = Tracer()
            with tracer.span("op"):
                pass
            ids.add(tracer.finished[0]["span_id"])
        assert len(ids) == 3

    def test_absorbing_empty_batches_is_always_allowed(self):
        tracer = Tracer()
        tracer.absorb([], 0)
        tracer.absorb([], 2)
        assert tracer.dropped == 2


class TestNoop:
    def test_noop_span_is_inert(self):
        with NOOP_SPAN as sp:
            assert sp.set(x=1) is sp

    def test_runtime_span_is_noop_when_disabled(self):
        assert runtime.span("anything") is NOOP_SPAN


def _traced_square(lo, hi):
    with runtime.span("work.block", lo=lo):
        return [x * x for x in range(lo, hi)]


class TestCrossProcess:
    def test_worker_spans_merge_into_parent_trace(self):
        st = runtime.enable()
        chunks = [(0, 3), (3, 6), (6, 9)]
        with runtime.span("driver"):
            out = chunked_map(_traced_square, chunks, workers=2)
        assert out == [[0, 1, 4], [9, 16, 25], [36, 49, 64]]

        spans = st.tracer.finished
        by_name = {}
        for rec in spans:
            by_name.setdefault(rec["name"], []).append(rec)
        driver = by_name["driver"][0]
        tasks = by_name["parallel.task"]
        blocks = by_name["work.block"]
        assert len(tasks) == len(blocks) == 3
        # Every worker task hangs off the driver span; every traced block
        # hangs off its worker's task span — one tree across processes.
        ids = {rec["span_id"]: rec for rec in spans}
        for task in tasks:
            assert task["parent_id"] == driver["span_id"]
        for block in blocks:
            assert ids[block["parent_id"]]["name"] == "parallel.task"
        # Worker spans really came from other processes.
        assert {t["pid"] for t in tasks} != {driver["pid"]}

    def test_trace_tree_is_worker_count_invariant(self):
        chunks = [(0, 2), (2, 4)]
        shapes = []
        for workers in (1, 2):
            st = runtime.enable()
            with runtime.span("driver"):
                chunked_map(_traced_square, chunks, workers=workers)
            names = sorted(rec["name"] for rec in st.tracer.finished)
            attrs = sorted(
                rec["attrs"].get("chunk", -1)
                for rec in st.tracer.finished
                if rec["name"] == "parallel.task"
            )
            shapes.append((names, attrs))
            runtime.disable()
        assert shapes[0] == shapes[1]

    def test_metrics_merge_across_workers(self):
        st = runtime.enable()
        chunked_map(_counting_task, [(2,), (3,)], workers=2)
        assert st.registry.counter("task_items_total").value == 5


def _counting_task(n):
    runtime.counter_inc("task_items_total", n)
    return n


class TestAggregate:
    def test_rollup_sorted_slowest_first(self):
        spans = [
            {"name": "a", "duration_s": 0.1},
            {"name": "b", "duration_s": 0.5},
            {"name": "a", "duration_s": 0.3},
        ]
        agg = aggregate_spans(spans)
        assert [x["name"] for x in agg] == ["b", "a"]
        a = agg[1]
        assert a["count"] == 2
        assert a["total_s"] == pytest.approx(0.4)
        assert a["mean_s"] == pytest.approx(0.2)
        assert a["max_s"] == pytest.approx(0.3)

    def test_self_time_excludes_direct_children(self):
        spans = [
            {"name": "child", "span_id": "c1", "parent_id": "p",
             "duration_s": 0.3},
            {"name": "child", "span_id": "c2", "parent_id": "p",
             "duration_s": 0.2},
            {"name": "parent", "span_id": "p", "parent_id": None,
             "duration_s": 1.0},
        ]
        agg = {a["name"]: a for a in aggregate_spans(spans)}
        assert agg["parent"]["self_s"] == pytest.approx(0.5)
        # Leaves keep their full duration as self time.
        assert agg["child"]["self_s"] == pytest.approx(0.5)

    def test_self_time_clamps_when_parallel_children_overlap(self):
        # Children that ran concurrently in workers can sum to more
        # wall time than the parent span itself spent.
        spans = [
            {"name": "task", "span_id": "t1", "parent_id": "p",
             "duration_s": 0.8},
            {"name": "task", "span_id": "t2", "parent_id": "p",
             "duration_s": 0.9},
            {"name": "driver", "span_id": "p", "parent_id": None,
             "duration_s": 1.0},
        ]
        agg = {a["name"]: a for a in aggregate_spans(spans)}
        assert agg["driver"]["self_s"] == 0.0

    def test_records_without_span_id_count_duration_as_self(self):
        spans = [{"name": "a", "duration_s": 0.1}]
        assert aggregate_spans(spans)[0]["self_s"] == pytest.approx(0.1)
