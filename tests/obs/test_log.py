"""The structured event-log pillar: ring, store, query, determinism.

The contracts under test here are the load-bearing ones from
``docs/observability.md``: clock-free token-bucket math, deterministic
sampling, dense per-log sequence numbers under concurrent emitters,
segment rotation/retention edges (empty-segment GC, the tail is never
dropped), and the bitwise reopen-resume guarantee — a store closed
mid-segment and reopened continues producing byte-identical segments.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import LogError
from repro.obs.log import (
    EventLog,
    LogStore,
    SEVERITIES,
    SEVERITY_CODE,
    TokenBucket,
    select,
    tail,
)
from repro.obs.log.query import render_record
from repro.obs.log.store import MANIFEST_NAME


class TestTokenBucket:
    def test_boundary_math_is_clock_free(self):
        # rate=1/s, burst=2: two immediate tokens, the third arrives
        # exactly at t=1.0 (0.999 s refills only 0.999 of a token).
        bucket = TokenBucket(1.0, 2.0)
        times = (0.0, 0.0, 0.0, 0.999, 1.0, 1.5)
        assert [bucket.allow(t) for t in times] == [
            True, True, False, False, True, False,
        ]

    def test_out_of_order_event_time_never_refunds(self):
        bucket = TokenBucket(1.0, 1.0)
        assert bucket.allow(10.0)
        # A sample stamped *earlier* must not drain or refill anything.
        assert not bucket.allow(5.0)
        assert not bucket.allow(10.5)
        assert bucket.allow(11.0)

    def test_burst_caps_the_refill(self):
        bucket = TokenBucket(1.0, 3.0)
        for _ in range(3):
            assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        # A huge gap refills to burst, not beyond.
        for _ in range(3):
            assert bucket.allow(1000.0)
        assert not bucket.allow(1000.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(LogError):
            TokenBucket(0.0, 5.0)
        with pytest.raises(LogError):
            TokenBucket(1.0, 0.5)


class TestEmission:
    def test_record_schema_and_correlation_keys(self):
        log = EventLog()
        rec = log.emit(
            "info", "stream.window_seal", "window 0 sealed",
            t_s=120.0, window=0, cap_version=3, samples=640,
        )
        assert rec["seq"] == 0
        assert rec["id"] == "stream.window_seal:1"
        assert rec["severity"] == "info"
        assert rec["window"] == 0
        assert rec["cap_version"] == 3
        assert rec["fields"] == {"samples": 640}
        # Absent correlation ids never appear as null keys.
        assert "node" not in rec and "job" not in rec

    def test_unknown_severity_raises(self):
        log = EventLog()
        with pytest.raises(LogError):
            log.emit("fatal", "x")
        with pytest.raises(LogError):
            EventLog(level="loud")

    def test_level_floor_counts_filtered(self):
        log = EventLog(level="warning")
        assert log.emit("debug", "a") is None
        assert log.emit("info", "b") is None
        assert log.emit("warning", "c") is not None
        assert log.filtered == 2
        assert log.emitted == 1

    def test_disabled_log_drops_everything_silently(self):
        log = EventLog(enabled=False)
        assert log.emit("critical", "x") is None
        assert log.emitted == 0 and log.filtered == 0
        assert log.records() == []

    def test_ring_eviction_is_counted(self):
        log = EventLog(capacity=4)
        for i in range(6):
            log.emit("info", "tick", t_s=float(i))
        assert log.evicted == 2
        assert log.emitted == 6
        records = log.records()
        assert len(records) == 4
        assert [r["seq"] for r in records] == [2, 3, 4, 5]

    def test_rate_limit_gap_is_reported_on_next_record(self):
        log = EventLog(rate_limits={"spiky": (1.0, 1.0)})
        assert log.emit("warning", "spiky", t_s=0.0) is not None
        for _ in range(3):
            assert log.emit("warning", "spiky", t_s=0.5) is None
        assert log.suppressed == 3
        rec = log.emit("warning", "spiky", t_s=2.0)
        assert rec["suppressed"] == 3
        # The gap is reported once, not re-reported.
        assert "suppressed" not in log.emit("warning", "spiky", t_s=9.0)

    def test_deterministic_sampling_keeps_the_same_occurrences(self):
        def run():
            log = EventLog(sample={"noisy": 4})
            kept = [
                log.emit("debug", "noisy", t_s=float(i)) for i in range(64)
            ]
            return log, [r["id"] for r in kept if r is not None]

        log_a, ids_a = run()
        _log_b, ids_b = run()
        assert ids_a == ids_b
        assert 0 < len(ids_a) < 64
        assert log_a.sampled_out == 64 - len(ids_a)

    def test_window_slice_only_sees_window_correlated_records(self):
        log = EventLog()
        log.emit("info", "stream.window_seal", window=0, t_s=10.0)
        log.emit("debug", "serve.publish", t_s=11.0)       # cadence-driven
        log.emit("info", "stream.window_seal", window=1, t_s=20.0)
        log.emit("warning", "forensics.finding", window=2, t_s=30.0)
        ids = [r["id"] for r in log.window_slice(0, 1)]
        assert ids == ["stream.window_seal:1", "stream.window_seal:2"]

    def test_reader_view_is_frozen_at_capture(self):
        log = EventLog()
        log.emit("info", "a")
        view = log.reader_view()
        log.emit("info", "b")
        assert len(view.records) == 1
        assert view.emitted == 1
        assert len(log.records()) == 2

    def test_absorb_resequences_in_fold_order(self):
        # Two workers vs one: records folded in canonical chunk order
        # must produce identical seqs and occurrence ids.
        def worker(config, events):
            log = EventLog(**config)
            for name, t in events:
                log.emit("info", name, t_s=t)
            return log.drain()

        events = [("unit.fold", float(i)) for i in range(6)]

        one = EventLog(capacity=64)
        one.absorb(worker(one.export_config(), events))

        two = EventLog(capacity=64)
        config = two.export_config()
        two.absorb(worker(config, events[:3]))
        two.absorb(worker(config, events[3:]))

        assert one.records() == two.records()
        assert [r["id"] for r in two.records()] == [
            f"unit.fold:{n}" for n in range(1, 7)
        ]

    def test_concurrent_emitters_keep_seqs_dense(self):
        # 8-way hammer: the lock must keep the global sequence unique
        # and dense, and the counters consistent.
        log = EventLog(capacity=4096)
        threads = 8
        per_thread = 200
        barrier = threading.Barrier(threads)

        def hammer(k):
            barrier.wait()
            for i in range(per_thread):
                log.emit("info", f"hammer.t{k}", t_s=float(i))

        pool = [
            threading.Thread(target=hammer, args=(k,))
            for k in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        total = threads * per_thread
        seqs = sorted(r["seq"] for r in log.records())
        assert log.emitted == total
        assert log.evicted == 0
        assert seqs == list(range(total))
        # Per-event occurrence ids are dense too.
        for k in range(threads):
            ids = sorted(
                int(r["id"].rsplit(":", 1)[1])
                for r in log.records()
                if r["event"] == f"hammer.t{k}"
            )
            assert ids == list(range(1, per_thread + 1))

    def test_summary_counters(self):
        log = EventLog(capacity=2, level="info")
        log.emit("debug", "quiet")
        log.emit("info", "a")
        log.emit("info", "b")
        log.emit("info", "c")
        summary = log.summary()
        assert summary["events_total"] == 3
        assert summary["resident"] == 2
        assert summary["filtered_total"] == 1
        assert summary["evicted_total"] == 1
        assert "store" not in summary


def _fill(store, n, *, t0=0.0, step=1.0, seq0=0):
    for i in range(n):
        store.append({
            "seq": seq0 + i, "id": f"tick:{seq0 + i + 1}",
            "t_s": t0 + i * step, "severity": "info",
            "event": "tick", "msg": f"tick {seq0 + i}",
        })
    store.sync()


class TestLogStore:
    def test_rotation_by_record_count(self, tmp_path):
        store = LogStore(tmp_path, segment_records=3)
        _fill(store, 10)
        assert store.segment_count() == 4
        assert store.records_resident() == 10
        assert [s["records"] for s in store.segments] == [3, 3, 3, 1]
        assert store.check() == []
        store.close()

    def test_reopen_resume_is_bitwise_equal_to_continuous(self, tmp_path):
        cont, resumed = tmp_path / "cont", tmp_path / "resumed"
        a = LogStore(cont, segment_records=4)
        _fill(a, 7)
        a.close()

        b = LogStore(resumed, segment_records=4)
        _fill(b, 3)                       # stop mid-segment
        b.close()
        b = LogStore.open(resumed)
        _fill(b, 4, t0=3.0, seq0=3)       # resume into the same segment
        b.close()

        names = sorted(p.name for p in cont.glob("seg-*.jsonl"))
        assert names == sorted(p.name for p in resumed.glob("seg-*.jsonl"))
        for name in names:
            assert (cont / name).read_bytes() == (resumed / name).read_bytes()
        assert LogStore.open(resumed).check() == []

    def test_torn_trailing_write_is_truncated_on_open(self, tmp_path):
        store = LogStore(tmp_path, segment_records=8)
        _fill(store, 3)
        store.close()
        seg = tmp_path / store.segments[-1]["file"]
        clean = seg.read_bytes()
        with open(seg, "ab") as fh:       # crash mid-line: no newline
            fh.write(b'{"seq": 99, "t_s"')

        reopened = LogStore.open(tmp_path)
        assert seg.read_bytes() == clean
        assert reopened.records_resident() == 3
        assert reopened.check() == []
        reopened.close()

    def test_extra_synced_lines_are_adopted(self, tmp_path):
        # Lines fsynced to the segment but not yet to the manifest
        # (crash between append and sync) are adopted on reopen.
        store = LogStore(tmp_path, segment_records=8)
        _fill(store, 2)
        store.append({"seq": 2, "id": "tick:3", "t_s": 2.0,
                      "severity": "info", "event": "tick", "msg": ""})
        store._fh.flush()                 # record on disk, manifest stale
        store._fh.close()
        store._fh = None

        reopened = LogStore.open(tmp_path)
        assert reopened.records_resident() == 3
        assert reopened.segments[-1]["seq1"] == 2
        assert reopened.check() == []
        reopened.close()

    def test_empty_segment_gc_never_drops_the_tail(self, tmp_path):
        store = LogStore(tmp_path, segment_records=3)
        _fill(store, 3)                   # seg-000000 full
        # Crash window: rotation happened but the first append did not.
        store._start_segment()
        store._start_segment()
        store.sync()
        assert store.segment_count() == 3

        out = store.gc(keep_s=1e9)
        # The middle (empty, closed) segment is collected; the full one
        # is within retention and the empty *tail* is never dropped.
        assert out == {"dropped_segments": 1, "dropped_records": 0}
        assert [s["records"] for s in store.segments] == [3, 0]
        assert not (tmp_path / "seg-000001.jsonl").exists()
        assert store.check() == []
        store.close()

    def test_retention_gc_drops_expired_closed_segments(self, tmp_path):
        store = LogStore(tmp_path, segment_records=2)
        _fill(store, 10)                  # t_s 0..9 across 5 segments
        out = store.gc(keep_s=3.0)        # cutoff = 9 - 3 = 6
        assert out["dropped_segments"] == 3
        assert out["dropped_records"] == 6
        assert store.records_resident() == 4
        assert [r["t_s"] for r in store.iter_records()] == [
            6.0, 7.0, 8.0, 9.0,
        ]
        assert store.gc_dropped_records == 6
        assert store.check() == []
        store.close()

    def test_gc_rejects_negative_retention(self, tmp_path):
        store = LogStore(tmp_path)
        with pytest.raises(LogError):
            store.gc(-1.0)
        store.close()

    def test_iter_records_range_filters(self, tmp_path):
        store = LogStore(tmp_path, segment_records=3)
        _fill(store, 9)
        assert [r["t_s"] for r in store.iter_records(2.0, 5.0)] == [
            2.0, 3.0, 4.0, 5.0,
        ]
        assert list(store.iter_records(100.0, None)) == []
        store.close()

    def test_check_flags_missing_and_tampered_segments(self, tmp_path):
        store = LogStore(tmp_path, segment_records=2)
        _fill(store, 6)
        store.close()

        (tmp_path / "seg-000000.jsonl").unlink()
        with open(tmp_path / "seg-000001.jsonl", "ab") as fh:
            fh.write(b'{"seq": 0, "t_s": 0.0}\n')

        problems = LogStore.open(tmp_path).check()
        assert any("missing segment file" in p for p in problems)
        assert any("seg-000001" in p and "on disk" in p for p in problems)

    def test_create_over_existing_store_raises(self, tmp_path):
        LogStore(tmp_path).close()
        with pytest.raises(LogError):
            LogStore(tmp_path)
        with pytest.raises(LogError):
            LogStore.open(tmp_path / "nowhere")

    def test_eventlog_persists_through_store(self, tmp_path):
        store = LogStore(tmp_path, segment_records=4)
        log = EventLog(capacity=2, store=store)
        for i in range(6):
            log.emit("info", "tick", t_s=float(i))
        log.finalize()
        # The ring evicted, the store kept everything.
        assert len(log.records()) == 2
        assert store.records_resident() == 6
        assert (tmp_path / MANIFEST_NAME).exists()
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert doc["records_total"] == 6
        store.close()


class TestQuery:
    def _records(self):
        log = EventLog()
        log.emit("debug", "serve.request", "a", t_s=1.0)
        log.emit("info", "stream.window_seal", "b", t_s=2.0, window=0)
        log.emit("warning", "stream.late_drop", "c", t_s=3.0, window=0,
                 dropped=4)
        log.emit("error", "serve.decide_cap", "d", t_s=4.0)
        return log.records()

    def test_event_exact_and_prefix_match(self):
        records = self._records()
        assert [r["event"] for r in select(records, event="serve.")] == [
            "serve.request", "serve.decide_cap",
        ]
        assert len(select(records, event="stream.window_seal")) == 1

    def test_severity_floor_and_time_range(self):
        records = self._records()
        assert [r["t_s"] for r in select(records, min_severity="warning")] \
            == [3.0, 4.0]
        assert [r["t_s"] for r in select(records, t0=2.0, t1=3.0)] \
            == [2.0, 3.0]
        with pytest.raises(LogError):
            select(records, min_severity="noisy")

    def test_window_fields_and_limit(self):
        records = self._records()
        assert len(select(records, window=0)) == 2
        assert len(select(records, fields={"dropped": 4})) == 1
        newest = select(records, limit=2)
        assert [r["t_s"] for r in newest] == [3.0, 4.0]
        assert select(records, limit=0) == []

    def test_tail_and_render(self):
        records = self._records()
        assert [r["t_s"] for r in tail(records, 2)] == [3.0, 4.0]
        assert tail(records, 0) == []
        line = render_record(records[2])
        assert "WARNING" in line and "stream.late_drop" in line
        assert "window=0" in line
        assert len(render_record(records[2], width=30)) <= 30

    def test_severity_tables_are_consistent(self):
        assert tuple(SEVERITY_CODE) == SEVERITIES
        codes = [SEVERITY_CODE[name] for name in SEVERITIES]
        assert codes == sorted(codes)


class TestDashboardPane:
    def _snapshot(self):
        class _Stats:
            watermark_s = 1200.0
            windows_folded = 3

            def render(self):
                return "ingest: " + "x" * 200

        class _Snapshot:
            stats = _Stats()
            table4 = None
            recommendation = None

        return _Snapshot()

    def test_narrow_width_clips_every_line(self):
        from repro.obs.health.dashboard import render_dashboard

        log = EventLog()
        log.emit("info", "stream.window_seal",
                 "window 0 sealed with a very long message " + "y" * 120,
                 t_s=100.0, window=0)
        body = render_dashboard(
            self._snapshot(), None, eventlog=log, width=80,
        )
        assert all(len(line) <= 80 for line in body.split("\n"))
        assert any(line.startswith("events: 1 emitted")
                   for line in body.split("\n"))
        assert any("…" in line for line in body.split("\n"))

    def test_logs_pane_absent_without_eventlog(self):
        from repro.obs.health.dashboard import render_dashboard

        body = render_dashboard(self._snapshot(), None)
        assert "events:" not in body
