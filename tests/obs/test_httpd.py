"""The shared HttpService lifecycle (health exporter + control plane).

Regression suite for the factored-out base: both servers must keep the
exact semantics the health exporter always had — ephemeral ``port=0``
resolution, idempotent start/close, error class + message on bind
failure and on reading the port while down — now from one
implementation.
"""

import threading

import pytest

from repro.errors import HealthError, ServeError
from repro.obs.health import HealthMonitor, HealthServer, fetch_url
from repro.obs.httpd import HttpService
from repro.scheduler import SlurmSimulator, default_mix
from repro.serve import ControlPlane, ControlPlaneServer
from repro.units import days


@pytest.fixture(scope="module")
def plane():
    mix = default_mix(fleet_nodes=4)
    log = SlurmSimulator(mix).run(days(0.1), rng=0)
    return ControlPlane(log)


def make_health():
    return HealthServer(monitor=HealthMonitor(drift=False), port=0)


def make_plane_server(plane):
    return ControlPlaneServer(plane, port=0)


class TestSharedLifecycle:
    def test_both_servers_share_the_base(self, plane):
        assert issubclass(HealthServer, HttpService)
        assert issubclass(ControlPlaneServer, HttpService)
        assert HealthServer.error_class is HealthError
        assert ControlPlaneServer.error_class is ServeError

    @pytest.mark.parametrize("which", ["health", "plane"])
    def test_port0_resolves_and_serves(self, plane, which):
        server = (
            make_health() if which == "health" else make_plane_server(plane)
        )
        with server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
            status, _body = fetch_url(server.url + "/")
            assert status in (200, 404, 503)

    @pytest.mark.parametrize("which", ["health", "plane"])
    def test_start_and_close_are_idempotent(self, plane, which):
        server = (
            make_health() if which == "health" else make_plane_server(plane)
        )
        server.start()
        port = server.port
        assert server.start() is server
        assert server.port == port, "second start must not rebind"
        assert server.running
        server.close()
        assert not server.running
        server.close()  # no-op, no raise

    def test_port_raises_own_error_class_when_down(self, plane):
        with pytest.raises(HealthError, match="not running"):
            _ = make_health().port
        with pytest.raises(ServeError, match="not running"):
            _ = make_plane_server(plane).port

    def test_bind_failure_raises_own_error_class(self, plane):
        with make_health() as busy:
            taken = busy.port
            with pytest.raises(HealthError, match="cannot bind"):
                HealthServer(
                    monitor=HealthMonitor(drift=False), port=taken
                ).start()
            with pytest.raises(ServeError, match="cannot bind"):
                ControlPlaneServer(plane, port=taken).start()

    def test_context_manager_releases_the_port(self, plane):
        server = make_plane_server(plane)
        with server:
            taken = server.port
        # The socket is free again: a new server can take the same port.
        rebound = ControlPlaneServer(plane, port=taken).start()
        try:
            assert rebound.port == taken
        finally:
            rebound.close()

    def test_close_from_handler_thread_is_safe(self, plane):
        # ControlPlane.close() may run on the serving thread (shutdown
        # endpoint); HttpService must not join the current thread.
        server = make_plane_server(plane)
        server.start()
        done = threading.Event()

        def closer():
            server.close()
            done.set()

        threading.Thread(target=closer).start()
        assert done.wait(timeout=10)
        assert not server.running
