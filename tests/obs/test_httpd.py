"""The shared HttpService lifecycle (health exporter + control plane).

Regression suite for the factored-out base: both servers must keep the
exact semantics the health exporter always had — ephemeral ``port=0``
resolution, idempotent start/close, error class + message on bind
failure and on reading the port while down — now from one
implementation.  The error-path classes below pin the hardening
contract: hostile or broken requests never wedge the server, and an
unexpected handler exception answers a framed 500 that the metrics can
see.
"""

import json
import socket
import threading

import pytest

from repro.errors import HealthError, ServeError
from repro.obs.health import HealthMonitor, HealthServer, fetch_url
from repro.obs.httpd import HttpService, post_url
from repro.scheduler import SlurmSimulator, default_mix
from repro.serve import ControlPlane, ControlPlaneServer
from repro.units import days


@pytest.fixture(scope="module")
def plane():
    mix = default_mix(fleet_nodes=4)
    log = SlurmSimulator(mix).run(days(0.1), rng=0)
    return ControlPlane(log)


def make_health():
    return HealthServer(monitor=HealthMonitor(drift=False), port=0)


def make_plane_server(plane):
    return ControlPlaneServer(plane, port=0)


class TestSharedLifecycle:
    def test_both_servers_share_the_base(self, plane):
        assert issubclass(HealthServer, HttpService)
        assert issubclass(ControlPlaneServer, HttpService)
        assert HealthServer.error_class is HealthError
        assert ControlPlaneServer.error_class is ServeError

    @pytest.mark.parametrize("which", ["health", "plane"])
    def test_port0_resolves_and_serves(self, plane, which):
        server = (
            make_health() if which == "health" else make_plane_server(plane)
        )
        with server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
            status, _body = fetch_url(server.url + "/")
            assert status in (200, 404, 503)

    @pytest.mark.parametrize("which", ["health", "plane"])
    def test_start_and_close_are_idempotent(self, plane, which):
        server = (
            make_health() if which == "health" else make_plane_server(plane)
        )
        server.start()
        port = server.port
        assert server.start() is server
        assert server.port == port, "second start must not rebind"
        assert server.running
        server.close()
        assert not server.running
        server.close()  # no-op, no raise

    def test_port_raises_own_error_class_when_down(self, plane):
        with pytest.raises(HealthError, match="not running"):
            _ = make_health().port
        with pytest.raises(ServeError, match="not running"):
            _ = make_plane_server(plane).port

    def test_bind_failure_raises_own_error_class(self, plane):
        with make_health() as busy:
            taken = busy.port
            with pytest.raises(HealthError, match="cannot bind"):
                HealthServer(
                    monitor=HealthMonitor(drift=False), port=taken
                ).start()
            with pytest.raises(ServeError, match="cannot bind"):
                ControlPlaneServer(plane, port=taken).start()

    def test_context_manager_releases_the_port(self, plane):
        server = make_plane_server(plane)
        with server:
            taken = server.port
        # The socket is free again: a new server can take the same port.
        rebound = ControlPlaneServer(plane, port=taken).start()
        try:
            assert rebound.port == taken
        finally:
            rebound.close()

    def test_close_from_handler_thread_is_safe(self, plane):
        # ControlPlane.close() may run on the serving thread (shutdown
        # endpoint); HttpService must not join the current thread.
        server = make_plane_server(plane)
        server.start()
        done = threading.Event()

        def closer():
            server.close()
            done.set()

        threading.Thread(target=closer).start()
        assert done.wait(timeout=10)
        assert not server.running


def raw_request(port: int, payload: bytes, *, timeout_s: float = 5.0):
    """Send raw bytes and return whatever the server answers."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout_s) as s:
        s.sendall(payload)
        s.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = s.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class TestErrorPaths:
    """Hostile and broken requests: the hardening contract."""

    def test_malformed_request_line_does_not_wedge(self, plane):
        with ControlPlaneServer(plane, port=0) as server:
            answer = raw_request(server.port, b"NOT A REQUEST\r\n\r\n")
            assert b"400" in answer
            # The server still answers the next, well-formed request.
            status, _body = fetch_url(server.url + "/")
            assert status == 200
            assert server.handler_errors == 0

    def test_unknown_route_is_404(self):
        with HealthServer(monitor=HealthMonitor(drift=False)) as server:
            status, body = fetch_url(server.url + "/nope")
            assert status == 404
            assert "no endpoint" in json.loads(body)["error"]
            assert server.handler_errors == 0

    def test_oversized_post_body_is_refused_unread(self, plane):
        with ControlPlaneServer(plane, port=0) as server:
            too_big = server.handler_class.max_body_bytes + 1
            header = (
                b"POST /v1/policy HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: " + str(too_big).encode() + b"\r\n\r\n"
            )
            # Send only the header + a sliver of the body: the server
            # must answer without waiting for (or buffering) the rest,
            # and close the connection to avoid keep-alive desync.
            answer = raw_request(server.port, header + b"{")
            assert answer, "server must answer, not hang"
            status = int(answer.split(b" ", 2)[1])
            # The refused body reads as {}: a no-op policy republish.
            assert status == 200
            assert b"connection: close" in answer.lower()
            status, _body = fetch_url(server.url + "/")
            assert status == 200

    def test_invalid_json_body_reads_as_empty(self, plane):
        with ControlPlaneServer(plane, port=0) as server:
            header = (
                b"POST /v1/policy HTTP/1.1\r\n"
                b"Host: x\r\nContent-Type: application/json\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            answer = raw_request(server.port, header)
            # Malformed JSON reads as {}: a no-op policy republish, not
            # a crash (and not a hang waiting for better bytes).
            assert int(answer.split(b" ", 2)[1]) == 200
            assert server.handler_errors == 0

    def test_handler_exception_answers_500_and_counts(self):
        monitor = HealthMonitor(drift=False)

        def boom():
            raise RuntimeError("boom")

        monitor.to_health_dict = boom
        with HealthServer(monitor=monitor) as server:
            status, body = fetch_url(server.url + "/health")
            assert status == 500
            assert "RuntimeError: boom" in json.loads(body)["error"]
            assert server.handler_errors == 1
            # The crash is metered into the registry the server exports.
            _status, text = fetch_url(server.url + "/metrics")
            assert "http_handler_errors_total 1" in text
            # The server keeps serving after the 500.
            status, _body = fetch_url(server.url + "/alerts")
            assert status == 200

    def test_plane_handler_exception_answers_500_and_counts(self, plane):
        with ControlPlaneServer(plane, port=0) as server:
            plane.refresh()          # publish a view to crash through
            view = plane.cache.view
            original = view.body
            view.body = lambda key: (_ for _ in ()).throw(
                RuntimeError("route boom")
            )
            try:
                status, body = fetch_url(server.url + "/v1/fleet/cap")
            finally:
                view.body = original
            assert status == 500
            assert "route boom" in json.loads(body)["error"]
            assert server.handler_errors == 1
            _status, text = fetch_url(server.url + "/metrics")
            assert "serve_handler_errors_total 1" in text
            # The crashed request stays metered, as a 500.
            assert (
                'serve_requests_total{endpoint="/v1/fleet/cap",'
                'status="500"} 1'
            ) in text

    def test_serve_error_stays_a_clean_400(self, plane):
        with ControlPlaneServer(plane, port=0) as server:
            status, body = post_url(
                server.url + "/v1/policy", {"objective": "nope"}
            )
            assert status == 400
            assert server.handler_errors == 0
