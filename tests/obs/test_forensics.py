"""The flight recorder, anomaly detectors, and incident forensics.

The layer's two contracts, asserted here:

* **read-only** — attaching a recorder to a stream engine changes no
  analytic output bit (cube, per-job accumulator, snapshot);
* **deterministic** — the same campaign produces the same records,
  findings, incident ids, and bundles, whatever the chunking was.
"""

import json

import numpy as np
import pytest

from repro import constants, units
from repro.core import join_campaign
from repro.errors import ForensicsError
from repro.obs.forensics import (
    CapViolationDetector,
    EnergyRegressionDetector,
    FlightRecorder,
    Forensics,
    IncidentEngine,
    ModeMixDetector,
    PublicationStallDetector,
    StragglerDetector,
    build_bundle,
    default_detectors,
    forensics_doc,
    load_forensics,
    make_record,
    render_doc,
    render_timeline,
    write_forensics_artifacts,
)
from repro.obs.health.drift import DriftReference
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import StreamEngine, canonical_windows, replay_store
from repro.telemetry import FleetTelemetryGenerator
from repro.telemetry.schema import TelemetryChunk

INTERVAL_S = constants.TELEMETRY_INTERVAL_S
GPUS = constants.GPUS_PER_NODE
WINDOW_TICKS = 4
WINDOW_S = WINDOW_TICKS * INTERVAL_S


def make_window(index, *, nodes=8, base_w=300.0, node_w=None):
    """One synthetic sealed window: ``nodes`` flat-power nodes.

    ``node_w`` overrides single nodes: ``{node_id: watts}`` or
    ``{node_id: (gpu_index, watts)}`` for a single hot GCD.
    """
    ticks = WINDOW_TICKS
    t0 = index * WINDOW_S
    time_s = np.repeat(
        t0 + np.arange(ticks, dtype=np.float64) * INTERVAL_S, nodes
    )
    node_id = np.tile(np.arange(nodes, dtype=np.int32), ticks)
    gpu = np.full((ticks * nodes, GPUS), base_w, dtype=np.float64)
    for node, spec in (node_w or {}).items():
        rows = node_id == node
        if isinstance(spec, tuple):
            gpu[rows, spec[0]] = spec[1]
        else:
            gpu[rows, :] = spec
    return TelemetryChunk(
        time_s=time_s,
        node_id=node_id,
        gpu_power_w=gpu.astype(np.float32),
        cpu_power_w=np.full(ticks * nodes, 100.0, dtype=np.float32),
    )


def record_of(window, index=0, **kwargs):
    return make_record(window, index=index, **kwargs)


def digest(doc) -> str:
    """Stable fingerprint of a JSON-ready document.

    Comparing digests (not multi-MB strings) keeps a failure readable —
    pytest would otherwise hand the full documents to difflib.
    """
    import hashlib

    payload = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


@pytest.fixture(scope="module")
def campaign():
    mix = default_mix(fleet_nodes=8)
    log = SlurmSimulator(mix).run(units.days(0.25), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=1000).generate()
    return log, store


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ForensicsError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_ring_evicts_oldest_and_counts(self):
        ring = FlightRecorder(capacity=4)
        for i in range(6):
            ring.append(record_of(make_window(i), index=i))
        assert len(ring) == 4
        assert ring.windows_seen == 6
        assert ring.evicted == 2
        assert [r.index for r in ring.records] == [2, 3, 4, 5]
        assert ring.last.index == 5
        assert [r.index for r in ring.window_range(3, 4)] == [3, 4]
        # Evicted indices are simply gone, not an error.
        assert ring.window_range(0, 1) == []
        values = ring.metric_values()
        assert values["forensics_windows_recorded"] == 6.0
        assert values["forensics_records_resident"] == 4.0
        assert values["forensics_records_evicted"] == 2.0

    def test_make_record_compacts_the_window(self):
        window = make_window(2, nodes=4, base_w=250.0,
                             node_w={1: 600.0})
        rec = record_of(window, index=2)
        assert rec.index == 2
        assert rec.t_start_s == 2 * WINDOW_S
        assert rec.t_end_s == 3 * WINDOW_S
        assert rec.samples == len(window)
        assert list(rec.node_ids) == [0, 1, 2, 3]
        # Energy identity: power x interval, per node and fleet-wide.
        expect_j = float(
            window.gpu_power_w.astype(np.float64).sum() * INTERVAL_S
        )
        assert rec.energy_j == pytest.approx(expect_j)
        assert rec.node_energy_j.sum() == pytest.approx(expect_j)
        assert rec.region_energy_j.sum() == pytest.approx(expect_j)
        assert rec.node_mean_power_w[1] == pytest.approx(600.0)
        assert rec.node_mean_power_w[0] == pytest.approx(250.0)
        # Node 1's GPUs sit above the 560 W GCD limit.
        assert rec.over_limit_samples == WINDOW_TICKS * GPUS
        assert rec.max_gpu_power_w == pytest.approx(600.0)

    def test_empty_window_record(self):
        empty = TelemetryChunk(
            time_s=np.empty(0),
            node_id=np.empty(0, dtype=np.int32),
            gpu_power_w=np.empty((0, GPUS), dtype=np.float32),
            cpu_power_w=np.empty(0, dtype=np.float32),
        )
        rec = record_of(empty, index=0)
        assert rec.samples == 0 and rec.energy_j == 0.0
        assert json.dumps(rec.to_dict())  # serializable

    def test_to_dict_trims_to_top_nodes(self):
        rec = record_of(make_window(0, nodes=8, node_w={5: 400.0}))
        doc = rec.to_dict(top_nodes=3)
        assert doc["nodes"] == 8
        assert len(doc["top_nodes"]) == 3
        assert doc["top_nodes"][0]["node"] == 5
        json.dumps(doc)


class TestDetectors:
    def test_straggler_fires_on_outlier_node(self):
        det = StragglerDetector(z_threshold=6.0)
        quiet = make_window(0)
        assert det.observe(record_of(quiet), quiet) == []
        hot = make_window(1, node_w={3: 540.0})
        findings = det.observe(record_of(hot, index=1), hot)
        assert len(findings) == 1
        f = findings[0]
        assert f.detector == "straggler" and f.severity == "warning"
        assert f.nodes == (3,)
        assert f.value >= 6.0
        assert "node 3" in f.summary

    def test_straggler_needs_a_quorum(self):
        det = StragglerDetector(z_threshold=2.0, min_nodes=4)
        tiny = make_window(0, nodes=3, node_w={0: 500.0})
        assert det.observe(record_of(tiny), tiny) == []

    def test_cap_violation_is_critical_with_node_evidence(self):
        det = CapViolationDetector()
        ok = make_window(0, base_w=500.0)
        assert det.observe(record_of(ok), ok) == []
        bad = make_window(1, node_w={6: (2, 575.0)})
        findings = det.observe(record_of(bad, index=1), bad)
        assert len(findings) == 1
        f = findings[0]
        assert f.detector == "cap_violation" and f.severity == "critical"
        assert f.nodes == (6,)
        # One hot GCD out of nodes x GPUS per tick.
        assert f.value == pytest.approx(1.0 / (8 * GPUS))

    def test_mode_mix_tv_distance_vs_reference(self):
        ref = DriftReference(
            gpu_hours_pct=(0.0, 100.0, 0.0, 0.0), label="all MI"
        )
        det = ModeMixDetector(ref, tv_threshold=0.2)
        mi = make_window(0, base_w=300.0)          # region 1 everywhere
        assert det.observe(record_of(mi), mi) == []
        ci = make_window(1, base_w=500.0)          # region 2 everywhere
        findings = det.observe(record_of(ci, index=1), ci)
        assert len(findings) == 1
        assert findings[0].value == pytest.approx(1.0)

    def test_energy_regression_after_pinned_baseline(self):
        det = EnergyRegressionDetector(baseline_windows=3,
                                       deviation_pct=20.0)
        for i in range(3):
            w = make_window(i, base_w=300.0)
            assert det.observe(record_of(w, index=i), w) == []
        steady = make_window(3, base_w=330.0)       # +10 %: inside band
        assert det.observe(record_of(steady, index=3), steady) == []
        hot = make_window(4, base_w=400.0)          # +33 %: fires
        findings = det.observe(record_of(hot, index=4), hot)
        assert len(findings) == 1
        assert findings[0].value == pytest.approx(100.0 / 3.0, rel=1e-3)

    def test_publication_stall_needs_a_feed_and_a_lag(self):
        det = PublicationStallDetector(max_lag_windows=2.0)
        det.bind(window_s=WINDOW_S)
        w = make_window(5)
        # No control plane attached: never fires.
        assert det.observe(record_of(w, index=5), w) == []
        fresh = record_of(w, index=5, published_version=4,
                          published_frontier_s=5 * WINDOW_S)
        assert det.observe(fresh, w) == []
        stale = record_of(w, index=5, published_version=4,
                          published_frontier_s=2 * WINDOW_S)
        findings = det.observe(stale, w)
        assert len(findings) == 1
        assert findings[0].severity == "critical"
        assert findings[0].value == pytest.approx(4 * WINDOW_S)

    def test_default_set_order_is_stable(self):
        names = [d.name for d in default_detectors()]
        assert names == [
            "straggler", "cap_violation", "mode_mix",
            "energy_regression", "publication_stall",
        ]


class TestIncidentEngine:
    def fire(self, engine, index, *, nodes=(3,), base_w=300.0,
             node_w=None):
        window = make_window(index, node_w=node_w or {3: 540.0})
        record = record_of(window, index=index)
        det = StragglerDetector(z_threshold=6.0)
        engine.observe(record, det.observe(record, window), window=window)

    def quiet(self, engine, index):
        window = make_window(index)
        engine.observe(record_of(window, index=index), [], window=window)

    def test_merge_within_gap_split_beyond(self):
        engine = IncidentEngine(merge_gap=2)
        for i in (0, 1, 3):          # gaps <= 2 merge
            self.fire(engine, i)
        for i in (4, 5, 6):
            self.quiet(engine, i)    # 3 quiet windows resolve it
        self.fire(engine, 7)         # a new episode, new id
        engine.finalize(last_index=7)
        assert [i.id for i in engine.incidents] == ["inc-001", "inc-002"]
        first, second = engine.incidents
        assert first.status == "resolved"
        assert (first.first_window, first.last_window) == (0, 3)
        assert first.windows_firing == 3
        assert second.open          # still firing at the final window
        assert engine.open_incidents == [second]

    def test_finalize_resolves_everything_without_an_index(self):
        engine = IncidentEngine(merge_gap=2)
        self.fire(engine, 0)
        engine.finalize()
        assert engine.incidents[0].status == "resolved"

    def test_attribution_axes(self):
        engine = IncidentEngine(merge_gap=1, top_k=3)
        self.fire(engine, 0)
        doc = engine.incidents[0].to_dict(top_k=3)
        assert doc["top_nodes"][0]["id"] == 3      # the implicated node
        assert doc["top_nodes"][0]["energy_j"] > 0
        assert doc["top_modes"][0]["name"]         # canonical region name
        assert doc["findings"][0]["detector"] == "straggler"
        json.dumps(doc)

    def test_snapshot_and_timeline_render(self):
        engine = IncidentEngine()
        self.fire(engine, 0)
        engine.finalize()
        snap = engine.snapshot()
        assert snap["total"] == 1 and snap["open"] == 0
        text = render_timeline(engine.incidents)
        assert "inc-001" in text and "straggler" in text
        # The dict form (what /v1/incidents serves) renders identically.
        assert render_timeline(snap["incidents"]) == text

    def test_get_by_id(self):
        engine = IncidentEngine()
        self.fire(engine, 0)
        assert engine.get("inc-001") is engine.incidents[0]
        assert engine.get("inc-999") is None


class TestForensicsFacade:
    def build(self, **kwargs):
        kwargs.setdefault("detectors", default_detectors(
            reference=DriftReference(
                gpu_hours_pct=(0.0, 100.0, 0.0, 0.0), label="all MI"
            ),
            z_threshold=6.0,
        ))
        return Forensics(interval_s=INTERVAL_S, **kwargs)

    def test_observe_finalize_summary(self):
        forensics = self.build()
        for i in range(10):
            node_w = {3: 540.0} if 4 <= i <= 6 else None
            forensics.observe_window(make_window(i, node_w=node_w))
        forensics.finalize()
        summary = forensics.summary()
        assert summary["windows_recorded"] == 10
        assert summary["incidents_total"] == 1
        assert summary["incidents_open"] == 0
        assert summary["findings_total"] == 3
        assert "straggler" in summary["detectors"]
        values = forensics.metric_values()
        assert values["forensics_incidents_total"] == 1.0
        assert values["forensics_findings_total"] == 3.0

    def test_serve_doc_carries_padded_record_slices(self):
        forensics = self.build()
        for i in range(10):
            node_w = {3: 540.0} if 4 <= i <= 6 else None
            forensics.observe_window(make_window(i, node_w=node_w))
        forensics.finalize()
        doc = forensics.serve_doc(pad=1)
        incident = doc["incidents"][0]
        assert (incident["first_window"], incident["last_window"]) == (4, 6)
        slice_ = doc["records_by_id"][incident["id"]]
        assert [r["index"] for r in slice_] == [3, 4, 5, 6, 7]
        json.dumps(doc)

    def test_attach_recorder_is_bitwise_invisible(self, campaign):
        log, store = campaign
        plain = StreamEngine(log, window_s=WINDOW_S)
        recorded = StreamEngine(log, window_s=WINDOW_S)
        recorded.attach_recorder(self.build())
        for engine in (plain, recorded):
            for chunk in replay_store(store, chunk_ticks=16):
                engine.ingest(chunk)
            engine.drain()
        a, b = plain.cube(copy=False), recorded.cube(copy=False)
        assert np.array_equal(a.energy_j, b.energy_j)
        assert np.array_equal(a.gpu_hours, b.gpu_hours)
        assert a.cpu_energy_j == b.cpu_energy_j
        assert recorded.forensics.recorder.windows_seen > 0
        # The facade's gauges ride the engine's metric export.
        assert "forensics_windows_recorded" in recorded.metric_values()

    def test_identical_campaigns_yield_identical_forensics(self, campaign):
        log, store = campaign

        def one_pass(chunk_ticks):
            forensics = self.build(tagger=None)
            engine = StreamEngine(log, window_s=WINDOW_S)
            engine.attach_recorder(forensics)
            for chunk in replay_store(store, chunk_ticks=chunk_ticks):
                engine.ingest(chunk)
            engine.drain()
            return forensics

        a = one_pass(16)
        b = one_pass(16)            # identical delivery
        c = one_pass(48)            # different chunking, same windows
        # Identical delivery reproduces the full doc, records included.
        assert digest(a.serve_doc()) == digest(b.serve_doc())
        # Across chunkings the *incident* content is invariant; record
        # ingest deltas legitimately differ (one big chunk seals many
        # windows, charging the whole delta to the first).
        assert digest(a.snapshot()) == digest(c.snapshot())

    def test_canonical_windows_replay_matches_engine(self, campaign):
        log, store = campaign
        streamed = self.build(tagger=None)
        engine = StreamEngine(log, window_s=WINDOW_S)
        engine.attach_recorder(streamed)
        for chunk in replay_store(store, chunk_ticks=16):
            engine.ingest(chunk)
        engine.drain()
        offline = self.build(tagger=None)
        for detector in offline.detectors:
            detector.bind(window_s=WINDOW_S)
        for window in canonical_windows(store, window_s=WINDOW_S):
            offline.observe_window(window)
        offline.finalize()
        assert digest(offline.snapshot()) == digest(streamed.snapshot())


class TestBundles:
    @pytest.fixture()
    def forensics(self):
        forensics = Forensics(
            interval_s=INTERVAL_S,
            detectors=default_detectors(
                reference=DriftReference(
                    gpu_hours_pct=(0.0, 100.0, 0.0, 0.0), label="all MI"
                ),
                z_threshold=6.0,
            ),
        )
        for i in range(8):
            node_w = {2: 540.0} if 3 <= i <= 4 else None
            forensics.observe_window(make_window(i, node_w=node_w))
        return forensics.finalize()

    def test_doc_bundle_roundtrip(self, forensics, tmp_path):
        doc = forensics_doc(forensics, command="pytest")
        assert doc["kind"] == "forensics" and doc["schema"] == 1
        assert doc["provenance"]["versions"]
        bundle = build_bundle(doc, "inc-001", pad=1)
        assert bundle["kind"] == "incident_bundle"
        assert bundle["incident"]["id"] == "inc-001"
        assert [r["index"] for r in bundle["records"]] == [2, 3, 4, 5]
        path = tmp_path / "bundle.json"
        path.write_text(render_doc(bundle))
        assert render_doc(json.loads(path.read_text())) == render_doc(bundle)

    def test_unknown_incident_raises(self, forensics):
        doc = forensics_doc(forensics)
        with pytest.raises(ForensicsError, match="inc-999"):
            build_bundle(doc, "inc-999")

    def test_write_artifacts_and_load(self, forensics, tmp_path):
        paths = write_forensics_artifacts(
            tmp_path, forensics, command="pytest"
        )
        assert paths["incidents"][0].name == "incidents.json"
        assert [p.name for p in paths["bundles"]] == [
            "incident_inc-001.json"
        ]
        doc = load_forensics(paths["incidents"][0])
        assert doc["summary"]["incidents_total"] == 1
        bundle = load_forensics(paths["bundles"][0])
        assert bundle["incident"]["id"] == "inc-001"

    def test_load_rejects_non_forensics_files(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"hello\": 1}")
        with pytest.raises(ForensicsError, match="not a forensics"):
            load_forensics(bad)
        missing = tmp_path / "missing.json"
        with pytest.raises(ForensicsError, match="cannot read"):
            load_forensics(missing)
