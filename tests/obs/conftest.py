"""Observability tests always leave the global state disabled."""

from __future__ import annotations

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def _clean_obs_state():
    runtime.disable()
    yield
    runtime.disable()
