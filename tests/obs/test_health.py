"""Health layer: alert state machines, drift math, exporter, CLI.

Everything here is clock-free: alert engines advance on explicit event
times, drift math is checked against hand-computed values, and the HTTP
exporter binds ephemeral ports and is torn down inside every test.
"""

from __future__ import annotations

import io
import json
from types import SimpleNamespace

import pytest

from repro import constants, units
from repro.cli import main as cli_main
from repro.errors import HealthError
from repro.obs.health import (
    AlertEngine,
    Dashboard,
    DriftDetector,
    DriftReference,
    HealthMonitor,
    HealthServer,
    RuleSpec,
    default_rules,
    fetch_url,
    load_rules,
    parse_rules,
    tv_distance,
)
from repro.obs.health.drift import REL_ERR_FLOOR_PCT
from repro.obs.metrics import MetricsRegistry
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import StreamEngine, canonical_windows
from repro.telemetry import FleetTelemetryGenerator

WINDOW_S = 40 * constants.TELEMETRY_INTERVAL_S


@pytest.fixture(scope="module")
def fleet():
    mix = default_mix(fleet_nodes=8)
    log = SlurmSimulator(mix).run(units.days(0.25), rng=0)
    gen = FleetTelemetryGenerator(log, mix, seed=1000)
    chunks = list(canonical_windows(gen.generate(), window_s=WINDOW_S))
    return log, chunks


def _drained(log, chunks, monitor=None) -> StreamEngine:
    engine = StreamEngine(log, interval_s=constants.TELEMETRY_INTERVAL_S)
    if monitor is not None:
        engine.attach_health(monitor)
    for chunk in chunks:
        engine.ingest(chunk)
    engine.drain()
    return engine


class TestRuleParsing:
    def test_default_ruleset_loads(self):
        rules = default_rules()
        names = {r.name for r in rules}
        assert {
            "stream_late_dropped_spike", "mode_drift", "stream_samples_absent",
        } <= names
        assert all(r.severity in ("warning", "critical") for r in rules)

    def test_bad_kind_op_and_negative_for_raise(self):
        with pytest.raises(HealthError):
            RuleSpec(name="x", metric="m", kind="gradient")
        with pytest.raises(HealthError):
            RuleSpec(name="x", metric="m", kind="threshold", op="!=")
        with pytest.raises(HealthError):
            RuleSpec(name="x", metric="m", kind="threshold", for_s=-1)

    def test_unknown_keys_and_duplicates_rejected(self):
        with pytest.raises(HealthError, match="unknown keys"):
            parse_rules({"rules": [
                {"name": "x", "metric": "m", "threshold": 3},
            ]})
        with pytest.raises(HealthError, match="duplicate"):
            parse_rules({"rules": [
                {"name": "x", "metric": "m"},
                {"name": "x", "metric": "m2"},
            ]})

    def test_load_rules_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "lag", "metric": "stream_watermark_lag_seconds",
             "op": ">", "value": 10.0, "for_s": 5.0},
        ]}))
        (rule,) = load_rules(path)
        assert rule.kind == "threshold"   # the default kind
        assert rule.for_s == 5.0

    def test_load_rules_toml(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            '[[rules]]\nname = "lag"\nmetric = "m"\nvalue = 1.5\n'
        )
        try:
            import tomllib  # noqa: F401
        except ImportError:
            with pytest.raises(HealthError, match="tomllib"):
                load_rules(path)
        else:
            (rule,) = load_rules(path)
            assert rule.value == 1.5

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(HealthError, match="cannot read"):
            load_rules(tmp_path / "nope.json")


class TestAlertEngine:
    def test_threshold_fires_immediately_without_for(self):
        engine = AlertEngine([
            RuleSpec(name="hot", metric="m", kind="threshold",
                     op=">", value=10.0),
        ])
        assert engine.evaluate({"m": 5.0}, 0.0) == []
        events = engine.evaluate({"m": 11.0}, 10.0)
        assert [e["transition"] for e in events] == ["firing"]
        assert not engine.healthy
        events = engine.evaluate({"m": 5.0}, 20.0)
        assert [e["transition"] for e in events] == ["resolved"]
        assert engine.healthy

    def test_pending_firing_resolved_lifecycle(self):
        engine = AlertEngine([
            RuleSpec(name="hot", metric="m", op=">", value=1.0,
                     kind="threshold", for_s=60.0),
        ])
        events = engine.evaluate({"m": 2.0}, 100.0)
        assert [e["transition"] for e in events] == ["pending"]
        # Condition must hold for the full for_s before firing.
        assert engine.evaluate({"m": 2.0}, 159.0) == []
        (state,) = engine.rule_states()
        assert state["state"] == "pending"
        assert state["since_s"] == 100.0
        # Boundary: elapsed == for_s fires.
        events = engine.evaluate({"m": 2.0}, 160.0)
        assert [e["transition"] for e in events] == ["firing"]
        (state,) = engine.rule_states()
        assert state["state"] == "firing"
        assert state["fired_at_s"] == 160.0
        events = engine.evaluate({"m": 0.5}, 200.0)
        assert [e["transition"] for e in events] == ["resolved"]
        # A fresh breach restarts the pending clock from scratch.
        events = engine.evaluate({"m": 2.0}, 300.0)
        assert [e["transition"] for e in events] == ["pending"]

    def test_pending_resets_when_condition_clears(self):
        engine = AlertEngine([
            RuleSpec(name="hot", metric="m", op=">", value=1.0,
                     kind="threshold", for_s=60.0),
        ])
        engine.evaluate({"m": 2.0}, 0.0)
        engine.evaluate({"m": 0.0}, 30.0)      # breach ends: back to inactive
        engine.evaluate({"m": 2.0}, 50.0)      # new breach, new clock
        events = engine.evaluate({"m": 2.0}, 90.0)
        assert events == []                     # 40 s < for_s despite t > 60
        events = engine.evaluate({"m": 2.0}, 110.0)
        assert [e["transition"] for e in events] == ["firing"]

    def test_absence_rule_on_never_reporting_registry(self):
        engine = AlertEngine([
            RuleSpec(name="silent", metric="stream_samples_in",
                     kind="absence", for_s=60.0),
        ])
        registry = MetricsRegistry()   # never reports the metric
        events = engine.evaluate(registry.counter_values(), 0.0)
        assert [e["transition"] for e in events] == ["pending"]
        events = engine.evaluate(registry.counter_values(), 60.0)
        assert [e["transition"] for e in events] == ["firing"]
        # The metric appearing resolves the absence.
        registry.gauge("stream_samples_in").set(5.0)
        events = engine.evaluate(registry.counter_values(), 120.0)
        assert [e["transition"] for e in events] == ["resolved"]

    def test_rate_rule_measures_slope_between_evaluations(self):
        engine = AlertEngine([
            RuleSpec(name="spike", metric="c", kind="rate",
                     op=">", value=0.05),
        ])
        assert engine.evaluate({"c": 0.0}, 0.0) == []      # seeds the sample
        events = engine.evaluate({"c": 10.0}, 100.0)       # 0.1/s > 0.05/s
        assert [e["transition"] for e in events] == ["firing"]
        (state,) = engine.rule_states()
        assert state["value"] == pytest.approx(0.1)
        events = engine.evaluate({"c": 10.0}, 200.0)       # flat: 0/s
        assert [e["transition"] for e in events] == ["resolved"]

    def test_rate_rule_holds_state_without_progress(self):
        engine = AlertEngine([
            RuleSpec(name="spike", metric="c", kind="rate",
                     op=">", value=0.05),
        ])
        engine.evaluate({"c": 0.0}, 0.0)
        engine.evaluate({"c": 10.0}, 100.0)
        # Absent metric or frozen event time: hold, don't flap.
        assert engine.evaluate({}, 150.0) == []
        assert engine.evaluate({"c": 20.0}, 100.0) == []
        assert not engine.healthy

    def test_history_ring_is_bounded(self):
        engine = AlertEngine(
            [RuleSpec(name="hot", metric="m", kind="threshold",
                      op=">", value=0.0)],
            history_size=4,
        )
        for i in range(10):
            # Alternate breach/clear: two transitions per pair of evals.
            engine.evaluate({"m": 1.0 if i % 2 == 0 else -1.0}, float(i))
        assert len(engine.history) == 4
        assert engine.transitions == 10

    def test_export_mirrors_states_into_registry(self):
        engine = AlertEngine([
            RuleSpec(name="hot", metric="m", kind="threshold",
                     op=">", value=0.0),
            RuleSpec(name="cold", metric="m", kind="threshold",
                     op="<", value=-10.0),
        ])
        engine.evaluate({"m": 1.0}, 0.0)
        registry = MetricsRegistry()
        engine.export(registry)
        values = registry.counter_values()
        assert values['health_rule_state{rule="hot"}'] == 2.0
        assert values['health_rule_state{rule="cold"}'] == 0.0
        assert values["health_alerts_firing"] == 1.0
        assert values["health_rule_transitions"] == 1.0


class TestDrift:
    def test_tv_distance_hand_computed(self):
        # 0.5 * (|0.30-0.25| + |0.50-0.55|) = 0.05
        assert tv_distance(
            [30, 50, 15, 5], [25, 55, 15, 5]
        ) == pytest.approx(0.05)
        # Normalization: percentages and fractions agree.
        assert tv_distance(
            [0.30, 0.50, 0.15, 0.05], [25, 55, 15, 5]
        ) == pytest.approx(0.05)
        assert tv_distance([30, 50, 15, 5], [30, 50, 15, 5]) == 0.0
        assert tv_distance([1, 0, 0, 0], [0, 1, 0, 0]) == pytest.approx(1.0)

    def test_tv_distance_rejects_bad_inputs(self):
        with pytest.raises(HealthError, match="shape"):
            tv_distance([1, 2], [1, 2, 3])
        with pytest.raises(HealthError, match="mass"):
            tv_distance([0, 0], [1, 1])

    def test_reference_validation(self):
        with pytest.raises(HealthError):
            DriftReference(gpu_hours_pct=(50.0, 50.0))
        with pytest.raises(HealthError):
            DriftReference(gpu_hours_pct=(50.0, 60.0, -5.0, 1.0))
        ref = DriftReference.paper()
        assert sum(ref.gpu_hours_pct) == pytest.approx(100.0, abs=1.0)

    def test_rel_err_uses_floor_for_tiny_modes(self):
        # Region 4 holds 0.5 % — below the 1-point floor, so its error is
        # measured in absolute points against the floor, not as a ratio.
        detector = DriftDetector(DriftReference(
            gpu_hours_pct=(60.0, 30.0, 9.5, 0.5)
        ))
        report = detector.check(
            SimpleNamespace(gpu_hours_pct=(60.0, 30.0, 9.0, 1.0))
        )
        assert report.rel_err[3] == pytest.approx(0.5 / REL_ERR_FLOOR_PCT)
        # Region 3 sits above the floor: a plain relative error.
        assert report.rel_err[2] == pytest.approx(0.5 / 9.5)
        assert report.tv == pytest.approx(0.005)

    def test_export_writes_per_region_gauges(self):
        detector = DriftDetector()
        detector.check(SimpleNamespace(gpu_hours_pct=(25.0, 50.0, 20.0, 5.0)))
        registry = MetricsRegistry()
        detector.export(registry)
        values = registry.counter_values()
        assert "mode_drift_tv" in values
        assert 'mode_share_pct{region="1"}' in values
        assert values['mode_share_pct{region="2"}'] == pytest.approx(50.0)


class TestHealthServer:
    def _degraded_monitor(self) -> HealthMonitor:
        monitor = HealthMonitor(
            [RuleSpec(name="hot", metric="m", kind="threshold",
                      op=">", value=0.0, severity="critical")],
            drift=False,
        )
        monitor.observe({"m": 1.0}, 0.0)
        return monitor

    def test_endpoints_round_trip(self):
        monitor = self._degraded_monitor()
        with HealthServer(monitor=monitor) as srv:
            status, body = fetch_url(srv.url + "/metrics")
            assert status == 200
            assert 'health_rule_state{rule="hot"} 2' in body

            status, body = fetch_url(srv.url + "/health")
            assert status == 503
            doc = json.loads(body)
            assert doc["status"] == "degraded"
            (rule,) = doc["rules"]
            assert rule["name"] == "hot"
            assert rule["state"] == "firing"

            status, body = fetch_url(srv.url + "/alerts")
            assert status == 200
            doc = json.loads(body)
            assert [r["name"] for r in doc["firing"]] == ["hot"]
            assert [e["transition"] for e in doc["history"]] == ["firing"]

            assert fetch_url(srv.url + "/")[0] == 200
            assert fetch_url(srv.url + "/nope")[0] == 404

    def test_health_turns_ok_after_resolution(self):
        monitor = self._degraded_monitor()
        with HealthServer(monitor=monitor) as srv:
            monitor.observe({"m": -1.0}, 10.0)
            status, body = fetch_url(srv.url + "/health")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_close_releases_port_and_rebinds(self):
        srv = HealthServer(registry=MetricsRegistry()).start()
        port = srv.port
        srv.close()
        srv.close()   # idempotent
        with pytest.raises(HealthError):
            srv.port
        with pytest.raises(HealthError):
            fetch_url(f"http://127.0.0.1:{port}/metrics", timeout_s=0.5)
        # The listening socket is really gone: the port rebinds at once.
        with HealthServer(registry=MetricsRegistry(), port=port) as srv2:
            assert srv2.port == port
            assert fetch_url(srv2.url + "/metrics")[0] == 200


class TestMonitorAndDashboard:
    def test_seeded_drift_fires_and_check_exits_nonzero(
        self, fleet, tmp_path, capsys
    ):
        # A reference with a shifted mode mix the live fleet can never
        # match: mode_drift must fire deterministically and stay firing.
        log, chunks = fleet
        monitor = HealthMonitor(reference=DriftReference(
            gpu_hours_pct=(5.0, 10.0, 25.0, 60.0), label="shifted mix",
        ))
        _drained(log, chunks, monitor)
        assert monitor.alerts.evaluations > 0
        assert any(
            e["rule"] == "mode_drift" and e["transition"] == "firing"
            for e in monitor.events
        )
        assert not monitor.healthy

        with HealthServer(monitor=monitor) as srv:
            status, body = fetch_url(srv.url + "/health")
            assert status == 503
            doc = json.loads(body)
            assert doc["drift"]["report"]["tv"] > 0.1
            assert cli_main(
                ["obs", "alerts", "--url", srv.url, "--check"]
            ) == 1
            out = capsys.readouterr().out
            assert "mode_drift" in out
            assert "status degraded" in out

        # The same verdict from a persisted health.json.
        path = tmp_path / "health.json"
        path.write_text(json.dumps({
            "schema": 1,
            "health": monitor.to_health_dict(),
            "alerts": monitor.to_alerts_dict(),
        }))
        assert cli_main(["obs", "alerts", str(path), "--check"]) == 1
        assert cli_main(["obs", "alerts", str(path)]) == 0   # report-only
        capsys.readouterr()

    def test_matching_reference_stays_healthy(self, fleet):
        log, chunks = fleet
        # Pin the reference to this fleet's own batch decomposition: the
        # drained stream converges onto it, so mode_drift must resolve.
        probe = HealthMonitor(drift=False)
        engine = _drained(log, chunks, probe)
        from repro.core import decompose_modes

        reference = DriftReference.from_table(
            decompose_modes(engine.cube(copy=True))
        )
        monitor = HealthMonitor(reference=reference)
        _drained(log, chunks, monitor)
        assert monitor.drift.last_report.tv < 0.01
        states = {r["name"]: r["state"] for r in monitor.alerts.rule_states()}
        assert states["mode_drift"] == "inactive"
        assert states["stream_samples_absent"] == "inactive"

    def test_obs_alerts_needs_exactly_one_source(self, capsys):
        assert cli_main(["obs", "alerts"]) == 2
        assert cli_main(
            ["obs", "alerts", "x.json", "--url", "http://127.0.0.1:1"]
        ) == 2
        capsys.readouterr()

    def test_obs_summary_url_reads_live_metrics(self, capsys):
        registry = MetricsRegistry()
        registry.gauge("stream_samples_in").set(42.0)
        with HealthServer(registry=registry) as srv:
            assert cli_main(["obs", "summary", "--url", srv.url]) == 0
        out = capsys.readouterr().out
        assert "stream_samples_in" in out
        assert "42" in out

    def test_dashboard_renders_sequential_frames(self, fleet):
        log, chunks = fleet
        monitor = HealthMonitor()
        engine = _drained(log, chunks, monitor)
        snap = engine.snapshot()
        buf = io.StringIO()
        dashboard = Dashboard(stream=buf)
        dashboard.update(snap, monitor)
        dashboard.update(snap, monitor)
        text = buf.getvalue()
        assert text.count("repro stream — live health") == 2
        assert "=" * 72 in text                    # non-tty frame separator
        assert "mode shares vs paper Table IV" in text
        assert "alerts:" in text
        assert "\x1b[" not in text                 # no ANSI off-terminal
