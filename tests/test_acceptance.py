"""Repository acceptance test: the paper's headline claims, end to end.

One scaled campaign flows through every layer — scheduler, telemetry,
join, decomposition, characterization, projection, selection — and the
paper's discussion-section conclusions are asserted in one place.  If
this test passes, the reproduction stands.
"""

import numpy as np
import pytest

from repro import constants, units
from repro.core import (
    decompose_modes,
    join_campaign,
    measured_factors,
    project_savings,
)
from repro.core.heatmap import table6_selection
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator

CAMPAIGN_MWH = constants.CAMPAIGN_GPU_ENERGY_MWH


@pytest.fixture(scope="module")
def pipeline():
    mix = default_mix(fleet_nodes=64)
    log = SlurmSimulator(mix).run(units.days(3), rng=0)
    gen = FleetTelemetryGenerator(log, mix, seed=1000)
    cube = join_campaign(gen.chunks(), log)
    freq = measured_factors("frequency")
    power = measured_factors("power")
    return log, cube, freq, power


class TestHeadlines:
    """Each method maps to one sentence of the paper's conclusions."""

    def test_gpu_power_proxies_resource_utilization(self, pipeline):
        # "GPU power usage represents GPU resource utilization and the
        # nature of workloads": the four modes exist with Table IV shares.
        _log, cube, _f, _p = pipeline
        shares = decompose_modes(cube).gpu_hours_pct
        for ours, paper in zip(
            shares, constants.PAPER_REGION_GPU_HOURS_PCT
        ):
            assert ours == pytest.approx(paper, abs=6.0)

    def test_significant_savings_without_slowdown(self, pipeline):
        # "For certain resource-constrained jobs, significant energy
        # savings (up to 8.5 %) can be achieved without compromising
        # performance."
        _log, cube, freq, _p = pipeline
        table = project_savings(
            cube, freq, campaign_energy_mwh=CAMPAIGN_MWH
        )
        best = table.best_no_slowdown_row
        assert best.savings_no_slowdown_pct > 6.0
        # ... which translates to four-digit MWh at campaign scale
        # (paper: 1438 MWh).
        assert (
            best.savings_no_slowdown_pct / 100 * CAMPAIGN_MWH > 1000.0
        )

    def test_more_savings_if_slowdown_tolerated(self, pipeline):
        # "Savings increase ... if a performance penalty is tolerated."
        _log, cube, freq, _p = pipeline
        table = project_savings(
            cube, freq, campaign_energy_mwh=CAMPAIGN_MWH
        )
        best = table.best_row
        no_slowdown = table.best_no_slowdown_row
        assert best.savings_pct >= no_slowdown.savings_no_slowdown_pct
        assert best.runtime_increase_pct > 0.0

    def test_frequency_capping_is_the_better_knob(self, pipeline):
        # "Applying a frequency cap to applications provides maximum
        # potential savings" (vs power capping).
        _log, cube, freq, power = pipeline
        t_f = project_savings(cube, freq)
        t_p = project_savings(cube, power)
        assert t_f.best_row.savings_pct > 2 * max(
            t_p.best_row.savings_pct, 0.1
        )

    def test_targeted_capping_retains_most_savings(self, pipeline):
        # "Power management need not be applied at the system scale but
        # can be applied to selected domains and job sizes."
        _log, cube, freq, _p = pipeline
        selected, domains = table6_selection(cube, freq)
        full = project_savings(
            cube, freq, campaign_energy_mwh=CAMPAIGN_MWH
        )
        part = project_savings(
            selected, freq,
            campaign_energy_mwh=CAMPAIGN_MWH, reference_cube=cube,
        )
        assert len(domains) <= 6
        assert part.best_row.total_mwh > 0.6 * full.best_row.total_mwh

    def test_energy_is_where_the_large_jobs_are(self, pipeline):
        # Fig 10: "most of the science domain primary energy utilization
        # comes from jobs that belong to job sizes A and B."
        _log, cube, _f, _p = pipeline
        busy = cube.busy_view()
        by_class = busy.energy_j.sum(axis=(0, 2))
        idx_a = busy.classes.index("A")
        idx_b = busy.classes.index("B")
        assert (by_class[idx_a] + by_class[idx_b]) > 0.5 * by_class.sum()

    def test_projection_is_an_upper_bound_construction(self, pipeline):
        # The method only credits regions the benchmarks showed savings
        # for: zeroing regions 1 and 4 changes nothing.
        _log, cube, freq, _p = pipeline
        table = project_savings(cube, freq)
        row = table.best_row
        region = cube.region_energy_j()
        reconstructed = units.to_mwh(
            region[1] * (1 - freq.energy_at(row.cap)[1])
            + region[2] * (1 - freq.energy_at(row.cap)[0])
        )
        assert row.total_mwh == pytest.approx(reconstructed, rel=1e-9)

    def test_campaign_energy_accounting_closes(self, pipeline):
        # No energy appears or vanishes between layers.
        log, cube, _f, _p = pipeline
        mix = default_mix(fleet_nodes=log.n_nodes)
        gen = FleetTelemetryGenerator(log, mix, seed=1000)
        store = gen.generate()
        assert cube.total_energy_j == pytest.approx(
            store.gpu_energy_j(), rel=1e-6
        )
        assert cube.region_energy_j().sum() == pytest.approx(
            cube.total_energy_j, rel=1e-9
        )
        assert np.all(cube.energy_j >= 0)
