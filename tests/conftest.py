"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.gpu import GPUDevice, KernelSpec, MI250XSpec, default_spec


@pytest.fixture
def spec() -> MI250XSpec:
    return default_spec()


@pytest.fixture
def device(spec) -> GPUDevice:
    return GPUDevice(spec)


def make_vai_kernel(intensity: float, volume_bytes: float = 64e9) -> KernelSpec:
    """A VAI-style HBM-resident kernel at a given arithmetic intensity."""
    if intensity == 0:
        return KernelSpec(
            "stream-copy", flops=0.0, hbm_bytes=volume_bytes, issue_bw_factor=1.05
        )
    return KernelSpec(
        f"vai-{intensity:g}",
        flops=intensity * volume_bytes,
        hbm_bytes=volume_bytes,
        issue_bw_factor=1.05,
    )


def make_membench_kernel(
    working_set_bytes: float, volume_bytes: float = 64e9
) -> KernelSpec:
    """A GPU-benches-style pure-load kernel cycling a working set."""
    return KernelSpec(
        "membench",
        flops=0.0,
        hbm_bytes=volume_bytes,
        working_set_bytes=working_set_bytes,
        issue_bw_factor=2.7,
    )


@pytest.fixture
def vai_kernel():
    return make_vai_kernel


@pytest.fixture
def membench_kernel():
    return make_membench_kernel


@pytest.fixture
def freq_caps_hz():
    return [units.mhz(m) for m in (1500, 1300, 1100, 900, 700)]


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
