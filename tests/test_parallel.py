"""Edge cases of the process-parallel map utilities.

Complements the smoke tests in ``test_units_rng_parallel.py``: the
degenerate shapes (empty input, single chunk, more chunks than items)
and the determinism contract across worker counts, with and without
observability enabled.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.parallel import chunked_map, partition


def _mul(a, b):
    return a * b


def _boom(x):
    raise RuntimeError(f"worker failed on {x}")


@pytest.fixture(autouse=True)
def _obs_disabled():
    runtime.disable()
    yield
    runtime.disable()


class TestPartitionEdges:
    def test_zero_items_yields_no_chunks(self):
        assert partition(0, 1) == []
        assert partition(0, 16) == []

    def test_single_chunk_covers_everything(self):
        assert partition(7, 1) == [(0, 7)]

    def test_more_chunks_than_items_never_emits_empties(self):
        bounds = partition(3, 10)
        assert bounds == [(0, 1), (1, 2), (2, 3)]
        assert all(hi > lo for lo, hi in bounds)

    def test_one_item(self):
        assert partition(1, 4) == [(0, 1)]

    def test_chunks_tile_the_range_exactly(self):
        for n_items in (1, 5, 16, 97):
            for n_chunks in (1, 2, 3, 7, 200):
                bounds = partition(n_items, n_chunks)
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n_items
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo
                sizes = [hi - lo for lo, hi in bounds]
                assert max(sizes) - min(sizes) <= 1


class TestChunkedMapEdges:
    def test_empty_input_returns_empty(self):
        assert chunked_map(_mul, [], workers=1) == []
        assert chunked_map(_mul, [], workers=4) == []

    def test_single_chunk(self):
        assert chunked_map(_mul, [(3, 4)], workers=2) == [12]

    def test_worker_count_invariance(self):
        chunks = [(i, i + 1) for i in range(9)]
        expected = [i * (i + 1) for i in range(9)]
        for workers in (0, 1, 2, 3, 8):
            assert chunked_map(_mul, chunks, workers=workers) == expected

    def test_more_workers_than_chunks(self):
        assert chunked_map(_mul, [(2, 3), (4, 5)], workers=16) == [6, 20]

    def test_worker_error_propagates(self):
        with pytest.raises(RuntimeError, match="worker failed"):
            chunked_map(_boom, [(1,)], workers=2)
        with pytest.raises(RuntimeError, match="worker failed"):
            chunked_map(_boom, [(1,)], workers=1)

    def test_worker_count_invariance_with_obs_enabled(self):
        chunks = [(i, 2) for i in range(5)]
        expected = [2 * i for i in range(5)]
        for workers in (1, 3):
            runtime.enable()
            assert chunked_map(_mul, chunks, workers=workers) == expected
            runtime.disable()

    def test_empty_input_with_obs_enabled(self):
        runtime.enable()
        assert chunked_map(_mul, [], workers=2) == []
