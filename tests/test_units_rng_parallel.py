"""Tests for the foundational utility modules."""

import numpy as np
import pytest

from repro import units
from repro.parallel import chunked_map, default_workers, partition
from repro.rng import derive_seed, ensure_rng, spawn


class TestUnits:
    def test_roundtrips(self):
        assert units.to_mhz(units.mhz(1700)) == 1700
        assert units.to_tflops(units.tflops(23.9)) == pytest.approx(23.9)
        assert units.to_gbps(units.gbps(1600)) == pytest.approx(1600)
        assert units.to_mwh(units.mwh(16820)) == pytest.approx(16820)
        assert units.to_hours(units.hours(12)) == 12
        assert units.to_days(units.days(91)) == 91
        assert units.to_mib(units.mib(16)) == 16

    def test_energy_chain(self):
        # 1 MWh = 1000 kWh = 1e6 Wh = 3.6e9 J.
        assert units.mwh(1) == pytest.approx(3.6e9)
        assert units.to_kwh(units.mwh(1)) == pytest.approx(1000)
        assert units.to_wh(units.wh(5)) == pytest.approx(5)

    def test_fmt_si(self):
        assert units.fmt_si(3.0e12, "B/s") == "3 TB/s"
        assert units.fmt_si(1.5e3, "W") == "1.5 kW"
        assert units.fmt_si(0.5, "W") == "0.5 W"


class TestRng:
    def test_ensure_rng_is_deterministic_for_none(self):
        a = ensure_rng(None).integers(0, 1 << 30, 5)
        b = ensure_rng(None).integers(0, 1 << 30, 5)
        np.testing.assert_array_equal(a, b)

    def test_ensure_rng_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_spawn_independent_children(self):
        children = spawn(0, 3)
        draws = [c.integers(0, 1 << 30, 4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        # Re-spawning reproduces the same streams.
        again = spawn(0, 3)
        np.testing.assert_array_equal(
            draws[0], again[0].integers(0, 1 << 30, 4)
        )

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(0, -1)

    def test_derive_seed_stable_and_distinct(self):
        a = derive_seed(7, "job", 10, "node", 3)
        b = derive_seed(7, "job", 10, "node", 3)
        c = derive_seed(7, "job", 10, "node", 4)
        d = derive_seed(8, "job", 10, "node", 3)
        assert a == b
        assert a != c and a != d
        assert 0 <= a < 2**63


class TestParallel:
    def test_partition_balanced(self):
        bounds = partition(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        assert partition(2, 5) == [(0, 1), (1, 2)]
        assert partition(0, 3) == []

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition(-1, 2)
        with pytest.raises(ValueError):
            partition(5, 0)

    def test_chunked_map_serial(self):
        out = chunked_map(lambda a, b: a + b, [(1, 2), (3, 4)])
        assert out == [3, 7]

    def test_chunked_map_parallel_matches_serial(self):
        chunks = [(i,) for i in range(8)]
        serial = chunked_map(_square, chunks, workers=1)
        parallel = chunked_map(_square, chunks, workers=2)
        assert serial == parallel

    def test_default_workers_positive(self):
        assert default_workers() >= 1


def _square(x):
    return x * x
