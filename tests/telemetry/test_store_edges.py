"""TelemetryStore edge cases: empty, single-sample, unordered, empty
filter windows (ISSUE PR 2 satellite)."""

import numpy as np
import pytest

from repro import constants
from repro.errors import TelemetryError
from repro.telemetry import TelemetryStore
from repro.telemetry.schema import TelemetryChunk

DT = constants.TELEMETRY_INTERVAL_S


def mk_chunk(times, nodes, gpu=200.0, cpu=350.0):
    times = np.asarray(times, dtype=np.float64)
    n = len(times)
    return TelemetryChunk(
        time_s=times,
        node_id=np.asarray(nodes, dtype=np.int32),
        gpu_power_w=np.full(
            (n, constants.GPUS_PER_NODE), gpu, dtype=np.float32
        ),
        cpu_power_w=np.full(n, cpu, dtype=np.float32),
    )


def empty_chunk():
    return mk_chunk([], [])


def test_empty_chunk_store():
    store = TelemetryStore(empty_chunk())
    assert len(store) == 0
    assert store.gpu_hours == 0.0
    assert store.gpu_energy_j() == 0.0
    assert store.cpu_energy_j() == 0.0
    assert store.gpu_power_flat.shape == (0,)
    assert store.nodes.shape == (0,)
    # Filtering an empty store stays empty, never raises.
    assert len(store.filter_time(0.0, 100.0)) == 0
    assert len(store.filter_nodes([0, 1])) == 0


def test_empty_store_roundtrips_through_npz(tmp_path):
    path = tmp_path / "empty.npz"
    TelemetryStore(empty_chunk()).save(path)
    loaded = TelemetryStore.load(path)
    assert len(loaded) == 0
    assert loaded.interval_s == constants.TELEMETRY_INTERVAL_S


def test_single_sample_store():
    store = TelemetryStore(mk_chunk([5 * DT], [3], gpu=150.0, cpu=100.0))
    assert len(store) == 1
    assert store.gpu_hours == constants.GPUS_PER_NODE * DT / 3600.0
    assert store.gpu_energy_j() == pytest.approx(
        150.0 * constants.GPUS_PER_NODE * DT
    )
    assert store.mean_gpu_power_w() == pytest.approx(150.0)
    assert np.array_equal(store.nodes, [3])
    # The sample sits on the half-open [t0, t1) boundary convention.
    assert len(store.filter_time(5 * DT, 6 * DT)) == 1
    assert len(store.filter_time(4 * DT, 5 * DT)) == 0


def test_non_monotonic_timestamps_are_preserved_and_filterable():
    times = [3 * DT, 0.0, 2 * DT, 0.0, DT]
    nodes = [0, 1, 0, 0, 1]
    store = TelemetryStore(mk_chunk(times, nodes))
    # The store is order-agnostic: no sorting, no dedup on construction.
    assert np.array_equal(store.chunk.time_s, times)
    window = store.filter_time(0.0, 2 * DT)
    assert len(window) == 3
    assert set(window.chunk.time_s) == {0.0, DT}
    # Aggregates count every row, duplicates included.
    assert store.gpu_hours == pytest.approx(
        5 * constants.GPUS_PER_NODE * DT / 3600.0
    )


def test_empty_filter_windows():
    store = TelemetryStore(mk_chunk([0.0, DT, 2 * DT], [0, 1, 2]))
    assert len(store.filter_time(100 * DT, 200 * DT)) == 0
    # Zero-width windows select nothing (not an error)...
    assert len(store.filter_time(DT, DT)) == 0
    assert len(store.filter_nodes([])) == 0
    assert len(store.filter_nodes([99])) == 0
    # Chained empty filters compose.
    assert len(store.filter_nodes([0]).filter_time(DT, 2 * DT)) == 0


def test_inverted_time_range_raises():
    # ...but an inverted range is a caller bug, not an empty window:
    # silently returning nothing hid swapped-argument mistakes.
    store = TelemetryStore(mk_chunk([0.0, DT, 2 * DT], [0, 1, 2]))
    with pytest.raises(TelemetryError, match="negative time range"):
        store.filter_time(2 * DT, 0.0)
    with pytest.raises(TelemetryError, match="negative time range"):
        store.filter_time(0.0, -DT)


def test_empty_mask_filter_preserves_shape_and_aggregates():
    store = TelemetryStore(mk_chunk([0.0, DT, 2 * DT], [0, 1, 2]))
    view = store.filter_nodes([99])
    assert len(view) == 0
    assert view.chunk.gpu_power_w.shape == (0, constants.GPUS_PER_NODE)
    assert view.gpu_energy_j() == 0.0
    assert view.cpu_energy_j() == 0.0
    assert view.interval_s == store.interval_s


def test_full_mask_filter_is_the_identity():
    store = TelemetryStore(
        mk_chunk([0.0, DT, 2 * DT], [0, 1, 2], gpu=175.0, cpu=90.0)
    )
    view = store.filter_time(0.0, 3 * DT)
    assert len(view) == len(store)
    np.testing.assert_array_equal(view.chunk.time_s, store.chunk.time_s)
    np.testing.assert_array_equal(
        view.chunk.gpu_power_w, store.chunk.gpu_power_w
    )
    assert view.gpu_energy_j() == store.gpu_energy_j()


def test_filtered_view_roundtrips_through_save_load(tmp_path):
    store = TelemetryStore(
        mk_chunk([0.0, DT, 2 * DT, 3 * DT], [0, 1, 0, 1], gpu=220.0)
    )
    view = store.filter_nodes([1])
    path = tmp_path / "view.npz"
    view.save(path)
    loaded = TelemetryStore.load(path)
    assert len(loaded) == 2
    np.testing.assert_array_equal(loaded.chunk.time_s, view.chunk.time_s)
    np.testing.assert_array_equal(loaded.chunk.node_id, view.chunk.node_id)
    assert loaded.gpu_energy_j() == view.gpu_energy_j()
    assert loaded.interval_s == view.interval_s


class TestColumnarDirectory:
    def test_roundtrip_is_memmapped_and_equal(self, tmp_path):
        store = TelemetryStore(
            mk_chunk([0.0, DT, 2 * DT], [0, 1, 2], gpu=240.0, cpu=110.0)
        )
        store.save_columnar(tmp_path / "cols")
        loaded = TelemetryStore.load(tmp_path / "cols")
        assert isinstance(loaded.chunk.time_s, np.memmap)
        np.testing.assert_array_equal(
            loaded.chunk.gpu_power_w, store.chunk.gpu_power_w
        )
        assert loaded.gpu_energy_j() == store.gpu_energy_j()
        assert loaded.interval_s == store.interval_s

    def test_filters_work_on_memmapped_columns(self, tmp_path):
        store = TelemetryStore(mk_chunk([0.0, DT, 2 * DT], [0, 1, 0]))
        store.save_columnar(tmp_path / "cols")
        loaded = TelemetryStore.load(tmp_path / "cols")
        assert len(loaded.filter_nodes([0])) == 2
        assert len(loaded.filter_time(0.0, DT)) == 1

    def test_directory_without_meta_rejected(self, tmp_path):
        (tmp_path / "cols").mkdir()
        with pytest.raises(TelemetryError, match="missing meta.json"):
            TelemetryStore.load(tmp_path / "cols")

    def test_unknown_format_rejected(self, tmp_path):
        d = tmp_path / "cols"
        d.mkdir()
        (d / "meta.json").write_text('{"format": "something-else"}')
        with pytest.raises(TelemetryError, match="unknown format"):
            TelemetryStore.load(d)


def test_invalid_interval_rejected():
    with pytest.raises(TelemetryError):
        TelemetryStore(empty_chunk(), interval_s=0.0)
    with pytest.raises(TelemetryError):
        TelemetryStore(empty_chunk(), interval_s=-1.0)
