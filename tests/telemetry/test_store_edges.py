"""TelemetryStore edge cases: empty, single-sample, unordered, empty
filter windows (ISSUE PR 2 satellite)."""

import numpy as np
import pytest

from repro import constants
from repro.errors import TelemetryError
from repro.telemetry import TelemetryStore
from repro.telemetry.schema import TelemetryChunk

DT = constants.TELEMETRY_INTERVAL_S


def mk_chunk(times, nodes, gpu=200.0, cpu=350.0):
    times = np.asarray(times, dtype=np.float64)
    n = len(times)
    return TelemetryChunk(
        time_s=times,
        node_id=np.asarray(nodes, dtype=np.int32),
        gpu_power_w=np.full(
            (n, constants.GPUS_PER_NODE), gpu, dtype=np.float32
        ),
        cpu_power_w=np.full(n, cpu, dtype=np.float32),
    )


def empty_chunk():
    return mk_chunk([], [])


def test_empty_chunk_store():
    store = TelemetryStore(empty_chunk())
    assert len(store) == 0
    assert store.gpu_hours == 0.0
    assert store.gpu_energy_j() == 0.0
    assert store.cpu_energy_j() == 0.0
    assert store.gpu_power_flat.shape == (0,)
    assert store.nodes.shape == (0,)
    # Filtering an empty store stays empty, never raises.
    assert len(store.filter_time(0.0, 100.0)) == 0
    assert len(store.filter_nodes([0, 1])) == 0


def test_empty_store_roundtrips_through_npz(tmp_path):
    path = tmp_path / "empty.npz"
    TelemetryStore(empty_chunk()).save(path)
    loaded = TelemetryStore.load(path)
    assert len(loaded) == 0
    assert loaded.interval_s == constants.TELEMETRY_INTERVAL_S


def test_single_sample_store():
    store = TelemetryStore(mk_chunk([5 * DT], [3], gpu=150.0, cpu=100.0))
    assert len(store) == 1
    assert store.gpu_hours == constants.GPUS_PER_NODE * DT / 3600.0
    assert store.gpu_energy_j() == pytest.approx(
        150.0 * constants.GPUS_PER_NODE * DT
    )
    assert store.mean_gpu_power_w() == pytest.approx(150.0)
    assert np.array_equal(store.nodes, [3])
    # The sample sits on the half-open [t0, t1) boundary convention.
    assert len(store.filter_time(5 * DT, 6 * DT)) == 1
    assert len(store.filter_time(4 * DT, 5 * DT)) == 0


def test_non_monotonic_timestamps_are_preserved_and_filterable():
    times = [3 * DT, 0.0, 2 * DT, 0.0, DT]
    nodes = [0, 1, 0, 0, 1]
    store = TelemetryStore(mk_chunk(times, nodes))
    # The store is order-agnostic: no sorting, no dedup on construction.
    assert np.array_equal(store.chunk.time_s, times)
    window = store.filter_time(0.0, 2 * DT)
    assert len(window) == 3
    assert set(window.chunk.time_s) == {0.0, DT}
    # Aggregates count every row, duplicates included.
    assert store.gpu_hours == pytest.approx(
        5 * constants.GPUS_PER_NODE * DT / 3600.0
    )


def test_empty_filter_windows():
    store = TelemetryStore(mk_chunk([0.0, DT, 2 * DT], [0, 1, 2]))
    assert len(store.filter_time(100 * DT, 200 * DT)) == 0
    # Inverted and zero-width windows select nothing (not an error).
    assert len(store.filter_time(2 * DT, 0.0)) == 0
    assert len(store.filter_time(DT, DT)) == 0
    assert len(store.filter_nodes([])) == 0
    assert len(store.filter_nodes([99])) == 0
    # Chained empty filters compose.
    assert len(store.filter_nodes([0]).filter_time(DT, 2 * DT)) == 0


def test_invalid_interval_rejected():
    with pytest.raises(TelemetryError):
        TelemetryStore(empty_chunk(), interval_s=0.0)
    with pytest.raises(TelemetryError):
        TelemetryStore(empty_chunk(), interval_s=-1.0)
