"""Unit tests for power profiles."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.profiles import (
    PROFILES,
    PowerProfile,
    ProfilePhase,
    region_shares,
)


class TestValidation:
    def test_phase_validation(self):
        with pytest.raises(TelemetryError):
            ProfilePhase(-1.0, 1.0, 0.5)
        with pytest.raises(TelemetryError):
            ProfilePhase(100.0, 1.0, 0.0)
        with pytest.raises(TelemetryError):
            ProfilePhase(100.0, 1.0, 0.5, dwell_mean_s=0.0)

    def test_profile_needs_phases(self):
        with pytest.raises(TelemetryError):
            PowerProfile("empty", ())


class TestLibrary:
    def test_all_referenced_profiles_exist(self):
        from repro.scheduler.workload import DEFAULT_DOMAINS

        for d in DEFAULT_DOMAINS:
            assert d.profile in PROFILES

    def test_weights_normalized(self):
        for p in PROFILES.values():
            assert p.weights.sum() == pytest.approx(1.0)

    def test_profile_families_sit_in_their_regions(self):
        # Dominant region by family: latency -> 1, memory -> 2,
        # compute -> 3 (paper Fig 9 panels).
        assert np.argmax(region_shares(PROFILES["latency_bound"])) == 0
        assert np.argmax(region_shares(PROFILES["memory_bound"])) == 1
        assert np.argmax(region_shares(PROFILES["compute_heavy"])) == 2

    def test_compute_profiles_have_boost_mass(self):
        assert region_shares(PROFILES["compute_heavy"])[3] > 0.01
        assert region_shares(PROFILES["latency_bound"])[3] == 0.0

    def test_multi_zone_spans_regions(self):
        shares = region_shares(PROFILES["multi_zone"])
        assert np.count_nonzero(shares > 0.05) >= 3


class TestSampleTrace:
    def test_shape_and_bounds(self):
        p = PROFILES["memory_bound"]
        trace = p.sample_trace(500, 15.0, rng=0, n_streams=3)
        assert trace.shape == (3, 500)
        assert (trace >= 0).all()

    def test_stationary_mean_recovered(self):
        p = PROFILES["compute_heavy"]
        trace = p.sample_trace(40000, 15.0, rng=1, n_streams=4)
        assert trace.mean() == pytest.approx(p.mean_power_w, rel=0.05)

    def test_time_shares_match_weights(self):
        # The dwell-weighted draw must realize `weight` as the *time*
        # share even though phases have very different dwell times.
        p = PROFILES["compute_heavy"]
        trace = p.sample_trace(60000, 15.0, rng=2, n_streams=4)
        boost_frac = (trace > 560.0).mean()
        expected = region_shares(p)[3]
        assert boost_frac == pytest.approx(expected, rel=0.3)

    def test_deterministic(self):
        p = PROFILES["multi_zone"]
        a = p.sample_trace(100, 15.0, rng=7)
        b = p.sample_trace(100, 15.0, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_args(self):
        p = PROFILES["multi_zone"]
        with pytest.raises(TelemetryError):
            p.sample_trace(0, 15.0)
        with pytest.raises(TelemetryError):
            p.sample_trace(10, 15.0, n_streams=0)
