"""Tests for fleet telemetry generation and the store."""

import numpy as np
import pytest

from repro import constants, units
from repro.errors import TelemetryError
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator, TelemetryStore
from repro.telemetry.schema import TelemetryChunk


@pytest.fixture(scope="module")
def fleet():
    mix = default_mix(fleet_nodes=24)
    log = SlurmSimulator(mix).run(units.days(1), rng=2)
    gen = FleetTelemetryGenerator(log, mix, seed=9)
    return log, gen, gen.generate()


class TestGenerator:
    def test_sample_count(self, fleet):
        log, gen, store = fleet
        expected = int(units.days(1) / constants.TELEMETRY_INTERVAL_S)
        assert gen.n_samples == expected
        assert len(store) == expected * log.n_nodes

    def test_idle_nodes_draw_idle_power(self, fleet):
        log, gen, store = fleet
        # Find a node-time with no allocation and check it reads ~idle.
        times = np.arange(gen.n_samples) * constants.TELEMETRY_INTERVAL_S
        for node in range(log.n_nodes):
            grid = log.job_id_grid(times, node)
            if (grid == 0).any():
                chunk = gen.node_chunk(node)
                idle_samples = chunk.gpu_power_w[grid == 0]
                assert idle_samples.mean() == pytest.approx(
                    constants.GPU_IDLE_POWER_W, abs=3.0
                )
                return
        pytest.skip("no idle interval in this fleet")

    def test_busy_nodes_draw_profile_power(self, fleet):
        log, gen, store = fleet
        assert store.mean_gpu_power_w() > 150.0

    def test_deterministic_per_node(self, fleet):
        _log, gen, _store = fleet
        a = gen.node_chunk(3)
        b = gen.node_chunk(3)
        np.testing.assert_array_equal(a.gpu_power_w, b.gpu_power_w)

    def test_chunked_equals_materialized(self, fleet):
        log, gen, store = fleet
        chunks = list(gen.chunks(nodes_per_chunk=7))
        combined = TelemetryChunk.concatenate(chunks)
        # Same rows, possibly different order: compare sorted totals.
        assert len(combined) == len(store)
        assert combined.gpu_power_w.sum() == pytest.approx(
            store.chunk.gpu_power_w.sum(), rel=1e-6
        )

    def test_unknown_domain_rejected(self, fleet):
        log, _gen, _store = fleet
        from repro.scheduler.workload import WorkloadMix, DEFAULT_DOMAINS

        wrong = WorkloadMix(DEFAULT_DOMAINS[:1], fleet_nodes=log.n_nodes)
        if any(j.domain != DEFAULT_DOMAINS[0].name for j in log.jobs):
            with pytest.raises(TelemetryError):
                FleetTelemetryGenerator(log, wrong)


class TestStore:
    def test_energy_accounting(self, fleet):
        _log, _gen, store = fleet
        expected = (
            store.chunk.gpu_power_w.sum() * constants.TELEMETRY_INTERVAL_S
        )
        assert store.gpu_energy_j() == pytest.approx(expected, rel=1e-6)
        assert store.gpu_energy_mwh() == pytest.approx(
            units.to_mwh(expected), rel=1e-6
        )

    def test_gpu_hours(self, fleet):
        _log, _gen, store = fleet
        assert store.gpu_hours == pytest.approx(
            len(store) * 4 * 15.0 / 3600.0
        )

    def test_filters(self, fleet):
        _log, _gen, store = fleet
        half = store.filter_time(0.0, units.hours(12))
        assert len(half) < len(store)
        assert (half.chunk.time_s < units.hours(12)).all()
        one_node = store.filter_nodes([5])
        assert set(one_node.chunk.node_id.tolist()) == {5}

    def test_save_load_roundtrip(self, fleet, tmp_path):
        _log, _gen, store = fleet
        small = store.filter_nodes([0, 1])
        path = tmp_path / "telemetry.npz"
        small.save(path)
        back = TelemetryStore.load(path)
        assert len(back) == len(small)
        np.testing.assert_allclose(
            back.chunk.gpu_power_w, small.chunk.gpu_power_w
        )

    def test_chunk_validation(self):
        with pytest.raises(TelemetryError):
            TelemetryChunk(
                time_s=np.zeros(3),
                node_id=np.zeros(2, dtype=np.int32),
                gpu_power_w=np.zeros((3, 4), dtype=np.float32),
                cpu_power_w=np.zeros(3, dtype=np.float32),
            )
        with pytest.raises(TelemetryError):
            TelemetryChunk(
                time_s=np.zeros(3),
                node_id=np.zeros(3, dtype=np.int32),
                gpu_power_w=np.zeros((3, 2), dtype=np.float32),
                cpu_power_w=np.zeros(3, dtype=np.float32),
            )
