"""Fleet-level calibration: the generated campaign vs Table IV.

This is the telemetry counterpart of the GPU calibration tests: with the
default mix and a fixed seed, the region shares of the generated GPU
power distribution must reproduce the paper's Table IV within a few
percentage points, and the structural properties of Figs 8/9 must hold.
"""

import numpy as np
import pytest

from repro import constants, units
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator


@pytest.fixture(scope="module")
def campaign():
    mix = default_mix(fleet_nodes=96)
    log = SlurmSimulator(mix).run(units.days(4), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=100).generate()
    return log, store


def region_share_pct(power: np.ndarray) -> np.ndarray:
    bounds = [
        constants.REGION_LATENCY_MAX_W,
        constants.REGION_MEMORY_MAX_W,
        constants.REGION_COMPUTE_MAX_W,
    ]
    idx = np.searchsorted(bounds, power, side="left")
    return np.bincount(idx, minlength=4) / len(power) * 100.0


class TestTable4Calibration:
    def test_region_shares_match_paper(self, campaign):
        _log, store = campaign
        shares = region_share_pct(store.gpu_power_flat)
        paper = constants.PAPER_REGION_GPU_HOURS_PCT
        for ours, theirs in zip(shares, paper):
            assert ours == pytest.approx(theirs, abs=4.0)

    def test_region_order(self, campaign):
        # Memory-intensive is the largest region; boost the smallest.
        _log, store = campaign
        shares = region_share_pct(store.gpu_power_flat)
        assert np.argmax(shares) == 1
        assert np.argmin(shares) == 3

    def test_boost_region_small_but_present(self, campaign):
        _log, store = campaign
        shares = region_share_pct(store.gpu_power_flat)
        assert 0.2 < shares[3] < 3.0


class TestFig8Structure:
    def test_multi_modal_distribution(self, campaign):
        # Fig 8: several peaks at low power, fewer at high power.
        _log, store = campaign
        p = store.gpu_power_flat
        hist, edges = np.histogram(p, bins=np.arange(80, 620, 5.0))
        interior = hist[1:-1]
        peaks = (
            (interior > np.roll(hist, 1)[1:-1])
            & (interior > np.roll(hist, -1)[1:-1])
            & (interior > 0.2 * hist.max())
        )
        assert peaks.sum() >= 3

    def test_idle_peak_in_paper_range(self, campaign):
        _log, store = campaign
        p = store.gpu_power_flat
        idle_region = p[(p > 80) & (p < 100)]
        assert len(idle_region) > 0
        # The idle mode sits at 88-90 W (paper Section V-A).
        assert np.median(idle_region) == pytest.approx(89.0, abs=2.5)

    def test_power_never_above_boost_ceiling(self, campaign):
        _log, store = campaign
        assert store.gpu_power_flat.max() < 620.0


class TestFig2bStructure:
    def test_gpu_dominates_node_energy(self, campaign):
        # Fig 2(b): GPUs are the dominant consumer at the node level.
        _log, store = campaign
        gpu = store.gpu_energy_j()
        cpu = store.cpu_energy_j()
        assert gpu / (gpu + cpu) > 0.65
