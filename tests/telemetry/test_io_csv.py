"""Tests for CSV telemetry ingest/export."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.io_csv import (
    read_telemetry_csv,
    read_telemetry_csv_chunks,
    write_telemetry_csv,
)


@pytest.fixture
def sample_csv(tmp_path):
    path = tmp_path / "telemetry.csv"
    path.write_text(
        "time_s,node_id,gpu0_w,gpu1_w,gpu2_w,gpu3_w,cpu_w\n"
        "0,0,372.1,380.4,91.2,367.9,145.0\n"
        "0,1,500.0,505.0,498.0,510.0,200.0\n"
        "15,0,370.0,379.0,92.0,369.0,150.0\n"
    )
    return path


class TestRead:
    def test_roundtrip_values(self, sample_csv):
        store = read_telemetry_csv(sample_csv)
        assert len(store) == 3
        assert store.chunk.gpu_power_w[0, 0] == pytest.approx(372.1)
        assert store.chunk.cpu_power_w[1] == pytest.approx(200.0)
        assert store.chunk.node_id.tolist() == [0, 1, 0]

    def test_cpu_column_optional(self, tmp_path):
        path = tmp_path / "gpu_only.csv"
        path.write_text(
            "time_s,node_id,gpu0_w,gpu1_w,gpu2_w,gpu3_w\n"
            "0,0,100,100,100,100\n"
        )
        store = read_telemetry_csv(path)
        assert store.chunk.cpu_power_w[0] == 0.0

    def test_chunked_reading(self, sample_csv):
        chunks = list(read_telemetry_csv_chunks(sample_csv, rows_per_chunk=2))
        assert [len(c) for c in chunks] == [2, 1]

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,node_id,gpu0_w\n0,0,100\n")
        with pytest.raises(TelemetryError):
            list(read_telemetry_csv_chunks(path))

    def test_bad_value_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,node_id,gpu0_w,gpu1_w,gpu2_w,gpu3_w\n"
            "0,0,oops,1,1,1\n"
        )
        with pytest.raises(TelemetryError):
            read_telemetry_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TelemetryError):
            read_telemetry_csv(path)

    def test_bad_chunk_size(self, sample_csv):
        with pytest.raises(TelemetryError):
            list(read_telemetry_csv_chunks(sample_csv, rows_per_chunk=0))


class TestWriteRoundtrip:
    def test_simulated_store_roundtrips(self, tmp_path):
        from repro import units
        from repro.scheduler import SlurmSimulator, default_mix
        from repro.telemetry import FleetTelemetryGenerator

        mix = default_mix(fleet_nodes=4)
        log = SlurmSimulator(mix).run(units.hours(3), rng=0)
        store = FleetTelemetryGenerator(log, mix, seed=0).generate()

        path = tmp_path / "export.csv"
        write_telemetry_csv(store, path)
        back = read_telemetry_csv(path)
        assert len(back) == len(store)
        np.testing.assert_allclose(
            back.chunk.gpu_power_w, store.chunk.gpu_power_w, atol=0.01
        )
        assert back.gpu_energy_j() == pytest.approx(
            store.gpu_energy_j(), rel=1e-4
        )

    def test_csv_feeds_the_join(self, tmp_path):
        # The adoption path: external telemetry -> join -> projection.
        from repro import units
        from repro.core import join_campaign
        from repro.scheduler import SlurmSimulator, default_mix
        from repro.telemetry import FleetTelemetryGenerator

        mix = default_mix(fleet_nodes=4)
        log = SlurmSimulator(mix).run(units.hours(3), rng=0)
        store = FleetTelemetryGenerator(log, mix, seed=0).generate()
        path = tmp_path / "export.csv"
        write_telemetry_csv(store, path)

        cube_direct = join_campaign(store, log)
        cube_csv = join_campaign(read_telemetry_csv(path), log)
        np.testing.assert_allclose(
            cube_csv.energy_j, cube_direct.energy_j, rtol=1e-4
        )
