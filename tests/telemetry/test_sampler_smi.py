"""Tests for sensor aggregation and the ROCm SMI comparison (Fig 2a)."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.rocm_smi import (
    compare_telemetry_vs_smi,
    rocm_smi_trace,
)
from repro.telemetry.sampler import aggregate_sensor_trace


class TestAggregation:
    def test_constant_signal_preserved(self):
        out = aggregate_sensor_trace(np.full(75, 300.0))
        assert np.allclose(out, 300.0)

    def test_window_boundaries_alternate_7_8(self):
        # 15 s windows over 2 s samples hold 7 or 8 samples each.
        raw = np.arange(150, dtype=float)
        out = aggregate_sensor_trace(raw)
        times = np.arange(150) * 2.0
        for k, val in enumerate(out):
            members = raw[(times >= k * 15.0) & (times < (k + 1) * 15.0)]
            assert len(members) in (7, 8)
            assert val == pytest.approx(members.mean())

    def test_mean_energy_preserved_approximately(self):
        rng = np.random.default_rng(0)
        raw = 300 + rng.normal(0, 20, size=1000)
        out = aggregate_sensor_trace(raw)
        assert out.mean() == pytest.approx(raw.mean(), rel=0.01)

    def test_validation(self):
        with pytest.raises(TelemetryError):
            aggregate_sensor_trace(np.zeros((2, 2)))
        with pytest.raises(TelemetryError):
            aggregate_sensor_trace(np.zeros(5), raw_interval_s=0.0)
        with pytest.raises(TelemetryError):
            aggregate_sensor_trace(np.zeros(5), out_interval_s=1.0)

    def test_empty_passthrough(self):
        assert len(aggregate_sensor_trace(np.array([]))) == 0


class TestSMI:
    def _app_signal(self, n=4000):
        # A step-shaped application power signal at 2 s cadence.
        steps = np.repeat([380.0, 520.0, 300.0, 480.0], n // 4)
        return steps

    def test_smi_cadence(self):
        sig = self._app_signal()
        smi = rocm_smi_trace(sig, rng=0)
        assert len(smi) == 2 * len(sig)  # 1 s polling vs 2 s signal

    def test_fig2a_agreement(self):
        # The paper's point: telemetry is comparable to ROCm SMI data.
        cmp = compare_telemetry_vs_smi(self._app_signal(), rng=1)
        assert cmp.correlation > 0.99
        assert cmp.mean_relative_error < 0.03

    def test_offset_visible_in_mae(self):
        cmp = compare_telemetry_vs_smi(self._app_signal(), rng=2)
        assert 0.5 < cmp.mean_abs_error_w < 10.0

    def test_validation(self):
        with pytest.raises(TelemetryError):
            rocm_smi_trace(np.array([]))
        with pytest.raises(TelemetryError):
            rocm_smi_trace(np.zeros((2, 2)))
