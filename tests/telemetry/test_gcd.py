"""Tests for the GCD-level telemetry view."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.gcd import combine_gcd_power, split_module_power


class TestSplit:
    def test_halves_sum_exactly(self):
        module = np.full(500, 400.0)
        a, b = split_module_power(module, rng=0)
        np.testing.assert_allclose(a + b, module, rtol=0, atol=1e-12)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        module = rng.uniform(90, 560, size=300)
        a, b = split_module_power(module, rng=2)
        np.testing.assert_allclose(combine_gcd_power(a, b), module)

    def test_imbalance_magnitude(self):
        module = np.full(5000, 500.0)
        a, _b = split_module_power(module, imbalance=0.03, rng=3)
        share = a / module
        assert abs(share.mean() - 0.5) < 0.03
        assert 0.005 < share.std() < 0.08

    def test_zero_imbalance_is_exact_half(self):
        module = np.full(10, 300.0)
        a, b = split_module_power(module, imbalance=0.0, rng=0)
        np.testing.assert_allclose(a, b)

    def test_share_wanders_slowly(self):
        # The imbalance is placement-driven: adjacent samples correlate.
        module = np.full(2000, 500.0)
        a, _ = split_module_power(module, rng=4)
        share = a / module
        corr = np.corrcoef(share[:-1], share[1:])[0, 1]
        assert corr > 0.8

    def test_nonnegative_everywhere(self):
        module = np.linspace(0, 600, 50)
        a, b = split_module_power(module, rng=5)
        assert (a >= 0).all() and (b >= 0).all()

    def test_validation(self):
        with pytest.raises(TelemetryError):
            split_module_power(np.zeros((2, 2)))
        with pytest.raises(TelemetryError):
            split_module_power(np.array([-1.0]))
        with pytest.raises(TelemetryError):
            split_module_power(np.array([1.0]), imbalance=0.6)


class TestCombine:
    def test_validation(self):
        with pytest.raises(TelemetryError):
            combine_gcd_power(np.zeros(3), np.zeros(4))
        with pytest.raises(TelemetryError):
            combine_gcd_power(np.array([-1.0]), np.array([1.0]))
