"""Tests for modal decomposition (Table IV) and projection (Tables V/VI)."""

import numpy as np
import pytest

from repro import constants
from repro.core import decompose_modes, paper_factors, project_savings
from repro.core.heatmap import table6_selection
from repro.errors import ProjectionError


class TestDecomposeModes:
    def test_shares_sum_to_100(self, cube):
        table = decompose_modes(cube)
        assert table.gpu_hours_pct.sum() == pytest.approx(100.0)

    def test_shares_near_table4(self, cube):
        table = decompose_modes(cube)
        for ours, paper in zip(
            table.gpu_hours_pct, constants.PAPER_REGION_GPU_HOURS_PCT
        ):
            assert ours == pytest.approx(paper, abs=5.0)

    def test_energy_consistent_with_cube(self, cube):
        table = decompose_modes(cube)
        assert table.energy_mwh.sum() * 3.6e9 == pytest.approx(
            cube.total_energy_j, rel=1e-6
        )

    def test_custom_boundaries(self, cube):
        wide = decompose_modes(cube, boundaries=(240.0, 460.0, 560.0))
        default = decompose_modes(cube)
        # Widening region 1 moves hours out of region 2.
        assert wide.rows[0].gpu_hours > default.rows[0].gpu_hours
        assert wide.gpu_hours_pct.sum() == pytest.approx(100.0)

    def test_bad_boundaries(self, cube):
        with pytest.raises(ProjectionError):
            decompose_modes(cube, boundaries=(400.0, 300.0, 560.0))
        with pytest.raises(ProjectionError):
            decompose_modes(cube, boundaries=(200.0, 420.0))


class TestProjection:
    def test_baseline_cap_saves_nothing(self, cube, freq_factors):
        table = project_savings(cube, freq_factors)
        assert table.row_at(1700).total_mwh == pytest.approx(0.0)
        assert table.row_at(1700).runtime_increase_pct == pytest.approx(0.0)

    def test_campaign_scaling_preserves_percentages(self, cube, freq_factors):
        raw = project_savings(cube, freq_factors)
        scaled = project_savings(
            cube, freq_factors, campaign_energy_mwh=16820.0
        )
        assert scaled.total_energy_mwh == pytest.approx(16820.0)
        for a, b in zip(raw.rows, scaled.rows):
            assert a.savings_pct == pytest.approx(b.savings_pct)
            assert a.runtime_increase_pct == pytest.approx(
                b.runtime_increase_pct
            )

    def test_headline_shape(self, cube, freq_factors):
        # Paper: several percent savings at mid-frequency caps, with the
        # no-slowdown column carried almost entirely by the MI region.
        table = project_savings(
            cube, freq_factors, campaign_energy_mwh=16820.0
        )
        best = table.best_row
        assert 900 <= best.cap <= 1300
        assert 5.0 < best.savings_pct < 15.0
        r900 = table.row_at(900)
        assert r900.savings_no_slowdown_pct == pytest.approx(
            100 * r900.mi_mwh / 16820.0, abs=0.01
        )

    def test_frequency_beats_power(self, cube, freq_factors, power_factors):
        t_f = project_savings(cube, freq_factors)
        t_p = project_savings(cube, power_factors)
        assert t_f.best_row.savings_pct > t_p.best_row.savings_pct + 2.0

    def test_paper_factors_projection(self, cube):
        # Projecting with the paper's own Table III lands near the paper's
        # headline: best no-slowdown savings ~8.5 % at 900 MHz.
        table = project_savings(
            cube, paper_factors("frequency"), campaign_energy_mwh=16820.0
        )
        best = table.best_no_slowdown_row
        assert best.cap == 900
        assert best.savings_no_slowdown_pct == pytest.approx(8.5, abs=3.5)

    def test_dt_weighting_knob(self, cube, freq_factors):
        by_energy = project_savings(cube, freq_factors, dt_weighting="energy")
        by_hours = project_savings(
            cube, freq_factors, dt_weighting="gpu_hours"
        )
        # Hour weighting dilutes runtime impact (CI hours < CI energy share).
        assert (
            by_hours.row_at(900).runtime_increase_pct
            < by_energy.row_at(900).runtime_increase_pct
        )

    def test_validation(self, cube, freq_factors):
        with pytest.raises(ProjectionError):
            project_savings(cube, freq_factors, dt_weighting="magic")
        with pytest.raises(ProjectionError):
            project_savings(cube, freq_factors, campaign_energy_mwh=-1.0)
        with pytest.raises(ProjectionError):
            project_savings(cube, freq_factors).row_at(1234)


class TestTable6:
    def test_selected_subset_carries_most_savings(self, cube, freq_factors):
        selected, domains = table6_selection(cube, freq_factors)
        assert 1 <= len(domains) <= 6
        full = project_savings(cube, freq_factors, campaign_energy_mwh=16820.0)
        part = project_savings(
            selected,
            freq_factors,
            campaign_energy_mwh=16820.0,
            reference_cube=cube,
        )
        # Paper: the red-cell domains x classes A-C retain the bulk of the
        # system-wide savings.
        r_full = full.row_at(1100).total_mwh
        r_part = part.row_at(1100).total_mwh
        assert 0.5 * r_full < r_part < r_full

    def test_selected_percentages_relative_to_full_campaign(
        self, cube, freq_factors
    ):
        selected, _ = table6_selection(cube, freq_factors)
        part = project_savings(
            selected,
            freq_factors,
            campaign_energy_mwh=16820.0,
            reference_cube=cube,
        )
        assert part.total_energy_mwh == pytest.approx(16820.0)
        row = part.row_at(1100)
        assert row.savings_pct == pytest.approx(
            100 * row.total_mwh / 16820.0, abs=0.01
        )
