"""Tests for the power-proxy validation (region-boundary diffusion)."""

import numpy as np
import pytest

from repro.core.validate import (
    fleet_confusion,
    phase_region_mass,
    profile_confusion,
    render_confusion,
)
from repro.errors import ProjectionError
from repro.telemetry.profiles import PROFILES


class TestPhaseRegionMass:
    def test_sums_to_one(self):
        mass = phase_region_mass(300.0, 20.0)
        assert mass.sum() == pytest.approx(1.0)

    def test_mid_region_phase_is_unambiguous(self):
        mass = phase_region_mass(300.0, 10.0)
        assert mass[1] > 0.999

    def test_boundary_phase_splits(self):
        mass = phase_region_mass(200.0, 10.0)
        assert 0.3 < mass[0] < 0.7
        assert 0.3 < mass[1] < 0.7

    def test_noise_widens_diffusion(self):
        tight = phase_region_mass(210.0, 1.0)
        wide = phase_region_mass(210.0, 30.0)
        assert wide[0] > tight[0]  # more mass leaks below 200 W

    def test_rejects_negative_std(self):
        with pytest.raises(ProjectionError):
            phase_region_mass(300.0, -1.0)


class TestProfileConfusion:
    def test_rows_hold_phase_weights(self):
        m = profile_confusion(PROFILES["memory_bound"])
        assert m.sum() == pytest.approx(1.0)
        # memory_bound's phases are regions 1 and 2 only.
        assert m[3].sum() == pytest.approx(0.0, abs=1e-12)

    def test_diagonal_dominates(self):
        # mixed_low sits deliberately close to the 200 W boundary (its
        # 190 W phase), so its diagonal is weakest (~0.90); everything
        # else is near-perfect.
        for name, profile in PROFILES.items():
            m = profile_confusion(profile)
            assert np.trace(m) > (0.85 if name == "mixed_low" else 0.95)


class TestFleetConfusion:
    def test_default_uniform_mix(self):
        c = fleet_confusion()
        assert c.matrix.sum() == pytest.approx(1.0)
        assert c.accuracy > 0.95
        assert (c.per_region_accuracy > 0.8).all()

    def test_accuracy_plus_misclassified_is_one(self):
        c = fleet_confusion()
        assert c.accuracy + c.misclassified_fraction() == pytest.approx(1.0)

    def test_off_diagonal_only_adjacent(self):
        # Diffusion crosses one boundary, never two: r1 mass never lands
        # in r3 or r4.
        c = fleet_confusion()
        assert c.matrix[0, 2] == pytest.approx(0.0, abs=1e-6)
        assert c.matrix[0, 3] == pytest.approx(0.0, abs=1e-9)
        assert c.matrix[3, 0] == pytest.approx(0.0, abs=1e-9)

    def test_custom_weights(self):
        only_compute = fleet_confusion({"compute_heavy": 1.0})
        assert only_compute.matrix[2].sum() > 0.5

    def test_validation(self):
        with pytest.raises(ProjectionError):
            fleet_confusion({"compute_heavy": 0.0})
        with pytest.raises(ProjectionError):
            fleet_confusion({"nope": 1.0})

    def test_render(self):
        text = render_confusion(fleet_confusion())
        assert "overall accuracy" in text
        assert "r4" in text
