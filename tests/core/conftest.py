"""Shared campaign fixtures for the core-analysis tests.

One small fleet is generated once per test session and joined once; all
Table IV/V/VI and Fig 8/9/10 tests read the same cube.
"""

import pytest

from repro import units
from repro.core import join_campaign, measured_factors
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator


@pytest.fixture(scope="package")
def campaign():
    mix = default_mix(fleet_nodes=48)
    log = SlurmSimulator(mix).run(units.days(3), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=100).generate()
    return log, store


@pytest.fixture(scope="package")
def cube(campaign):
    log, store = campaign
    return join_campaign(store, log)


@pytest.fixture(scope="package")
def freq_factors():
    return measured_factors("frequency")


@pytest.fixture(scope="package")
def power_factors():
    return measured_factors("power")
