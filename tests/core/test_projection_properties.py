"""Property-based tests for the savings projection."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterization import CapFactors
from repro.core.histogram import StreamingHistogram
from repro.core.join import CampaignCube
from repro.core.projection import project_savings


def cube_from_region_energy(e1, e2, e3, e4):
    """A minimal single-domain cube with prescribed region energies."""
    energy = np.zeros((2, 2, 4))
    energy[0, 0] = [e1, e2, e3, e4]
    hours = energy / 3.6e5  # arbitrary consistent hours
    hist = StreamingHistogram()
    hist.add(np.array([100.0]))
    return CampaignCube(
        domains=["X", "_idle"],
        classes=["A", "-"],
        energy_j=energy,
        gpu_hours=hours,
        histogram=hist,
        domain_histograms={"X": hist, "_idle": hist},
    )


def factors_of(f_ci, f_mi, rt_ci, rt_mi):
    return CapFactors(
        knob="frequency",
        energy={900.0: (f_ci, f_mi), 1700.0: (1.0, 1.0)},
        runtime={900.0: (rt_ci, rt_mi), 1700.0: (1.0, 1.0)},
    )


energies = st.floats(min_value=1e6, max_value=1e12)
fractions = st.floats(min_value=0.5, max_value=1.2)
runtimes = st.floats(min_value=1.0, max_value=3.0)


@given(energies, energies, energies, energies, fractions, fractions,
       runtimes, runtimes)
@settings(max_examples=100, deadline=None)
def test_projection_identities(e1, e2, e3, e4, f_ci, f_mi, rt_ci, rt_mi):
    cube = cube_from_region_energy(e1, e2, e3, e4)
    table = project_savings(cube, factors_of(f_ci, f_mi, rt_ci, rt_mi))
    row = table.row_at(900.0)
    total = e1 + e2 + e3 + e4

    # Savings decompose exactly into the region terms.
    expected = e2 * (1 - f_mi) + e3 * (1 - f_ci)
    assert abs(row.total_mwh * 3.6e9 - expected) < 1e-3 * max(abs(expected), 1)
    assert abs(row.savings_pct - 100 * expected / total) < 1e-9 * 100

    # Runtime increase is non-negative and bounded by the worst factor.
    assert 0.0 <= row.runtime_increase_pct <= 100 * (max(rt_ci, rt_mi) - 1)

    # Regions 1 and 4 never contribute.
    cube_no14 = cube_from_region_energy(0.0, e2, e3, 0.0)
    row_no14 = project_savings(
        cube_no14, factors_of(f_ci, f_mi, rt_ci, rt_mi)
    ).row_at(900.0)
    assert abs(row_no14.total_mwh - row.total_mwh) < 1e-9 + 1e-12 * abs(row.total_mwh)


@given(energies, energies, fractions, fractions)
@settings(max_examples=60, deadline=None)
def test_savings_monotone_in_factors(e2, e3, f_a, f_b):
    cube = cube_from_region_energy(1e9, e2, e3, 1e7)
    lo, hi = sorted([f_a, f_b])
    better = project_savings(cube, factors_of(lo, lo, 1.1, 1.0)).row_at(900.0)
    worse = project_savings(cube, factors_of(hi, hi, 1.1, 1.0)).row_at(900.0)
    # Lower energy factors (more saving per joule) never save less.
    assert better.total_mwh >= worse.total_mwh - 1e-12


@given(energies, energies, runtimes)
@settings(max_examples=60, deadline=None)
def test_no_slowdown_column_requires_flat_runtime(e2, e3, rt):
    cube = cube_from_region_energy(1e9, e2, e3, 0.0)
    row = project_savings(
        cube, factors_of(0.9, 0.85, rt, 1.0)
    ).row_at(900.0)
    # MI runtime is flat -> its savings count; CI counts only if rt ~ 1.
    expected_floor = e2 * 0.15
    assert row.savings_no_slowdown_pct * cube.total_energy_j / 100 >= (
        expected_floor - 1e-6 * expected_floor
    )
    if rt > 1.01:
        ci_saving = e3 * 0.10
        no_slowdown_j = row.savings_no_slowdown_pct * cube.total_energy_j / 100
        assert no_slowdown_j < expected_floor + 0.5 * ci_saving + 1e-3
