"""Tests for domain analysis (Fig 9), heatmaps (Fig 10), and rendering."""

import numpy as np
import pytest

from repro.core import (
    compute_heatmaps,
    domain_distributions,
    report,
    select_red_domains,
)
from repro.core.characterization import paper_factors
from repro.core.join import IDLE_DOMAIN
from repro.errors import ProjectionError


class TestDomainDistributions:
    def test_all_busy_domains_present(self, cube):
        dists = domain_distributions(cube)
        assert IDLE_DOMAIN not in dists
        assert len(dists) >= 8

    def test_region_pct_sums_to_100(self, cube):
        for d in domain_distributions(cube).values():
            assert d.region_pct.sum() == pytest.approx(100.0)

    def test_families_have_expected_dominant_region(self, cube):
        dists = domain_distributions(cube)
        # Fig 9: compute-heavy domains dominate region 3, latency-bound
        # region 1, memory-bound region 2.
        if "CHM" in dists:
            assert dists["CHM"].dominant_region == 3
        if "BIO" in dists:
            assert dists["BIO"].dominant_region == 1
        if "CLI" in dists:
            assert dists["CLI"].dominant_region == 2

    def test_multi_zone_flag(self, cube):
        dists = domain_distributions(cube)
        if "PHY" in dists:
            assert dists["PHY"].is_multi_zone

    def test_each_domain_is_modal(self, cube):
        # Fig 9's point: within a domain, power clusters into a few modes.
        for d in domain_distributions(cube).values():
            assert 1 <= len(d.modes) <= 8


class TestHeatmaps:
    def test_shapes(self, cube, freq_factors):
        hm = compute_heatmaps(cube, freq_factors, cap=1100.0)
        assert hm.energy_mwh.shape == (len(hm.domains), 5)
        assert hm.savings_mwh.shape == hm.energy_mwh.shape

    def test_energy_concentrated_in_large_classes(self, cube, freq_factors):
        # Fig 10(a): most energy sits in classes A-C.
        hm = compute_heatmaps(cube, freq_factors)
        by_class = hm.energy_mwh.sum(axis=0)
        assert by_class[:3].sum() > 0.8 * by_class.sum()

    def test_savings_below_energy(self, cube, freq_factors):
        hm = compute_heatmaps(cube, freq_factors)
        assert (hm.savings_mwh <= hm.energy_mwh + 1e-9).all()

    def test_campaign_scaling(self, cube, freq_factors):
        raw = compute_heatmaps(cube, freq_factors)
        scaled = compute_heatmaps(
            cube, freq_factors, campaign_energy_mwh=16820.0
        )
        ratio = scaled.energy_mwh.sum() / raw.energy_mwh.sum()
        np.testing.assert_allclose(
            scaled.savings_mwh, raw.savings_mwh * ratio, rtol=1e-9
        )

    def test_red_domain_selection(self, cube, freq_factors):
        hm = compute_heatmaps(cube, freq_factors)
        picked = select_red_domains(hm, n_domains=3)
        assert len(picked) == 3
        # The picked domains hold the largest best-cell savings.
        best = hm.savings_mwh.max(axis=1)
        floor = min(best[hm.domains.index(d)] for d in picked)
        others = [
            best[i] for i, d in enumerate(hm.domains) if d not in picked
        ]
        assert all(floor >= o for o in others)

    def test_validation(self, cube, freq_factors):
        with pytest.raises(ProjectionError):
            compute_heatmaps(cube, freq_factors, campaign_energy_mwh=0.0)
        hm = compute_heatmaps(cube, freq_factors)
        with pytest.raises(ProjectionError):
            select_red_domains(hm, n_domains=0)


class TestReport:
    def test_render_table4(self, cube):
        from repro.core import decompose_modes

        text = report.render_table4(decompose_modes(cube))
        assert "memory intensive" in text
        assert "GPU hrs (%)" in text

    def test_render_table5(self, cube, freq_factors):
        from repro.core import project_savings

        text = report.render_table5(
            project_savings(cube, freq_factors, campaign_energy_mwh=16820.0)
        )
        assert "16820 MWh" in text
        assert "900" in text

    def test_render_table3(self):
        from repro.bench.tables import compute_table3

        text = report.render_table3(compute_table3(knob="power"))
        assert "power cap" in text
        assert "MB energy%" in text

    def test_render_fig9_and_10(self, cube, freq_factors):
        text9 = report.render_fig9(domain_distributions(cube))
        assert "dominant" in text9
        text10 = report.render_fig10(
            compute_heatmaps(cube, freq_factors, campaign_energy_mwh=16820.0)
        )
        assert "Fig 10(a)" in text10 and "Fig 10(b)" in text10

    def test_render_fig8(self, cube):
        text = report.render_fig8(cube.histogram)
        assert "Fig 8" in text
        assert "#" in text

    def test_render_series(self):
        text = report.render_series(
            "Fig X", "x", [1, 2], {"y": [3.0, 4.0], "z": [5.0, 6.0]}
        )
        assert "Fig X" in text and "y" in text and "6" in text

    def test_paper_factors_table_shapes(self):
        f = paper_factors("frequency")
        assert set(f.caps()) == {1700, 1500, 1300, 1100, 900, 700}
        p = paper_factors("power")
        assert 200 in p.caps()
        with pytest.raises(ProjectionError):
            paper_factors("thermal")
