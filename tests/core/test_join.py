"""Tests for the telemetry x scheduler join."""

import numpy as np
import pytest

from repro import constants
from repro.core.join import (
    IDLE_CLASS,
    IDLE_DOMAIN,
    join_campaign,
    region_index,
)
from repro.errors import JoinError


class TestRegionIndex:
    def test_boundaries(self):
        p = np.array([100.0, 199.9, 200.0, 419.9, 420.0, 559.9, 560.0, 600.0])
        np.testing.assert_array_equal(
            region_index(p), [0, 0, 1, 1, 2, 2, 3, 3]
        )


class TestJoin:
    def test_energy_matches_store(self, campaign, cube):
        _log, store = campaign
        assert cube.total_energy_j == pytest.approx(
            store.gpu_energy_j(), rel=1e-6
        )
        assert cube.cpu_energy_j == pytest.approx(
            store.cpu_energy_j(), rel=1e-6
        )

    def test_gpu_hours_match_store(self, campaign, cube):
        _log, store = campaign
        assert cube.total_gpu_hours == pytest.approx(store.gpu_hours)

    def test_histogram_covers_all_samples(self, campaign, cube):
        _log, store = campaign
        assert cube.histogram.total_count == len(store) * 4

    def test_domain_rows_cover_scheduler_domains(self, campaign, cube):
        log, _store = campaign
        expected = {j.domain for j in log.jobs} | {IDLE_DOMAIN}
        assert set(cube.domains) == expected
        assert cube.classes[-1] == IDLE_CLASS

    def test_idle_energy_is_idleish(self, cube):
        d = cube.domain_idx(IDLE_DOMAIN)
        idle_hours = cube.gpu_hours[d].sum()
        if idle_hours == 0:
            pytest.skip("fully utilized fleet")
        idle_energy = cube.energy_j[d].sum()
        mean_w = idle_energy / (idle_hours * 3600.0)
        assert mean_w == pytest.approx(constants.GPU_IDLE_POWER_W, abs=3.0)
        # Idle samples live in region 1.
        assert cube.gpu_hours[d, :, 1:].sum() == 0

    def test_streaming_equals_materialized(self, campaign, cube):
        log, store = campaign
        from repro.scheduler import default_mix
        from repro.telemetry import FleetTelemetryGenerator

        mix = default_mix(fleet_nodes=log.n_nodes)
        gen = FleetTelemetryGenerator(log, mix, seed=100)
        streamed = join_campaign(gen.chunks(nodes_per_chunk=5), log)
        np.testing.assert_allclose(
            streamed.energy_j, cube.energy_j, rtol=1e-9
        )
        np.testing.assert_allclose(
            streamed.gpu_hours, cube.gpu_hours, rtol=1e-9
        )
        np.testing.assert_array_equal(
            streamed.histogram.counts, cube.histogram.counts
        )

    def test_busy_view_drops_idle(self, cube):
        busy = cube.busy_view()
        assert IDLE_DOMAIN not in busy.domains
        assert IDLE_CLASS not in busy.classes
        assert busy.total_energy_j < cube.total_energy_j

    def test_select_subsets_energy(self, cube):
        busy = cube.busy_view()
        one = cube.select([busy.domains[0]], ["A", "B", "C"])
        assert one.energy_j.shape == (1, 3, 4)
        assert one.total_energy_j <= cube.total_energy_j

    def test_select_unknown_raises(self, cube):
        with pytest.raises(JoinError):
            cube.select(["NOPE"], ["A"])
        with pytest.raises(JoinError):
            cube.select([cube.domains[0]], ["Z"])

    def test_empty_telemetry_raises(self, campaign):
        log, _store = campaign
        with pytest.raises(JoinError):
            join_campaign(iter([]), log)
