"""Tests for the phase-level replay verification."""

import pytest

from repro import units
from repro.core.replay import (
    fleet_replay_savings,
    replay_profile,
    surrogate_kernel_for_power,
)
from repro.errors import ProjectionError
from repro.gpu import GPUDevice
from repro.gpu.specs import default_spec
from repro.telemetry.profiles import PROFILES


class TestSurrogateInversion:
    @pytest.mark.parametrize("target", [95.0, 150.0, 250.0, 380.0, 450.0, 530.0])
    def test_power_matched(self, target):
        k = surrogate_kernel_for_power(target)
        achieved = GPUDevice().run(k).power_w
        assert achieved == pytest.approx(target, abs=1.0)

    def test_boost_clamps_to_ridge(self, spec):
        k = surrogate_kernel_for_power(580.0)
        assert k.arithmetic_intensity == pytest.approx(4.0)

    def test_latency_powers_use_occupancy(self):
        k = surrogate_kernel_for_power(120.0)
        assert k.occupancy < 0.2

    def test_memory_powers_use_intensity(self):
        k = surrogate_kernel_for_power(450.0)
        assert k.occupancy == 1.0
        assert 0.5 < k.arithmetic_intensity < 4.0

    def test_rejects_below_idle(self):
        with pytest.raises(ProjectionError):
            surrogate_kernel_for_power(50.0)


class TestReplayProfile:
    def test_memory_profile_saves_without_slowdown(self):
        r = replay_profile(
            PROFILES["memory_bound"], frequency_cap_hz=units.mhz(900)
        )
        assert r.energy_factor < 0.9
        assert r.runtime_factor == pytest.approx(1.0, abs=0.02)

    def test_compute_profile_pays_runtime(self):
        r = replay_profile(
            PROFILES["compute_heavy"], frequency_cap_hz=units.mhz(900)
        )
        assert r.runtime_factor > 1.2

    def test_matches_region_factor_for_memory(self):
        # The paper's leap: region factor ~ phase replay for a profile
        # confined to one region.
        from repro.bench.tables import compute_table3

        table = compute_table3(knob="frequency")
        mb_factor = table.row_at(900).mb_energy_pct / 100.0
        r = replay_profile(
            PROFILES["memory_bound"], frequency_cap_hz=units.mhz(900)
        )
        assert r.energy_factor == pytest.approx(mb_factor, abs=0.06)

    def test_uncapped_replay_is_identity(self):
        spec = default_spec()
        r = replay_profile(
            PROFILES["multi_zone"], frequency_cap_hz=spec.f_max_hz
        )
        # Capping at f_max still engages the uncore P-state, so energy
        # drops somewhat, but runtime must be unchanged.
        assert r.runtime_factor == pytest.approx(1.0, abs=0.01)
        assert r.energy_factor <= 1.0


class TestFleetReplay:
    def test_savings_fraction_consistent(self):
        out = fleet_replay_savings(
            {"memory_bound": 0.5, "compute_heavy": 0.5},
            frequency_cap_hz=units.mhz(1100),
        )
        assert out["savings_fraction"] == pytest.approx(
            1.0 - out["energy_factor"]
        )
        assert 0.0 < out["savings_fraction"] < 0.5

    def test_validation(self):
        with pytest.raises(ProjectionError):
            fleet_replay_savings({}, frequency_cap_hz=units.mhz(900))
        with pytest.raises(ProjectionError):
            fleet_replay_savings(
                {"nope": 1.0}, frequency_cap_hz=units.mhz(900)
            )
