"""Tests for the parallel campaign pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import (
    memory_footprint_estimate,
    merge_cubes,
    run_campaign,
)
from repro.errors import JoinError


@pytest.fixture(scope="module")
def serial_run():
    return run_campaign(fleet_nodes=24, days=0.5, seed=3, workers=1)


class TestRunCampaign:
    def test_parallel_identical_to_serial(self, serial_run):
        parallel = run_campaign(
            fleet_nodes=24, days=0.5, seed=3, workers=3
        )
        np.testing.assert_allclose(
            parallel.cube.energy_j, serial_run.cube.energy_j
        )
        np.testing.assert_array_equal(
            parallel.cube.histogram.counts,
            serial_run.cube.histogram.counts,
        )

    def test_block_size_irrelevant(self, serial_run):
        other = run_campaign(
            fleet_nodes=24, days=0.5, seed=3, workers=1, nodes_per_block=5
        )
        np.testing.assert_allclose(
            other.cube.energy_j, serial_run.cube.energy_j
        )

    def test_reuses_provided_log(self, serial_run):
        again = run_campaign(
            fleet_nodes=24, days=0.5, seed=3, log=serial_run.log
        )
        assert again.log is serial_run.log
        np.testing.assert_allclose(
            again.cube.energy_j, serial_run.cube.energy_j
        )

    def test_cube_consistency(self, serial_run):
        cube = serial_run.cube
        assert cube.total_energy_j > 0
        assert cube.total_gpu_hours == pytest.approx(
            cube.histogram.total_count * 15.0 / 3600.0
        )


class TestMergeCubes:
    def test_merge_rejects_mismatched_axes(self, serial_run):
        other = run_campaign(fleet_nodes=24, days=0.5, seed=99)
        a, b = serial_run.cube, other.cube
        if a.domains == b.domains:
            pytest.skip("same domain set; nothing to reject")
        with pytest.raises(JoinError):
            merge_cubes(a, b)

    def test_merge_does_not_mutate_inputs(self, serial_run):
        a, b = serial_run.cube, serial_run.cube
        a_counts = a.histogram.counts.copy()
        a_weights = a.histogram.weight_sums.copy()
        a_domain_counts = {
            name: h.counts.copy() for name, h in a.domain_histograms.items()
        }
        a_energy = a.energy_j.copy()

        merged = merge_cubes(a, b)

        np.testing.assert_array_equal(a.histogram.counts, a_counts)
        np.testing.assert_array_equal(a.histogram.weight_sums, a_weights)
        for name, h in a.domain_histograms.items():
            np.testing.assert_array_equal(h.counts, a_domain_counts[name])
        np.testing.assert_array_equal(a.energy_j, a_energy)
        assert merged.histogram is not a.histogram
        assert merged.histogram is not b.histogram

    def test_merging_twice_never_double_counts(self, serial_run):
        a = serial_run.cube
        once = merge_cubes(a, a)
        twice = merge_cubes(a, a)
        np.testing.assert_array_equal(
            once.histogram.counts, twice.histogram.counts
        )
        np.testing.assert_array_equal(
            once.histogram.counts, 2 * a.histogram.counts
        )
        assert once.energy_j.sum() == pytest.approx(2 * a.energy_j.sum())

    def test_merge_result_is_writable(self, serial_run):
        # Partials may arrive with frozen arrays (the cached campaign);
        # the merged cube owns fresh state, so accumulation can go on.
        merged = merge_cubes(serial_run.cube, serial_run.cube)
        merged.histogram.counts[0] += 1.0


class TestFootprint:
    def test_full_scale_needs_streaming(self):
        est = memory_footprint_estimate(9408, 91)
        assert est["materialized_bytes"] > 1e11     # ~150 GB
        assert est["streamed_bytes"] < 1e9          # < 1 GB
        assert est["ratio"] > 100
        assert est["samples"] > 1e10

    def test_small_scale_fits(self):
        est = memory_footprint_estimate(16, 1.0)
        assert est["materialized_bytes"] < 1e8
