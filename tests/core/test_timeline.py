"""Tests for the fleet power timeline."""

import numpy as np
import pytest

from repro import units
from repro.core.timeline import FleetTimeline, fleet_timeline
from repro.errors import TelemetryError


@pytest.fixture(scope="module")
def timeline(campaign):
    log, store = campaign
    return fleet_timeline(store, horizon_s=log.horizon_s)


class TestFleetTimeline:
    def test_energy_matches_store(self, campaign, timeline):
        _log, store = campaign
        assert timeline.energy_mwh() == pytest.approx(
            store.gpu_energy_mwh(), rel=1e-6
        )

    def test_streaming_matches_materialized(self, campaign, timeline):
        log, store = campaign
        from repro.scheduler import default_mix
        from repro.telemetry import FleetTelemetryGenerator

        mix = default_mix(fleet_nodes=log.n_nodes)
        gen = FleetTelemetryGenerator(log, mix, seed=100)
        streamed = fleet_timeline(
            gen.chunks(nodes_per_chunk=7), horizon_s=log.horizon_s
        )
        np.testing.assert_allclose(
            streamed.gpu_power_w, timeline.gpu_power_w, rtol=1e-9
        )

    def test_peak_and_mean_sane(self, campaign, timeline):
        log, _store = campaign
        # Fleet power per bin sits between all-idle and all-boost.
        n_gpus = log.n_nodes * 4
        assert timeline.mean_w > 80.0 * n_gpus
        assert timeline.peak_w < 620.0 * n_gpus
        assert 1.0 <= timeline.peak_to_mean < 3.0
        assert 0.0 <= timeline.peak_time_s < log.horizon_s

    def test_duration_curve_monotone(self, timeline):
        curve = timeline.duration_curve(50)
        assert np.all(np.diff(curve) <= 1e-9)
        assert curve[0] == pytest.approx(timeline.peak_w)
        assert curve[-1] == pytest.approx(timeline.gpu_power_w.min())

    def test_exceedance(self, timeline):
        assert timeline.exceedance_fraction(0.0) == 1.0
        assert timeline.exceedance_fraction(timeline.peak_w) == 0.0
        mid = timeline.exceedance_fraction(timeline.mean_w)
        assert 0.0 < mid < 1.0

    def test_validation(self, campaign):
        log, store = campaign
        with pytest.raises(TelemetryError):
            fleet_timeline(store, horizon_s=0.0)
        with pytest.raises(TelemetryError):
            fleet_timeline(iter([]), horizon_s=units.hours(1))
        with pytest.raises(TelemetryError):
            # Samples beyond the declared horizon are an error, not a clip.
            fleet_timeline(store, horizon_s=units.hours(0.5))
        with pytest.raises(TelemetryError):
            timeline = fleet_timeline(store, horizon_s=log.horizon_s)
            timeline.duration_curve(1)

    def test_misaligned_columns_rejected(self):
        with pytest.raises(TelemetryError):
            FleetTimeline(
                times_s=np.zeros(3),
                gpu_power_w=np.zeros(2),
                cpu_power_w=np.zeros(3),
                interval_s=15.0,
            )
