"""Unit tests for streaming histograms and peak finding."""

import numpy as np
import pytest

from repro.core.histogram import StreamingHistogram, find_power_modes
from repro.errors import TelemetryError


class TestStreamingHistogram:
    def test_counts_and_weights(self):
        h = StreamingHistogram(0, 10, 1.0)
        h.add(np.array([0.5, 1.5, 1.6, 9.5]))
        assert h.total_count == 4
        assert h.counts[0] == 1 and h.counts[1] == 2
        # Default weights are the values themselves (energy accumulation).
        assert h.weight_sums[1] == pytest.approx(3.1)

    def test_explicit_weights(self):
        h = StreamingHistogram(0, 10, 1.0)
        h.add(np.array([2.5, 2.6]), weights=np.array([10.0, 20.0]))
        assert h.weight_sums[2] == pytest.approx(30.0)

    def test_clipping_counted(self):
        h = StreamingHistogram(0, 10, 1.0)
        h.add(np.array([-5.0, 3.0, 15.0]))
        assert h.n_clipped == 2
        assert h.total_count == 3  # clipped samples land in edge bins

    def test_chunked_equals_single_shot(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 650, size=10_000)
        a = StreamingHistogram()
        a.add(data)
        b = StreamingHistogram()
        for part in np.array_split(data, 7):
            b.add(part)
        np.testing.assert_array_equal(a.counts, b.counts)
        np.testing.assert_allclose(a.weight_sums, b.weight_sums)

    def test_merge(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        a.add(np.array([100.0]))
        b.add(np.array([300.0]))
        a.merge(b)
        assert a.total_count == 2

    def test_merge_rejects_unlike_bins(self):
        a = StreamingHistogram(0, 10, 1.0)
        b = StreamingHistogram(0, 20, 1.0)
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_density_normalized(self):
        h = StreamingHistogram(0, 100, 2.0)
        h.add(np.random.default_rng(1).uniform(0, 100, 5000))
        assert np.sum(h.density() * h.bin_width) == pytest.approx(1.0)

    def test_density_of_empty_raises(self):
        with pytest.raises(TelemetryError):
            StreamingHistogram().density()

    def test_range_fraction(self):
        h = StreamingHistogram(0, 100, 1.0)
        h.add(np.array([10.0, 20.0, 30.0, 80.0]))
        assert h.range_fraction(0, 50) == pytest.approx(0.75)
        assert h.range_weight(0, 50) == pytest.approx(60.0)

    def test_invalid_construction(self):
        with pytest.raises(TelemetryError):
            StreamingHistogram(10, 5)
        with pytest.raises(TelemetryError):
            StreamingHistogram(0, 10, 0.0)

    def test_weights_shape_mismatch(self):
        h = StreamingHistogram()
        with pytest.raises(TelemetryError):
            h.add(np.array([1.0, 2.0]), weights=np.array([1.0]))


class TestFindPowerModes:
    def _bimodal(self):
        rng = np.random.default_rng(2)
        data = np.concatenate(
            [rng.normal(150, 10, 5000), rng.normal(480, 15, 3000)]
        )
        h = StreamingHistogram()
        h.add(data)
        return h

    def test_finds_both_modes(self):
        modes = find_power_modes(self._bimodal())
        assert len(modes) == 2
        powers = sorted(m.power_w for m in modes)
        assert powers[0] == pytest.approx(150, abs=10)
        assert powers[1] == pytest.approx(480, abs=10)

    def test_prominence_filters_noise(self):
        modes = find_power_modes(
            self._bimodal(), min_prominence_frac=0.9
        )
        assert len(modes) <= 1
