"""Tests for the fleet power-budget planner."""

import numpy as np
import pytest

from repro.core import measured_factors
from repro.errors import ProjectionError
from repro.policy import JobFingerprint
from repro.policy.budget import (
    PowerBudgetPlanner,
    capped_job_power_w,
    capped_mean_power_w,
    job_slowdown_pct,
)


@pytest.fixture(scope="module")
def factors():
    return measured_factors("frequency")


def fp(job_id, region_energy, nodes=2, hours=8.0):
    region_energy = np.asarray(region_energy, dtype=float)
    frac = region_energy / region_energy.sum()
    return JobFingerprint(
        job_id=job_id,
        domain="SYN",
        size_class="C",
        num_nodes=nodes,
        gpu_hours=hours,
        energy_j=float(region_energy.sum()),
        region_hours=hours * frac,
        region_energy_j=region_energy,
    )


def snapshot():
    # 1 latency-bound, 2 memory-bound, 1 compute-bound job.
    scale = 8 * 3600.0  # so mean power per GPU ~= region energy weights
    return {
        1: fp(1, np.array([140.0, 5.0, 5.0, 0.0]) * scale),
        2: fp(2, np.array([10.0, 300.0, 10.0, 0.0]) * scale),
        3: fp(3, np.array([10.0, 330.0, 20.0, 0.0]) * scale),
        4: fp(4, np.array([10.0, 30.0, 460.0, 10.0]) * scale),
    }


class TestPowerArithmetic:
    def test_uncapped_power_matches_fingerprint(self, factors):
        job = fp(1, [1e9, 2e9, 1e9, 0.0], nodes=3)
        assert capped_mean_power_w(job, factors, None) == pytest.approx(
            job.mean_power_w
        )
        assert capped_job_power_w(job, factors, None) == pytest.approx(
            job.mean_power_w * 12
        )

    def test_capping_reduces_power(self, factors):
        job = fp(1, [0.0 + 1e6, 3e9, 1e9, 0.0])
        for cap in (1500, 1100, 900):
            assert capped_mean_power_w(job, factors, cap) < (
                capped_mean_power_w(job, factors, None)
            )

    def test_slowdown_zero_when_uncapped(self, factors):
        job = fp(1, [1e9, 1e9, 1e9, 0.0])
        assert job_slowdown_pct(job, factors, None) == 0.0

    def test_slowdown_driven_by_compute_share(self, factors):
        mem = fp(1, [1e6, 1e9, 1e6, 0.0])
        comp = fp(2, [1e6, 1e6, 1e9, 0.0])
        assert job_slowdown_pct(comp, factors, 900) > 10 * job_slowdown_pct(
            mem, factors, 900
        )


class TestPlanner:
    def test_trivial_budget_caps_nothing(self, factors):
        jobs = snapshot()
        planner = PowerBudgetPlanner(factors)
        plan = planner.plan(jobs, budget_w=1e9)
        assert plan.feasible
        assert all(cap is None for cap in plan.caps.values())
        assert plan.shed_w == 0.0

    def test_memory_jobs_capped_before_compute(self, factors):
        jobs = snapshot()
        planner = PowerBudgetPlanner(factors)
        baseline = sum(
            capped_job_power_w(f, factors, None) for f in jobs.values()
        )
        plan = planner.plan(jobs, budget_w=0.93 * baseline)
        assert plan.feasible
        # The mild trim spares the compute job entirely; the cost is the
        # small compute fractions inside the memory/latency jobs.
        assert plan.caps[4] is None        # compute job untouched
        assert plan.caps[2] is not None or plan.caps[3] is not None
        assert plan.mean_slowdown_pct(jobs, factors) < 2.5

    def test_deep_budget_reaches_compute_jobs(self, factors):
        jobs = snapshot()
        planner = PowerBudgetPlanner(factors)
        baseline = sum(
            capped_job_power_w(f, factors, None) for f in jobs.values()
        )
        plan = planner.plan(jobs, budget_w=0.72 * baseline)
        assert plan.feasible
        assert plan.caps[4] is not None
        assert plan.mean_slowdown_pct(jobs, factors) > 1.0

    def test_infeasible_budget_flagged(self, factors):
        jobs = snapshot()
        planner = PowerBudgetPlanner(factors)
        plan = planner.plan(jobs, budget_w=1.0)
        assert not plan.feasible
        # Everything is at the deepest cap.
        deepest = min(factors.caps())
        assert all(cap == deepest for cap in plan.caps.values())

    def test_planned_power_respects_budget_when_feasible(self, factors):
        jobs = snapshot()
        planner = PowerBudgetPlanner(factors)
        baseline = sum(
            capped_job_power_w(f, factors, None) for f in jobs.values()
        )
        for frac in (0.95, 0.9, 0.85, 0.8):
            plan = planner.plan(jobs, budget_w=frac * baseline)
            if plan.feasible:
                assert plan.planned_power_w <= frac * baseline + 1e-6

    def test_validation(self, factors):
        planner = PowerBudgetPlanner(factors)
        with pytest.raises(ProjectionError):
            planner.plan(snapshot(), budget_w=0.0)
        with pytest.raises(ProjectionError):
            planner.plan({}, budget_w=100.0)
