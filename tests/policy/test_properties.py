"""Property-based tests for the policy layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import paper_factors
from repro.policy import CapAdvisor, JobFingerprint
from repro.policy.budget import (
    PowerBudgetPlanner,
    capped_job_power_w,
    job_slowdown_pct,
)

FACTORS = paper_factors("frequency")


def fp_of(job_id, e1, e2, e3, e4, nodes=2):
    region = np.array([e1, e2, e3, e4], dtype=float)
    total = region.sum()
    hours = 8.0
    return JobFingerprint(
        job_id=job_id,
        domain="SYN",
        size_class="C",
        num_nodes=nodes,
        gpu_hours=hours,
        energy_j=float(total),
        region_hours=hours * region / total,
        region_energy_j=region,
    )


energies = st.floats(min_value=1e3, max_value=1e12)
budgets = st.floats(min_value=0.0, max_value=60.0)


@given(energies, energies, energies, budgets)
@settings(max_examples=60, deadline=None)
def test_advisor_never_violates_budget(e1, e2, e3, budget):
    fp = fp_of(1, e1, e2, e3, 0.0)
    rec = CapAdvisor(FACTORS, max_slowdown_pct=budget).recommend(fp)
    assert rec.expected_slowdown_pct <= budget + 1e-9
    assert rec.expected_saving_j >= 0.0


@given(energies, energies, energies)
@settings(max_examples=60, deadline=None)
def test_advisor_monotone_in_budget(e1, e2, e3):
    fp = fp_of(1, e1, e2, e3, 0.0)
    savings = [
        CapAdvisor(FACTORS, max_slowdown_pct=b).recommend(fp).expected_saving_j
        for b in (0.0, 2.0, 10.0, 50.0)
    ]
    assert all(a <= b + 1e-9 for a, b in zip(savings, savings[1:]))


@given(energies, energies, energies, st.integers(min_value=1, max_value=64))
@settings(max_examples=60, deadline=None)
def test_capped_power_never_exceeds_uncapped(e1, e2, e3, nodes):
    fp = fp_of(1, e1, e2, e3, 0.0, nodes=nodes)
    base = capped_job_power_w(fp, FACTORS, None)
    for cap in FACTORS.caps():
        capped = capped_job_power_w(fp, FACTORS, cap)
        assert capped <= base * 1.01
        assert job_slowdown_pct(fp, FACTORS, cap) >= 0.0


@given(
    st.lists(
        st.tuples(energies, energies, energies),
        min_size=2,
        max_size=8,
    ),
    st.floats(min_value=0.5, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_planner_invariants(regions, frac):
    jobs = {
        i: fp_of(i, e1, e2, e3, 0.0)
        for i, (e1, e2, e3) in enumerate(regions, start=1)
    }
    planner = PowerBudgetPlanner(FACTORS)
    baseline = sum(
        capped_job_power_w(f, FACTORS, None) for f in jobs.values()
    )
    plan = planner.plan(jobs, budget_w=frac * baseline)
    # Planned power never exceeds baseline; the feasibility flag is
    # consistent with the budget.
    assert plan.planned_power_w <= baseline + 1e-6
    assert plan.baseline_power_w <= baseline * 1.000001
    if plan.feasible:
        assert plan.planned_power_w <= frac * baseline + 1e-6
    else:
        deepest = min(FACTORS.caps())
        assert all(cap == deepest for cap in plan.caps.values())
    # Every assigned cap is a known characterization point (or None).
    valid = set(FACTORS.caps()) | {None}
    assert set(plan.caps.values()) <= valid
