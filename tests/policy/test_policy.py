"""Tests for the power-management policy extension."""

import numpy as np
import pytest

from repro import units
from repro.core import measured_factors
from repro.errors import JoinError, ProjectionError
from repro.policy import (
    CapAdvisor,
    JobFingerprint,
    evaluate_policies,
    fingerprint_jobs,
)
from repro.policy.evaluate import format_outcomes
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator


@pytest.fixture(scope="module")
def fleet():
    mix = default_mix(fleet_nodes=24)
    log = SlurmSimulator(mix).run(units.days(1), rng=4)
    gen = FleetTelemetryGenerator(log, mix, seed=5)
    return log, gen


@pytest.fixture(scope="module")
def fingerprints(fleet):
    log, gen = fleet
    return fingerprint_jobs(gen.chunks(), log)


@pytest.fixture(scope="module")
def factors():
    return measured_factors("frequency")


def synthetic_fp(job_id, region_energy, hours=10.0):
    region_energy = np.asarray(region_energy, dtype=float)
    frac = region_energy / region_energy.sum()
    return JobFingerprint(
        job_id=job_id,
        domain="SYN",
        size_class="C",
        num_nodes=4,
        gpu_hours=hours,
        energy_j=float(region_energy.sum()),
        region_hours=hours * frac,
        region_energy_j=region_energy,
    )


class TestFingerprints:
    def test_every_sampled_job_fingerprinted(self, fleet, fingerprints):
        log, _gen = fleet
        sampled = {
            j.job_id for j in log.jobs if j.duration_s > 30.0
        }
        assert sampled <= set(fingerprints)

    def test_energy_accounting(self, fingerprints):
        for fp in fingerprints.values():
            assert fp.energy_j == pytest.approx(
                fp.region_energy_j.sum(), rel=1e-9
            )
            assert fp.gpu_hours == pytest.approx(
                fp.region_hours.sum(), rel=1e-9
            )
            assert 80.0 < fp.mean_power_w < 600.0

    def test_fingerprint_matches_domain_family(self, fingerprints):
        # Latency-bound domains should mostly fingerprint latency-bound.
        bio = [fp for fp in fingerprints.values() if fp.domain == "BIO"]
        if not bio:
            pytest.skip("no BIO jobs in this campaign")
        latencyish = sum(fp.family == "latency_bound" for fp in bio)
        assert latencyish >= len(bio) / 2

    def test_streaming_matches_store(self, fleet, fingerprints):
        log, gen = fleet
        store = gen.generate()
        direct = fingerprint_jobs(store, log)
        assert set(direct) == set(fingerprints)
        some = next(iter(direct))
        np.testing.assert_allclose(
            direct[some].region_energy_j,
            fingerprints[some].region_energy_j,
        )

    def test_empty_inputs_raise(self, fleet):
        log, _gen = fleet
        with pytest.raises(JoinError):
            fingerprint_jobs(iter([]), log)


class TestFamilies:
    def test_family_classification(self):
        assert synthetic_fp(1, [100, 5, 5, 0]).family == "latency_bound"
        assert synthetic_fp(2, [5, 100, 5, 0]).family == "memory_intensive"
        assert synthetic_fp(3, [5, 5, 100, 0]).family == "compute_intensive"
        assert synthetic_fp(4, [40, 40, 40, 0]).family == "multi_zone"

    def test_boost_counts_as_compute(self):
        assert synthetic_fp(5, [5, 5, 60, 50]).family == "compute_intensive"


class TestAdvisor:
    def test_latency_bound_left_uncapped(self, factors):
        fp = synthetic_fp(1, [1e9, 1e6, 1e6, 0])
        rec = CapAdvisor(factors).recommend(fp)
        assert not rec.capped

    def test_memory_bound_gets_deep_cap(self, factors):
        fp = synthetic_fp(2, [1e6, 1e9, 1e6, 0])
        rec = CapAdvisor(factors, max_slowdown_pct=5.0).recommend(fp)
        assert rec.capped
        assert rec.cap <= 1100
        assert rec.expected_slowdown_pct <= 5.0

    def test_compute_bound_respects_budget(self, factors):
        fp = synthetic_fp(3, [1e6, 1e6, 1e9, 0])
        tight = CapAdvisor(factors, max_slowdown_pct=2.0).recommend(fp)
        loose = CapAdvisor(factors, max_slowdown_pct=50.0).recommend(fp)
        assert tight.expected_slowdown_pct <= 2.0
        # A looser budget never saves less.
        assert loose.expected_saving_j >= tight.expected_saving_j

    def test_validation(self, factors):
        with pytest.raises(ProjectionError):
            CapAdvisor(factors, max_slowdown_pct=-1.0)
        with pytest.raises(ProjectionError):
            CapAdvisor(factors, min_saving_fraction=1.5)


class TestEvaluate:
    def test_three_strategies(self, fingerprints, factors):
        outcomes = evaluate_policies(fingerprints, factors)
        assert set(outcomes) == {"per_job", "uniform", "oracle"}

    def test_oracle_dominates(self, fingerprints, factors):
        outcomes = evaluate_policies(fingerprints, factors)
        assert (
            outcomes["oracle"].saving_j
            >= outcomes["per_job"].saving_j - 1e-9
        )
        assert (
            outcomes["oracle"].saving_j
            >= outcomes["uniform"].saving_j - 1e-9
        )

    def test_advisor_respects_budget_uniform_does_not(
        self, fingerprints, factors
    ):
        outcomes = evaluate_policies(
            fingerprints, factors, max_slowdown_pct=5.0
        )
        assert outcomes["per_job"].max_job_slowdown_pct <= 5.0 + 1e-9
        # The uniform cap slams compute-bound jobs far past the budget.
        assert outcomes["uniform"].max_job_slowdown_pct > 20.0

    def test_advisor_captures_most_of_oracle(self, fingerprints, factors):
        outcomes = evaluate_policies(fingerprints, factors)
        assert (
            outcomes["per_job"].saving_j
            > 0.6 * outcomes["oracle"].saving_j
        )

    def test_format(self, fingerprints, factors):
        text = format_outcomes(evaluate_policies(fingerprints, factors))
        assert "oracle" in text and "saving %" in text
