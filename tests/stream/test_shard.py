"""Sharded campaign engine: bitwise invariance, checkpoints, CLI.

The contract under test (docs/streaming.md, "Sharded campaigns"): the
merged campaign cube is bitwise identical for every shard count and
worker count, because the fold-unit grid — not the work distribution —
fixes the reduction tree.  Every test here compares full cube state
with ``np.array_equal`` (no tolerances).
"""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import TelemetryError
from repro.stream.shard import (
    ShardConfig,
    _shard_task,
    plan_shards,
    plan_units,
    run_sharded_campaign,
)

from .conftest import DAYS, FLEET_NODES, WINDOW_S

SEED = 0
CFG = ShardConfig(window_s=WINDOW_S, unit_nodes=4)


def _run(shards, *, cfg=CFG, **kwargs):
    return run_sharded_campaign(
        fleet_nodes=FLEET_NODES, days=DAYS, seed=SEED, shards=shards,
        cfg=cfg, **kwargs,
    )


@pytest.fixture(scope="module")
def reference():
    """The single-shard fold every other run must match bitwise."""
    return _run(1)


# -- unit / shard planning ---------------------------------------------------------


def test_plan_units_fixed_grid():
    assert plan_units(10, 4) == [(0, 4), (4, 8), (8, 10)]
    assert plan_units(3, 8) == [(0, 3)]
    assert plan_units(4, 1) == [(0, 1), (1, 2), (2, 3), (3, 4)]


def test_plan_units_rejects_bad_input():
    with pytest.raises(TelemetryError):
        plan_units(0, 4)
    with pytest.raises(TelemetryError):
        plan_units(4, 0)


def test_plan_shards_clamps_to_units():
    # More shards than units: spare shard slots do not exist (no empty
    # shards), and the covered range is exactly the unit list.
    bounds = plan_shards(3, 8)
    assert bounds == [(0, 1), (1, 2), (2, 3)]
    uneven = plan_shards(7, 3)
    assert [hi - lo for lo, hi in uneven] == [3, 2, 2]


# -- bitwise invariance ------------------------------------------------------------


def test_shard_counts_bitwise_identical(reference, cubes_equal):
    for shards in (2, 4, 8):
        result = _run(shards)
        assert cubes_equal(result.cube, reference.cube), (
            f"{shards} shards diverged from the single-shard fold"
        )
        assert result.complete


def test_uneven_shards_bitwise_identical(reference, cubes_equal):
    # 16 nodes / 4-node units = 4 units over 3 shards -> sizes 2/1/1.
    result = _run(3)
    assert result.shards == 3
    assert cubes_equal(result.cube, reference.cube)


def test_more_shards_than_units_clamps(reference, cubes_equal):
    # 4 units, 16 requested shards: clamps to 4, still identical.
    result = _run(16)
    assert result.shards == 4
    assert cubes_equal(result.cube, reference.cube)


def test_one_node_shards_bitwise_identical(cubes_equal):
    cfg = ShardConfig(window_s=WINDOW_S, unit_nodes=1)
    base = _run(1, cfg=cfg)
    assert base.n_units == FLEET_NODES
    sharded = _run(FLEET_NODES, cfg=cfg)
    assert sharded.shards == FLEET_NODES
    assert cubes_equal(sharded.cube, base.cube)


def test_worker_count_invariant(reference, cubes_equal):
    result = _run(4, workers=2)
    assert cubes_equal(result.cube, reference.cube)


def test_duplicates_straddling_shard_boundary(cubes_equal):
    # Adversarial delivery with duplicates: the perturbation seed
    # derives from the fold unit, so duplicates of nodes at a shard
    # boundary replay — and dedup — identically at every shard count.
    cfg = ShardConfig(
        window_s=WINDOW_S, unit_nodes=4, lateness_s=120.0,
        shuffle_s=120.0, dup_fraction=0.1,
    )
    base = _run(1, cfg=cfg)
    assert base.stats.duplicates > 0
    for shards in (2, 4):
        result = _run(shards, cfg=cfg)
        assert result.stats.duplicates == base.stats.duplicates
        assert cubes_equal(result.cube, base.cube)


def test_single_unit_matches_batch_join(batch_cube, cubes_equal):
    # One fold unit covering the whole fleet is exactly the stream
    # engine's drained fold, which is the batch join over canonical
    # windows — anchoring the sharded contract to the batch pipeline.
    cfg = ShardConfig(window_s=WINDOW_S, unit_nodes=FLEET_NODES)
    result = _run(1, cfg=cfg)
    assert result.n_units == 1
    assert cubes_equal(result.cube, batch_cube)


def test_stats_aggregate_across_shards(reference):
    stats = reference.stats
    n_ticks = int(DAYS * 86400 / 15.0)
    assert stats.samples_in == FLEET_NODES * n_ticks
    assert stats.samples_folded == stats.samples_in
    assert stats.duplicates == 0
    assert stats.late_dropped == 0
    assert stats.resident_samples == 0
    assert np.isinf(stats.sealed_until_s)
    sharded = _run(4)
    assert sharded.stats == stats


# -- checkpoint / resume -----------------------------------------------------------


def test_checkpoint_resume_mid_campaign(tmp_path, reference, cubes_equal):
    # Interrupt after one unit per shard, then resume to completion:
    # the resumed cube must be bitwise identical to an uninterrupted
    # run (the left-fold is prefix-resumable).
    partial = _run(
        2, checkpoint_dir=tmp_path, max_units_per_shard=1,
    )
    assert not partial.complete
    assert partial.units_done == 2
    assert sorted(p.name for p in tmp_path.glob("*.npz")) == [
        "shard_000.npz", "shard_001.npz",
    ]
    resumed = _run(2, checkpoint_dir=tmp_path, resume=True)
    assert resumed.complete
    assert cubes_equal(resumed.cube, reference.cube)
    assert resumed.stats == reference.stats


def test_resume_skips_completed_units(tmp_path, reference, cubes_equal):
    _run(2, checkpoint_dir=tmp_path)
    # A second resume run recomputes nothing (all units cached) and
    # still reproduces the cube exactly.
    again = _run(2, checkpoint_dir=tmp_path, resume=True)
    assert again.complete
    assert cubes_equal(again.cube, reference.cube)


def test_partial_cube_is_fold_prefix(tmp_path):
    # A partial run folds only the completed units — still a valid
    # campaign over that node subset (fewer samples, same axes).
    partial = _run(1, checkpoint_dir=tmp_path, max_units_per_shard=2)
    assert partial.units_done == 2
    full = _run(1)
    assert partial.stats.samples_folded < full.stats.samples_folded
    assert partial.cube.domains == full.cube.domains


def test_checkpoint_rejects_foreign_campaign(tmp_path):
    _run(2, checkpoint_dir=tmp_path, max_units_per_shard=1)
    with pytest.raises(TelemetryError, match="fleet/seed"):
        run_sharded_campaign(
            fleet_nodes=FLEET_NODES, days=DAYS, seed=SEED + 1,
            shards=2, cfg=CFG, checkpoint_dir=tmp_path, resume=True,
        )
    with pytest.raises(TelemetryError, match="stream config"):
        _run(
            2, cfg=ShardConfig(window_s=WINDOW_S / 2, unit_nodes=4),
            checkpoint_dir=tmp_path, resume=True,
        )


def test_checkpoint_rejects_different_unit_plan(tmp_path):
    _run(2, checkpoint_dir=tmp_path, max_units_per_shard=1)
    # Same config array length but a different shard plan: shard 0 of
    # a 1-shard run owns different units than shard 0 of the 2-shard
    # run that wrote the file.
    with pytest.raises(TelemetryError, match="fold"):
        _shard_task(
            _run(1).log.to_arrays(), FLEET_NODES, SEED + 1000,
            [(8, 12), (12, 16)], CFG,
            str(tmp_path / "shard_000.npz"), True, None,
        )


def test_without_resume_flag_checkpoints_are_overwritten(
    tmp_path, reference, cubes_equal
):
    _run(2, checkpoint_dir=tmp_path, max_units_per_shard=1)
    # resume=False ignores (and rewrites) existing files.
    fresh = _run(2, checkpoint_dir=tmp_path)
    assert fresh.complete
    assert cubes_equal(fresh.cube, reference.cube)


# -- CLI ---------------------------------------------------------------------------


def test_cli_campaign_end_to_end(capsys):
    rc = main([
        "campaign", "--nodes", "8", "--days", "0.2", "--shards", "2",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "sharded campaign (complete)" in out
    assert "live Table IV" in out


def test_cli_campaign_checkpoint_resume(capsys, tmp_path):
    rc = main([
        "campaign", "--nodes", "8", "--days", "0.2", "--shards", "2",
        "--unit-nodes", "2", "--checkpoint-dir", str(tmp_path),
        "--max-units", "1",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "partial" in out and "--resume" in out
    rc = main([
        "campaign", "--nodes", "8", "--days", "0.2", "--shards", "2",
        "--unit-nodes", "2", "--checkpoint-dir", str(tmp_path),
        "--resume",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "sharded campaign (complete)" in out


def test_cli_stream_shards_shorthand(capsys):
    rc = main(["stream", "--nodes", "8", "--days", "0.2",
               "--shards", "2", "--lateness-s", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "sharded campaign (complete)" in out


def test_cli_stream_shards_rejects_single_engine_flags(capsys):
    rc = main(["stream", "--nodes", "8", "--shards", "2",
               "--max-chunks", "5"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--max-chunks" in err
