"""Shared fixtures for the streaming-engine tests.

One small campaign is generated once per package; the batch reference
cube is the join over its *canonical event-time windows* — the exact
chunk sequence a drained engine folds, which is what makes bitwise
comparison meaningful (float accumulation order is part of the
contract; see docs/streaming.md).
"""

import numpy as np
import pytest

from repro import constants, units
from repro.core import join_campaign
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import canonical_windows
from repro.telemetry import FleetTelemetryGenerator

FLEET_NODES = 16
DAYS = 0.5
WINDOW_S = 40 * constants.TELEMETRY_INTERVAL_S
LATENESS_S = 8 * constants.TELEMETRY_INTERVAL_S


@pytest.fixture(scope="package")
def campaign():
    mix = default_mix(fleet_nodes=FLEET_NODES)
    log = SlurmSimulator(mix).run(units.days(DAYS), rng=0)
    gen = FleetTelemetryGenerator(log, mix, seed=1000)
    return log, gen, gen.generate()


@pytest.fixture(scope="package")
def batch_cube(campaign):
    log, _gen, store = campaign
    return join_campaign(canonical_windows(store, window_s=WINDOW_S), log)


@pytest.fixture(scope="package")
def cubes_equal():
    def check(a, b):
        return (
            np.array_equal(a.energy_j, b.energy_j)
            and np.array_equal(a.gpu_hours, b.gpu_hours)
            and np.array_equal(a.histogram.counts, b.histogram.counts)
            and np.array_equal(
                a.histogram.weight_sums, b.histogram.weight_sums
            )
            and a.cpu_energy_j == b.cpu_energy_j
            and a.domains == b.domains
            and a.classes == b.classes
        )

    return check
