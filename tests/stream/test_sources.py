"""Stream sources: replay, files, perturbation, canonical windowing."""

import numpy as np
import pytest

from repro import units
from repro.core import join_campaign
from repro.errors import TelemetryError
from repro.scheduler import SlurmSimulator, default_mix
from repro.stream import (
    StreamEngine,
    canonical_windows,
    file_source,
    perturb,
    replay_store,
    simulated_fleet,
)
from repro.telemetry import FleetTelemetryGenerator, TelemetryStore
from repro.telemetry.io_csv import write_telemetry_csv
from repro.telemetry.schema import TelemetryChunk

from .conftest import LATENESS_S, WINDOW_S


def test_canonical_windows_are_sorted_dedup_and_aligned(campaign):
    _log, _gen, store = campaign
    windows = list(canonical_windows(store, window_s=WINDOW_S))
    assert sum(len(w) for w in windows) == len(store.chunk)
    for w in windows:
        t = w.time_s
        # One window: all rows inside the same WINDOW_S-aligned span.
        assert np.floor(t[0] / WINDOW_S) == np.floor(t[-1] / WINDOW_S)
        # Canonical (time, node) order, no exact duplicates.
        key = t * 1e6 + w.node_id
        assert np.all(np.diff(key) > 0)


def test_canonical_windows_are_arrival_order_invariant(campaign):
    _log, _gen, store = campaign
    shuffled = list(
        perturb(store, seed=11, lateness_s=LATENESS_S, dup_fraction=0.1)
    )
    a = TelemetryChunk.concatenate(
        list(canonical_windows(store, window_s=WINDOW_S))
    )
    b = TelemetryChunk.concatenate(
        list(canonical_windows(shuffled, window_s=WINDOW_S))
    )
    assert np.array_equal(a.time_s, b.time_s)
    assert np.array_equal(a.node_id, b.node_id)
    assert np.array_equal(a.gpu_power_w, b.gpu_power_w)


def test_replay_store_chunks_are_time_slabs(campaign):
    _log, _gen, store = campaign
    chunk_ticks = 12
    chunks = list(replay_store(store, chunk_ticks=chunk_ticks))
    assert sum(len(c) for c in chunks) == len(store.chunk)
    span = chunk_ticks * store.interval_s
    for c in chunks:
        assert c.time_s[-1] - c.time_s[0] < span
    with pytest.raises(TelemetryError):
        list(replay_store(store, chunk_ticks=0))


def test_perturb_is_deterministic_and_admissible(campaign):
    _log, _gen, store = campaign
    kwargs = dict(seed=7, lateness_s=LATENESS_S, dup_fraction=0.03)
    a = list(perturb(store, **kwargs))
    b = list(perturb(store, **kwargs))
    assert len(a) == len(b)
    for ca, cb in zip(a, b):
        assert np.array_equal(ca.time_s, cb.time_s)
        assert np.array_equal(ca.node_id, cb.node_id)
    # Admissibility: no sample arrives more than lateness_s of event
    # time behind the newest event already delivered.
    t = np.concatenate([c.time_s for c in a])
    prev_max = np.concatenate([[-np.inf], np.maximum.accumulate(t)[:-1]])
    assert np.all(t > prev_max - LATENESS_S - 1e-9)
    n = len(store.chunk)
    assert len(t) == n + int(round(0.03 * n))


def test_perturb_drop_fraction_gaps_the_stream(campaign):
    _log, _gen, store = campaign
    chunks = list(perturb(store, seed=7, drop_fraction=0.2))
    n = sum(len(c) for c in chunks)
    assert 0.75 * len(store.chunk) < n < 0.85 * len(store.chunk)
    with pytest.raises(TelemetryError):
        list(perturb(store, drop_fraction=1.0))
    with pytest.raises(TelemetryError):
        list(perturb(store, dup_fraction=-0.1))


def test_npz_file_source_is_bitwise(
    campaign, batch_cube, cubes_equal, tmp_path
):
    log, _gen, store = campaign
    path = tmp_path / "telemetry.npz"
    store.save(path)
    engine = StreamEngine(log, window_s=WINDOW_S).run(file_source(path))
    assert cubes_equal(engine.cube(), batch_cube)


def test_csv_file_source_canonicalizes_file_order(campaign, tmp_path):
    # CSV rows stream in file (node-major) order — wildly out of event
    # order.  With lateness covering the horizon, the engine still
    # reconstructs the canonical windows.
    log, _gen, store = campaign
    small = store.filter_nodes(range(4)).filter_time(0.0, 2 * WINDOW_S)
    path = tmp_path / "telemetry.csv"
    write_telemetry_csv(small, path)
    horizon = float(small.chunk.time_s.max()) + small.interval_s
    engine = StreamEngine(
        log, window_s=WINDOW_S, lateness_s=horizon
    ).run(file_source(path, rows_per_chunk=100))
    expected = join_campaign(
        canonical_windows(small, window_s=WINDOW_S), log
    )
    np.testing.assert_allclose(
        engine.cube().energy_j, expected.energy_j, rtol=1e-6
    )
    assert engine.stats.late_dropped == 0


def test_simulated_fleet_matches_its_own_batch_join(cubes_equal):
    log, source = simulated_fleet(fleet_nodes=8, days=0.25, seed=2)
    chunks = list(source)
    engine = StreamEngine(log, window_s=WINDOW_S).run(chunks)
    batch = join_campaign(
        canonical_windows(chunks, window_s=WINDOW_S), log
    )
    assert cubes_equal(engine.cube(), batch)
    # Same construction as the batch campaign helper: the store route
    # and the generator route describe the same fleet.
    mix = default_mix(fleet_nodes=8)
    ref_log = SlurmSimulator(mix).run(units.days(0.25), rng=2)
    store = FleetTelemetryGenerator(ref_log, mix, seed=1002).generate()
    assert np.array_equal(
        TelemetryChunk.concatenate(chunks).time_s.sum(),
        store.chunk.time_s.sum(),
    )


def test_file_source_rejects_missing_store(tmp_path):
    with pytest.raises((TelemetryError, OSError)):
        list(file_source(tmp_path / "nope.npz"))


def test_empty_source_raises(campaign):
    with pytest.raises(TelemetryError):
        list(canonical_windows([], window_s=WINDOW_S))


def test_store_roundtrip_through_npz(campaign, tmp_path):
    _log, _gen, store = campaign
    path = tmp_path / "store.npz"
    store.save(path)
    loaded = TelemetryStore.load(path)
    assert np.array_equal(loaded.chunk.time_s, store.chunk.time_s)
    assert np.array_equal(loaded.chunk.gpu_power_w, store.chunk.gpu_power_w)
