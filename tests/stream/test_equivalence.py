"""Streaming-vs-batch equivalence: the subsystem's core contract.

A drained :class:`StreamEngine` must reproduce
``join_campaign(canonical_windows(store))`` *bitwise* — same cube
arrays, same histograms, same derived Table IV/V numbers — whatever
order the samples arrived in, as long as no sample outran the
configured lateness.  The node-major batch join folds the identical
samples in a different grouping, so it agrees only to float rounding.
"""

import numpy as np

from repro.core import join_campaign, measured_factors, report
from repro.core.modes import decompose_modes
from repro.core.projection import project_savings
from repro.stream import StreamEngine, perturb, replay_generator, replay_store

from .conftest import LATENESS_S, WINDOW_S


def test_in_order_replay_is_bitwise(campaign, batch_cube, cubes_equal):
    log, _gen, store = campaign
    engine = StreamEngine(log, window_s=WINDOW_S).run(
        replay_store(store, chunk_ticks=20)
    )
    assert cubes_equal(engine.cube(), batch_cube)
    s = engine.stats
    assert s.duplicates == 0 and s.late_dropped == 0
    assert s.samples_folded == s.samples_in == len(store.chunk)


def test_generator_replay_is_bitwise(campaign, batch_cube, cubes_equal):
    log, gen, _store = campaign
    engine = StreamEngine(log, window_s=WINDOW_S).run(
        replay_generator(gen, chunk_ticks=20, nodes_per_block=5)
    )
    assert cubes_equal(engine.cube(), batch_cube)


def test_shuffled_delivery_is_bitwise(campaign, batch_cube, cubes_equal):
    log, _gen, store = campaign
    engine = StreamEngine(
        log, window_s=WINDOW_S, lateness_s=LATENESS_S
    ).run(perturb(store, seed=3, lateness_s=LATENESS_S))
    assert cubes_equal(engine.cube(), batch_cube)
    assert engine.stats.late_dropped == 0


def test_duplicates_within_watermark_are_bitwise(
    campaign, batch_cube, cubes_equal
):
    log, _gen, store = campaign
    dup_fraction = 0.05
    engine = StreamEngine(
        log, window_s=WINDOW_S, lateness_s=LATENESS_S
    ).run(
        perturb(
            store, seed=3, lateness_s=LATENESS_S, dup_fraction=dup_fraction
        )
    )
    assert cubes_equal(engine.cube(), batch_cube)
    s = engine.stats
    assert s.duplicates == int(round(dup_fraction * len(store.chunk)))
    assert s.late_dropped == 0
    assert s.samples_folded == len(store.chunk)


def test_live_tables_match_batch_tables(campaign, batch_cube):
    log, _gen, store = campaign
    engine = StreamEngine(
        log, window_s=WINDOW_S, lateness_s=LATENESS_S
    ).run(perturb(store, seed=5, lateness_s=LATENESS_S, dup_fraction=0.02))
    factors = measured_factors("frequency")
    snap = engine.snapshot(factors=factors)
    assert report.render_table4(snap.table4) == report.render_table4(
        decompose_modes(batch_cube)
    )
    assert report.render_table5(snap.table5) == report.render_table5(
        project_savings(batch_cube, factors)
    )
    assert snap.recommendation is not None


def test_node_major_batch_agrees_to_float_rounding(campaign, batch_cube):
    log, _gen, store = campaign
    node_major = join_campaign(store, log)
    # Same samples, different float-add grouping: allclose, and usually
    # not exactly equal (which is why the contract uses canonical windows).
    np.testing.assert_allclose(
        node_major.energy_j, batch_cube.energy_j, rtol=1e-9
    )
    np.testing.assert_allclose(
        node_major.gpu_hours, batch_cube.gpu_hours, rtol=1e-9
    )
    assert np.isclose(
        node_major.cpu_energy_j, batch_cube.cpu_energy_j, rtol=1e-9
    )


def test_outrunning_the_watermark_drops_samples(campaign, batch_cube):
    log, _gen, store = campaign
    # Perturbed beyond the engine's configured lateness: the engine
    # seals windows too early and must count (not crash on) the misses.
    engine = StreamEngine(log, window_s=WINDOW_S, lateness_s=0.0).run(
        perturb(store, seed=3, lateness_s=LATENESS_S)
    )
    s = engine.stats
    assert s.late_dropped > 0
    assert s.samples_folded == s.samples_in - s.late_dropped
    assert engine.cube().total_energy_j < batch_cube.total_energy_j


def test_empty_stream_has_empty_snapshot(campaign):
    log, _gen, _store = campaign
    engine = StreamEngine(log, window_s=WINDOW_S)
    engine.drain()
    snap = engine.snapshot()
    assert snap.table4 is None and snap.table5 is None
    assert snap.recommendation is None
    assert "no sealed windows" in snap.render()
