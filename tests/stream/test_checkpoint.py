"""Checkpoint/resume: restart mid-stream, converge to the same cube."""

import numpy as np
import pytest

from repro.errors import ReproError, TelemetryError
from repro.stream import (
    StreamEngine,
    load_checkpoint,
    perturb,
    save_checkpoint,
)

from .conftest import LATENESS_S, WINDOW_S


@pytest.fixture(scope="module")
def arrival_chunks(campaign):
    _log, _gen, store = campaign
    return list(
        perturb(store, seed=3, lateness_s=LATENESS_S, dup_fraction=0.05)
    )


def _fresh(log):
    return StreamEngine(log, window_s=WINDOW_S, lateness_s=LATENESS_S)


def test_resume_mid_stream_is_bitwise(
    campaign, arrival_chunks, batch_cube, cubes_equal, tmp_path
):
    log, _gen, _store = campaign
    split = len(arrival_chunks) // 3
    uninterrupted = _fresh(log).run(arrival_chunks)

    first = _fresh(log).run(arrival_chunks[:split], drain=False)
    path = tmp_path / "mid.npz"
    save_checkpoint(first, path)
    resumed = load_checkpoint(path, log).run(arrival_chunks[split:])

    assert cubes_equal(resumed.cube(), uninterrupted.cube())
    assert cubes_equal(resumed.cube(), batch_cube)
    # Identical operational history, not just identical analytics.
    assert resumed.stats == uninterrupted.stats


def test_resume_then_refeed_from_start_converges(
    campaign, arrival_chunks, batch_cube, cubes_equal, tmp_path
):
    # At-least-once delivery: replaying the WHOLE stream into a resumed
    # engine still converges — already-sealed samples drop as late,
    # still-buffered ones dedup.
    log, _gen, _store = campaign
    split = len(arrival_chunks) // 2
    first = _fresh(log).run(arrival_chunks[:split], drain=False)
    path = tmp_path / "mid.npz"
    save_checkpoint(first, path)
    resumed = load_checkpoint(path, log).run(arrival_chunks)
    assert cubes_equal(resumed.cube(), batch_cube)
    assert resumed.stats.late_dropped > 0


def test_checkpoint_restores_config_and_counters(
    campaign, arrival_chunks, tmp_path
):
    log, _gen, _store = campaign
    engine = _fresh(log).run(arrival_chunks[:4], drain=False)
    path = tmp_path / "state.npz"
    save_checkpoint(engine, path)
    clone = load_checkpoint(path, log)
    assert clone.buffer.window_s == WINDOW_S
    assert clone.buffer.lateness_s == LATENESS_S
    assert clone.chunks_in == engine.chunks_in
    assert clone.stats == engine.stats


def test_version_mismatch_is_rejected(campaign, arrival_chunks, tmp_path):
    log, _gen, _store = campaign
    path = tmp_path / "ck.npz"
    save_checkpoint(_fresh(log).run(arrival_chunks[:2], drain=False), path)
    with np.load(path, allow_pickle=False) as data:
        arrays = dict(data)
    arrays["version"] = np.array([99], dtype=np.int64)
    bad = tmp_path / "bad.npz"
    np.savez_compressed(bad, **arrays)
    with pytest.raises(TelemetryError):
        load_checkpoint(bad, log)


def test_mismatched_log_axes_are_rejected(
    campaign, arrival_chunks, tmp_path
):
    log, _gen, _store = campaign
    path = tmp_path / "ck.npz"
    save_checkpoint(_fresh(log).run(arrival_chunks[:2], drain=False), path)
    with np.load(path, allow_pickle=False) as data:
        arrays = dict(data)
    arrays["acc_domains"] = arrays["acc_domains"][:-1]
    arrays["acc_energy_j"] = arrays["acc_energy_j"][:-1]
    arrays["acc_gpu_hours"] = arrays["acc_gpu_hours"][:-1]
    bad = tmp_path / "bad-axes.npz"
    np.savez_compressed(bad, **arrays)
    with pytest.raises(ReproError):
        load_checkpoint(bad, log)
