"""Bounded-memory evidence: resident samples track the reorder horizon,
not the stream length (ISSUE acceptance criterion)."""

from repro.stream import StreamEngine, perturb, replay_store

from .conftest import FLEET_NODES, LATENESS_S, WINDOW_S


def test_in_order_peak_is_bounded(campaign):
    log, _gen, store = campaign
    chunk_ticks = 20
    engine = StreamEngine(log, window_s=WINDOW_S).run(
        replay_store(store, chunk_ticks=chunk_ticks)
    )
    s = engine.stats
    bound = engine.buffer.resident_bound(
        FLEET_NODES, max_chunk_rows=chunk_ticks * FLEET_NODES
    )
    assert s.peak_resident_samples <= bound
    # The bound itself is a horizon, not the campaign: far below input.
    assert bound < s.samples_in / 4


def test_perturbed_peak_is_bounded(campaign):
    log, _gen, store = campaign
    dup_fraction = 0.05
    rows_per_chunk = 4096
    engine = StreamEngine(
        log, window_s=WINDOW_S, lateness_s=LATENESS_S
    ).run(
        perturb(
            store,
            seed=3,
            lateness_s=LATENESS_S,
            dup_fraction=dup_fraction,
            rows_per_chunk=rows_per_chunk,
        )
    )
    s = engine.stats
    # Duplicates still in flight count toward the per-tick row rate.
    bound = engine.buffer.resident_bound(
        FLEET_NODES * (1 + dup_fraction), max_chunk_rows=rows_per_chunk
    )
    assert s.peak_resident_samples <= bound
    assert bound < s.samples_in / 4
    # And the buffer is empty once drained.
    assert s.resident_samples == 0
