"""End-to-end `repro stream` CLI coverage."""

from repro.cli import main


def test_stream_simulated_end_to_end(capsys):
    rc = main(
        [
            "stream", "--nodes", "4", "--days", "0.2", "--shuffle",
            "--dup-fraction", "0.05", "--snapshot-every", "20",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "final (drained) snapshot" in out
    assert "live Table IV" in out
    assert "ingest stats:" in out
    assert "duplicates dropped" in out


def test_stream_checkpoint_then_resume(capsys, tmp_path):
    ck = tmp_path / "ck.npz"
    rc = main(
        [
            "stream", "--nodes", "4", "--days", "0.2",
            "--max-chunks", "5", "--checkpoint", str(ck),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert ck.exists()
    assert "live (stream paused) snapshot" in out

    rc = main(["stream", "--nodes", "4", "--days", "0.2",
               "--resume", str(ck)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "final (drained) snapshot" in out


def test_stream_flag_validation(capsys, tmp_path):
    # --dup-fraction without --shuffle is meaningless.
    assert main(["stream", "--nodes", "4", "--days", "0.2",
                 "--dup-fraction", "0.1"]) == 1
    # --from-file needs the scheduler log.
    assert main(["stream", "--from-file", str(tmp_path / "x.npz")]) == 1
    capsys.readouterr()
