"""Unit tests for the event-time reorder/dedup buffer."""

import numpy as np
import pytest

from repro import constants
from repro.errors import TelemetryError
from repro.stream import ReorderBuffer
from repro.telemetry.sampler import aggregate_sensor_trace
from repro.telemetry.schema import TelemetryChunk

DT = constants.TELEMETRY_INTERVAL_S


def mk_chunk(times, nodes=None, gpu=100.0, cpu=300.0):
    times = np.asarray(times, dtype=np.float64)
    n = len(times)
    if nodes is None:
        nodes = np.zeros(n, dtype=np.int32)
    return TelemetryChunk(
        time_s=times,
        node_id=np.asarray(nodes, dtype=np.int32),
        gpu_power_w=np.full(
            (n, constants.GPUS_PER_NODE), gpu, dtype=np.float32
        ),
        cpu_power_w=np.full(n, cpu, dtype=np.float32),
    )


def test_config_validation():
    with pytest.raises(TelemetryError):
        ReorderBuffer(interval_s=0.0)
    with pytest.raises(TelemetryError):
        ReorderBuffer(window_s=0.5 * DT)
    with pytest.raises(TelemetryError):
        ReorderBuffer(lateness_s=-1.0)


def test_in_order_window_sealing():
    buf = ReorderBuffer(interval_s=DT, window_s=4 * DT, lateness_s=0.0)
    out = buf.push(mk_chunk(np.arange(6) * DT))
    # Watermark at 5*DT seals exactly the [0, 4*DT) window.
    assert len(out) == 1
    assert np.array_equal(out[0].time_s, np.arange(4) * DT)
    assert buf.resident_samples == 2
    tail = buf.flush()
    assert len(tail) == 1
    assert np.array_equal(tail[0].time_s, np.array([4 * DT, 5 * DT]))
    assert buf.windows_emitted == 2
    assert buf.samples_out == 6
    assert buf.late_dropped == 0 and buf.duplicates == 0


def test_out_of_order_rows_come_back_canonical():
    buf = ReorderBuffer(interval_s=DT, window_s=8 * DT)
    buf.push(mk_chunk([3 * DT, DT, 0.0, 2 * DT], nodes=[1, 0, 1, 0]))
    (window,) = buf.flush()
    assert np.array_equal(window.time_s, [0.0, DT, 2 * DT, 3 * DT])
    assert np.array_equal(window.node_id, [1, 0, 0, 1])


def test_dedup_keeps_first_arrival():
    buf = ReorderBuffer(interval_s=DT, window_s=8 * DT)
    buf.push(mk_chunk([0.0], gpu=100.0))
    buf.push(mk_chunk([0.0], gpu=250.0))
    (window,) = buf.flush()
    assert len(window) == 1
    assert window.gpu_power_w[0, 0] == np.float32(100.0)
    assert buf.duplicates == 1
    assert buf.samples_in == 2 and buf.samples_out == 1


def test_late_samples_are_counted_and_dropped():
    buf = ReorderBuffer(interval_s=DT, window_s=4 * DT, lateness_s=0.0)
    buf.push(mk_chunk(np.arange(6) * DT))
    assert buf.sealed_until_s == 4 * DT
    buf.push(mk_chunk([2 * DT, 5 * DT]))  # one below the frontier
    assert buf.late_dropped == 1
    tail = buf.flush()
    assert sum(len(w) for w in tail) == 2  # 4*DT, 5*DT (deduped)
    # After flush everything is sealed: any further sample is late.
    buf.push(mk_chunk([100 * DT]))
    assert buf.late_dropped == 2
    assert buf.resident_samples == 0


def test_watermark_holds_back_sealing():
    buf = ReorderBuffer(interval_s=DT, window_s=4 * DT, lateness_s=2 * DT)
    out = buf.push(mk_chunk(np.arange(6) * DT))
    # Watermark is 5*DT - 2*DT = 3*DT: nothing seals yet.
    assert out == []
    assert buf.watermark_s == 3 * DT
    assert buf.watermark_lag_s == 5 * DT
    out = buf.push(mk_chunk([7 * DT]))  # watermark 5*DT -> seal [0, 4*DT)
    assert len(out) == 1 and len(out[0]) == 4
    assert buf.watermark_lag_s == 7 * DT - 4 * DT


def test_aggregate_mode_matches_sampler():
    # Two nodes of raw 2 s cadence; the buffer's windowed aggregation
    # must reproduce aggregate_sensor_trace per node and GPU.
    rng = np.random.default_rng(42)
    n_raw = 60  # 120 s of 2 s samples
    raw_t = np.arange(n_raw) * constants.SENSOR_INTERVAL_S
    parts = []
    raw = {}
    for nid in (0, 1):
        gpu = rng.uniform(80.0, 400.0, size=(n_raw, constants.GPUS_PER_NODE))
        cpu = rng.uniform(100.0, 300.0, size=n_raw)
        raw[nid] = (gpu, cpu)
        parts.append(
            TelemetryChunk(
                time_s=raw_t.astype(np.float64),
                node_id=np.full(n_raw, nid, dtype=np.int32),
                gpu_power_w=gpu.astype(np.float32),
                cpu_power_w=cpu.astype(np.float32),
            )
        )
    arrival = TelemetryChunk.concatenate(parts)
    shuffle = np.random.default_rng(7).permutation(len(arrival))
    buf = ReorderBuffer(
        interval_s=DT, window_s=4 * DT, lateness_s=0.0, aggregate=True
    )
    windows = buf.push(
        TelemetryChunk(
            time_s=arrival.time_s[shuffle],
            node_id=arrival.node_id[shuffle],
            gpu_power_w=arrival.gpu_power_w[shuffle],
            cpu_power_w=arrival.cpu_power_w[shuffle],
        )
    )
    windows += buf.flush()
    out = TelemetryChunk.concatenate(windows)
    assert np.array_equal(np.unique(out.time_s), np.arange(8) * DT)
    for nid in (0, 1):
        sel = out.node_id == nid
        gpu, cpu = raw[nid]
        for g in range(constants.GPUS_PER_NODE):
            expected = aggregate_sensor_trace(
                gpu[:, g].astype(np.float32), raw_interval_s=2.0
            )
            np.testing.assert_allclose(
                out.gpu_power_w[sel, g], expected, rtol=1e-6
            )
        np.testing.assert_allclose(
            out.cpu_power_w[sel],
            aggregate_sensor_trace(cpu.astype(np.float32), raw_interval_s=2.0),
            rtol=1e-6,
        )


def test_state_roundtrip_preserves_everything():
    buf = ReorderBuffer(interval_s=DT, window_s=4 * DT, lateness_s=DT)
    buf.push(mk_chunk(np.arange(7) * DT, nodes=np.arange(7) % 3))
    buf.push(mk_chunk([2 * DT], nodes=[2]))  # pending duplicate
    state = buf.state_arrays()
    clone = ReorderBuffer()
    clone.load_state_arrays(state)
    assert clone.resident_samples == buf.resident_samples
    assert clone.sealed_until_s == buf.sealed_until_s
    assert clone.max_event_time_s == buf.max_event_time_s
    a = TelemetryChunk.concatenate(buf.flush())
    b = TelemetryChunk.concatenate(clone.flush())
    assert np.array_equal(a.time_s, b.time_s)
    assert np.array_equal(a.node_id, b.node_id)
    assert np.array_equal(a.gpu_power_w, b.gpu_power_w)
    assert buf.duplicates == clone.duplicates
