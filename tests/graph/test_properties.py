"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, louvain, modularity
from repro.graph.louvain import _compact


@st.composite
def random_graphs(draw):
    """Small random connected-ish multigraph edge lists."""
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=1, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    # Guarantee at least one real edge (no self-loop).
    src[0], dst[0] = 0, 1 % n if n > 1 else 0
    if n > 1 and src[0] == dst[0]:
        dst[0] = (src[0] + 1) % n
    return CSRGraph.from_edges(n, src, dst)


@given(random_graphs())
@settings(max_examples=50, deadline=None)
def test_csr_symmetry(g):
    src, dst, w = g.edge_arrays()
    fwd = set(zip(src.tolist(), dst.tolist()))
    assert all((b, a) in fwd for a, b in fwd)
    assert not any(a == b for a, b in fwd)  # no self loops


@given(random_graphs())
@settings(max_examples=50, deadline=None)
def test_degree_sum_equals_directed_edges(g):
    assert g.degrees.sum() == len(g.indices) == 2 * g.n_edges


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_modularity_bounds(g):
    rng = np.random.default_rng(0)
    labels = rng.integers(0, max(1, g.n_vertices // 2), size=g.n_vertices)
    q = modularity(g, labels)
    assert -0.5 - 1e-9 <= q <= 1.0 + 1e-9


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_single_community_modularity_nonpositive(g):
    # Q(all-in-one) = 1 - sum((sigma/2m)^2) with one community = 0 exactly.
    q = modularity(g, np.zeros(g.n_vertices, dtype=int))
    assert abs(q) < 1e-9


@given(random_graphs())
@settings(max_examples=30, deadline=None)
def test_louvain_beats_singletons_and_stays_bounded(g):
    res = louvain(g)
    singleton_q = modularity(g, np.arange(g.n_vertices))
    assert res.modularity >= singleton_q - 1e-9
    assert res.modularity <= 1.0
    # Labels are a compact 0..k-1 range covering all vertices.
    labels = np.unique(res.communities)
    np.testing.assert_array_equal(labels, np.arange(len(labels)))
    assert len(res.communities) == g.n_vertices


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_compact_relabeling(labels):
    arr = np.array(labels)
    compact = _compact(arr)
    # Compactness: ids form 0..k-1.
    uniq = np.unique(compact)
    np.testing.assert_array_equal(uniq, np.arange(len(uniq)))
    # Same partition: equal labels iff equal compact labels.
    for a in range(min(5, len(arr))):
        same_orig = arr == arr[a]
        same_new = compact == compact[a]
        np.testing.assert_array_equal(same_orig, same_new)
