"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph


def triangle():
    return CSRGraph.from_edges(3, np.array([0, 1, 2]), np.array([1, 2, 0]))


class TestFromEdges:
    def test_triangle_shape(self):
        g = triangle()
        assert g.n_vertices == 3
        assert g.n_edges == 3
        assert len(g.indices) == 6  # both directions

    def test_degrees(self):
        g = triangle()
        np.testing.assert_array_equal(g.degrees, [2, 2, 2])

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(2, np.array([0, 0]), np.array([0, 1]))
        assert g.n_edges == 1

    def test_duplicate_edges_merged_weights_summed(self):
        g = CSRGraph.from_edges(
            2,
            np.array([0, 1, 0]),
            np.array([1, 0, 1]),
            weights=np.array([1.0, 2.0, 3.0]),
        )
        assert g.n_edges == 1
        assert g.total_weight == pytest.approx(6.0)

    def test_weighted_degrees(self):
        g = CSRGraph.from_edges(
            3, np.array([0, 1]), np.array([1, 2]), weights=np.array([2.0, 5.0])
        )
        np.testing.assert_allclose(g.weighted_degrees, [2.0, 7.0, 5.0])

    def test_neighbors(self):
        g = triangle()
        assert set(g.neighbors(0)) == {1, 2}

    def test_edge_arrays_roundtrip(self):
        g = triangle()
        src, dst, w = g.edge_arrays()
        assert len(src) == len(dst) == len(w) == 6
        # Every directed edge has its reverse.
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, np.array([0]), np.array([5]))

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(0, np.array([]), np.array([]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, np.array([0, 1]), np.array([1]))
        with pytest.raises(GraphError):
            CSRGraph.from_edges(
                3, np.array([0]), np.array([1]), weights=np.array([1.0, 2.0])
            )


class TestValidation:
    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(
                indptr=np.array([1, 2]),
                indices=np.array([0]),
                weights=np.array([1.0]),
            )

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError):
            CSRGraph(
                indptr=np.array([0, 2, 1]),
                indices=np.array([0, 1]),
                weights=np.array([1.0, 1.0]),
            )

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(GraphError):
            CSRGraph(
                indptr=np.array([0, 1, 2]),
                indices=np.array([1, 0]),
                weights=np.array([1.0, 0.0]),
            )

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(GraphError):
            CSRGraph(
                indptr=np.array([0, 2]),
                indices=np.array([0]),
                weights=np.array([1.0]),
            )
