"""Tests for Louvain community detection (with networkx cross-checks)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, louvain, modularity, social_network


def clique_chain(n_cliques: int, size: int) -> CSRGraph:
    """A ring of cliques joined by single edges — known community structure."""
    edges = []
    for c in range(n_cliques):
        base = c * size
        for i in range(size):
            for j in range(i + 1, size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % n_cliques) * size
        edges.append((base, nxt))
    src, dst = np.array(edges).T
    return CSRGraph.from_edges(n_cliques * size, src, dst)


class TestKnownStructures:
    def test_two_cliques(self):
        g = clique_chain(2, 5)
        res = louvain(g)
        assert res.n_communities == 2
        # Both cliques are intact communities.
        assert len(set(res.communities[:5])) == 1
        assert len(set(res.communities[5:])) == 1

    def test_ring_of_cliques(self):
        g = clique_chain(8, 6)
        res = louvain(g)
        assert res.n_communities == 8
        assert res.modularity > 0.7

    def test_modularity_matches_metric(self):
        g = clique_chain(4, 5)
        res = louvain(g)
        assert res.modularity == pytest.approx(
            modularity(g, res.communities)
        )

    def test_labels_compact(self):
        g = clique_chain(5, 4)
        res = louvain(g)
        labels = np.unique(res.communities)
        np.testing.assert_array_equal(labels, np.arange(len(labels)))

    def test_rejects_empty_graph(self):
        g = CSRGraph(
            indptr=np.zeros(4, dtype=np.int64),
            indices=np.array([], dtype=np.int64),
            weights=np.array([]),
        )
        with pytest.raises(GraphError):
            louvain(g)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_quality_within_five_percent_of_networkx(self, seed):
        g = social_network(8_000, rng=seed)
        ours = louvain(g)
        G = nx.Graph()
        src, dst, _ = g.edge_arrays()
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        theirs = nx.community.louvain_communities(G, seed=seed)
        q_theirs = nx.community.modularity(G, theirs)
        assert ours.modularity > q_theirs - 0.05

    def test_karate_club(self):
        G = nx.karate_club_graph()
        src, dst = np.array(G.edges()).T
        g = CSRGraph.from_edges(G.number_of_nodes(), src, dst)
        res = louvain(g)
        # The canonical benchmark: Louvain finds Q ~= 0.42 on karate.
        assert res.modularity > 0.36
        assert 2 <= res.n_communities <= 6


class TestPassStats:
    def test_passes_recorded_and_shrinking(self):
        g = clique_chain(8, 6)
        res = louvain(g)
        assert len(res.passes) >= 1
        sizes = [p.n_vertices for p in res.passes]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert res.passes[0].n_directed_edges == 2 * g.n_edges

    def test_level_modularity_nondecreasing(self):
        g = social_network(5_000, rng=2)
        res = louvain(g)
        qs = [p.modularity for p in res.passes]
        assert all(b >= a - 1e-9 for a, b in zip(qs, qs[1:]))

    def test_weighted_graph(self):
        # Heavier intra-block weights must dominate community structure.
        src = np.array([0, 1, 2, 3, 0])
        dst = np.array([1, 2, 3, 0, 2])
        w = np.array([10.0, 1.0, 10.0, 1.0, 0.5])
        g = CSRGraph.from_edges(4, src, dst, weights=w)
        res = louvain(g)
        assert res.communities[0] == res.communities[1]
        assert res.communities[2] == res.communities[3]


class TestResolution:
    def test_higher_resolution_more_communities(self):
        from repro.graph import social_network

        g = social_network(10_000, rng=3)
        coarse = louvain(g, resolution=0.5)
        fine = louvain(g, resolution=3.0)
        assert fine.n_communities > coarse.n_communities

    def test_resolution_one_is_default(self):
        g = clique_chain(4, 5)
        a = louvain(g)
        b = louvain(g, resolution=1.0)
        assert a.modularity == b.modularity

    def test_modularity_resolution_validation(self):
        import pytest as _pytest

        from repro.graph import modularity as mod
        g = clique_chain(2, 4)
        with _pytest.raises(GraphError):
            mod(g, np.zeros(8, dtype=int), resolution=0.0)
