"""Tests for the GPU execution mapping of Louvain (Fig 7 behaviour)."""

import pytest

from repro import units
from repro.graph import (
    GPULouvainRunner,
    degree_stats,
    louvain,
    road_network,
    social_network,
)
from repro.graph.gpu_louvain import HostModel, kernel_character, sweep_kernel
from repro.gpu import GPUDevice

ROAD_EDGES = 300_000
SOCIAL_EDGES = 60_000


@pytest.fixture(scope="module")
def road():
    g = road_network(ROAD_EDGES, rng=0)
    return g, louvain(g)


@pytest.fixture(scope="module")
def social():
    g = social_network(SOCIAL_EDGES, rng=0)
    return g, louvain(g)


class TestKernelCharacter:
    def test_road_low_occupancy_social_high(self, road, social):
        c_road = kernel_character(degree_stats(road[0]))
        c_social = kernel_character(degree_stats(social[0]))
        assert c_road["occupancy"] < c_social["occupancy"]
        assert c_road["issue_bw_factor"] < c_social["issue_bw_factor"]

    def test_road_more_stall_power(self, road, social):
        c_road = kernel_character(degree_stats(road[0]))
        c_social = kernel_character(degree_stats(social[0]))
        assert c_road["stall_power_fraction"] > c_social["stall_power_fraction"]

    def test_sweep_kernel_valid(self, road):
        stats = degree_stats(road[0])
        k = sweep_kernel(1_000_000, stats, level=0, sweep=0)
        assert k.flops > 0
        assert k.hbm_bytes >= 64.0 * 1_000_000


class TestRunner:
    def test_energy_and_time_accounting(self, social):
        g, lv = social
        r = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        assert r.total_time_s == pytest.approx(r.gpu_time_s + r.host_time_s)
        assert r.gpu_time_s > 0 and r.host_time_s > 0
        assert r.avg_power_w * r.total_time_s == pytest.approx(r.energy_j)
        assert r.modularity == lv.modularity

    def test_precomputed_reuse_is_deterministic(self, social):
        g, lv = social
        a = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        b = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        assert a.energy_j == b.energy_j
        assert a.total_time_s == b.total_time_s

    def test_host_model_scales_host_time(self, social):
        g, lv = social
        slow_host = HostModel(aggregation_s_per_edge=1e-7)
        fast = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        slow = GPULouvainRunner(
            GPUDevice(), host_model=slow_host
        ).run(g, precomputed=lv)
        assert slow.host_time_s > 2 * fast.host_time_s
        assert slow.gpu_time_s == pytest.approx(fast.gpu_time_s)


class TestFig7Behaviour:
    """The paper's application-level claims."""

    def test_road_peak_power_near_205w(self, road):
        g, lv = road
        r = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        assert r.max_power_w == pytest.approx(205.0, abs=25.0)

    def test_road_more_frequency_sensitive_than_social(self, road, social):
        def slowdown(pair, mhz):
            g, lv = pair
            base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
            capped = GPULouvainRunner(
                GPUDevice(frequency_cap_hz=units.mhz(mhz))
            ).run(g, precomputed=lv)
            return capped.total_time_s / base.total_time_s

        assert slowdown(road, 700) > slowdown(social, 700) + 0.05

    def test_social_saves_energy_at_900_with_small_slowdown(self, social):
        g, lv = social
        base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        capped = GPULouvainRunner(
            GPUDevice(frequency_cap_hz=units.mhz(900))
        ).run(g, precomputed=lv)
        saving = 1 - capped.energy_j / base.energy_j
        slowdown = capped.total_time_s / base.total_time_s - 1
        # Paper: 2.9-5.2 % savings with at most 5 % runtime increase.
        assert 0.01 < saving < 0.15
        assert slowdown < 0.05

    def test_lower_frequencies_hurt_road_runtime(self, road):
        g, lv = road
        base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        times = []
        for mhz in (1300, 900, 500):
            r = GPULouvainRunner(
                GPUDevice(frequency_cap_hz=units.mhz(mhz))
            ).run(g, precomputed=lv)
            times.append(r.total_time_s)
        assert times == sorted(times)  # monotonically worse
        assert times[-1] > 1.2 * base.total_time_s

    def test_moderate_power_cap_mild_for_road(self, road):
        # Paper: capping near the 205 W peak leaves runtime intact.
        g, lv = road
        base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        capped = GPULouvainRunner(GPUDevice(power_cap_w=220.0)).run(
            g, precomputed=lv
        )
        assert capped.total_time_s == pytest.approx(
            base.total_time_s, rel=0.02
        )

    def test_deep_power_cap_slows_road(self, road):
        g, lv = road
        base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)
        capped = GPULouvainRunner(GPUDevice(power_cap_w=140.0)).run(
            g, precomputed=lv
        )
        assert capped.total_time_s > 1.05 * base.total_time_s
        assert capped.max_power_w < base.max_power_w
