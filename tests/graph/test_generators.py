"""Unit tests for the graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import degree_stats, road_network, social_network
from repro.graph.generators import paper_suite, suite_by_name


class TestRoadNetwork:
    def test_bounded_degree(self):
        g = road_network(50_000, rng=0)
        stats = degree_stats(g)
        # Paper's road network: d_max = 9, d_avg = 2.
        assert stats.d_max <= 9
        assert stats.d_avg == pytest.approx(2.0, abs=0.5)

    def test_edge_count_near_target(self):
        g = road_network(50_000, rng=0)
        assert g.n_edges == pytest.approx(50_000, rel=0.2)

    def test_deterministic_with_seed(self):
        a = road_network(5_000, rng=42)
        b = road_network(5_000, rng=42)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            road_network(2)


class TestSocialNetwork:
    def test_power_law_shape(self):
        g = social_network(100_000, rng=0)
        stats = degree_stats(g)
        # Heavy tail: max degree far above the mean (paper: up to 343 vs 23).
        assert stats.d_max > 10 * stats.d_avg
        assert stats.imbalance > 1.0

    def test_mean_degree_controllable(self):
        lo = degree_stats(social_network(50_000, mean_degree=6.0, rng=0))
        hi = degree_stats(social_network(50_000, mean_degree=20.0, rng=0))
        assert hi.d_avg > lo.d_avg

    def test_paper_degree_range_attainable(self):
        g = social_network(100_000, mean_degree=20.0, rng=3)
        stats = degree_stats(g)
        assert 10.0 <= stats.d_avg <= 25.0

    def test_deterministic_with_seed(self):
        a = social_network(5_000, rng=7)
        b = social_network(5_000, rng=7)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            social_network(1)
        with pytest.raises(GraphError):
            social_network(1000, gamma=1.5)
        with pytest.raises(GraphError):
            social_network(1000, mean_degree=-1)


class TestPaperSuite:
    def test_names_and_kinds(self):
        suite = paper_suite(scale=0.001, rng=0)
        names = [g.name for g in suite]
        assert "road-8M" in names
        assert "social-8M" in names
        kinds = {g.name: g.kind for g in suite}
        assert kinds["road-8M"] == "road"
        assert kinds["social-3K"] == "social"

    def test_scale_shrinks_sizes(self):
        small = suite_by_name(scale=0.001, rng=0)
        assert small["social-8M"].graph.n_edges < 100_000

    def test_size_ordering_preserved(self):
        suite = suite_by_name(scale=0.002, rng=0)
        assert (
            suite["social-8M"].graph.n_edges
            > suite["social-6M"].graph.n_edges
            > suite["social-2M"].graph.n_edges
        )

    def test_rejects_bad_scale(self):
        with pytest.raises(GraphError):
            paper_suite(scale=0.0)


class TestRmat:
    def test_heavy_skew(self):
        from repro.graph.generators import rmat_graph

        g = rmat_graph(100_000, rng=0)
        stats = degree_stats(g)
        # R-MAT's recursive quadrants give a far heavier tail than the
        # Chung-Lu generator at the same mean degree.
        assert stats.d_max > 30 * stats.d_avg
        assert stats.imbalance > 2.0

    def test_power_of_two_vertices(self):
        from repro.graph.generators import rmat_graph

        g = rmat_graph(10_000, scale=10, rng=1)
        assert g.n_vertices == 1024

    def test_symmetric_parameters_flatten_skew(self):
        from repro.graph.generators import rmat_graph

        skewed = degree_stats(rmat_graph(50_000, rng=2))
        flat = degree_stats(
            rmat_graph(50_000, a=0.25, b=0.25, c=0.25, rng=2)
        )
        assert flat.imbalance < skewed.imbalance

    def test_deterministic(self):
        from repro.graph.generators import rmat_graph

        a = rmat_graph(5_000, rng=7)
        b = rmat_graph(5_000, rng=7)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_validation(self):
        from repro.graph.generators import rmat_graph

        with pytest.raises(GraphError):
            rmat_graph(1)
        with pytest.raises(GraphError):
            rmat_graph(1000, a=0.9, b=0.9, c=0.9)
