"""Unit tests for modularity and degree statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import CSRGraph, degree_stats, modularity


def two_triangles():
    src = np.array([0, 1, 2, 3, 4, 5, 0])
    dst = np.array([1, 2, 0, 4, 5, 3, 3])
    return CSRGraph.from_edges(6, src, dst)


class TestModularity:
    def test_single_community_is_zero(self):
        g = two_triangles()
        assert modularity(g, np.zeros(6, dtype=int)) == pytest.approx(0.0)

    def test_good_partition_positive(self):
        g = two_triangles()
        labels = np.array([0, 0, 0, 1, 1, 1])
        assert modularity(g, labels) > 0.3

    def test_matches_networkx(self):
        g = two_triangles()
        labels = np.array([0, 0, 0, 1, 1, 1])
        G = nx.Graph()
        src, dst, _ = g.edge_arrays()
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        expected = nx.community.modularity(G, [{0, 1, 2}, {3, 4, 5}])
        assert modularity(g, labels) == pytest.approx(expected)

    def test_singletons_negative(self):
        g = two_triangles()
        assert modularity(g, np.arange(6)) < 0.0

    def test_weighted_modularity(self):
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        g = CSRGraph.from_edges(3, src, dst, weights=np.array([2.0, 2.0, 8.0]))
        labels = np.array([0, 1, 0])
        G = nx.Graph()
        G.add_weighted_edges_from([(0, 1, 2.0), (1, 2, 2.0), (2, 0, 8.0)])
        expected = nx.community.modularity(G, [{0, 2}, {1}], weight="weight")
        assert modularity(g, labels) == pytest.approx(expected)

    def test_shape_mismatch_raises(self):
        g = two_triangles()
        with pytest.raises(GraphError):
            modularity(g, np.zeros(4, dtype=int))


class TestDegreeStats:
    def test_regular_graph(self):
        g = two_triangles()
        stats = degree_stats(g)
        assert stats.d_max == 3
        assert stats.d_avg == pytest.approx(14 / 6)

    def test_imbalance_zero_for_regular(self):
        src = np.array([0, 1, 2, 3])
        dst = np.array([1, 2, 3, 0])
        ring = CSRGraph.from_edges(4, src, dst)
        assert degree_stats(ring).imbalance == pytest.approx(0.0)

    def test_star_high_imbalance(self):
        n = 50
        src = np.zeros(n - 1, dtype=int)
        dst = np.arange(1, n)
        star = CSRGraph.from_edges(n, src, dst)
        stats = degree_stats(star)
        assert stats.d_max == n - 1
        assert stats.imbalance > 2.0
