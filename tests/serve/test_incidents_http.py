"""The ``/v1/incidents`` routes: list, forensic detail, error paths.

A tiny synthetic fleet with one injected straggler makes the incident
content deterministic: the flat power profile keeps every default
detector quiet except the one the fault trips.
"""

import json

import numpy as np
import pytest

from repro import constants, units
from repro.obs.forensics import Forensics, default_detectors
from repro.obs.health.drift import DriftReference
from repro.obs.httpd import fetch_url
from repro.scheduler import SlurmSimulator, default_mix
from repro.serve import ControlPlane, ControlPlaneServer
from repro.stream import replay_store
from repro.telemetry.schema import TelemetryChunk
from repro.telemetry.store import TelemetryStore

NODES = 16
WINDOW_TICKS = 40
WINDOW_S = WINDOW_TICKS * constants.TELEMETRY_INTERVAL_S
N_WINDOWS = 12
STRAGGLER_NODE = 3
STRAGGLER_WINDOWS = (4, 6)          # inclusive window-index span


def synthetic_store() -> TelemetryStore:
    ticks = N_WINDOWS * WINDOW_TICKS
    time_s = np.repeat(
        np.arange(ticks, dtype=np.float64)
        * constants.TELEMETRY_INTERVAL_S,
        NODES,
    )
    node_id = np.tile(np.arange(NODES, dtype=np.int32), ticks)
    gpu = np.full(
        (ticks * NODES, constants.GPUS_PER_NODE), 300.0,
    )
    window = (time_s // WINDOW_S).astype(int)
    hot = (
        (node_id == STRAGGLER_NODE)
        & (window >= STRAGGLER_WINDOWS[0])
        & (window <= STRAGGLER_WINDOWS[1])
    )
    gpu[hot, :] = 540.0
    return TelemetryStore(TelemetryChunk(
        time_s=time_s,
        node_id=node_id,
        gpu_power_w=gpu.astype(np.float32),
        cpu_power_w=np.full(ticks * NODES, 100.0, dtype=np.float32),
    ))


def forensics_for_test() -> Forensics:
    return Forensics(detectors=default_detectors(
        reference=DriftReference(
            gpu_hours_pct=(0.0, 100.0, 0.0, 0.0), label="all MI"
        ),
        z_threshold=6.0,
        deviation_pct=50.0,
    ))


@pytest.fixture(scope="module")
def served():
    mix = default_mix(fleet_nodes=NODES)
    log = SlurmSimulator(mix).run(units.days(0.2), rng=0)
    plane = ControlPlane(
        log, window_s=WINDOW_S, forensics=forensics_for_test(),
    )
    for chunk in replay_store(synthetic_store(), chunk_ticks=WINDOW_TICKS):
        plane.ingest(chunk)
    plane.drain()
    server = plane.serve(port=0)
    yield plane, server.url
    plane.close()


def get_doc(url: str):
    status, body = fetch_url(url)
    return status, json.loads(body)


class TestIncidentRoutes:
    def test_list_serves_the_deterministic_incident(self, served):
        plane, url = served
        status, doc = get_doc(url + "/v1/incidents")
        assert status == 200
        assert doc["version"] == plane.cache.view.version
        assert doc["total"] == 1 and doc["open"] == 0
        incident = doc["incidents"][0]
        assert incident["id"] == "inc-001"
        assert incident["detector"] == "straggler"
        assert incident["status"] == "resolved"
        assert (incident["first_window"], incident["last_window"]) == (
            STRAGGLER_WINDOWS
        )
        assert incident["top_nodes"][0]["id"] == STRAGGLER_NODE
        assert doc["summary"]["windows_recorded"] == N_WINDOWS

    def test_detail_carries_the_recorder_slice(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/incidents/inc-001")
        assert status == 200
        assert doc["incident"]["id"] == "inc-001"
        # The slice spans the incident padded one window each side.
        assert [r["index"] for r in doc["records"]] == [3, 4, 5, 6, 7]
        hot = doc["records"][1]
        assert hot["top_nodes"][0]["node"] == STRAGGLER_NODE
        # Records carry the decision context in force at sealing.
        assert "cap" in hot and "published_version" in hot

    def test_unknown_incident_is_404(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/incidents/inc-999")
        assert status == 404
        assert "inc-999" in doc["error"]

    def test_index_advertises_the_routes(self, served):
        _plane, url = served
        _status, body = fetch_url(url + "/")
        assert "/v1/incidents" in body

    def test_incident_metrics_ride_the_scrape(self, served):
        _plane, url = served
        status, text = fetch_url(url + "/metrics")
        assert status == 200
        assert "forensics_windows_recorded" in text
        assert "forensics_incidents_total 1" in text


class TestForensicsDisabled:
    def test_routes_answer_404_without_a_recorder(self):
        mix = default_mix(fleet_nodes=4)
        log = SlurmSimulator(mix).run(units.days(0.1), rng=0)
        plane = ControlPlane(log, window_s=WINDOW_S, forensics=False)
        assert plane.forensics is None
        for chunk in replay_store(
            synthetic_store(), chunk_ticks=WINDOW_TICKS
        ):
            plane.ingest(chunk)
        plane.drain()
        with ControlPlaneServer(plane, port=0) as server:
            status, doc = get_doc(server.url + "/v1/incidents")
            assert status == 404
            assert "forensics disabled" in doc["error"]
            status, _doc = get_doc(server.url + "/v1/incidents/inc-001")
            assert status == 404
        plane.close()
