"""The ``/v1/logs`` route, route-key canonicalization, and the bitwise
invisibility contract: attaching an :class:`EventLog` to a plane must
not change a single byte of the decision-bearing routes.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.httpd import fetch_url
from repro.obs.log import EventLog
from repro.serve.http import _logs_route_key
from tests.serve.conftest import build_plane

#: Decision-bearing routes whose bytes must not move when logging is on.
INVISIBLE_KEYS = ("fleet/cap", "fleet/savings", "policy", "jobs")


@pytest.fixture(scope="module")
def logged(campaign, windows):
    log, _store = campaign
    plane = build_plane(log, windows, event_log=EventLog(capacity=16_384))
    server = plane.serve(port=0)
    yield plane, server.url
    plane.close()


def get_doc(url: str):
    status, body = fetch_url(url)
    return status, json.loads(body)


class TestLogsRoute:
    def test_window_seals_and_decisions_are_served(self, logged):
        plane, url = logged
        status, doc = get_doc(url + "/v1/logs?limit=100000")
        assert status == 200
        assert doc["version"] == plane.cache.view.version
        events = {r["event"] for r in doc["logs"]}
        assert "stream.window_seal" in events
        assert "serve.decide_cap" in events
        assert "serve.publish" in events
        assert doc["count"] == len(doc["logs"])
        assert doc["summary"]["emitted"] >= doc["count"]
        # Seals are window-correlated with dense occurrence ids.
        seals = [r for r in doc["logs"]
                 if r["event"] == "stream.window_seal"]
        assert [r["window"] for r in seals] == list(range(len(seals)))
        assert seals[0]["id"] == "stream.window_seal:1"

    def test_filters_compose(self, logged):
        _plane, url = logged
        status, doc = get_doc(url + "/v1/logs?event=serve.&limit=100000")
        assert status == 200
        assert doc["count"] > 0
        assert all(r["event"].startswith("serve.") for r in doc["logs"])

        status, doc = get_doc(url + "/v1/logs?window=0")
        assert status == 200
        assert all(r["window"] == 0 for r in doc["logs"])

        status, doc = get_doc(url + "/v1/logs?limit=3")
        assert status == 200
        assert doc["count"] == 3

    def test_bad_parameters_answer_400(self, logged):
        _plane, url = logged
        assert fetch_url(url + "/v1/logs?severity=noisy")[0] == 400
        assert fetch_url(url + "/v1/logs?t0=yesterday")[0] == 400

    def test_repeated_requests_share_cached_bytes(self, logged):
        _plane, url = logged
        a = fetch_url(url + "/v1/logs?limit=10")
        b = fetch_url(url + "/v1/logs?limit=10")
        assert a == b and a[0] == 200

    def test_route_is_404_without_an_event_log(self, drained_plane):
        status, payload = drained_plane.cache.view.body("logs")
        assert status == 404
        assert b"logging disabled" in payload

    def test_request_exemplars_ride_the_scrape(self, logged):
        _plane, url = logged
        fetch_url(url + "/v1/logs")      # at least one observed request
        # Request metering lands just after the response is sent, so
        # give the handler thread a few scrapes to flush it.
        for _ in range(50):
            status, text = fetch_url(url + "/metrics")
            assert status == 200
            exemplar_lines = [
                line for line in text.splitlines()
                if "serve_request_seconds_bucket" in line
                and '# {trace_id="' in line
            ]
            if exemplar_lines:
                break
            time.sleep(0.02)
        assert exemplar_lines


class TestBitwiseInvisibility:
    def test_logging_never_moves_decision_bytes(self, logged,
                                                drained_plane):
        plane, _url = logged
        for key in INVISIBLE_KEYS:
            status_a, body_a = drained_plane.cache.view.body(key)
            status_b, body_b = plane.cache.view.body(key)
            assert status_a == status_b == 200
            assert body_a == body_b, f"route {key} bytes moved"


class TestLogsRouteKey:
    def test_equivalent_spellings_collapse(self):
        assert _logs_route_key("t0=100&t1=200.0") == \
            _logs_route_key("t0=100.0&t1=200")

    def test_bounded_key_space_for_hostile_values(self):
        assert _logs_route_key("severity=zzz") == "logs?severity=bad"
        assert _logs_route_key("event=a&event=../../etc") == \
            "logs?event=bad"
        assert _logs_route_key("window=NaNs") == "logs?window=bad"
        assert _logs_route_key("nonsense=1") == "logs"
        assert _logs_route_key("limit=99999999") == "logs?limit=100000"

    def test_prefix_events_are_preserved(self):
        assert _logs_route_key("event=serve.") == "logs?event=serve."
