"""Shared fixtures for the control-plane tests.

One small campaign is generated once per package.  ``drained_plane`` is
the read-only reference instance — tests that mutate policy or server
state build their own plane from the same campaign (cheap: the folds
dominate and the campaign is tiny).
"""

from __future__ import annotations

import pytest

from repro import constants, units
from repro.scheduler import SlurmSimulator, default_mix
from repro.serve import ControlPlane
from repro.stream import canonical_windows
from repro.telemetry import FleetTelemetryGenerator

FLEET_NODES = 16
DAYS = 0.5
WINDOW_S = 40 * constants.TELEMETRY_INTERVAL_S


@pytest.fixture(scope="package")
def campaign():
    mix = default_mix(fleet_nodes=FLEET_NODES)
    log = SlurmSimulator(mix).run(units.days(DAYS), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=1000).generate()
    return log, store


@pytest.fixture(scope="package")
def windows(campaign):
    _log, store = campaign
    return list(canonical_windows(store, window_s=WINDOW_S))


def build_plane(log, windows, **kwargs) -> ControlPlane:
    """A drained plane over the canonical windows (no HTTP server)."""
    kwargs.setdefault("window_s", WINDOW_S)
    plane = ControlPlane(log, **kwargs)
    for window in windows:
        plane.ingest(window)
    plane.drain()
    return plane


@pytest.fixture(scope="package")
def drained_plane(campaign, windows):
    log, _store = campaign
    plane = build_plane(log, windows)
    yield plane
    plane.close()
