"""The serve_snapshot_stale health rule, end to end.

The rule watches ``serve_snapshot_age_s`` — event-time distance between
the engine's sealed frontier and the published view — which the control
plane injects into the engine's metric stream.  Normal operation
(publish after every fold) keeps the age at one window; a stalled
publisher lets it grow window by window until the rule goes pending,
then firing, and one refresh resolves it.
"""

from repro.obs.health import HealthMonitor
from repro.serve import ControlPlane

from tests.serve.conftest import WINDOW_S


def _rule_state(monitor, name="serve_snapshot_stale"):
    for row in monitor.alerts.rule_states():
        if row["name"] == name:
            return row
    raise AssertionError(f"rule {name} not loaded")


def test_default_ruleset_ships_the_rule(campaign):
    log, _store = campaign
    monitor = HealthMonitor(drift=False)
    ControlPlane(log, monitor=monitor)
    row = _rule_state(monitor)
    assert row["kind"] == "threshold"
    assert row["severity"] == "critical"
    assert row["state"] == "inactive"


def test_stalled_publisher_fires_then_refresh_resolves(campaign, windows):
    log, _store = campaign
    monitor = HealthMonitor(drift=False)
    plane = ControlPlane(log, window_s=WINDOW_S, monitor=monitor)

    # Healthy operation: ingest republishes after every fold, so the
    # event-time age stays at one window and the rule stays inactive.
    half = len(windows) // 2
    for window in windows[:half]:
        plane.ingest(window)
    assert _rule_state(monitor)["state"] == "inactive"

    # Serving metrics ride the engine's metric stream into the rules.
    values = plane.engine.metric_values()
    assert "serve_snapshot_age_s" in values
    assert "serve_snapshot_version" in values

    # Publication stalls (ingest continues behind the cache's back):
    # the sealed frontier runs ahead 600 s per window while the view
    # stays pinned, so the age crosses 1800 s, holds for 600 s, fires.
    for window in windows[half:]:
        plane.engine.ingest(window)
    row = _rule_state(monitor)
    assert row["state"] == "firing", row
    assert row["value"] > 1800.0
    assert any(
        e["rule"] == "serve_snapshot_stale" and e["transition"] == "firing"
        for e in monitor.events
    )

    # One refresh republishes the frontier; the next evaluation clears.
    plane.refresh()
    monitor.observe_engine(plane.engine)
    row = _rule_state(monitor)
    assert row["state"] == "inactive", row
    assert any(
        e["rule"] == "serve_snapshot_stale" and e["transition"] == "resolved"
        for e in monitor.events
    )
    assert monitor.healthy
