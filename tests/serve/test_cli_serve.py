"""``repro serve`` end to end: in-process and over a real TCP socket."""

import json
import os
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestInProcess:
    def test_exit_after_drain_prints_summary(self, capsys):
        code = main([
            "serve", "--port", "0", "--nodes", "8", "--days", "0.25",
            "--drift-ref", "off", "--exit-after-drain",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "control plane serving on http://127.0.0.1:" in out
        assert "control plane shut down" in out
        assert "snapshots" in out and "final advice [slowdown]" in out
        assert "health: ok" in out

    def test_objective_flag(self, capsys):
        code = main([
            "serve", "--port", "0", "--nodes", "8", "--days", "0.25",
            "--drift-ref", "off", "--objective", "edp",
            "--exit-after-drain",
        ])
        assert code == 0
        assert "final advice [edp]" in capsys.readouterr().out

    def test_bad_objective_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--objective", "nope"])

    def test_from_file_needs_sacct(self, capsys):
        code = main(["serve", "--from-file", "nope.npz"])
        assert code == 1
        assert "--sacct" in capsys.readouterr().err


class TestRealProcess:
    """The satellite contract: a separate OS process on an ephemeral port."""

    def test_serve_poll_shutdown(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--port", "0", "--nodes", "8", "--days", "0.25",
                "--window-s", "600", "--drift-ref", "off",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        url = None
        try:
            deadline = time.monotonic() + 120
            for line in proc.stdout:
                if line.startswith("control plane serving on "):
                    url = line.rsplit(" ", 1)[-1].strip()
                    break
                assert time.monotonic() < deadline, "no serving banner"
            assert url is not None, "server never announced its URL"

            with urllib.request.urlopen(url + "/v1/fleet/cap",
                                        timeout=10) as resp:
                doc = json.loads(resp.read().decode())
            assert resp.status == 200
            assert doc["version"] >= 1
            assert doc["policy"]["objective"] == "slowdown"

            # Wait for ingest to finish (the process announces it), then
            # ask for a graceful stop over the API.
            for line in proc.stdout:
                if "ingest complete" in line:
                    break
                assert time.monotonic() < deadline, "ingest never finished"

            req = urllib.request.Request(
                url + "/v1/admin/shutdown", data=b"{}",
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=10) as resp:
                assert resp.status == 200

            out_rest = proc.communicate(timeout=60)[0]
            assert proc.returncode == 0, out_rest
            assert "control plane shut down" in out_rest
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
