"""Objective registry and cap-decision arithmetic."""

import numpy as np
import pytest

from repro.core import measured_factors
from repro.errors import ServeError
from repro.serve import (
    OBJECTIVES,
    CapDecision,
    Objective,
    decide_cap,
    get_objective,
    objective_names,
    register_objective,
)


@pytest.fixture(scope="module")
def factors():
    return measured_factors("frequency")


#: A region-energy vector with real MI/CI mass (latency, MI, CI, boost).
REGION_J = np.array([1.0e9, 4.0e9, 3.0e9, 0.5e9])


class TestRegistry:
    def test_shipped_objectives(self):
        assert {"energy", "edp", "ed2p", "slowdown"} <= set(OBJECTIVES)
        assert objective_names() == sorted(OBJECTIVES)

    def test_unknown_objective(self):
        with pytest.raises(ServeError, match="unknown objective"):
            get_objective("speed")

    def test_register_and_use_custom_objective(self, factors):
        name = "test_only_greedy"
        register_objective(Objective(
            name, "test: pure energy", lambda e, dt, budget: e,
        ))
        try:
            custom = decide_cap(REGION_J, factors, objective=name)
            energy = decide_cap(REGION_J, factors, objective="energy")
            assert custom.cap == energy.cap
            assert custom.objective == name
        finally:
            del OBJECTIVES[name]

    def test_register_rejects_bad_objectives(self):
        with pytest.raises(ServeError, match="needs a name"):
            register_objective(Objective("", "x", lambda e, dt, b: e))
        with pytest.raises(ServeError, match="not callable"):
            register_objective(Objective("x", "x", "not-a-function"))


class TestDecideCap:
    def test_validation(self, factors):
        with pytest.raises(ServeError, match="shape"):
            decide_cap(np.zeros(3), factors)
        with pytest.raises(ServeError, match=">= 0"):
            decide_cap(REGION_J, factors, max_slowdown_pct=-1.0)
        with pytest.raises(ServeError, match="unknown objective"):
            decide_cap(REGION_J, factors, objective="nope")

    def test_zero_energy_stays_uncapped(self, factors):
        decision = decide_cap(np.zeros(4), factors)
        assert not decision.capped
        assert decision.cap is None
        assert decision.savings_pct == 0.0
        assert decision.runtime_increase_pct == 0.0

    def test_zero_budget_slowdown_stays_uncapped(self, factors):
        decision = decide_cap(
            REGION_J, factors, objective="slowdown", max_slowdown_pct=0.0
        )
        assert not decision.capped

    def test_energy_objective_matches_manual_scan(self, factors):
        decision = decide_cap(REGION_J, factors, objective="energy")
        e_mi, e_ci = float(REGION_J[1]), float(REGION_J[2])
        base = float(REGION_J.sum())
        best_cap, best_j = None, base
        for cap in factors.caps():
            f_ci, f_mi = factors.energy_at(cap)
            projected = base - e_ci * (1 - f_ci) - e_mi * (1 - f_mi)
            if projected < best_j:
                best_cap, best_j = float(cap), projected
        assert decision.cap == best_cap
        assert decision.projected_energy_j == best_j
        assert decision.saving_j == pytest.approx(base - best_j)

    def test_decision_accounting_is_consistent(self, factors):
        decision = decide_cap(REGION_J, factors, objective="edp")
        assert decision.capped
        assert decision.baseline_energy_j == float(REGION_J.sum())
        assert decision.saving_j == pytest.approx(
            decision.baseline_energy_j - decision.projected_energy_j
        )
        assert decision.savings_pct == pytest.approx(
            100.0 * decision.saving_j / decision.baseline_energy_j
        )

    def test_menu_orders_by_performance_lean(self, factors):
        caps = {}
        for name in ("energy", "edp", "ed2p"):
            d = decide_cap(REGION_J, factors, objective=name)
            caps[name] = d.cap if d.capped else float("inf")
        # More delay-weight in the metric => equal or higher (laxer) cap.
        assert caps["energy"] <= caps["edp"] <= caps["ed2p"]

    def test_slowdown_respects_budget(self, factors):
        for budget in (0.5, 2.0, 5.0, 50.0):
            d = decide_cap(
                REGION_J, factors,
                objective="slowdown", max_slowdown_pct=budget,
            )
            assert d.runtime_increase_pct <= budget

    def test_decisions_are_value_comparable(self, factors):
        a = decide_cap(REGION_J, factors, objective="slowdown")
        b = decide_cap(REGION_J.copy(), factors, objective="slowdown")
        assert isinstance(a, CapDecision)
        assert a == b


class TestAdvisorParity:
    def test_slowdown_decision_matches_table5_advisor(self, drained_plane):
        """The serve-layer decision is the stream layer's Table V pick."""
        view = drained_plane.cache.view
        rec = view.snap.recommendation
        assert rec is not None
        decision = view.decision
        assert decision.objective == "slowdown"
        if rec.capped:
            assert decision.cap == rec.cap
            assert decision.savings_pct == pytest.approx(rec.savings_pct)
        else:
            assert not decision.capped
