"""HTTP API routing, status codes, and the shared /metrics surface."""

import json

import pytest

from repro.obs.health import HealthMonitor
from repro.obs.httpd import fetch_url, post_url
from repro.serve import ControlPlane, ControlPlaneServer

from tests.serve.conftest import build_plane


@pytest.fixture(scope="module")
def served(campaign, windows):
    log, _store = campaign
    plane = build_plane(log, windows, monitor=HealthMonitor(drift=False))
    server = plane.serve(port=0)
    yield plane, server.url
    plane.close()


def get_doc(url: str):
    status, body = fetch_url(url)
    return status, json.loads(body)


class TestRouting:
    def test_index_lists_endpoints(self, served):
        _plane, url = served
        status, body = fetch_url(url + "/")
        assert status == 200
        assert "/v1/fleet/cap" in body and "/v1/policy" in body

    def test_fleet_endpoints(self, served):
        plane, url = served
        status, cap = get_doc(url + "/v1/fleet/cap")
        assert status == 200
        assert cap["version"] == plane.cache.view.version
        assert cap["decision"]["objective"] == "slowdown"
        assert cap["advisor"] is not None
        status, savings = get_doc(url + "/v1/fleet/savings")
        assert status == 200
        assert savings["energy"]["total_j"] > 0
        assert len(savings["energy"]["by_region_j"]) == 4

    def test_job_endpoints(self, served):
        plane, url = served
        status, listing = get_doc(url + "/v1/jobs?limit=5")
        assert status == 200
        assert listing["jobs"], "expected active jobs"
        job_id = listing["jobs"][0]["job_id"]
        status, job = get_doc(url + f"/v1/jobs/{job_id}")
        assert status == 200
        assert job["job"]["job_id"] == job_id
        assert job["job"]["partition"].startswith("batch")
        assert job["job"]["user"].startswith("pi-")
        status, cap = get_doc(url + f"/v1/jobs/{job_id}/cap")
        assert status == 200
        assert cap["decision"]["objective"] == "slowdown"
        status, savings = get_doc(url + f"/v1/jobs/{job_id}/savings")
        assert status == 200
        assert savings["energy_j"] == pytest.approx(
            job["job"]["energy_j"]
        )
        assert 0.0 <= savings["fleet_share_pct"] <= 100.0

    def test_trailing_slash_is_tolerated(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/fleet/cap/")
        assert status == 200 and "decision" in doc

    def test_not_found(self, served):
        _plane, url = served
        assert fetch_url(url + "/v1/nope")[0] == 404
        assert fetch_url(url + "/nope")[0] == 404
        assert fetch_url(url + "/v1/jobs/999999")[0] == 404
        assert fetch_url(url + "/v1/jobs/zzz")[0] == 404
        assert fetch_url(url + "/v1/jobs/1/nope")[0] == 404

    def test_method_not_allowed(self, served):
        _plane, url = served
        status, _body = post_url(url + "/v1/fleet/cap")
        assert status == 405

    def test_not_ready_before_first_publish(self, campaign):
        log, _store = campaign
        plane = ControlPlane(log)
        with ControlPlaneServer(plane, port=0) as server:
            status, doc = get_doc(server.url + "/v1/fleet/cap")
            assert status == 503
            assert "no snapshot" in doc["error"]


class TestPolicyEndpoint:
    def test_get_lists_objectives(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/policy")
        assert status == 200
        assert set(doc["objectives"]) >= {
            "energy", "edp", "ed2p", "slowdown"
        }

    def test_post_switches_objective(self, served):
        plane, url = served
        before = plane.cache.view.policy_version
        status, body = post_url(
            url + "/v1/policy",
            {"objective": "edp", "max_slowdown_pct": 3.0},
        )
        doc = json.loads(body)
        assert status == 200
        assert doc["policy"]["objective"] == "edp"
        assert doc["policy"]["max_slowdown_pct"] == 3.0
        assert doc["policy_version"] == before + 1
        # Restore for the other tests in this module.
        post_url(url + "/v1/policy",
                 {"objective": "slowdown", "max_slowdown_pct": 5.0})

    def test_post_bad_policy_is_400(self, served):
        plane, url = served
        status, body = post_url(url + "/v1/policy", {"objective": "nope"})
        assert status == 400
        assert "unknown objective" in json.loads(body)["error"]
        assert plane.policy.objective == "slowdown"


class TestObservabilitySurface:
    def test_one_scrape_covers_serving_and_ingest(self, served):
        _plane, url = served
        fetch_url(url + "/v1/fleet/cap")
        status, text = fetch_url(url + "/metrics")
        assert status == 200
        for needle in ("serve_requests_total", "serve_request_seconds",
                       "serve_cache_age_s", "serve_snapshot_version",
                       "stream_samples_in"):
            assert needle in text, needle

    def test_health_and_alerts(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/health")
        assert status == 200 and doc["status"] == "ok"
        names = {r["name"] for r in doc["rules"]}
        assert "serve_snapshot_stale" in names
        status, doc = get_doc(url + "/alerts")
        assert status == 200 and doc["firing"] == []


class TestShutdown:
    def test_graceful_shutdown_endpoint(self, campaign, windows):
        log, _store = campaign
        plane = build_plane(log, windows[:4])
        with plane:
            url = plane.serve(port=0).url
            status, body = post_url(url + "/v1/admin/shutdown")
            assert status == 200
            assert json.loads(body)["status"] == "shutting down"
            assert plane.stop_event.is_set()
            plane.wait_until_stopped(poll_s=0.01)
