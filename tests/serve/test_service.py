"""ControlPlane publication, policy mutation, and serving metrics."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import ControlPlane
from repro.serve.cache import render_body

from tests.serve.conftest import WINDOW_S, build_plane


class TestPublication:
    def test_versions_increase_by_one_per_publish(self, campaign, windows):
        log, _store = campaign
        plane = build_plane(log, windows)
        v0 = plane.cache.version
        for i in (1, 2, 3):
            view = plane.refresh()
            assert view.version == v0 + i
            assert plane.cache.version == v0 + i
            assert plane.cache.view is view

    def test_bodies_are_memoized_bytes(self, drained_plane):
        view = drained_plane.cache.view
        status1, body1 = view.body("fleet/cap")
        status2, body2 = view.body("fleet/cap")
        assert status1 == status2 == 200
        assert body1 is body2, "second read must hit the byte cache"
        assert body1 == render_body(json.loads(body1))

    def test_error_bodies_are_not_memoized(self, drained_plane):
        view = drained_plane.cache.view
        status, body = view.body("jobs/999999")
        assert status == 404
        assert "jobs/999999" not in view._bodies
        # Identical content on re-render, just not cached.
        assert view.body("jobs/999999") == (status, body)

    def test_hot_routes_prerendered_at_publish(self, drained_plane):
        view = drained_plane.cache.view
        for route in ("fleet/cap", "fleet/savings", "policy", "jobs"):
            assert route in view._bodies

    def test_jobs_limit_clamps_listing(self, drained_plane):
        view = drained_plane.cache.view
        _status, full = view.body("jobs")
        _status, limited = view.body("jobs?limit=3")
        full_doc, limited_doc = json.loads(full), json.loads(limited)
        assert len(limited_doc["jobs"]) == min(3, full_doc["count"])
        assert limited_doc["count"] == full_doc["count"]
        # Listing is sorted by energy, descending.
        energies = [j["energy_j"] for j in full_doc["jobs"]]
        assert energies == sorted(energies, reverse=True)

    def test_rebuilt_plane_serves_identical_bytes(self, campaign, windows):
        """Same windows, same refresh count => byte-identical answers."""
        log, _store = campaign
        a = build_plane(log, windows)
        b = build_plane(log, windows)
        for route in ("fleet/cap", "fleet/savings", "jobs", "policy"):
            assert a.cache.view.body(route) == b.cache.view.body(route)


class TestPolicy:
    def test_set_policy_switches_objective_and_republishes(
        self, campaign, windows
    ):
        log, _store = campaign
        plane = build_plane(log, windows)
        old = plane.cache.view
        view = plane.set_policy(objective="edp", max_slowdown_pct=2.0)
        assert view.version == old.version + 1
        assert view.policy_version == old.policy_version + 1
        assert view.policy["objective"] == "edp"
        assert view.policy["max_slowdown_pct"] == 2.0
        assert view.decision.objective == "edp"
        # The old view stays frozen (pollers mid-request are safe).
        assert old.policy["objective"] == "slowdown"

    def test_bad_policy_rejected_without_side_effects(
        self, campaign, windows
    ):
        log, _store = campaign
        plane = build_plane(log, windows)
        before = plane.cache.version
        with pytest.raises(ServeError, match="unknown objective"):
            plane.set_policy(objective="nope")
        with pytest.raises(ServeError, match="bad slowdown budget"):
            plane.set_policy(max_slowdown_pct="lots")
        with pytest.raises(ServeError, match=">= 0"):
            plane.set_policy(max_slowdown_pct=-3)
        assert plane.policy.objective == "slowdown"
        assert plane.cache.version == before

    def test_constructor_validates_policy(self, campaign):
        log, _store = campaign
        with pytest.raises(ServeError):
            build_plane(log, [], objective="nope")
        with pytest.raises(ServeError):
            build_plane(log, [], max_slowdown_pct=-1.0)


class TestServeMetrics:
    def test_no_view_no_metrics(self, campaign):
        log, _store = campaign
        plane = build_plane(log, [])
        # build_plane drains, which publishes; a raw plane does not.
        raw = ControlPlane(log)
        assert raw.serve_metric_values() == {}
        assert plane.serve_metric_values()["serve_snapshot_version"] >= 1

    def test_snapshot_age_tracks_unpublished_windows(
        self, campaign, windows
    ):
        log, _store = campaign
        plane = ControlPlane(log, window_s=WINDOW_S)
        half = len(windows) // 2
        for window in windows[:half]:
            plane.ingest(window)
        plane.refresh()
        assert plane.serve_metric_values()["serve_snapshot_age_s"] == 0.0
        # Ingest behind the cache's back: sealed frontier advances but
        # nothing is published, so event-time staleness grows ...
        for window in windows[half:]:
            plane.engine.ingest(window)
        plane.engine.drain()
        stale = plane.serve_metric_values()["serve_snapshot_age_s"]
        assert stale > 0.0
        # ... and one refresh clears it.
        plane.refresh()
        assert plane.serve_metric_values()["serve_snapshot_age_s"] == 0.0

    def test_observe_request_meters_registry(self, campaign, windows):
        log, _store = campaign
        plane = build_plane(log, windows)
        view = plane.cache.view
        for _ in range(3):
            plane.observe_request("/v1/fleet/cap", 200, 0.0004, view)
        plane.observe_request("/v1/nope", 404, 0.0001, view)
        counter = plane.registry.counter(
            "serve_requests_total", endpoint="/v1/fleet/cap", status="200"
        )
        assert counter.value == 3.0
        hist = plane.registry.histogram(
            "serve_request_seconds", endpoint="/v1/fleet/cap"
        )
        assert hist.count == 3
        text = plane.registry.to_prometheus()
        assert "serve_requests_total" in text
        assert "serve_cache_age_s" in text
        assert 'endpoint="/v1/nope",status="404"' in text


class TestLifecycle:
    def test_run_respects_stop_request(self, campaign, windows):
        log, _store = campaign
        plane = ControlPlane(log)
        plane.request_stop()
        plane.run(iter(windows))
        assert plane.engine.stats.windows_folded == 0

    def test_run_max_chunks(self, campaign, windows):
        log, _store = campaign
        plane = ControlPlane(log, window_s=WINDOW_S)
        plane.run(iter(windows), max_chunks=3, drain=False)
        assert plane.engine.stats.chunks_in == 3

    def test_close_is_idempotent(self, campaign, windows):
        log, _store = campaign
        plane = build_plane(log, windows)
        plane.serve(port=0)
        plane.close()
        plane.close()
