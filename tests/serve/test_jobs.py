"""Job-state index: metadata synthesis and the sample-tagging join."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import JobStateIndex
from repro.serve.jobs import PARTITION_BY_CLASS, user_of_project


class TestIndex:
    def test_covers_every_logged_job(self, campaign):
        log, _store = campaign
        index = JobStateIndex(log)
        assert len(index) == len(log.jobs)
        for job in log.jobs:
            assert job.job_id in index
            meta = index.meta(job.job_id)
            assert meta.user == user_of_project(job.project_id)
            assert meta.account == job.project_id
            assert meta.partition == PARTITION_BY_CLASS[job.size_class]
            assert meta.domain == job.domain
            assert meta.num_nodes == job.num_nodes

    def test_meta_doc_round_trips(self, campaign):
        log, _store = campaign
        index = JobStateIndex(log)
        job_id = index.job_ids()[0]
        doc = index.meta(job_id).to_dict()
        assert doc["job_id"] == job_id
        assert set(doc) == {
            "job_id", "user", "account", "partition", "domain",
            "size_class", "num_nodes", "start_time_s", "end_time_s",
        }

    def test_unknown_job_id(self, campaign):
        log, _store = campaign
        index = JobStateIndex(log)
        assert index.get(10**9) is None
        with pytest.raises(ServeError, match="unknown job id"):
            index.meta(10**9)

    def test_unknown_size_class_rejected(self):
        fake_log = SimpleNamespace(jobs=[
            SimpleNamespace(job_id=7, size_class="Z"),
        ])
        with pytest.raises(ServeError, match="unknown size class"):
            JobStateIndex(fake_log)

    def test_partition_map_covers_table7_classes(self):
        assert set(PARTITION_BY_CLASS) == {"A", "B", "C", "D", "E"}


class TestTagging:
    def test_tag_is_the_campaign_join_primitive(self, campaign, windows):
        log, _store = campaign
        index = JobStateIndex(log)
        # The t=0 window is all-idle; the mid-campaign ones carry jobs.
        window = windows[len(windows) // 2]
        tagged = index.tag(window)
        expected = log.job_id_table(window.time_s, window.node_id)
        assert np.array_equal(tagged, expected)
        # The campaign actually allocates jobs, so tags are non-trivial.
        assert tagged.max() > 0

    def test_tagged_ids_are_known_or_idle(self, campaign, windows):
        log, _store = campaign
        index = JobStateIndex(log)
        for window in windows[:5]:
            for jid in np.unique(index.tag(window)):
                assert jid == 0 or int(jid) in index
