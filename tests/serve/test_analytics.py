"""Per-job analytics: live fold vs offline fold, and conservation."""

import numpy as np
import pytest

from repro.serve import JobAccumulator, JobStateIndex


@pytest.fixture(scope="module")
def offline_jobs(campaign, windows):
    _log, _store = campaign
    log = campaign[0]
    acc = JobAccumulator(JobStateIndex(log))
    for window in windows:
        acc.update(window)
    return acc


class TestStreamingEquivalence:
    def test_live_fold_is_bitwise_offline_fold(
        self, drained_plane, offline_jobs
    ):
        live = drained_plane.job_acc
        assert live.windows_folded == offline_jobs.windows_folded
        assert np.array_equal(live.energy_j, offline_jobs.energy_j)
        assert np.array_equal(live.gpu_hours, offline_jobs.gpu_hours)
        assert np.array_equal(live.samples, offline_jobs.samples)
        assert np.array_equal(live.first_seen_s, offline_jobs.first_seen_s)
        assert np.array_equal(live.last_seen_s, offline_jobs.last_seen_s)

    def test_served_stats_are_a_frozen_copy(self, campaign, windows):
        log, _store = campaign
        acc = JobAccumulator(JobStateIndex(log))
        acc.update(windows[0])
        stats = acc.snapshot()
        before = stats.energy_j.copy()
        acc.update(windows[1])
        assert np.array_equal(stats.energy_j, before)
        assert not np.array_equal(acc.energy_j, before)


class TestConservation:
    def test_job_energy_sums_to_fleet_cube(self, drained_plane):
        """The job axis and the (domain, class) axis fold the same watts."""
        cube = drained_plane.cache.view.snap.cube
        job_total = float(drained_plane.job_acc.energy_j.sum())
        fleet_total = float(cube.region_energy_j().sum())
        assert job_total == pytest.approx(fleet_total, rel=1e-9)

    def test_sample_counts_match_engine(self, drained_plane):
        folded = drained_plane.engine.stats.samples_folded
        assert int(drained_plane.job_acc.samples.sum()) == folded

    def test_active_jobs_have_consistent_spans(self, drained_plane):
        stats = drained_plane.job_acc.snapshot()
        ids = stats.active_job_ids()
        assert ids, "the campaign should attribute samples to jobs"
        assert 0 not in ids
        for job_id in ids:
            assert stats.first_seen_s[job_id] <= stats.last_seen_s[job_id]
            assert stats.job_energy_j(job_id) >= 0.0
            assert drained_plane.index.get(job_id) is not None

    def test_idle_row_catches_unallocated_samples(self, drained_plane):
        stats = drained_plane.job_acc.snapshot()
        # Row 0 is the idle pseudo-job; it never appears in the listing
        # but its samples are still folded (conservation holds above).
        assert 0 not in stats.active_job_ids()
        assert stats.samples[0] >= 0
