"""The ``/v1/query`` + ``/v1/series`` routes: answers, caching, errors.

A flat synthetic fleet keeps every history row deterministic, so query
responses are exact and — because the route key canonicalizes
parameters — equivalent spellings of one query must share cached bytes.
"""

import json

import numpy as np
import pytest

from repro import constants, units
from repro.obs.history import History
from repro.obs.httpd import fetch_url
from repro.scheduler import SlurmSimulator, default_mix
from repro.serve import ControlPlane, ControlPlaneServer
from repro.stream import replay_store
from repro.telemetry.schema import TelemetryChunk
from repro.telemetry.store import TelemetryStore

NODES = 8
WINDOW_TICKS = 4
WINDOW_S = WINDOW_TICKS * constants.TELEMETRY_INTERVAL_S
N_WINDOWS = 24
GPU_W = 310.0
CPU_W = 120.0


def synthetic_store() -> TelemetryStore:
    ticks = N_WINDOWS * WINDOW_TICKS
    time_s = np.repeat(
        np.arange(ticks, dtype=np.float64)
        * constants.TELEMETRY_INTERVAL_S,
        NODES,
    )
    return TelemetryStore(TelemetryChunk(
        time_s=time_s,
        node_id=np.tile(np.arange(NODES, dtype=np.int32), ticks),
        gpu_power_w=np.full(
            (ticks * NODES, constants.GPUS_PER_NODE), GPU_W,
            dtype=np.float32,
        ),
        cpu_power_w=np.full(ticks * NODES, CPU_W, dtype=np.float32),
    ))


@pytest.fixture(scope="module")
def served():
    log = SlurmSimulator(default_mix(fleet_nodes=NODES)).run(
        units.days(0.2), rng=0
    )
    plane = ControlPlane(log, window_s=WINDOW_S, history=History())
    for chunk in replay_store(synthetic_store(), chunk_ticks=WINDOW_TICKS):
        plane.ingest(chunk)
    plane.drain()
    server = plane.serve(port=0)
    yield plane, server.url
    plane.close()


def get_doc(url: str):
    status, body = fetch_url(url)
    return status, json.loads(body)


class TestSeriesRoute:
    def test_series_catalog_and_frozen_levels(self, served):
        plane, url = served
        status, doc = get_doc(url + "/v1/series")
        assert status == 200
        assert doc["version"] == plane.cache.view.version
        names = [s["name"] for s in doc["series"]]
        assert "energy_j" in names and "over_limit_samples" in names
        assert doc["window_s"] == WINDOW_S
        assert doc["t_first_s"] == 0.0
        assert doc["t_last_s"] == (N_WINDOWS - 1) * WINDOW_S
        assert doc["levels"][0]["rows"] == N_WINDOWS
        assert {s["name"] for s in doc["slos"]} == {
            "cap_violation", "energy_budget", "serve_latency",
        }

    def test_index_advertises_the_routes(self, served):
        _plane, url = served
        _status, body = fetch_url(url + "/")
        assert "/v1/series" in body and "/v1/query" in body

    def test_slo_gauges_ride_the_scrape(self, served):
        _plane, url = served
        status, text = fetch_url(url + "/metrics")
        assert status == 200
        assert "slo_cap_violation_burn_fast" in text
        assert "history_windows_total" in text


class TestQueryRoute:
    def test_energy_query_matches_the_exact_total(self, served):
        _plane, url = served
        status, doc = get_doc(
            url + f"/v1/query?series=energy_j&step={WINDOW_S}&level=0"
        )
        assert status == 200
        q = doc["query"]
        assert q["series"] == "energy_j" and q["agg"] == "sum"
        assert len(q["values"]) == N_WINDOWS
        # Flat profile: every window holds the same exact GPU energy.
        per_window = GPU_W * constants.GPUS_PER_NODE * NODES * WINDOW_S
        assert q["values"] == [pytest.approx(per_window)] * N_WINDOWS

    def test_defaults_cover_the_whole_retained_span(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/query?series=gpu_samples")
        assert status == 200
        q = doc["query"]
        assert q["t0_s"] == 0.0
        assert q["t1_s"] == N_WINDOWS * WINDOW_S
        assert sum(v for v in q["values"] if v is not None) == (
            N_WINDOWS * WINDOW_TICKS * NODES * constants.GPUS_PER_NODE
        )

    def test_agg_override_and_auto_level(self, served):
        _plane, url = served
        status, doc = get_doc(
            url + "/v1/query?series=max_gpu_power_w&agg=mean"
            + f"&step={N_WINDOWS * WINDOW_S}"
        )
        assert status == 200
        q = doc["query"]
        assert q["agg"] == "mean"
        assert q["values"] == [pytest.approx(GPU_W, rel=1e-5)]

    def test_equivalent_spellings_share_cached_bytes(self, served):
        _plane, url = served
        a = fetch_url(
            url + f"/v1/query?series=energy_j&step={WINDOW_S:.0f}"
        )
        b = fetch_url(
            url + f"/v1/query?series=energy_j&step={WINDOW_S:.1f}"
        )
        assert a[0] == b[0] == 200
        assert a[1] == b[1]

    def test_repeat_query_is_byte_stable(self, served):
        _plane, url = served
        route = url + "/v1/query?series=nodes&agg=max"
        assert fetch_url(route) == fetch_url(route)


class TestQueryErrors:
    def test_missing_series_is_400(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/query")
        assert status == 400
        assert "series" in doc["error"]

    def test_unknown_series_is_400(self, served):
        _plane, url = served
        status, doc = get_doc(url + "/v1/query?series=nope")
        assert status == 400
        assert "unknown series" in doc["error"]

    def test_bad_agg_and_bad_floats_are_400(self, served):
        _plane, url = served
        status, doc = get_doc(
            url + "/v1/query?series=energy_j&agg=median"
        )
        assert status == 400
        assert "aggregation" in doc["error"]
        status, doc = get_doc(
            url + "/v1/query?series=energy_j&t0=abc"
        )
        assert status == 400
        assert "bad query parameter" in doc["error"]

    def test_inverted_range_is_400(self, served):
        _plane, url = served
        status, doc = get_doc(
            url + "/v1/query?series=energy_j&t0=100&t1=50"
        )
        assert status == 400
        assert "time range" in doc["error"]


class TestHistoryDisabled:
    def test_routes_answer_404_without_a_history(self):
        log = SlurmSimulator(default_mix(fleet_nodes=4)).run(
            units.days(0.1), rng=0
        )
        plane = ControlPlane(log, window_s=WINDOW_S)
        assert plane.history is None
        for chunk in replay_store(
            synthetic_store(), chunk_ticks=WINDOW_TICKS
        ):
            plane.ingest(chunk)
        plane.drain()
        with ControlPlaneServer(plane, port=0) as server:
            for route in ("/v1/series", "/v1/query?series=energy_j"):
                status, doc = get_doc(server.url + route)
                assert status == 404
                assert "history disabled" in doc["error"]
        plane.close()
