"""Concurrency hammer: torn reads are impossible, responses bitwise-stable.

Two scenarios:

* a *fixed* (drained) plane hammered by many keep-alive clients — every
  response for a route must be the identical byte string, and the
  request metrics must account for every request exactly;
* a plane *republishing under load* — readers may see the version
  advance between requests, but each observed version must map to
  exactly one byte string per route and versions must never go
  backwards on a connection (the atomic-swap contract).
"""

import http.client
import json
import threading

from repro.serve import ControlPlane

from tests.serve.conftest import WINDOW_S, build_plane

THREADS = 8
REQUESTS = 40


def _hammer(url_netloc, path, n_requests, out, barrier):
    conn = http.client.HTTPConnection(url_netloc, timeout=10)
    barrier.wait()
    try:
        for _ in range(n_requests):
            conn.request("GET", path)
            resp = conn.getresponse()
            out.append((resp.status, resp.read()))
    finally:
        conn.close()


class TestFixedViewHammer:
    def test_bitwise_stable_and_fully_metered(self, campaign, windows):
        log, _store = campaign
        plane = build_plane(log, windows)
        routes = ["/v1/fleet/cap", "/v1/fleet/savings", "/v1/policy",
                  "/v1/jobs?limit=10"]
        with plane:
            server = plane.serve(port=0)
            netloc = f"127.0.0.1:{server.port}"
            results = {path: [] for path in routes}
            barrier = threading.Barrier(THREADS * len(routes))
            threads = [
                threading.Thread(
                    target=_hammer,
                    args=(netloc, path, REQUESTS, results[path], barrier),
                )
                for path in routes
                for _ in range(THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "hammer thread hung"

        for path, got in results.items():
            assert len(got) == THREADS * REQUESTS
            statuses = {status for status, _body in got}
            assert statuses == {200}, (path, statuses)
            bodies = {body for _status, body in got}
            assert len(bodies) == 1, f"{path}: {len(bodies)} distinct bodies"

        # Exact accounting: every request was metered, none double-counted.
        endpoint_of = {
            "/v1/fleet/cap": "/v1/fleet/cap",
            "/v1/fleet/savings": "/v1/fleet/savings",
            "/v1/policy": "/v1/policy",
            "/v1/jobs?limit=10": "/v1/jobs",
        }
        for path, endpoint in endpoint_of.items():
            counter = plane.registry.counter(
                "serve_requests_total", endpoint=endpoint, status="200"
            )
            assert counter.value == THREADS * REQUESTS, endpoint
            hist = plane.registry.histogram(
                "serve_request_seconds", endpoint=endpoint
            )
            assert hist.count == THREADS * REQUESTS, endpoint


class TestPublishUnderLoad:
    def test_versions_monotonic_and_single_body_per_version(
        self, campaign, windows
    ):
        log, _store = campaign
        plane = ControlPlane(log, window_s=WINDOW_S)
        plane.ingest(windows[0])
        plane.refresh()

        stop = threading.Event()
        seen = [[] for _ in range(THREADS)]

        def reader(slot):
            conn = http.client.HTTPConnection(netloc, timeout=10)
            try:
                while not stop.is_set():
                    conn.request("GET", "/v1/fleet/cap")
                    resp = conn.getresponse()
                    body = resp.read()
                    assert resp.status == 200
                    seen[slot].append(body)
            finally:
                conn.close()

        with plane:
            server = plane.serve(port=0)
            netloc = f"127.0.0.1:{server.port}"
            threads = [
                threading.Thread(target=reader, args=(i,))
                for i in range(THREADS)
            ]
            for t in threads:
                t.start()
            # Republish dozens of times while the readers hammer.
            for window in windows[1:]:
                plane.ingest(window)
            plane.drain()
            stop.set()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive(), "reader thread hung"

        final_version = plane.cache.view.version
        assert final_version > 1, "load test never republished"
        body_by_version = {}
        for slot_bodies in seen:
            assert slot_bodies, "a reader made no requests"
            last = 0
            for body in slot_bodies:
                version = json.loads(body)["version"]
                # Monotonic per connection: the swap never goes back.
                assert version >= last
                last = version
                canonical = body_by_version.setdefault(version, body)
                # One byte string per published version: no torn reads.
                assert body == canonical
