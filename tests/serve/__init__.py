"""Control-plane (repro.serve) tests."""
