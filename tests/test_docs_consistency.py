"""Consistency between the code, the registry, and the documentation.

These guards keep DESIGN.md / EXPERIMENTS.md / README.md honest as the
experiment registry grows: every registered artifact must be documented
and benchmarked, and everything the docs promise must exist.
"""

from pathlib import Path

import pytest

from repro.experiments import EXPERIMENT_IDS
from repro.experiments.bundle import REPORT_SECTIONS

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


@pytest.fixture(scope="module")
def readme_md():
    return (ROOT / "README.md").read_text()


class TestRegistryCoverage:
    def test_every_experiment_documented(self, experiments_md):
        for exp_id in EXPERIMENT_IDS:
            # Static config tables share one section; everything else is
            # named explicitly.
            assert f"`{exp_id}`" in experiments_md, exp_id

    def test_every_experiment_benchmarked(self):
        bench_sources = "\n".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        for exp_id in EXPERIMENT_IDS:
            assert f'"{exp_id}"' in bench_sources, exp_id

    def test_report_sections_reference_known_ids(self):
        listed = {e for _s, ids in REPORT_SECTIONS for e in ids}
        assert listed <= set(EXPERIMENT_IDS)
        # The headline artifacts are always in the report.
        assert {"table4", "table5", "fig7"} <= listed


class TestDocPromises:
    def test_readme_examples_exist(self, readme_md):
        for line in readme_md.splitlines():
            if line.startswith("| `") and line.endswith(" |") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name

    def test_readme_docs_exist(self, readme_md):
        for doc in ("docs/model.md", "docs/data_formats.md",
                    "docs/performance.md"):
            assert doc in readme_md
            assert (ROOT / doc).exists()

    def test_required_deliverable_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "CHANGELOG.md", "CONTRIBUTING.md", "pyproject.toml"):
            assert (ROOT / name).exists(), name

    def test_design_lists_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        src = ROOT / "src" / "repro"
        for pkg in src.iterdir():
            if pkg.is_dir() and (pkg / "__init__.py").exists():
                assert pkg.name in design, pkg.name
