"""Unit tests for the empirical roofline probes."""

import numpy as np
import pytest

from repro import units
from repro.bench.ert import EmpiricalRoofline, measure_roofline
from repro.gpu import GPUDevice


class TestMeasureRoofline:
    def test_recovers_calibrated_roofs(self, spec):
        ert = measure_roofline(GPUDevice(spec))
        assert ert.peak_tflops == pytest.approx(
            units.to_tflops(spec.achievable_flops), rel=0.02
        )
        assert ert.peak_gbps == pytest.approx(
            units.to_gbps(spec.achievable_hbm_bw), rel=0.02
        )

    def test_ridge_at_four(self, spec):
        ert = measure_roofline(GPUDevice(spec))
        assert ert.ridge_intensity == pytest.approx(4.0, rel=0.05)

    def test_frequency_cap_lowers_compute_roof_only(self, spec):
        base = measure_roofline(GPUDevice(spec))
        capped = measure_roofline(
            GPUDevice(spec, frequency_cap_hz=units.mhz(850))
        )
        assert capped.peak_tflops == pytest.approx(
            base.peak_tflops / 2, rel=0.02
        )
        assert capped.peak_gbps == pytest.approx(base.peak_gbps, rel=0.02)
        # Consequently the ridge moves left, enlarging the compute-bound
        # (DVFS-sensitive) region.
        assert capped.ridge_intensity < base.ridge_intensity


class TestAttainable:
    def test_memory_bound_side_linear(self):
        ert = EmpiricalRoofline(peak_tflops=12.0, peak_gbps=3000.0)
        ai = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(
            ert.attainable_tflops(ai), [1.5, 3.0, 6.0]
        )

    def test_compute_bound_side_flat(self):
        ert = EmpiricalRoofline(peak_tflops=12.0, peak_gbps=3000.0)
        assert ert.attainable_tflops(100.0) == pytest.approx(12.0)

    def test_ridge_consistency(self):
        ert = EmpiricalRoofline(peak_tflops=12.0, peak_gbps=3000.0)
        assert ert.attainable_tflops(ert.ridge_intensity) == pytest.approx(
            12.0
        )
        assert ert.ridge_intensity == pytest.approx(4.0)
