"""Unit tests for the cap-sweep harness."""

import pytest

from repro.bench.membench import MemoryBenchmark
from repro.bench.sweep import CapSweep
from repro.errors import CapError


@pytest.fixture(scope="module")
def sweep():
    # A tiny working-set grid keeps this fast.
    return CapSweep(MemoryBenchmark(working_sets=[1 << 20, 1 << 28]))


class TestFrequencySweep:
    def test_includes_uncapped_baseline(self, sweep):
        points = sweep.frequency_sweep([1300, 900])
        assert set(points) == {0, 1300, 900}
        assert points[0].uncapped
        assert not points[900].uncapped

    def test_points_carry_knob_and_cap(self, sweep):
        points = sweep.frequency_sweep([900])
        assert points[900].knob == "frequency"
        assert points[900].cap == 900.0

    def test_rejects_invalid_cap(self, sweep):
        with pytest.raises(CapError):
            sweep.frequency_sweep([0])
        with pytest.raises(CapError):
            sweep.frequency_sweep([400])  # below f_min


class TestPowerSweep:
    def test_includes_uncapped_baseline(self, sweep):
        points = sweep.power_sweep([400, 200])
        assert set(points) == {0, 400, 200}

    def test_rejects_invalid_cap(self, sweep):
        with pytest.raises(CapError):
            sweep.power_sweep([-5])

    def test_capped_energy_never_less_work(self, sweep):
        points = sweep.power_sweep([200])
        base = points[0].result
        capped = points[200].result
        # Same benchmark, same work: capped runtime >= baseline runtime.
        assert (
            capped.column("time_s").sum() >= base.column("time_s").sum()
        )
