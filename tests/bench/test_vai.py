"""Unit tests for the VAI benchmark (Algorithm 1)."""

import numpy as np
import pytest

from repro import constants, units
from repro.bench.vai import (
    VAIBenchmark,
    loopsize_for_intensity,
    vai_kernel,
)
from repro.errors import KernelError
from repro.gpu import GPUDevice


class TestAlgorithmAccounting:
    def test_loopsize_matches_paper_grid(self):
        # AI = LOOPSIZE / 16, so 1/16 -> 1 and 1024 -> 16384.
        assert loopsize_for_intensity(1 / 16) == 1
        assert loopsize_for_intensity(1.0) == 16
        assert loopsize_for_intensity(1024.0) == 16384

    def test_unrealizable_intensity_rejected(self):
        with pytest.raises(KernelError):
            loopsize_for_intensity(0.01)
        with pytest.raises(KernelError):
            loopsize_for_intensity(1 / 32)

    def test_kernel_intensity_exact(self):
        for ai in (1 / 16, 0.5, 4.0, 64.0):
            k = vai_kernel(ai, global_wis=1024)
            assert k.arithmetic_intensity == pytest.approx(ai)

    def test_fma_variant_traffic(self):
        k = vai_kernel(1 / 16, global_wis=1000, repeat=3)
        # 4 accesses x 8 bytes x elements x repeats.
        assert k.hbm_bytes == pytest.approx(4 * 8 * 1000 * 3)
        # 2 flops per element (LOOPSIZE = 1) x repeats.
        assert k.flops == pytest.approx(2 * 1000 * 3)

    def test_copy_variant_traffic(self):
        k = vai_kernel(0, global_wis=1000)
        assert k.flops == 0.0
        assert k.hbm_bytes == pytest.approx(2 * 8 * 1000)

    def test_invalid_parameters(self):
        with pytest.raises(KernelError):
            vai_kernel(1.0, global_wis=0)
        with pytest.raises(KernelError):
            vai_kernel(1.0, repeat=0)


class TestVAIBenchmark:
    @pytest.fixture(scope="class")
    def result(self):
        return VAIBenchmark().run(GPUDevice())

    def test_covers_paper_grid(self, result):
        assert tuple(result.intensities) == constants.VAI_INTENSITIES

    def test_runtime_extended_for_steady_state(self, result):
        assert (result.column("time_s") >= 20.0 - 1e-9).all()

    def test_tflops_rises_then_saturates(self, result, spec):
        tflops = result.column("tflops")[1:]  # skip the copy point
        # Memory-bound region climbs; compute-bound region is flat at the
        # achievable roof.
        roof = units.to_tflops(spec.achievable_flops)
        assert tflops[-1] == pytest.approx(roof, rel=0.02)
        assert np.all(np.diff(tflops) >= -0.2)

    def test_bandwidth_flat_then_falls(self, result, spec):
        gbps = result.column("gbps")[1:]
        roof = units.to_gbps(spec.achievable_hbm_bw)
        assert gbps[0] == pytest.approx(roof, rel=0.02)
        assert gbps[-1] < roof / 100

    def test_power_peaks_at_ridge(self, result, spec):
        powers = result.column("power_w")
        peak_idx = int(np.argmax(powers))
        assert result.points[peak_idx].intensity == pytest.approx(
            spec.ridge_intensity
        )

    def test_point_at_lookup(self, result):
        p = result.point_at(4.0)
        assert p.intensity == 4.0
        with pytest.raises(KeyError):
            result.point_at(3.0)

    def test_fixed_work_under_caps(self, spec):
        # The capped sweep must execute the same kernels as the baseline
        # (time normalization requires identical work).
        bench = VAIBenchmark(intensities=(1 / 16, 4.0))
        base = bench.run(GPUDevice(spec))
        capped = bench.run(GPUDevice(spec, frequency_cap_hz=units.mhz(900)))
        for b, c in zip(base.points, capped.points):
            assert c.time_s >= b.time_s  # never faster under a cap
            # Energy ratio equals (power x time) ratio: same work.
            assert c.energy_j / b.energy_j == pytest.approx(
                (c.power_w * c.time_s) / (b.power_w * b.time_s)
            )
