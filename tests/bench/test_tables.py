"""Tests for Table III assembly — including paper-shape assertions."""

import pytest

from repro.bench.tables import compute_table3
from repro.errors import ProjectionError


@pytest.fixture(scope="module")
def freq_table():
    return compute_table3(knob="frequency")


@pytest.fixture(scope="module")
def power_table():
    return compute_table3(knob="power")


class TestStructure:
    def test_baseline_row_is_100(self, freq_table):
        base = freq_table.row_at(1700)
        assert base.vai_power_pct == 100.0
        assert base.mb_energy_pct == 100.0

    def test_caps_listed(self, freq_table, power_table):
        assert freq_table.caps == [1700, 1500, 1300, 1100, 900, 700]
        assert power_table.caps == [560, 500, 400, 300, 200]

    def test_missing_row_raises(self, freq_table):
        with pytest.raises(ProjectionError):
            freq_table.row_at(1234)

    def test_unknown_knob_raises(self):
        with pytest.raises(ProjectionError):
            compute_table3(knob="thermal")

    def test_energy_is_power_times_runtime(self, freq_table):
        for row in freq_table.rows:
            assert row.vai_energy_pct == pytest.approx(
                row.vai_power_pct * row.vai_runtime_pct / 100.0
            )

    def test_factor_views(self, freq_table):
        factors = freq_table.energy_factors()
        ci, mi = factors[900]
        row = freq_table.row_at(900)
        assert ci == pytest.approx(row.vai_energy_pct / 100)
        assert mi == pytest.approx(row.mb_energy_pct / 100)
        runtimes = freq_table.runtime_factors()
        assert runtimes[900][0] == pytest.approx(row.vai_runtime_pct / 100)


class TestPaperShape:
    """Orderings and crossovers that Table III must exhibit."""

    def test_vai_power_decreases_with_cap(self, freq_table):
        col = [r.vai_power_pct for r in freq_table.rows]
        assert col == sorted(col, reverse=True)

    def test_vai_runtime_increases_with_cap(self, freq_table):
        col = [r.vai_runtime_pct for r in freq_table.rows]
        assert col == sorted(col)

    def test_mb_runtime_flat_under_frequency_caps(self, freq_table):
        for row in freq_table.rows:
            assert row.mb_runtime_pct == pytest.approx(100.0, abs=2.0)

    def test_mb_saves_energy_at_every_frequency_cap(self, freq_table):
        for row in freq_table.rows[1:]:
            assert row.mb_energy_pct < 90.0

    def test_vai_energy_penalty_at_700(self, freq_table):
        # Paper: 700 MHz costs more energy than it saves for VAI.
        assert freq_table.row_at(700).vai_energy_pct > 100.0

    def test_moderate_power_caps_do_nothing_to_mb(self, power_table):
        for cap in (500, 400, 300):
            assert power_table.row_at(cap).mb_energy_pct == pytest.approx(
                100.0, abs=1.5
            )

    def test_frequency_beats_power_capping_for_memory(self, freq_table, power_table):
        # The asymmetry driving the paper's headline: frequency caps save
        # on memory-intensive work, power caps don't.
        best_freq = min(r.mb_energy_pct for r in freq_table.rows)
        best_power = min(r.mb_energy_pct for r in power_table.rows)
        assert best_freq < best_power - 5.0

    def test_200w_cap_counterproductive(self, power_table):
        row = power_table.row_at(200)
        assert row.vai_energy_pct > 100.0
        assert row.mb_energy_pct > 100.0
