"""Unit tests for the L2/HBM memory benchmark."""

import numpy as np
import pytest

from repro import units
from repro.bench.membench import (
    FIRST_WORKING_SET_BYTES,
    MemoryBenchmark,
    membench_kernel,
    working_set_grid,
)
from repro.errors import KernelError
from repro.gpu import GPUDevice


class TestGrid:
    def test_starts_at_384kb_and_doubles(self):
        grid = working_set_grid(4)
        assert grid[0] == FIRST_WORKING_SET_BYTES == 384 * 1024
        assert grid == [grid[0], 2 * grid[0], 4 * grid[0], 8 * grid[0]]

    def test_default_grid_crosses_l2(self, spec):
        grid = working_set_grid()
        assert grid[0] < spec.l2_bytes < grid[-1]

    def test_rejects_empty(self):
        with pytest.raises(KernelError):
            working_set_grid(0)


class TestKernel:
    def test_volume_independent_of_working_set(self):
        a = membench_kernel(1e6)
        b = membench_kernel(1e9)
        assert a.hbm_bytes == b.hbm_bytes

    def test_passes_scale_volume(self):
        assert membench_kernel(1e6, passes=3).hbm_bytes == pytest.approx(
            3 * membench_kernel(1e6).hbm_bytes
        )

    def test_rejects_bad_args(self):
        with pytest.raises(KernelError):
            membench_kernel(0.0)
        with pytest.raises(KernelError):
            membench_kernel(1e6, passes=0)


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return MemoryBenchmark().run(GPUDevice())

    def test_bandwidth_knee_at_l2_capacity(self, result, spec):
        # Fig 6: high bandwidth while resident, HBM plateau beyond.
        l2 = result.l2_region(spec)
        hbm = result.hbm_region(spec)
        assert l2.column("gbps").min() > 1.5 * hbm.column("gbps").max()
        assert hbm.column("gbps").max() == pytest.approx(
            units.to_gbps(spec.achievable_hbm_bw), rel=0.02
        )

    def test_l2_region_low_power(self, result, spec):
        # Fig 6(d): while the data fits in cache, power stays low (below
        # even the 140 W cap the paper tested).
        assert result.l2_region(spec).column("power_w").max() < 140.0

    def test_hbm_region_heavy_power(self, result, spec):
        assert result.hbm_region(spec).column("power_w").min() > 350.0

    def test_hit_fraction_monotone_nonincreasing(self, result):
        hits = result.column("l2_hit_fraction")
        assert np.all(np.diff(hits) <= 1e-12)

    def test_freq_cap_hits_l2_region_only(self, spec):
        # Fig 6 left column: below 16 MB lower clocks mean lower bandwidth;
        # above 16 MB the curves collapse onto the HBM roof.
        base = MemoryBenchmark().run(GPUDevice(spec))
        capped = MemoryBenchmark().run(
            GPUDevice(spec, frequency_cap_hz=units.mhz(700))
        )
        b_l2 = base.l2_region(spec).column("time_s")
        c_l2 = capped.l2_region(spec).column("time_s")
        assert (c_l2 > 1.5 * b_l2).all()
        b_hbm = base.hbm_region(spec).column("time_s")
        c_hbm = capped.hbm_region(spec).column("time_s")
        assert np.allclose(c_hbm, b_hbm, rtol=0.02)

    def test_low_power_cap_breaches_in_hbm_region(self, spec):
        # Fig 6(d): 140/200 W caps hold in the L2 region but are breached
        # once the benchmark streams from HBM.
        capped = MemoryBenchmark().run(GPUDevice(spec, power_cap_w=140.0))
        l2 = capped.l2_region(spec)
        hbm = capped.hbm_region(spec)
        assert not l2.column("cap_breached").any()
        assert hbm.column("cap_breached").all()
        assert (hbm.column("power_w") > 140.0).all()

    def test_time_weighted_mean(self, result):
        untimed = result.column("power_w").mean()
        weighted = result.mean("power_w")
        assert weighted != pytest.approx(untimed)  # weights matter
        lo, hi = result.column("power_w").min(), result.column("power_w").max()
        assert lo <= weighted <= hi
