"""Drift flagging in the longitudinal benchmark trail.

Loads ``benchmarks/bench_history.py`` by path (the benchmarks dir is
not a package) and pins the contract the CI gates rely on: a timing
more than 20 % above its trailing median is flagged, one at or under
20 % is not, and a ``bench_query`` run lands its latency keys in the
trail.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def bh():
    spec = importlib.util.spec_from_file_location(
        "bench_history_under_test",
        ROOT / "benchmarks" / "bench_history.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def entries(key, values):
    return [
        {"sha": f"s{i}", "time": "t", "quick": False,
         "timings": {key: v}}
        for i, v in enumerate(values)
    ]


class TestDriftFlags:
    def test_over_twenty_percent_is_flagged(self, bh):
        history = entries("join_ms", [10.0, 10.0, 10.0, 10.0])
        flags = bh.drift_flags({"join_ms": 12.1}, history)
        assert len(flags) == 1
        assert "join_ms" in flags[0]
        assert "above the trailing median" in flags[0]

    def test_at_or_under_twenty_percent_is_not_flagged(self, bh):
        history = entries("join_ms", [10.0, 10.0, 10.0, 10.0])
        assert bh.drift_flags({"join_ms": 12.0}, history) == []
        assert bh.drift_flags({"join_ms": 9.0}, history) == []

    def test_median_is_over_the_trailing_window_only(self, bh):
        # Ancient slowness outside the window must not mask new drift.
        values = [100.0] * 5 + [10.0] * bh.WINDOW
        history = entries("join_ms", values)
        assert bh.drift_flags({"join_ms": 12.1}, history)

    def test_too_few_priors_never_flags(self, bh):
        history = entries("join_ms", [10.0] * (bh.MIN_PRIOR - 1))
        assert bh.drift_flags({"join_ms": 1000.0}, history) == []

    def test_keys_are_tracked_independently(self, bh):
        history = entries("join_ms", [10.0] * 5) + entries(
            "fig4_scalar_ms", [5.0] * 5
        )
        flags = bh.drift_flags(
            {"join_ms": 20.0, "fig4_scalar_ms": 5.0}, history
        )
        assert len(flags) == 1 and "join_ms" in flags[0]


class TestQueryWiring:
    RESULTS = {
        "history_query": {
            "ingest_s": 2.0,
            "full_span": {"p99_ms": 0.8},
            "mixed": {"p99_ms": 1.2},
        },
    }

    def test_timings_pick_up_the_query_scalars(self, bh):
        timings = bh.timings_from_results(self.RESULTS)
        assert timings == {
            "query_ingest_ms": 2000.0,
            "query_full_span_p99_ms": 0.8,
            "query_mixed_p99_ms": 1.2,
        }

    def test_append_and_reload_roundtrip(self, bh, tmp_path):
        path = tmp_path / "hist.jsonl"
        entry = bh.append_run(
            self.RESULTS, path=path, sha="abc1234", timestamp="T",
        )
        assert entry["timings"]["query_full_span_p99_ms"] == 0.8
        loaded = bh.load_history(path)
        assert len(loaded) == 1
        assert loaded[0]["timings"] == entry["timings"]

    def test_recorded_baseline_meets_the_latency_bar(self):
        doc = json.loads(
            (ROOT / "benchmarks" / "BENCH_query.json").read_text()
        )["history_query"]
        assert doc["full_span"]["p99_ms"] < 50.0
        assert doc["written_mb"] > doc["rss_ceiling_mb"]
        assert doc["rss_delta_mb"] < doc["rss_ceiling_mb"]
        assert doc["rollup_sample"]["mismatches"] == 0
        assert doc["history_invisible"] is True
