"""Tests for the sacct-format scheduler-log adapter."""

import pytest

from repro import units
from repro.errors import ScheduleError
from repro.scheduler import SlurmSimulator, default_mix
from repro.scheduler.sacct import (
    domain_of_account,
    parse_nodelist,
    read_sacct,
    write_sacct,
)

SAMPLE = """JobID|Account|NNodes|Submit|Start|End|NodeList
1201|chm101|3|1680000000|1680000600|1680043200|frontier[0001-0003]
1202|cli204|2|1680000100|1680000700|1680010000|frontier[0005,0007]
1203|bio001|1|1680000200|1680044000|1680050000|frontier0002
"""


@pytest.fixture
def sacct_file(tmp_path):
    path = tmp_path / "sacct.txt"
    path.write_text(SAMPLE)
    return path


class TestParseNodelist:
    def test_range(self):
        assert parse_nodelist("frontier[0001-0003]") == [1, 2, 3]

    def test_mixed(self):
        assert parse_nodelist("frontier[0001-0002,0007]") == [1, 2, 7]

    def test_single_bare(self):
        assert parse_nodelist("node5") == [5]

    def test_invalid(self):
        with pytest.raises(ScheduleError):
            parse_nodelist("")
        with pytest.raises(ScheduleError):
            parse_nodelist("frontier[0003-0001]")
        with pytest.raises(ScheduleError):
            parse_nodelist("frontier")


class TestDomain:
    def test_prefix_rule(self):
        assert domain_of_account("chm101") == "CHM"
        assert domain_of_account("CLI204") == "CLI"

    def test_no_prefix(self):
        with pytest.raises(ScheduleError):
            domain_of_account("12345")


class TestReadSacct:
    def test_jobs_parsed(self, sacct_file):
        log = read_sacct(sacct_file)
        assert len(log.jobs) == 3
        by_id = log.job_by_id()
        assert by_id[1201].domain == "CHM"
        assert by_id[1201].num_nodes == 3
        # Times shifted so the campaign starts at zero.
        assert by_id[1201].submit_time_s == 0.0
        assert by_id[1202].submit_time_s == 100.0

    def test_allocations_expanded(self, sacct_file):
        log = read_sacct(sacct_file)
        nodes_1202 = sorted(
            a.node_id for a in log.allocations if a.job_id == 1202
        )
        assert nodes_1202 == [5, 7]

    def test_fleet_inferred(self, sacct_file):
        log = read_sacct(sacct_file)
        assert log.n_nodes == 8  # max node index 7

    def test_explicit_fleet_validated(self, sacct_file):
        with pytest.raises(ScheduleError):
            read_sacct(sacct_file, n_nodes=4)
        assert read_sacct(sacct_file, n_nodes=100).n_nodes == 100

    def test_nnodes_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(
            "JobID|Account|NNodes|Submit|Start|End|NodeList\n"
            "1|chm1|5|0|1|2|frontier[0001-0003]\n"
        )
        with pytest.raises(ScheduleError):
            read_sacct(path)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("JobID|Account\n1|chm1\n")
        with pytest.raises(ScheduleError):
            read_sacct(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("JobID|Account|NNodes|Submit|Start|End|NodeList\n")
        with pytest.raises(ScheduleError):
            read_sacct(path)


class TestRoundtrip:
    def test_simulated_log_roundtrips(self, tmp_path):
        mix = default_mix(fleet_nodes=8)
        log = SlurmSimulator(mix).run(units.hours(6), rng=1)
        path = tmp_path / "sacct.txt"
        write_sacct(log, path)
        back = read_sacct(path, n_nodes=log.n_nodes)
        assert len(back.jobs) == len(log.jobs)
        back.validate_no_overlap()
        ours = {j.job_id: j for j in log.jobs}
        # read_sacct re-anchors the campaign at the earliest submit time.
        t0 = min(j.submit_time_s for j in log.jobs)
        for job in back.jobs:
            orig = ours[job.job_id]
            assert job.domain == orig.domain
            assert job.num_nodes == orig.num_nodes
            # sacct stores whole seconds; allow rounding.
            assert job.start_time_s == pytest.approx(
                orig.start_time_s - t0, abs=2.0
            )
