"""Unit tests for job records and the workload mix."""

import numpy as np
import pytest

from repro import constants
from repro.errors import ScheduleError
from repro.scheduler.jobs import Job, ScienceDomain
from repro.scheduler.workload import DEFAULT_DOMAINS, WorkloadMix, default_mix


class TestJob:
    def test_derived_fields(self):
        j = Job(1, "CHM101", "CHM", 200, 0.0, 10.0, 3610.0)
        assert j.duration_s == 3600.0
        assert j.size_class == "C"
        assert j.node_hours == pytest.approx(200.0)

    def test_explicit_size_class_kept(self):
        j = Job(1, "CHM101", "CHM", 3, 0.0, 0.0, 10.0, size_class="A")
        assert j.size_class == "A"

    def test_time_validation(self):
        with pytest.raises(ScheduleError):
            Job(1, "p", "d", 1, 10.0, 5.0, 20.0)   # start before submit
        with pytest.raises(ScheduleError):
            Job(1, "p", "d", 1, 0.0, 5.0, 5.0)     # empty interval
        with pytest.raises(ScheduleError):
            Job(1, "p", "d", 0, 0.0, 0.0, 1.0)     # no nodes


class TestScienceDomain:
    def test_project_id_prefix_is_domain(self):
        d = DEFAULT_DOMAINS[0]
        pid = d.project_id(7)
        assert pid.startswith(d.name)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            ScienceDomain("X", "p", 0.0, (0.2,) * 5, (1.0, 2.0))
        with pytest.raises(ScheduleError):
            ScienceDomain("X", "p", 0.1, (0.5, 0.5, 0.5, 0.0, 0.0), (1.0, 2.0))
        with pytest.raises(ScheduleError):
            ScienceDomain("X", "p", 0.1, (0.2,) * 5, (10.0, 2.0))


class TestWorkloadMix:
    def test_default_domains_normalized(self):
        mix = default_mix()
        assert abs(mix._domain_p.sum() - 1.0) < 1e-9
        assert len(mix.domains) == 12

    def test_scaled_fleet_keeps_class_labels(self):
        mix = default_mix(fleet_nodes=96)
        rng = np.random.default_rng(0)
        reqs = [mix.sample_request(0.0, rng) for _ in range(300)]
        # Class-A requests exist and fit the scaled fleet while keeping
        # their full-scale label.
        a_reqs = [r for r in reqs if r.size_class == "A"]
        assert a_reqs
        assert all(r.num_nodes <= 96 for r in reqs)
        assert all(r.num_nodes >= 55 for r in a_reqs)  # ~5645/9408 * 96

    def test_durations_respect_walltime(self):
        mix = default_mix(fleet_nodes=96)
        rng = np.random.default_rng(1)
        from repro.scheduler.policy import max_walltime_s

        for _ in range(200):
            r = mix.sample_request(0.0, rng)
            assert r.duration_s <= max_walltime_s(r.size_class) + 1e-9

    def test_low_discrepancy_domain_shares(self):
        # Realized requested node-seconds per domain track target shares
        # much more tightly than iid sampling would.
        mix = default_mix(fleet_nodes=constants.NUM_COMPUTE_NODES)
        rng = np.random.default_rng(2)
        booked = {}
        for _ in range(800):
            r = mix.sample_request(0.0, rng)
            booked[r.domain.name] = booked.get(r.domain.name, 0.0) + (
                r.num_nodes * r.duration_s
            )
        total = sum(booked.values())
        for d in mix.domains:
            target = d.share / sum(x.share for x in mix.domains)
            assert booked.get(d.name, 0.0) / total == pytest.approx(
                target, abs=0.03
            )

    def test_rejects_empty(self):
        with pytest.raises(ScheduleError):
            WorkloadMix([])
        with pytest.raises(ScheduleError):
            WorkloadMix(DEFAULT_DOMAINS, fleet_nodes=0)
