"""Unit tests for the Table VII scheduling policy."""

import pytest

from repro import constants, units
from repro.errors import ScheduleError
from repro.scheduler.policy import (
    class_node_range,
    job_size_class,
    max_walltime_s,
)


class TestJobSizeClass:
    @pytest.mark.parametrize(
        "nodes,expected",
        [
            (9408, "A"), (5645, "A"),
            (5644, "B"), (1882, "B"),
            (1881, "C"), (184, "C"),
            (183, "D"), (92, "D"),
            (91, "E"), (1, "E"),
        ],
    )
    def test_table7_boundaries(self, nodes, expected):
        assert job_size_class(nodes) == expected

    def test_out_of_range(self):
        with pytest.raises(ScheduleError):
            job_size_class(0)
        with pytest.raises(ScheduleError):
            job_size_class(9409)

    def test_classes_partition_node_range(self):
        # Every node count maps to exactly one class; ranges do not
        # overlap or leave gaps.
        covered = set()
        for name in constants.JOB_SIZE_CLASSES:
            lo, hi = class_node_range(name)
            rng = set(range(lo, hi + 1))
            assert not (covered & rng)
            covered |= rng
        assert covered == set(range(1, constants.NUM_COMPUTE_NODES + 1))


class TestWalltime:
    def test_large_jobs_get_12_hours(self):
        for cls in ("A", "B", "C"):
            assert max_walltime_s(cls) == units.hours(12)

    def test_small_jobs_capped_shorter(self):
        assert max_walltime_s("D") == units.hours(6)
        assert max_walltime_s("E") == units.hours(2)

    def test_unknown_class(self):
        with pytest.raises(ScheduleError):
            max_walltime_s("Z")
        with pytest.raises(ScheduleError):
            class_node_range("Z")
