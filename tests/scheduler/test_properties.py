"""Property-based tests for the scheduler substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.scheduler import SlurmSimulator, default_mix
from repro.scheduler.policy import job_size_class


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    fleet=st.sampled_from([8, 16, 32]),
    hours=st.floats(min_value=4.0, max_value=24.0),
)
@settings(max_examples=15, deadline=None)
def test_schedule_invariants(seed, fleet, hours):
    mix = default_mix(fleet_nodes=fleet)
    log = SlurmSimulator(mix).run(units.hours(hours), rng=seed)

    # No node ever runs two jobs at once.
    log.validate_no_overlap()

    # Every allocation belongs to a job and respects its interval.
    jobs = log.job_by_id()
    for a in log.allocations:
        job = jobs[a.job_id]
        assert a.start_time_s == job.start_time_s
        assert a.end_time_s == job.end_time_s
        assert 0 <= a.node_id < log.n_nodes

    # Allocation counts match the jobs' node counts.
    counts = {}
    for a in log.allocations:
        counts[a.job_id] = counts.get(a.job_id, 0) + 1
    for job in log.jobs:
        assert counts.get(job.job_id, 0) == job.num_nodes

    # Utilization is a valid fraction.
    assert 0.0 <= log.utilization() <= 1.0


@given(nodes=st.integers(min_value=1, max_value=9408))
@settings(max_examples=200, deadline=None)
def test_size_class_total_function(nodes):
    # Every legal node count maps to exactly one class.
    cls = job_size_class(nodes)
    assert cls in "ABCDE"


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=10, deadline=None)
def test_job_id_grid_partitions_time(seed):
    mix = default_mix(fleet_nodes=8)
    log = SlurmSimulator(mix).run(units.hours(6), rng=seed)
    times = np.arange(0.0, log.horizon_s, 120.0)
    for node in range(log.n_nodes):
        grid = log.job_id_grid(times, node)
        # Job ids on the grid are either 0 or real jobs of this node.
        node_jobs = {a.job_id for a in log.allocations_for_node(node)}
        assert set(grid.tolist()) <= node_jobs | {0}
