"""Tests for the scheduler simulator and log tables."""

import numpy as np
import pytest

from repro import units
from repro.errors import ScheduleError
from repro.scheduler import SchedulerLog, SlurmSimulator, default_mix
from repro.scheduler.log import NodeAllocation


@pytest.fixture(scope="module")
def log():
    mix = default_mix(fleet_nodes=64)
    return SlurmSimulator(mix).run(units.days(2), rng=5)


class TestSimulator:
    def test_no_node_oversubscription(self, log):
        log.validate_no_overlap()

    def test_high_utilization(self, log):
        assert log.utilization() > 0.8

    def test_all_size_classes_run(self, log):
        classes = {j.size_class for j in log.jobs}
        assert {"A", "B", "C"} <= classes  # leadership jobs actually run

    def test_allocation_counts_match_jobs(self, log):
        by_job = {}
        for a in log.allocations:
            by_job[a.job_id] = by_job.get(a.job_id, 0) + 1
        for j in log.jobs:
            assert by_job[j.job_id] == j.num_nodes

    def test_times_within_horizon(self, log):
        for j in log.jobs:
            assert 0 <= j.start_time_s < log.horizon_s
            assert j.end_time_s <= log.horizon_s

    def test_deterministic(self):
        mix_a = default_mix(fleet_nodes=32)
        mix_b = default_mix(fleet_nodes=32)
        a = SlurmSimulator(mix_a).run(units.days(1), rng=3)
        b = SlurmSimulator(mix_b).run(units.days(1), rng=3)
        assert [j.job_id for j in a.jobs] == [j.job_id for j in b.jobs]
        assert [j.start_time_s for j in a.jobs] == [
            j.start_time_s for j in b.jobs
        ]

    def test_parameter_validation(self):
        mix = default_mix(fleet_nodes=8)
        with pytest.raises(ScheduleError):
            SlurmSimulator(mix, target_utilization=0.0)
        with pytest.raises(ScheduleError):
            SlurmSimulator(mix, backfill_depth=-1)
        with pytest.raises(ScheduleError):
            SlurmSimulator(mix).run(0.0)


class TestSchedulerLog:
    def test_job_id_grid_matches_allocations(self, log):
        times = np.arange(0, log.horizon_s, 900.0)
        node = int(log.allocations[0].node_id)
        grid = log.job_id_grid(times, node)
        allocs = log.allocations_for_node(node)
        # Every nonzero grid entry corresponds to a covering allocation.
        jobs_by_id = {a.job_id: a for a in allocs}
        for t, jid in zip(times, grid):
            if jid:
                a = jobs_by_id[jid]
                assert a.start_time_s <= t < a.end_time_s
            else:
                assert not any(
                    a.start_time_s <= t < a.end_time_s for a in allocs
                )

    def test_roundtrip_arrays(self, log):
        arrays = log.to_arrays()
        back = SchedulerLog.from_arrays(arrays)
        assert len(back.jobs) == len(log.jobs)
        assert back.jobs[0] == log.jobs[0]
        assert back.allocations[0] == log.allocations[0]
        assert back.n_nodes == log.n_nodes

    def test_save_load(self, log, tmp_path):
        path = tmp_path / "sched.npz"
        log.save(path)
        back = SchedulerLog.load(path)
        assert back.utilization() == pytest.approx(log.utilization())

    def test_allocation_validation(self):
        with pytest.raises(ScheduleError):
            NodeAllocation(node_id=0, job_id=1, start_time_s=5.0, end_time_s=5.0)

    def test_overlap_detection(self):
        jobs = []
        allocs = [
            NodeAllocation(0, 1, 0.0, 10.0),
            NodeAllocation(0, 2, 5.0, 15.0),
        ]
        bad = SchedulerLog(jobs=jobs, allocations=allocs, n_nodes=1, horizon_s=20.0)
        with pytest.raises(ScheduleError):
            bad.validate_no_overlap()
