# Developer entry points. The python toolchain is assumed to be on PATH.

PYTHON ?= python

.PHONY: test lint bench-quick bench-record bench bench-obs bench-shard bench-serve bench-forensics bench-query bench-logs profile

# Tier-1 correctness suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Static checks (configured in pyproject.toml [tool.ruff]).
lint:
	$(PYTHON) -m ruff check src

# Fast perf gate (CI): re-measures the batched-engine benchmark with few
# rounds and fails on a >2x regression against benchmarks/BENCH_batch.json
# or on the batched sweep dropping below its 10x speedup bar, then runs
# the sharded-campaign gate: live bitwise shard/pool invariance plus the
# recorded >=3x 1->8 worker scaling bar in benchmarks/BENCH_shard.json.
# Every run is appended to benchmarks/BENCH_history.jsonl; >20% drift
# against the trailing median is printed as advisory DRIFT lines.
bench-quick:
	$(PYTHON) benchmarks/bench_batch.py --check --quick --history
	$(PYTHON) benchmarks/bench_shard.py --check --quick --history

# Full-rounds variant of the same gates.
bench:
	$(PYTHON) benchmarks/bench_batch.py --check
	$(PYTHON) benchmarks/bench_shard.py --check

# Sharded-campaign scaling benchmark on its own (full rounds).
bench-shard:
	$(PYTHON) benchmarks/bench_shard.py --check

# Control-plane load test: 200 concurrent pollers against a live
# `repro serve` instance; gates zero errors, snapshot liveness, and the
# recorded p50 < 1 ms / p99 < 5 ms SLOs in benchmarks/BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --check --history

# Observability no-op gate: with obs disabled, the instrumented hot
# paths (GPUDevice.run_batch, ReorderBuffer.push) must stay under the
# 2 % overhead budget vs their raw implementations.
bench-obs:
	$(PYTHON) benchmarks/bench_batch.py --check --quick --overhead-only

# Flight-recorder overhead gate: streaming ingest with the forensics
# facade attached must keep analytics bitwise identical and stay under
# the per-window budget in benchmarks/BENCH_forensics.json.
bench-forensics:
	$(PYTHON) benchmarks/bench_forensics.py --check --quick --history

# Out-of-core history gate: ingest a 90-day synthetic campaign (~120 MB
# of columns) with the peak-RSS delta held under 80 MB, gate full-span
# range queries on the recorded p99 < 50 ms in benchmarks/BENCH_query.json,
# and refold a seeded sample of rollup buckets bitwise.
bench-query:
	$(PYTHON) benchmarks/bench_query.py --check --history

# Structured event-log gate: a disabled EventLog on the ingest path
# must stay under the 2 % overhead budget, an enabled one must leave
# the fleet cube bitwise identical, and the segment store must ingest
# 1M events RSS-bounded while answering range queries under the
# recorded p99 < 50 ms in benchmarks/BENCH_logs.json.
bench-logs:
	$(PYTHON) benchmarks/bench_logs.py --check --quick --history

# Re-measure and rewrite the recorded baselines (run on the reference
# machine after intentional perf changes).
bench-record:
	$(PYTHON) benchmarks/bench_batch.py --record
	$(PYTHON) benchmarks/bench_shard.py --record
	$(PYTHON) benchmarks/bench_serve.py --record
	$(PYTHON) benchmarks/bench_forensics.py --record
	$(PYTHON) benchmarks/bench_query.py --record
	$(PYTHON) benchmarks/bench_logs.py --record

# Span-linked profile of the table5 reference run: writes flamegraph
# input (profile-artifacts/profile.collapsed), a Chrome trace, and the
# per-span timings, then checks them against benchmarks/perf_budget.json
# (exit 1 on breach).  See docs/performance.md for reading the output.
profile:
	PYTHONPATH=src $(PYTHON) -m repro obs profile --check --out profile-artifacts
