"""Bench: Fig 9 — per-science-domain power distributions."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig9(benchmark, bench_config):
    result = run_once(benchmark, run, "fig9", bench_config)
    print(result.text)

    dists = result.data
    assert len(dists) >= 8

    # Shape: all four Fig 9 families are represented.
    dominant = {
        name: int(np.argmax(d["region_pct"])) + 1
        for name, d in dists.items()
    }
    assert 1 in dominant.values()   # latency-bound panels (c-d)
    assert 2 in dominant.values()   # memory-intensive panels (e-f)
    assert 3 in dominant.values()   # compute-intensive panels (a-b)
    multi = [
        name
        for name, d in dists.items()
        if np.count_nonzero(np.asarray(d["region_pct"]) >= 10.0) >= 3
    ]
    assert multi                    # multi-zone panels (g-h)

    # Shape: each domain is modal (a few peaks, not a flat smear).
    for d in dists.values():
        assert 1 <= len(d["modes_w"]) <= 8
