"""Bench: Tables I, II and VII — configuration tables."""

from conftest import run_once

from repro.experiments import run


def test_table1(benchmark, bench_config):
    result = run_once(benchmark, run, "table1", bench_config)
    print(result.text)
    assert "9408" in result.text
    assert "1700 MHz" in result.text
    assert "560 W" in result.text


def test_table2(benchmark, bench_config):
    result = run_once(benchmark, run, "table2", bench_config)
    print(result.text)
    assert "15 s" in result.text
    assert "per-node-per-job" in result.text


def test_table7(benchmark, bench_config):
    result = run_once(benchmark, run, "table7", bench_config)
    print(result.text)
    for row in ("5645 - 9408", "1882 - 5644", "184 - 1881", "92 - 183",
                "1 - 91"):
        assert row in result.text


def test_fig1(benchmark, bench_config):
    result = run_once(benchmark, run, "fig1", bench_config)
    print(result.text)
    assert result.data["gpus_per_node"] == 4
    assert result.data["gcds_per_node"] == 8
    assert "MI250X" in result.text
    assert "GCD" in result.text
