"""Bench: proxy-application cap response (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_proxies(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_proxies", bench_config)
    print(result.text)

    gemm = result.data["gemm"]
    stencil = result.data["stencil"]
    ckpt = result.data["checkpoint"]
    caps = (1700, 1500, 1300, 1100, 900, 700)
    at_900 = caps.index(900)

    # Family placement by average power.
    assert gemm["base_avg_power_w"] > 400
    assert 200 < stencil["base_avg_power_w"] <= 420
    assert ckpt["base_avg_power_w"] < 200

    # Cap response spread: free savings for the stencil, a runtime bill
    # for the solver, near-nothing for the checkpoint-bound app.
    assert stencil["saving_pct"][at_900] > 10.0
    assert stencil["runtime_x"][at_900] < 1.02
    assert gemm["runtime_x"][at_900] > 1.5
    assert abs(ckpt["runtime_x"][at_900] - 1.0) < 0.05
