"""Bench: headline sensitivity to the model calibration (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_sensitivity(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_sensitivity", bench_config)
    print(result.text)

    baseline = result.data["baseline"]
    rows = result.data["rows"]
    # The qualitative shape survives every perturbation: positive
    # savings at a mid-frequency cap with a meaningful no-slowdown share.
    for h in list(rows.values()) + [baseline]:
        assert h["best_pct"] > 3.0
        assert 700 <= h["best_cap"] <= 1500
        assert h["no_slowdown_pct"] > 2.0
    # The headline's error bar is bounded, and dominated by psi_cap0.
    assert result.data["max_shift"] < 8.0
    non_psi = [
        abs(h["best_pct"] - baseline["best_pct"])
        for key, h in rows.items()
        if not key.startswith("psi_cap0")
    ]
    assert max(non_psi) < 1.5
