"""Bench: the Frontier node-count ladder through the sharded engine."""

from conftest import run_once

from repro import constants
from repro.experiments import run


def test_ext_frontier(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_frontier", bench_config)
    print(result.text)

    # The engine's contract: the cube is bitwise identical whether the
    # base tier folds in 1 shard or 4.
    assert result.data["invariant_1_vs_4_shards"] is True

    # Every tier measured end to end accounted for all of its rows.
    measured = result.data["measured"]
    assert measured
    for nodes, m in measured.items():
        assert m["rows"] > 0
        assert m["rows_per_s"] > 0

    # The ladder tops out at the paper's fleet, and the full 91-day
    # Frontier campaign is ~5e9 rows — hours of compute at the gated
    # 8-worker scaling, not days.
    ladder = result.data["ladder"]
    frontier = ladder[constants.NUM_COMPUTE_NODES]
    assert frontier["gcds"] == 75264
    assert 4e9 < frontier["rows_91d"] < 6e9
    assert frontier["workers8_s"] < 24 * 3600
