"""Ablation: the sub-additive compute+memory power cross term.

DESIGN.md calls out the negative cross term as a modeling choice: without
it, a purely additive model predicts ~700 W at the roofline ridge, far
above the TDP and the paper's measured 540 W peak.  This bench quantifies
that gap.
"""

import pytest
from conftest import run_once

from repro.gpu import GPUDevice
from repro.gpu.specs import MI250XSpec, default_spec
from repro.bench.vai import vai_kernel


def _ridge_power(spec: MI250XSpec) -> float:
    return GPUDevice(spec).run(vai_kernel(4.0)).power_w


def test_cross_term_vs_additive(benchmark):
    calibrated = default_spec()
    additive = calibrated.with_overrides(cross_power_w=0.0)

    p_calibrated = run_once(benchmark, _ridge_power, calibrated)
    p_additive = _ridge_power(additive)

    print(
        f"ridge power: calibrated {p_calibrated:.0f} W, "
        f"additive {p_additive:.0f} W (paper anchor: 540 W, TDP 560 W)"
    )
    # Calibrated model hits the measured 540 W anchor.
    assert p_calibrated == pytest.approx(540.0, abs=8.0)
    # The additive model slams into the TDP clamp: the unclamped sum of
    # the engine terms is ~165 W higher, which no measurement supports.
    assert p_additive == pytest.approx(additive.tdp_w, abs=1.0)
    unclamped = (
        additive.idle_w + additive.core_power_w + additive.hbm_power_w
    )
    assert unclamped > 690.0
