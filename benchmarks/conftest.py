"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*.py`` regenerates one of the paper's tables or
figures (timed by pytest-benchmark) and asserts the paper's *shape*: who
wins, by roughly what factor, where the crossovers fall.  Absolute
numbers come from the simulated substrate, not the authors' testbed.

Run:  pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments import ExperimentConfig

#: One bench-sized configuration shared by every campaign-driven target.
BENCH_CONFIG = ExperimentConfig(
    fleet_nodes=48, days=2.0, seed=0, graph_scale=0.01
)


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def campaign_cube(bench_config):
    from repro.experiments._campaign import campaign_cube as build

    return build(bench_config)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive pipeline with a single timed round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
