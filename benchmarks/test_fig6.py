"""Bench: Fig 6 — the memory benchmark across working-set sizes."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig6(benchmark, bench_config):
    result = run_once(benchmark, run, "fig6", bench_config)
    print(result.text)

    sizes = np.asarray(result.data["sizes_mib"])
    gbps = np.asarray(result.data["uncapped_gbps"])

    # Shape: high bandwidth while the set is L2-resident, an HBM plateau
    # beyond 16 MiB (the paper's knee).
    l2_side = gbps[sizes <= 16]
    hbm_side = gbps[sizes >= 64]
    assert l2_side.min() > 1.5 * hbm_side.max()
    assert np.ptp(hbm_side) < 0.05 * hbm_side.mean()

    # Shape: the 140 W cap is breached on every HBM-resident size.
    assert np.asarray(result.data["breached_140w"]).all()
