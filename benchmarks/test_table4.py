"""Bench: Table IV — the modal decomposition of the fleet campaign."""

from conftest import run_once

from repro.experiments import run


def test_table4(benchmark, bench_config):
    result = run_once(benchmark, run, "table4", bench_config)
    print(result.text)

    ours = result.data["gpu_hours_pct"]
    paper = result.data["paper_pct"]
    for a, b in zip(ours, paper):
        assert abs(a - b) < 5.0
    # Shape: region ordering — memory > latency > compute > boost.
    assert ours[1] > ours[0] > ours[2] > ours[3]
