"""Bench: Fig 7 — Louvain community detection under caps."""

from conftest import run_once

from repro.experiments import run


def test_fig7(benchmark, bench_config):
    result = run_once(benchmark, run, "fig7", bench_config)
    print(result.text)

    road = result.data["road-8M"]
    social = result.data["social-8M"]

    # Real algorithm ran: communities with meaningful modularity.
    assert road["modularity"] > 0.9          # grid-like graphs are modular
    assert social["modularity"] > 0.1

    # Shape: the road network peaks near 205 W (paper) and is more
    # clock-sensitive than the social network.
    assert 160 <= road["max_power_w"] <= 250
    road_slow_700 = road["runtime_x"][4]     # caps: 1700..700..500
    social_slow_700 = social["runtime_x"][4]
    assert road_slow_700 > social_slow_700 + 0.05

    # Shape: social networks save energy at 900 MHz with <=5 % slowdown
    # (paper: 2.9-5.2 %).
    assert social["saving_pct"][3] > 1.0
    assert social["runtime_x"][3] < 1.05
