#!/usr/bin/env python
"""Control-plane load test: latency SLOs under concurrent pollers.

Stands up a real :class:`repro.serve.ControlPlane` on an ephemeral TCP
port, keeps ingest running in the background (so snapshots keep
publishing mid-load), and hammers it with hundreds of concurrent
clients over persistent HTTP/1.1 connections.  The traffic generator is
deterministic: every client's request sequence and think-times come
from its own seeded RNG, so two runs issue the identical request
streams (only the wall-clock timings differ).

The mix models a fleet of pollers: dominated by ``/v1/fleet/cap`` (the
endpoint every node's power agent polls), with fleet savings, policy
reads, and job-table queries mixed in.  Latency is measured per request
around the full request/response round trip.

The hard gate (``--check``) fails when:

* any request errors, or fewer than :data:`MIN_CLIENTS` clients ran;
* the snapshot version did not advance during the load (ingest starved
  behind serving — the cache is supposed to decouple them);
* the *recorded baseline* breaks the SLOs: p50 >= 1 ms or p99 >= 5 ms
  (re-record on the reference machine);
* the live p99 exceeds the disaster bound :data:`LIVE_P99_LIMIT_MS`
  (generous, because shared CI runners are noisy; slow drift is the
  history trail's job).

Modes::

    python benchmarks/bench_serve.py            # measure and report
    python benchmarks/bench_serve.py --record   # measure and (re)write baseline
    python benchmarks/bench_serve.py --check    # gate (CI)
    python benchmarks/bench_serve.py --check --quick --history
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import threading
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ControlPlane  # noqa: E402
from repro.stream import simulated_fleet  # noqa: E402

#: The SLOs the recorded reference run must meet (the tentpole's
#: acceptance bar): sub-millisecond median, p99 under 5 ms.
P50_LIMIT_MS = 1.0
P99_LIMIT_MS = 5.0
#: Live disaster bound for --check (loose: CI runners are shared).
LIVE_P99_LIMIT_MS = 50.0
#: The load must come from at least this many concurrent clients.
MIN_CLIENTS = 200

FLEET_NODES = 24
DAYS = 1.0
CHUNK_TICKS = 8
#: Chunks folded before the load starts (a warm, populated cache).
WARMUP_CHUNKS = 200

#: (route, weight): the poller mix, heavily read-the-fleet-cap.
MIX = (
    ("/v1/fleet/cap", 70),
    ("/v1/fleet/savings", 10),
    ("/v1/policy", 10),
    ("/v1/jobs?limit=20", 10),
)


def _pick_route(rng: random.Random) -> str:
    total = sum(w for _, w in MIX)
    roll = rng.randrange(total)
    for route, weight in MIX:
        roll -= weight
        if roll < 0:
            return route
    return MIX[0][0]


def _client_worker(
    host: str,
    port: int,
    *,
    seed: int,
    stop: threading.Event,
    start: threading.Barrier,
    think_s: tuple,
    latencies: list,
    errors: list,
) -> None:
    rng = random.Random(seed)
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.connect()
        try:
            start.wait(timeout=60)
        except threading.BrokenBarrierError:
            return
        # First think-time before the first request spreads the herd.
        while not stop.is_set():
            time.sleep(rng.uniform(*think_s))
            if stop.is_set():
                break
            route = _pick_route(rng)
            t0 = time.perf_counter()
            try:
                conn.request("GET", route)
                resp = conn.getresponse()
                body = resp.read()
                ok = resp.status == 200 and body
            except (OSError, http.client.HTTPException):
                errors.append(route)
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.connect()
                continue
            if ok:
                latencies.append((time.perf_counter() - t0) * 1e3)
            else:
                errors.append(route)
    finally:
        conn.close()


def _percentile(sorted_ms: list, pct: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(pct / 100.0 * len(sorted_ms)))
    return sorted_ms[idx]


def measure(*, clients: int, duration_s: float, seed: int = 0) -> dict:
    # With hundreds of runnable threads, CPython's default 5 ms GIL
    # switch interval dominates the latency tail (a response can wait
    # several intervals behind other threads).  A finer interval trades
    # a little throughput for the tail the SLO actually gates.
    old_switch = sys.getswitchinterval()
    sys.setswitchinterval(0.0005)
    try:
        return _measure(clients=clients, duration_s=duration_s, seed=seed)
    finally:
        sys.setswitchinterval(old_switch)


def _measure(*, clients: int, duration_s: float, seed: int) -> dict:
    log, source = simulated_fleet(
        fleet_nodes=FLEET_NODES, days=DAYS, seed=seed,
        chunk_ticks=CHUNK_TICKS,
    )
    plane = ControlPlane(log)
    chunks = iter(source)
    for _ in range(WARMUP_CHUNKS):
        chunk = next(chunks, None)
        if chunk is None:
            break
        plane.ingest(chunk)

    stop = threading.Event()

    def ingest_loop() -> None:
        # Keep snapshots publishing while the load runs; pacing keeps
        # the GIL mostly free for request handling.
        for chunk in chunks:
            if stop.is_set():
                return
            plane.ingest(chunk)
            time.sleep(0.01)

    server = plane.serve(port=0)
    host, port = "127.0.0.1", server.port
    version_start = plane.cache.view.version

    ingester = threading.Thread(target=ingest_loop, daemon=True)
    ingester.start()

    start = threading.Barrier(clients + 1)
    latencies: list = []
    errors: list = []
    threads = []
    for i in range(clients):
        # Per-thread sinks, merged after join: no lock on the hot path.
        lat: list = []
        err: list = []
        t = threading.Thread(
            target=_client_worker,
            args=(host, port),
            kwargs=dict(
                seed=seed * 100_000 + i,
                stop=stop,
                start=start,
                think_s=(0.1, 0.2),
                latencies=lat,
                errors=err,
            ),
            daemon=True,
        )
        threads.append((t, lat, err))
        t.start()

    start.wait(timeout=60)
    t0 = time.perf_counter()
    time.sleep(duration_s)
    stop.set()
    wall_s = time.perf_counter() - t0
    for t, lat, err in threads:
        t.join(timeout=30)
        latencies.extend(lat)
        errors.extend(err)
    version_end = plane.cache.view.version
    plane.close()

    latencies.sort()
    n = len(latencies)
    return {
        "serve_load": {
            "description": (
                f"{clients} persistent HTTP/1.1 pollers with seeded "
                f"100-200 ms think-times against a live control plane "
                f"({FLEET_NODES} nodes x {DAYS:g} days, ingest running "
                f"throughout)"
            ),
            "clients": clients,
            "duration_s": round(wall_s, 3),
            "requests": n,
            "errors": len(errors),
            "rps": round(n / wall_s, 1) if wall_s > 0 else 0.0,
            "p50_ms": round(_percentile(latencies, 50.0), 4),
            "p90_ms": round(_percentile(latencies, 90.0), 4),
            "p99_ms": round(_percentile(latencies, 99.0), 4),
            "max_ms": round(latencies[-1], 4) if latencies else 0.0,
            "version_start": version_start,
            "version_end": version_end,
            "mix": {route: weight for route, weight in MIX},
        },
    }


def check(results: dict) -> int:
    failures = []
    load = results["serve_load"]
    if load["errors"]:
        failures.append(f"{load['errors']} request(s) errored")
    if load["clients"] < MIN_CLIENTS:
        failures.append(
            f"only {load['clients']} clients (need >= {MIN_CLIENTS})"
        )
    if load["requests"] == 0:
        failures.append("no requests completed")
    if load["version_end"] <= load["version_start"]:
        failures.append(
            f"snapshot version stuck at {load['version_start']} during "
            f"the load; ingest starved behind serving"
        )
    if load["p99_ms"] >= LIVE_P99_LIMIT_MS:
        failures.append(
            f"live p99 {load['p99_ms']:.2f} ms over the "
            f"{LIVE_P99_LIMIT_MS:.0f} ms disaster bound"
        )

    if BASELINE_PATH.exists():
        ref = json.loads(BASELINE_PATH.read_text())["serve_load"]
        if ref["p50_ms"] >= P50_LIMIT_MS:
            failures.append(
                f"recorded p50 {ref['p50_ms']:.3f} ms breaks the "
                f"< {P50_LIMIT_MS:g} ms SLO; re-record on the "
                f"reference machine"
            )
        if ref["p99_ms"] >= P99_LIMIT_MS:
            failures.append(
                f"recorded p99 {ref['p99_ms']:.3f} ms breaks the "
                f"< {P99_LIMIT_MS:g} ms SLO; re-record on the "
                f"reference machine"
            )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured results as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="gate errors, SLOs, and snapshot liveness")
    parser.add_argument("--quick", action="store_true",
                        help="shorter load window (CI mode)")
    parser.add_argument("--clients", type=int, default=MIN_CLIENTS,
                        help=f"concurrent pollers (default {MIN_CLIENTS})")
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds of steady-state load (default 4; "
                             "2 with --quick)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    duration = args.duration
    if duration is None:
        duration = 2.0 if args.quick else 4.0
    results = measure(clients=args.clients, duration_s=duration)
    results["quick"] = args.quick
    print(json.dumps(results, indent=2))

    if args.history:
        import bench_history

        flags = bench_history.drift_flags(
            bench_history.timings_from_results(results),
            bench_history.load_history(),
        )
        bench_history.append_run(results, quick=args.quick)
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
