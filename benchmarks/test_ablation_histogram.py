"""Ablation: streaming-histogram resolution.

Table IV shares are computed from the campaign cube directly, but every
custom-boundary analysis goes through the streaming histogram; this bench
verifies 1 W and 5 W binnings agree to within a bin of mass, so the 2 W
default costs nothing.
"""

import numpy as np
from conftest import run_once

from repro.core import StreamingHistogram


def _shares(hist):
    bounds = (0.0, 200.0, 420.0, 560.0, float("inf"))
    return np.array(
        [
            hist.range_fraction(lo, hi)
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
    )


def test_bin_width(benchmark, campaign_cube):
    counts = campaign_cube.histogram.counts
    centers = campaign_cube.histogram.centers
    # Rebuild finer/coarser histograms from an equivalent sample stream.
    samples = np.repeat(centers, counts.astype(np.int64))

    def build(width):
        h = StreamingHistogram(bin_width=width)
        h.add(samples)
        return h

    fine = run_once(benchmark, build, 1.0)
    coarse = build(5.0)

    s_fine = _shares(fine)
    s_coarse = _shares(coarse)
    print(f"region shares at 1 W bins: {np.round(100 * s_fine, 2)}")
    print(f"region shares at 5 W bins: {np.round(100 * s_coarse, 2)}")
    np.testing.assert_allclose(s_fine, s_coarse, atol=0.01)
