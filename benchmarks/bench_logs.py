#!/usr/bin/env python
"""Structured event-log gate: invisible when off, bounded when on.

Four contracts from ``docs/observability.md``, each measured here and
hard-gated by ``--check``:

* **disabled path < 2 %**: a constructed-but-disabled :class:`EventLog`
  attached to a :class:`StreamEngine` must cost under
  :data:`DISABLED_OVERHEAD_BUDGET_PCT` of bare ingest.  Measured as a
  per-round paired attached/bare wall-clock ratio, minimum over rounds
  (noise is additive, so the cleanest round bounds the true overhead
  from above — the same estimator ``bench_batch`` uses);
* **bitwise invisible when enabled**: an *enabled* log folding every
  window-seal event must leave the fleet cube bit-identical to a
  log-free engine's — emission is a pure read of the window stream;
* **bounded RSS at scale**: ingesting :data:`INGEST_EVENTS` records
  through a ring-buffered log into a rotated :class:`LogStore` must
  keep the peak-RSS delta under :data:`RSS_CEILING_MB` while spilling
  more bytes to disk than the ring could ever hold — the proof that
  segments stream out instead of accumulating;
* **fast range queries**: p99 over seeded random time-range queries
  against the rotated segments must stay under
  :data:`QUERY_P99_LIMIT_MS` in the recorded baseline (live runs get
  the loose :data:`LIVE_P99_LIMIT_MS` disaster bound; shared CI
  runners are noisy and slow drift is ``bench_history``'s job).

Modes::

    python benchmarks/bench_logs.py            # measure and report
    python benchmarks/bench_logs.py --record   # (re)write baseline
    python benchmarks/bench_logs.py --check    # gate (CI)
    python benchmarks/bench_logs.py --check --quick --history
"""

from __future__ import annotations

import argparse
import json
import random
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_logs.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.log import EventLog, LogStore, select  # noqa: E402
from repro.stream import StreamEngine, simulated_fleet  # noqa: E402

#: Maximum disabled-log overhead on streaming ingest, percent.
DISABLED_OVERHEAD_BUDGET_PCT = 2.0
#: Peak-RSS growth ceiling for the large store ingest, MB.
RSS_CEILING_MB = 64.0
#: The recorded baseline must answer range queries under this p99.
QUERY_P99_LIMIT_MS = 50.0
#: Live disaster bound for --check (loose: CI runners are shared).
LIVE_P99_LIMIT_MS = 250.0

#: Records pushed through the ring+store in the scale leg.
INGEST_EVENTS = 1_000_000
INGEST_EVENTS_QUICK = 300_000
RING_CAPACITY = 4_096
SEGMENT_RECORDS = 1_024

FLEET_NODES = 32
DAYS = 1.0
CHUNK_TICKS = 20
WINDOW_S = 600.0

#: Synthetic event rate (fixed so segment *time* granularity — and
#: therefore per-query parse cost — is identical in quick and full
#: modes) and the range-query width in event-time seconds.
EVENT_RATE_HZ = 12.0
QUERY_SPAN_S = 120.0


def _one_pass(log, chunks, *, eventlog=None):
    engine = StreamEngine(log, window_s=WINDOW_S)
    if eventlog is not None:
        engine.attach_log(eventlog)
    t0 = time.perf_counter()
    for chunk in chunks:
        engine.ingest(chunk)
    engine.drain()
    return (time.perf_counter() - t0) * 1e3, engine


def measure_overhead(*, rounds: int, seed: int = 0) -> dict:
    """Disabled-path overhead plus the enabled bitwise-identity check."""
    log, source = simulated_fleet(
        fleet_nodes=FLEET_NODES, days=DAYS, seed=seed,
        chunk_ticks=CHUNK_TICKS,
    )
    chunks = list(source)            # materialized: generation untimed

    # Warmup absorbs lazy imports and allocator growth.
    _one_pass(log, chunks)
    _one_pass(log, chunks, eventlog=EventLog(enabled=False))

    best_ratio = float("inf")
    bare_ms = attached_ms = None
    for _ in range(rounds):
        t_on, _ = _one_pass(log, chunks, eventlog=EventLog(enabled=False))
        t_off, _ = _one_pass(log, chunks)
        if bare_ms is None or t_off < bare_ms:
            bare_ms, attached_ms = t_off, t_on
        best_ratio = min(best_ratio, t_on / t_off)
    overhead_pct = max(0.0, 100.0 * (best_ratio - 1.0))

    # Enabled leg: every window seals one event, cube bits never move.
    _, plain = _one_pass(log, chunks)
    live = EventLog(capacity=65_536)
    _, logged = _one_pass(log, chunks, eventlog=live)
    a, b = plain.cube(copy=False), logged.cube(copy=False)
    bitwise = (
        np.array_equal(a.energy_j, b.energy_j)
        and np.array_equal(a.gpu_hours, b.gpu_hours)
        and np.array_equal(a.histogram.counts, b.histogram.counts)
        and a.cpu_energy_j == b.cpu_energy_j
    )
    seals = sum(
        1 for r in live.records() if r["event"] == "stream.window_seal"
    )
    return {
        "description": (
            f"streaming ingest of {FLEET_NODES} nodes x {DAYS:g} days "
            f"({len(chunks)} chunks, {WINDOW_S:.0f} s windows) with a "
            f"disabled EventLog attached vs bare"
        ),
        "rounds": rounds,
        "bare_ms": round(bare_ms, 2),
        "attached_ms": round(attached_ms, 2),
        "disabled_overhead_pct": round(overhead_pct, 3),
        "bitwise_identical_enabled": bitwise,
        "windows_sealed": seals,
        "events_emitted_enabled": live.emitted,
    }


def _percentile(sorted_ms: list, pct: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(pct / 100.0 * len(sorted_ms)))
    return sorted_ms[idx]


def measure_store(*, events: int, n_queries: int, seed: int = 0) -> dict:
    """Bounded-RSS bulk ingest plus range-query latency percentiles."""
    rss0_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    step_s = 1.0 / EVENT_RATE_HZ
    span_s = events * step_s
    with tempfile.TemporaryDirectory() as dir:
        store = LogStore(
            Path(dir) / "logs", segment_records=SEGMENT_RECORDS,
        )
        eventlog = EventLog(capacity=RING_CAPACITY, store=store)
        t0 = time.perf_counter()
        for i in range(events):
            eventlog.emit(
                "info", "bench.tick", f"synthetic event {i}",
                t_s=i * step_s, window=i // 64, node=i % FLEET_NODES,
                value=float(i % 1000),
            )
        eventlog.finalize()
        ingest_s = time.perf_counter() - t0
        written_mb = store.total_bytes() / 1e6
        rss_delta_mb = (
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss - rss0_kb
        ) / 1024.0

        rng = random.Random(seed)
        latencies = []
        for _ in range(n_queries):
            q0 = rng.uniform(0.0, span_s - QUERY_SPAN_S)
            t = time.perf_counter()
            hits = select(
                store.iter_records(q0, q0 + QUERY_SPAN_S),
                min_severity="info", limit=100,
            )
            latencies.append((time.perf_counter() - t) * 1e3)
            assert hits, "range query found no records; workload broken"
        latencies.sort()
        problems = store.check()
        summary = store.summary()
        store.close()

    return {
        "description": (
            f"{events:,} events through a {RING_CAPACITY}-record ring "
            f"into {SEGMENT_RECORDS}-record JSONL segments, then "
            f"{n_queries} random {QUERY_SPAN_S:.0f} s range queries"
        ),
        "events": events,
        "ingest_s": round(ingest_s, 3),
        "events_per_s": round(events / ingest_s, 0),
        "segments": summary["segments"],
        "written_mb": round(written_mb, 1),
        "rss_delta_mb": round(rss_delta_mb, 1),
        "ring_evicted": eventlog.evicted,
        "store_problems": problems,
        "query_p50_ms": round(_percentile(latencies, 50.0), 3),
        "query_p99_ms": round(_percentile(latencies, 99.0), 3),
        "query_max_ms": round(latencies[-1], 3) if latencies else 0.0,
    }


def measure(*, rounds: int, quick: bool) -> dict:
    events = INGEST_EVENTS_QUICK if quick else INGEST_EVENTS
    return {
        "log_overhead": measure_overhead(rounds=rounds),
        "log_store": measure_store(
            events=events, n_queries=60 if quick else 200,
        ),
    }


def check(results: dict) -> int:
    failures = []
    over = results["log_overhead"]
    store = results["log_store"]
    if not over["bitwise_identical_enabled"]:
        failures.append("enabled event log changed a fleet-cube bit")
    if over["windows_sealed"] == 0:
        failures.append("no window-seal events; the workload is broken")
    if over["disabled_overhead_pct"] >= DISABLED_OVERHEAD_BUDGET_PCT:
        failures.append(
            f"disabled-path overhead {over['disabled_overhead_pct']:.2f} "
            f"% breaks the < {DISABLED_OVERHEAD_BUDGET_PCT:g} % budget"
        )
    if store["rss_delta_mb"] >= RSS_CEILING_MB:
        failures.append(
            f"peak RSS grew {store['rss_delta_mb']:.1f} MB over the "
            f"{RSS_CEILING_MB:g} MB ceiling; segments are accumulating"
        )
    if store["written_mb"] <= store["rss_delta_mb"]:
        failures.append(
            f"store spilled only {store['written_mb']:.1f} MB against a "
            f"{store['rss_delta_mb']:.1f} MB RSS delta; nothing paged out"
        )
    if store["ring_evicted"] == 0:
        failures.append("ring never evicted; the scale leg is too small")
    if store["store_problems"]:
        failures.append(
            f"store check found problems: {store['store_problems']}"
        )
    if store["query_p99_ms"] >= LIVE_P99_LIMIT_MS:
        failures.append(
            f"live query p99 {store['query_p99_ms']:.1f} ms over the "
            f"{LIVE_P99_LIMIT_MS:.0f} ms disaster bound"
        )

    if BASELINE_PATH.exists():
        ref = json.loads(BASELINE_PATH.read_text())
        ref_over = ref["log_overhead"]
        ref_store = ref["log_store"]
        if ref_over["disabled_overhead_pct"] >= DISABLED_OVERHEAD_BUDGET_PCT:
            failures.append(
                f"recorded disabled-path overhead "
                f"{ref_over['disabled_overhead_pct']:.2f} % breaks the "
                f"< {DISABLED_OVERHEAD_BUDGET_PCT:g} % budget; re-record "
                f"on the reference machine"
            )
        if ref_store["query_p99_ms"] >= QUERY_P99_LIMIT_MS:
            failures.append(
                f"recorded query p99 {ref_store['query_p99_ms']:.1f} ms "
                f"breaks the < {QUERY_P99_LIMIT_MS:g} ms budget"
            )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured results as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="gate overhead, RSS, bitwise identity, p99")
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds and events (CI mode)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="paired timing rounds (default 3; 2 with "
                             "--quick)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    # The overhead leg gates a <2 % live ratio, so it needs the same
    # round count bench_batch's estimator uses — one noisy round can
    # only overstate the ratio, and more rounds let the min converge.
    rounds = args.rounds
    if rounds is None:
        rounds = 5 if args.quick else 9
    results = measure(rounds=rounds, quick=args.quick)
    results["quick"] = args.quick
    print(json.dumps(results, indent=2))

    if args.history:
        import bench_history

        timings = {
            "logs_bare_ms": results["log_overhead"]["bare_ms"],
            "logs_attached_ms": results["log_overhead"]["attached_ms"],
            "logs_query_p99_ms": results["log_store"]["query_p99_ms"],
        }
        flags = bench_history.drift_flags(
            timings, bench_history.load_history()
        )
        bench_history.append_timings(
            timings, quick=args.quick, source="bench_logs",
        )
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
