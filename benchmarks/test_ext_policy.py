"""Bench: the per-job policy extension (beyond the paper's artifacts)."""

from conftest import run_once

from repro.experiments import run


def test_ext_policy(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_policy", bench_config)
    print(result.text)

    outcomes = result.data["outcomes"]
    # The oracle dominates; the advisor captures most of it under budget.
    assert outcomes["oracle"].saving_j >= outcomes["per_job"].saving_j
    assert result.data["oracle_capture"] > 0.5
    assert outcomes["per_job"].max_job_slowdown_pct <= 5.0 + 1e-9
    assert outcomes["uniform"].max_job_slowdown_pct > 20.0
    # All four workload families appear in the fingerprinted fleet.
    assert len(result.data["families"]) == 4


def test_ext_validation(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_validation", bench_config)
    print(result.text)
    # The power proxy is accurate; diffusion is a small, adjacent-region
    # effect — the paper's "order of the zone classification is accurate".
    assert result.data["accuracy"] > 0.95
    assert (result.data["per_region_accuracy"] > 0.8).all()
