"""Bench: streaming ingestion vs the batch pipeline (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_stream(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_stream", bench_config)
    print(result.text)

    # Every delivery pattern — in order, shuffled, shuffled with
    # duplicates — drains to the batch join bitwise.
    assert result.data["bitwise"] == {
        "in-order": True, "shuffled": True, "shuffled+dup": True,
    }
    stats = result.data["stats"]
    assert stats["shuffled+dup"]["duplicates"] > 0
    assert all(s["late_dropped"] == 0 for s in stats.values())
    # Bounded memory: resident state is a small fraction of the stream.
    assert all(
        s["peak_resident_samples"] < s["samples_in"] / 4
        for s in stats.values()
    )
    # The live snapshot yields usable fleet advice.
    assert result.data["recommendation"]["cap"] is not None
    assert 0.0 < result.data["recommendation"]["savings_pct"] < 30.0
