"""Bench: Table V — the system-wide savings projection (the headline)."""

from conftest import run_once

from repro.experiments import run


def test_table5(benchmark, bench_config):
    result = run_once(benchmark, run, "table5", bench_config)
    print(result.text)

    freq = result.data["frequency"]
    power = result.data["power"]

    # Shape: the projected ceiling is several percent of campaign energy
    # at a mid-frequency cap (paper: 8.8 % at 900 MHz), and the
    # no-slowdown ceiling is close behind (paper: 8.5 %).
    best = freq.best_row
    assert 900 <= best.cap <= 1300
    assert 5.0 <= best.savings_pct <= 15.0
    assert freq.best_no_slowdown_row.savings_no_slowdown_pct >= 5.0

    # Shape: frequency capping beats power capping decisively.
    assert best.savings_pct > power.best_row.savings_pct + 3.0

    # Shape: the deepest frequency cap costs the most runtime and saves
    # less than the best mid cap (the paper's 700 MHz row collapses).
    deepest = freq.row_at(700)
    assert deepest.runtime_increase_pct > best.runtime_increase_pct
    assert deepest.total_mwh < best.total_mwh

    # Cross-check with the paper's own Table III factors: the headline
    # lands at 900 MHz near 8.5 % no-slowdown savings.
    with_paper = result.data["frequency_paper_factors"]
    assert with_paper.best_no_slowdown_row.cap == 900
    assert abs(
        with_paper.best_no_slowdown_row.savings_no_slowdown_pct - 8.5
    ) < 3.5
