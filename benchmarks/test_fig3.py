"""Bench: Fig 3 — the cyclic access pattern and the hit-model validation."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig3(benchmark, bench_config):
    result = run_once(benchmark, run, "fig3", bench_config)
    print(result.text)

    ratios = np.asarray(result.data["ratios"])
    lru = np.asarray(result.data["lru"])
    rnd = np.asarray(result.data["random"])
    model = np.asarray(result.data["model"])

    resident = ratios <= 1.0
    over = ratios >= 1.25

    # While resident: everything hits (random replacement nearly so).
    assert (lru[resident] == 1.0).all()
    assert (model[resident] == 1.0).all()
    assert rnd[resident].min() > 0.75
    # Past capacity: LRU cliffs, random decays, the model sits between.
    assert (lru[over] == 0.0).all()
    assert np.all(np.diff(rnd) <= 1e-9)
    mid = (ratios > 1.0) & (ratios < 2.0)
    assert (model[mid] >= lru[mid]).all()
