#!/usr/bin/env python
"""Batched-engine speedup benchmark and regression gate.

Times the paper's Fig 4 evaluation (both knobs, full arithmetic-intensity
grid) two ways — the point-by-point scalar :class:`CapSweep` path and the
batched :class:`GridSweep` path — plus the vectorized telemetry join, and
records the best-of-N times in ``benchmarks/BENCH_batch.json``.  Best-of
is the ``timeit`` convention: the minimum over rounds measures the code,
the spread above it measures scheduler/cache interference.

Modes::

    python benchmarks/bench_batch.py            # measure and report
    python benchmarks/bench_batch.py --record   # measure and (re)write baseline
    python benchmarks/bench_batch.py --check    # fail if >2x slower than baseline
    python benchmarks/bench_batch.py --check --quick   # fewer rounds (CI)

The scalar path clears the power-cap memo between rounds so the
comparison measures the solver, not the cache.  The acceptance bar for
this repo is a >=10x batched speedup on the Fig 4 grid; ``--check``
enforces both that bar and the 2x regression gate on absolute times.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_batch.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import constants, units  # noqa: E402
from repro.bench.sweep import CapSweep  # noqa: E402
from repro.bench.vai import VAIBenchmark  # noqa: E402
from repro.core import join_campaign  # noqa: E402
from repro.gpu import GPUDevice  # noqa: E402
from repro.gpu.kernel import KernelBatch  # noqa: E402
from repro.gpu.powercap import clear_powercap_cache  # noqa: E402
from repro.gpu.specs import default_spec  # noqa: E402
from repro.obs import runtime as obs_runtime  # noqa: E402
from repro.scheduler import SlurmSimulator, default_mix  # noqa: E402
from repro.stream.buffer import ReorderBuffer  # noqa: E402
from repro.telemetry import FleetTelemetryGenerator  # noqa: E402
from repro.telemetry.schema import TelemetryChunk  # noqa: E402

FIG4_FREQ_CAPS = constants.FREQUENCY_CAPS_MHZ[1:]
FIG4_POWER_CAPS = (500, 400, 300, 200, 100)

#: --check fails when a timed target is more than this factor slower
#: than its recorded baseline median.
REGRESSION_FACTOR = 2.0
#: Minimum batched speedup on the Fig 4 grid (the tentpole's bar).
MIN_SPEEDUP = 10.0
#: Maximum no-op instrumentation overhead on the hot paths, percent.
#: The observability wrappers must stay invisible when disabled.
OVERHEAD_BUDGET_PCT = 2.0


def best_ms(*fns, rounds: int, inner: int = 1):
    """Best-of-``rounds`` time for each ``fn()`` call, in milliseconds.

    Each sample times ``inner`` consecutive calls and divides — short
    targets are otherwise dominated by timer/scheduler jitter.  One
    untimed warmup call absorbs lazy imports and allocator growth.
    Passing several targets interleaves their rounds, so ambient load
    shifts (CPU contention, frequency scaling) hit every target alike
    instead of biasing whichever happened to run during the quiet window.
    """
    for fn in fns:
        fn()
    samples = [[] for _ in fns]
    for _ in range(rounds):
        for fn, out in zip(fns, samples):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            out.append((time.perf_counter() - t0) * 1e3 / inner)
    best = [min(s) for s in samples]
    return best[0] if len(fns) == 1 else best


def fig4_sweeps(batched: bool):
    bench = VAIBenchmark()

    def run():
        # The memo cache would let later rounds (and the scalar path in
        # particular) skip every bisection; clear it so each round times
        # the full solve.
        clear_powercap_cache()
        harness = CapSweep(bench, batched=None if batched else False)
        harness.frequency_sweep(FIG4_FREQ_CAPS)
        harness.power_sweep(FIG4_POWER_CAPS)

    return run


def join_target():
    mix = default_mix(fleet_nodes=16)
    log = SlurmSimulator(mix).run(units.days(1), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=1).generate()

    def run():
        join_campaign(store, log)

    return run


def _synthetic_chunks(n_chunks: int = 48, nodes: int = 16,
                      ticks: int = 16) -> list:
    """In-order arrival chunks for the ingest benchmark (~256 rows each)."""
    interval = constants.TELEMETRY_INTERVAL_S
    rng = np.random.default_rng(7)
    chunks = []
    tick0 = 0
    for _ in range(n_chunks):
        tt = np.arange(tick0, tick0 + ticks, dtype=np.float64) * interval
        time = np.repeat(tt, nodes)
        node = np.tile(np.arange(nodes, dtype=np.int32), ticks)
        gpu = rng.uniform(
            80.0, 560.0, size=(len(time), constants.GPUS_PER_NODE)
        ).astype(np.float32)
        cpu = rng.uniform(40.0, 200.0, size=len(time)).astype(np.float32)
        chunks.append(TelemetryChunk(
            time_s=time, node_id=node, gpu_power_w=gpu, cpu_power_w=cpu,
        ))
        tick0 += ticks
    return chunks


def stream_ingest_target():
    """ReorderBuffer.push throughput over a full synthetic stream."""
    chunks = _synthetic_chunks()
    total = sum(len(c) for c in chunks)
    interval = constants.TELEMETRY_INTERVAL_S

    def run(push_attr: str = "push"):
        buf = ReorderBuffer(interval_s=interval, lateness_s=2 * interval)
        push = getattr(buf, push_attr)
        for c in chunks:
            push(c)
        buf.flush()

    return run, total


def _overhead_pct(wrapped_fn, raw_fn, *, rounds: int, inner: int) -> float:
    """Per-round paired wrapped/raw ratio, minimum over rounds, as percent.

    Scheduler and allocator noise is additive, so any single round can
    only overstate the ratio; the cleanest round bounds the true
    overhead from above.  Pairing both legs inside one round keeps slow
    ambient drift (CPU frequency scaling, co-tenants) out of the ratio.
    """
    for fn in (wrapped_fn, raw_fn):
        fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(inner):
            wrapped_fn()
        a = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(inner):
            raw_fn()
        b = time.perf_counter() - t0
        best = min(best, a / b)
    return max(0.0, 100.0 * (best - 1.0))


def measure_overhead(rounds: int) -> dict:
    """No-op instrumentation overhead (observability disabled), percent.

    Times each hot path through its public wrapper and through the raw
    ``_impl`` body on the same inputs.  With observability off the
    difference is one module-global read and a branch; the budget is
    :data:`OVERHEAD_BUDGET_PCT`.
    """
    obs_runtime.disable()

    ingest, _total = stream_ingest_target()
    push_pct = _overhead_pct(
        lambda: ingest("push"),
        lambda: ingest("_push_impl"),
        rounds=rounds,
        inner=2,
    )

    bench = VAIBenchmark()
    spec = default_spec()
    batch = KernelBatch.from_kernels(bench.grid_kernels(spec))
    device = GPUDevice(spec)
    run_batch_pct = _overhead_pct(
        lambda: device.run_batch(batch),
        lambda: device._run_batch_impl(batch),
        rounds=rounds,
        inner=30,
    )

    return {
        "description": (
            "no-op overhead of the observability wrappers with "
            "observability disabled (public method vs raw _impl)"
        ),
        "push_pct": round(push_pct, 3),
        "run_batch_pct": round(run_batch_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }


def measure(rounds: int) -> dict:
    # The two sweep paths are interleaved with the same inner-repeat
    # count so jitter suppression is symmetric; the join is long enough
    # on its own.
    scalar_ms, batched_ms = best_ms(
        fig4_sweeps(batched=False),
        fig4_sweeps(batched=True),
        rounds=rounds,
        inner=3,
    )
    join_ms = best_ms(join_target(), rounds=rounds)
    ingest, ingest_samples = stream_ingest_target()
    ingest_ms = best_ms(ingest, rounds=rounds, inner=2)
    return {
        "fig4_grid": {
            "description": (
                "Fig 4 evaluation, both knobs: "
                f"{len(FIG4_FREQ_CAPS) + 1}+{len(FIG4_POWER_CAPS) + 1} caps "
                f"x {len(constants.VAI_INTENSITIES)} intensities"
            ),
            "scalar_capsweep_ms": round(scalar_ms, 3),
            "batched_capsweep_ms": round(batched_ms, 3),
            "speedup": round(scalar_ms / batched_ms, 2),
        },
        "join": {
            "description": (
                "join_campaign, 16 nodes x 1 day of telemetry "
                "(vectorized labelling + grouped histograms)"
            ),
            "best_ms": round(join_ms, 3),
        },
        "stream_ingest": {
            "description": (
                "ReorderBuffer.push + flush over "
                f"{ingest_samples} in-order samples (48 chunks, 16 nodes)"
            ),
            "best_ms": round(ingest_ms, 3),
            "samples_per_s": round(ingest_samples / (ingest_ms / 1e3)),
        },
        "rounds": rounds,
    }


def check_overhead(results: dict) -> list:
    """Failures against the no-op instrumentation budget."""
    failures = []
    overhead = results.get("obs_overhead")
    if overhead is None:
        return failures
    for key, label in (
        ("push_pct", "ReorderBuffer.push"),
        ("run_batch_pct", "GPUDevice.run_batch"),
    ):
        pct = overhead[key]
        if pct >= OVERHEAD_BUDGET_PCT:
            failures.append(
                f"no-op obs overhead on {label}: {pct:.2f} % >= "
                f"{OVERHEAD_BUDGET_PCT:.0f} % budget"
            )
    return failures


def check(results: dict) -> int:
    failures = []
    speedup = results["fig4_grid"]["speedup"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"fig4 batched speedup {speedup:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x bar"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        pairs = [
            (
                "fig4 batched sweep",
                results["fig4_grid"]["batched_capsweep_ms"],
                baseline["fig4_grid"]["batched_capsweep_ms"],
            ),
            (
                "telemetry join",
                results["join"]["best_ms"],
                baseline["join"]["best_ms"],
            ),
            (
                "stream ingest",
                results["stream_ingest"]["best_ms"],
                baseline.get("stream_ingest", {}).get("best_ms"),
            ),
        ]
        for name, now, then in pairs:
            # Baselines recorded before a target existed have no entry
            # for it; --record refreshes them.
            if then is None:
                continue
            if now > REGRESSION_FACTOR * then:
                failures.append(
                    f"{name}: {now:.2f} ms vs baseline {then:.2f} ms "
                    f"(>{REGRESSION_FACTOR:.0f}x regression)"
                )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")
    failures.extend(check_overhead(results))
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured times as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x regression vs the baseline")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing rounds (CI mode)")
    parser.add_argument("--overhead-only", action="store_true",
                        help="only measure/gate the no-op obs overhead")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 7
    # The overhead A/B needs enough rounds for a stable best-of even in
    # --quick mode: the gate is a 2 % band, not a 2x factor.
    overhead_rounds = 9
    if args.overhead_only:
        results = {"obs_overhead": measure_overhead(overhead_rounds)}
        print(json.dumps(results, indent=2))
        if args.check:
            failures = check_overhead(results)
            for f in failures:
                print(f"FAIL: {f}")
            return 1 if failures else 0
        return 0

    results = measure(rounds)
    results["obs_overhead"] = measure_overhead(overhead_rounds)
    print(json.dumps(results, indent=2))

    if args.history:
        # Advisory drift trail: flags vs the trailing median are printed
        # but never fail the run — the hard gate stays --check's 2x bar.
        import bench_history

        flags = bench_history.drift_flags(
            bench_history.timings_from_results(results),
            bench_history.load_history(),
        )
        bench_history.append_run(results, quick=args.quick)
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
