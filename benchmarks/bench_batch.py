#!/usr/bin/env python
"""Batched-engine speedup benchmark and regression gate.

Times the paper's Fig 4 evaluation (both knobs, full arithmetic-intensity
grid) two ways — the point-by-point scalar :class:`CapSweep` path and the
batched :class:`GridSweep` path — plus the vectorized telemetry join, and
records the best-of-N times in ``benchmarks/BENCH_batch.json``.  Best-of
is the ``timeit`` convention: the minimum over rounds measures the code,
the spread above it measures scheduler/cache interference.

Modes::

    python benchmarks/bench_batch.py            # measure and report
    python benchmarks/bench_batch.py --record   # measure and (re)write baseline
    python benchmarks/bench_batch.py --check    # fail if >2x slower than baseline
    python benchmarks/bench_batch.py --check --quick   # fewer rounds (CI)

The scalar path clears the power-cap memo between rounds so the
comparison measures the solver, not the cache.  The acceptance bar for
this repo is a >=10x batched speedup on the Fig 4 grid; ``--check``
enforces both that bar and the 2x regression gate on absolute times.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_batch.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import constants, units  # noqa: E402
from repro.bench.sweep import CapSweep  # noqa: E402
from repro.bench.vai import VAIBenchmark  # noqa: E402
from repro.core import join_campaign  # noqa: E402
from repro.gpu.powercap import clear_powercap_cache  # noqa: E402
from repro.scheduler import SlurmSimulator, default_mix  # noqa: E402
from repro.telemetry import FleetTelemetryGenerator  # noqa: E402

FIG4_FREQ_CAPS = constants.FREQUENCY_CAPS_MHZ[1:]
FIG4_POWER_CAPS = (500, 400, 300, 200, 100)

#: --check fails when a timed target is more than this factor slower
#: than its recorded baseline median.
REGRESSION_FACTOR = 2.0
#: Minimum batched speedup on the Fig 4 grid (the tentpole's bar).
MIN_SPEEDUP = 10.0


def best_ms(*fns, rounds: int, inner: int = 1):
    """Best-of-``rounds`` time for each ``fn()`` call, in milliseconds.

    Each sample times ``inner`` consecutive calls and divides — short
    targets are otherwise dominated by timer/scheduler jitter.  One
    untimed warmup call absorbs lazy imports and allocator growth.
    Passing several targets interleaves their rounds, so ambient load
    shifts (CPU contention, frequency scaling) hit every target alike
    instead of biasing whichever happened to run during the quiet window.
    """
    for fn in fns:
        fn()
    samples = [[] for _ in fns]
    for _ in range(rounds):
        for fn, out in zip(fns, samples):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            out.append((time.perf_counter() - t0) * 1e3 / inner)
    best = [min(s) for s in samples]
    return best[0] if len(fns) == 1 else best


def fig4_sweeps(batched: bool):
    bench = VAIBenchmark()

    def run():
        # The memo cache would let later rounds (and the scalar path in
        # particular) skip every bisection; clear it so each round times
        # the full solve.
        clear_powercap_cache()
        harness = CapSweep(bench, batched=None if batched else False)
        harness.frequency_sweep(FIG4_FREQ_CAPS)
        harness.power_sweep(FIG4_POWER_CAPS)

    return run


def join_target():
    mix = default_mix(fleet_nodes=16)
    log = SlurmSimulator(mix).run(units.days(1), rng=0)
    store = FleetTelemetryGenerator(log, mix, seed=1).generate()

    def run():
        join_campaign(store, log)

    return run


def measure(rounds: int) -> dict:
    # The two sweep paths are interleaved with the same inner-repeat
    # count so jitter suppression is symmetric; the join is long enough
    # on its own.
    scalar_ms, batched_ms = best_ms(
        fig4_sweeps(batched=False),
        fig4_sweeps(batched=True),
        rounds=rounds,
        inner=3,
    )
    join_ms = best_ms(join_target(), rounds=rounds)
    return {
        "fig4_grid": {
            "description": (
                "Fig 4 evaluation, both knobs: "
                f"{len(FIG4_FREQ_CAPS) + 1}+{len(FIG4_POWER_CAPS) + 1} caps "
                f"x {len(constants.VAI_INTENSITIES)} intensities"
            ),
            "scalar_capsweep_ms": round(scalar_ms, 3),
            "batched_capsweep_ms": round(batched_ms, 3),
            "speedup": round(scalar_ms / batched_ms, 2),
        },
        "join": {
            "description": (
                "join_campaign, 16 nodes x 1 day of telemetry "
                "(vectorized labelling + grouped histograms)"
            ),
            "best_ms": round(join_ms, 3),
        },
        "rounds": rounds,
    }


def check(results: dict) -> int:
    failures = []
    speedup = results["fig4_grid"]["speedup"]
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"fig4 batched speedup {speedup:.1f}x below the "
            f"{MIN_SPEEDUP:.0f}x bar"
        )
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        pairs = [
            (
                "fig4 batched sweep",
                results["fig4_grid"]["batched_capsweep_ms"],
                baseline["fig4_grid"]["batched_capsweep_ms"],
            ),
            (
                "telemetry join",
                results["join"]["best_ms"],
                baseline["join"]["best_ms"],
            ),
        ]
        for name, now, then in pairs:
            if now > REGRESSION_FACTOR * then:
                failures.append(
                    f"{name}: {now:.2f} ms vs baseline {then:.2f} ms "
                    f"(>{REGRESSION_FACTOR:.0f}x regression)"
                )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured times as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail on >2x regression vs the baseline")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing rounds (CI mode)")
    args = parser.parse_args(argv)

    rounds = 3 if args.quick else 7
    results = measure(rounds)
    print(json.dumps(results, indent=2))

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
