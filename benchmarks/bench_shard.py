#!/usr/bin/env python
"""Sharded campaign engine: scaling benchmark and regression gate.

Measures ingest+fold throughput of the sharded campaign engine
(:mod:`repro.stream.shard`) versus worker count, verifies the bitwise
shard-count invariance contract live, and records the results in
``benchmarks/BENCH_shard.json``.

Scaling is derived honestly for the machine at hand:

* with at least as many cores as workers, each worker count is **run**
  and wall-clock measured (``"mode": "measured"``);
* on smaller machines (CI runners, laptops), per-shard task durations
  are measured serially and the pool makespan is computed from the
  actual greedy assignment ProcessPoolExecutor performs
  (``"mode": "projected"`` — the model has no communication term, so
  it is the machine-independent upper bound the reference run must
  then meet).

The hard gate (``--check``) fails when:

* the sharded cube is not bitwise identical across shard counts
  (1 vs 4, live, every run);
* a 2-worker pool run does not reproduce the serial cube exactly
  (live pool-machinery smoke, every run);
* the recorded baseline's 1 -> 8 worker scaling is below
  :data:`MIN_SHARD_SCALING` (the acceptance bar for the engine);
* the live serial fold is >2x slower than the recorded baseline.

Modes::

    python benchmarks/bench_shard.py            # measure and report
    python benchmarks/bench_shard.py --record   # measure and (re)write baseline
    python benchmarks/bench_shard.py --check    # gate (CI)
    python benchmarks/bench_shard.py --check --quick --history
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_shard.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro import units  # noqa: E402
from repro.parallel import partition  # noqa: E402
from repro.scheduler import SlurmSimulator, default_mix  # noqa: E402
from repro.stream.shard import (  # noqa: E402
    ShardConfig,
    _shard_task,
    plan_units,
    run_sharded_campaign,
)

#: Minimum 1 -> 8 worker throughput scaling on the recorded reference
#: run (the tentpole's acceptance bar, gated by ``make bench-quick``).
MIN_SHARD_SCALING = 3.0
#: --check fails when the live serial fold is more than this factor
#: slower than the recorded baseline.
REGRESSION_FACTOR = 2.0

WORKER_COUNTS = (1, 2, 4, 8)

#: Benchmark campaign: 64 nodes x 6 h in 4-node fold units -> 16 units
#: over 8 shards, so the 8-worker critical path is 2 units.
FLEET_NODES = 64
DAYS = 0.25
UNIT_NODES = 4
SHARDS = 8


def _campaign_inputs(quick: bool):
    nodes = FLEET_NODES // 2 if quick else FLEET_NODES
    days = DAYS / 2 if quick else DAYS
    cfg = ShardConfig(unit_nodes=UNIT_NODES)
    mix = default_mix(fleet_nodes=nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=0)
    return nodes, days, cfg, log


def _makespan(durations_s, workers: int) -> float:
    """Pool makespan of the shard tasks under greedy assignment.

    ProcessPoolExecutor hands the next queued task to whichever worker
    frees up first — exactly the greedy list-scheduling this simulates.
    """
    free = [0.0] * min(workers, len(durations_s))
    heapq.heapify(free)
    for d in durations_s:
        heapq.heappush(free, heapq.heappop(free) + d)
    return max(free) if free else 0.0


def measure_scaling(rounds: int, quick: bool) -> dict:
    nodes, days, cfg, log = _campaign_inputs(quick)
    cores = os.cpu_count() or 1
    log_arrays = log.to_arrays()
    unit_grid = plan_units(log.n_nodes, cfg.unit_nodes)
    shard_ranges = partition(len(unit_grid), SHARDS)

    # Per-shard task durations, best-of-rounds, measured serially so
    # the numbers are contention-free on any machine.
    shard_ms = [float("inf")] * len(shard_ranges)
    samples = 0
    for _ in range(rounds):
        samples = 0
        for i, (lo, hi) in enumerate(shard_ranges):
            t0 = time.perf_counter()
            _states, counters = _shard_task(
                log_arrays, log.n_nodes, 1000, unit_grid[lo:hi], cfg,
                None, False, None,
            )
            shard_ms[i] = min(
                shard_ms[i], (time.perf_counter() - t0) * 1e3
            )
            samples += int(sum(c[1] for c in counters))

    # Serial end-to-end reference (includes simulate + merge).
    serial_ms = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_sharded_campaign(
            fleet_nodes=nodes, days=days, seed=0, shards=SHARDS,
            workers=0, cfg=cfg, log=log,
        )
        serial_ms = min(serial_ms, (time.perf_counter() - t0) * 1e3)
    overhead_ms = max(0.0, serial_ms - sum(shard_ms))

    measured_mode = cores >= max(WORKER_COUNTS)
    per_worker = {}
    for w in WORKER_COUNTS:
        if measured_mode and w > 1:
            wall = float("inf")
            for _ in range(rounds):
                t0 = time.perf_counter()
                run_sharded_campaign(
                    fleet_nodes=nodes, days=days, seed=0,
                    shards=SHARDS, workers=w, cfg=cfg, log=log,
                )
                wall = min(wall, (time.perf_counter() - t0) * 1e3)
        else:
            wall = overhead_ms + _makespan(
                [ms / 1e3 for ms in shard_ms], w
            ) * 1e3
        per_worker[str(w)] = {
            "wall_ms": round(wall, 3),
            "samples_per_s": round(samples / (wall / 1e3)),
            "speedup": round(per_worker["1"]["wall_ms"] / wall, 2)
            if "1" in per_worker else 1.0,
        }
    speedup_8 = per_worker[str(max(WORKER_COUNTS))]["speedup"]

    return {
        "description": (
            f"sharded campaign ingest+fold: {nodes} nodes x "
            f"{days:g} days, {len(unit_grid)} fold units of "
            f"{cfg.unit_nodes} nodes over {len(shard_ranges)} shards"
        ),
        "mode": "measured" if measured_mode else "projected",
        "cores": cores,
        "samples": samples,
        "serial_ms": round(serial_ms, 3),
        "parent_overhead_ms": round(overhead_ms, 3),
        "shard_ms": [round(ms, 3) for ms in shard_ms],
        "workers": per_worker,
        "speedup_8": speedup_8,
    }


def measure_identity(quick: bool) -> dict:
    """Live contract checks: shard-count invariance + pool machinery."""
    nodes, days, cfg, log = _campaign_inputs(quick)

    def cube_key(r):
        c = r.cube
        return (
            c.energy_j.tobytes(), c.gpu_hours.tobytes(),
            np.float64(c.cpu_energy_j).tobytes(),
            c.histogram.counts.tobytes(),
            c.histogram.weight_sums.tobytes(),
        )

    kw = dict(fleet_nodes=nodes, days=days, seed=0, cfg=cfg, log=log)
    ref = cube_key(run_sharded_campaign(shards=1, **kw))
    shard_counts_ok = all(
        cube_key(run_sharded_campaign(shards=s, **kw)) == ref
        for s in (4,)
    )
    pool_ok = (
        cube_key(run_sharded_campaign(shards=4, workers=2, **kw)) == ref
    )
    return {
        "description": (
            "bitwise contract, verified live: the merged cube at 4 "
            "shards (serial and in a 2-worker pool) vs 1 shard"
        ),
        "shard_count_invariant": bool(shard_counts_ok),
        "pool_invariant": bool(pool_ok),
    }


def measure(rounds: int, quick: bool) -> dict:
    return {
        "shard_scaling": measure_scaling(rounds, quick),
        "bitwise_identity": measure_identity(quick),
        "rounds": rounds,
        "quick": quick,
    }


def check(results: dict) -> int:
    failures = []
    identity = results["bitwise_identity"]
    if not identity["shard_count_invariant"]:
        failures.append("sharded cube diverged across shard counts")
    if not identity["pool_invariant"]:
        failures.append("2-worker pool run diverged from the serial fold")

    scaling = results["shard_scaling"]
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        ref = baseline["shard_scaling"]
        if ref["speedup_8"] < MIN_SHARD_SCALING:
            failures.append(
                f"recorded 1->8 worker scaling {ref['speedup_8']:.2f}x "
                f"below the {MIN_SHARD_SCALING:.0f}x bar "
                f"(mode {ref['mode']}); re-record on the reference "
                f"machine"
            )
        # Regression gate on the serial fold: same-config baselines
        # only (quick halves the campaign, so the scales differ).
        if results.get("quick") == baseline.get("quick"):
            now, then = scaling["serial_ms"], ref["serial_ms"]
            if now > REGRESSION_FACTOR * then:
                failures.append(
                    f"serial sharded fold: {now:.0f} ms vs baseline "
                    f"{then:.0f} ms (>{REGRESSION_FACTOR:.0f}x "
                    f"regression)"
                )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")

    if scaling["mode"] == "measured":
        if scaling["speedup_8"] < MIN_SHARD_SCALING:
            failures.append(
                f"measured 1->8 worker scaling {scaling['speedup_8']:.2f}x "
                f"below the {MIN_SHARD_SCALING:.0f}x bar"
            )
    else:
        print(
            f"note: {scaling['cores']} core(s) — scaling is the "
            f"projected pool makespan ({scaling['speedup_8']:.2f}x at 8 "
            f"workers); the hard scaling gate applies to the recorded "
            f"reference run"
        )

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured results as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="gate identity, scaling, and regressions")
    parser.add_argument("--quick", action="store_true",
                        help="half-size campaign, fewer rounds (CI mode)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    rounds = 2 if args.quick else 4
    results = measure(rounds, args.quick)
    print(json.dumps(results, indent=2))

    if args.history:
        import bench_history

        flags = bench_history.drift_flags(
            bench_history.timings_from_results(results),
            bench_history.load_history(),
        )
        bench_history.append_run(results, quick=args.quick)
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
