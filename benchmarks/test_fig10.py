"""Bench: Fig 10 — energy and savings heatmaps by domain x size class."""

from conftest import run_once

from repro.experiments import run


def test_fig10(benchmark, bench_config):
    result = run_once(benchmark, run, "fig10", bench_config)
    print(result.text)

    # Shape: most energy (and hence savings) sits in classes A-C; the
    # savings heatmap never exceeds the energy heatmap.
    assert result.data["large_class_energy_share"] > 0.8
    assert (result.data["savings_mwh"] <= result.data["energy_mwh"] + 1e-9).all()
    # The strongest domain is one of the memory/compute-heavy families.
    assert result.data["top_domain"] in {
        "CLI", "CFD", "FUS", "PHY", "AST", "MAT", "CHM", "NUC",
    }
