"""Bench: bounding the boost region (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_boost(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_boost", bench_config)
    print(result.text)

    # Region 4 is a small slice of campaign energy (paper: 1.1 % of
    # GPU-hours), and the reclaimable excess above 560 W is negligible —
    # the paper's omission cannot change any conclusion.
    assert result.data["region4_share"] < 0.05
    assert result.data["excess_mwh"] < 0.01 * 16820.0
    # Thermals make boost transient from a hot start.
    assert result.data["boost_window_hot_s"] < 120.0
