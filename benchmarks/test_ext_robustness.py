"""Bench: headline robustness across seeds and fleet scale (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_robustness(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_robustness", bench_config)
    print(result.text)

    # The headline is stable: spread across resamples stays a couple of
    # points even at this bench's small scale (it tightens as the fleet
    # grows), and the best cap never leaves the mid-frequency band.
    assert result.data["no_slowdown_std"] < 2.5
    assert result.data["best_std"] < 2.5
    assert 5.0 < result.data["best_mean"] < 15.0
    assert all(
        900 <= row["best_cap"] <= 1300 for row in result.data["rows"]
    )
