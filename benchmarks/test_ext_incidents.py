"""Bench: injected faults reproduce an exact forensic incident timeline."""

from conftest import run_once

from repro.experiments import run


def test_ext_incidents(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_incidents", bench_config)
    print(result.text)

    # Every determinism and attribution contract held.
    assert all(result.data["checks"].values()), result.data["checks"]

    # The exact reproducible timeline: three incidents, one per fault,
    # in event-time order, all resolved by drain.
    incidents = result.data["incidents"]
    assert [i["id"] for i in incidents] == [
        "inc-001", "inc-002", "inc-003",
    ]
    assert [i["detector"] for i in incidents] == [
        "straggler", "cap_violation", "publication_stall",
    ]
    assert all(i["status"] == "resolved" for i in incidents)

    # Attribution points at the faulty hardware, not the fleet.
    assert incidents[0]["top_nodes"][0]["id"] == 3
    assert incidents[1]["top_nodes"][0]["id"] == 7
    assert incidents[1]["severity"] == "critical"

    # The recorder saw the whole campaign without evicting.
    summary = result.data["summary"]
    assert summary["windows_recorded"] == 72
    assert summary["records_evicted"] == 0
    assert summary["incidents_open"] == 0

    # Every exported bundle embeds its deterministic event-log slice:
    # non-empty, rerun-verbatim, and with chunking-invariant ids.
    checks = result.data["checks"]
    assert checks["bundle_logs_embedded"]
    assert checks["log_slice_reproducible"]
    assert checks["log_ids_chunking_invariant"]
