#!/usr/bin/env python
"""Out-of-core history benchmark: 90-day ingest, range queries, RSS proof.

Streams a synthetic 90-day campaign (518 400 level-0 windows at 15 s,
28 columns — ~120 MB of column data) into an on-disk
:class:`repro.obs.history.store.HistoryStore` in bounded day-sized
batches, then times range queries against the memmapped store.  The
synthetic rows are a pure function of the row index, so every run
ingests the identical byte stream.

The hard gate (``--check``) is the out-of-core acceptance bar:

* **larger than the ceiling**: the store must hold more column bytes
  than :data:`RSS_CEILING_MB`, and the peak-RSS delta across ingest
  plus queries must stay *under* that ceiling — the proof that columns
  page in lazily instead of materializing;
* **fast over the full span**: the *recorded baseline*
  (``BENCH_query.json``) must show full-span p99 below
  :data:`QUERY_P99_LIMIT_MS` (re-record on the reference machine), and
  the live p99 must stay under the loose :data:`LIVE_P99_LIMIT_MS`
  disaster bound (shared CI runners are noisy; slow drift is
  ``bench_history``'s job);
* **still exact**: a seeded sample of rollup buckets at every level
  must refold bitwise from their level-0 rows, and attaching a history
  to a live streaming engine must leave the fleet cube bitwise
  identical to a history-free engine's.

Modes::

    python benchmarks/bench_query.py            # measure and report
    python benchmarks/bench_query.py --record   # measure and (re)write baseline
    python benchmarks/bench_query.py --check    # gate (CI)
    python benchmarks/bench_query.py --check --quick --history
"""

from __future__ import annotations

import argparse
import json
import random
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_query.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.history import History, history_columns  # noqa: E402
from repro.obs.history.query import select  # noqa: E402
from repro.obs.history.store import HistoryStore, fold_values  # noqa: E402
from repro.stream import simulated_fleet  # noqa: E402
from repro.stream.engine import StreamEngine  # noqa: E402

#: The campaign the paper retains: 90 days of 15 s windows.
DAYS = 90.0
WINDOW_S = 15.0
#: Rows appended per batch — one day; bounds ingest working memory.
BATCH_ROWS = 8_640

#: The out-of-core bar: the store must exceed this many MB on disk
#: while the benchmark's peak-RSS delta stays under it.
RSS_CEILING_MB = 80.0
#: The recorded baseline must answer full-span queries under this p99.
QUERY_P99_LIMIT_MS = 50.0
#: Live disaster bound for --check (loose: CI runners are shared).
LIVE_P99_LIMIT_MS = 250.0

#: Rollup buckets refolded per level by the sampled bitwise check.
SAMPLE_BUCKETS = 64

#: The query mix: (label, span seconds, step seconds).  ``None`` span
#: means the full retained range.
ZOOMS = (
    ("hour", 3_600.0, WINDOW_S),
    ("day", 86_400.0, 300.0),
    ("week", 7 * 86_400.0, 3_600.0),
    ("full", None, None),
)


def synth_batch(r0: int, rows: int, n_cols: int) -> np.ndarray:
    """Rows ``[r0, r0+rows)`` of the synthetic campaign (pure function)."""
    j = np.arange(n_cols, dtype=np.float64)
    t = (r0 + np.arange(rows, dtype=np.float64)) * WINDOW_S
    block = np.empty((rows, n_cols))
    block[:] = np.sin(t[:, None] * 1e-3 * (j + 1.0)) * 100.0 + j
    block[:, 0] = t              # t_start_s
    block[:, 1] = t + WINDOW_S   # t_end_s
    return block


def ingest(store: HistoryStore, rows: int) -> float:
    """Append the synthetic campaign in day-sized batches; seconds."""
    n_cols = len(store.columns)
    t0 = time.perf_counter()
    for r0 in range(0, rows, BATCH_ROWS):
        store.append_batch(synth_batch(r0, min(BATCH_ROWS, rows - r0), n_cols))
    store.sync()
    return time.perf_counter() - t0


def _percentile(sorted_ms: list, pct: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, int(pct / 100.0 * len(sorted_ms)))
    return sorted_ms[idx]


def _stats(ms: list) -> dict:
    ms = sorted(ms)
    return {
        "queries": len(ms),
        "p50_ms": round(_percentile(ms, 50.0), 4),
        "p99_ms": round(_percentile(ms, 99.0), 4),
        "max_ms": round(ms[-1], 4) if ms else 0.0,
    }


def time_queries(store: HistoryStore, *, n_full: int, n_mixed: int,
                 seed: int = 0) -> dict:
    """Latency distributions for full-span and mixed zoom queries."""
    rng = random.Random(seed)
    t_first, t_last = store.time_span()
    t_end = t_last + WINDOW_S
    series = [name for name, _ in store.columns
              if name not in ("t_start_s", "t_end_s")]

    full_ms = []
    for _ in range(n_full):
        name = rng.choice(series)
        t0 = time.perf_counter()
        select(store, name, t_first, t_end, (t_end - t_first) / 60.0)
        full_ms.append((time.perf_counter() - t0) * 1e3)

    mixed_ms = []
    for _ in range(n_mixed):
        name = rng.choice(series)
        _label, span, step = rng.choice(ZOOMS)
        if span is None or span >= t_end - t_first:
            q0, q1 = t_first, t_end
            step = (q1 - q0) / 60.0
        else:
            q0 = t_first + rng.uniform(0.0, (t_end - t_first) - span)
            q1 = q0 + span
        t0 = time.perf_counter()
        select(store, name, q0, q1, step)
        mixed_ms.append((time.perf_counter() - t0) * 1e3)

    return {"full_span": _stats(full_ms), "mixed": _stats(mixed_ms)}


def sample_rollups(store: HistoryStore, *, buckets: int = SAMPLE_BUCKETS,
                   seed: int = 0) -> dict:
    """Refold a seeded sample of rollup buckets bitwise from level 0.

    ``verify_rollups`` walks *every* bucket — which pages the whole
    level-0 range into RSS and would defeat the bounded-memory gate
    here, so the benchmark refolds a bounded sample instead (the
    exhaustive check runs in ``tests/obs/test_history.py`` and
    ``repro obs query --check``).
    """
    rng = random.Random(seed)
    checked, mismatches = 0, 0
    for level in range(1, store.n_levels):
        span = store.level_span_rows(level)
        n = store.rows(level)
        if n == 0:
            continue
        picks = rng.sample(range(n), min(buckets, n))
        for b in sorted(picks):
            base = store._rows_block(0, b * span, (b + 1) * span)
            stored = store._rows_block(level, b, b + 1)[0]
            for j, (_name, agg) in enumerate(store.columns):
                refolded = fold_values(base[:, j], agg)
                checked += 1
                if np.float64(refolded).tobytes() != (
                    np.float64(stored[j]).tobytes()
                ):
                    mismatches += 1
    return {"values_checked": checked, "mismatches": mismatches}


def invisibility_smoke(*, seed: int = 0) -> bool:
    """Attaching a history must not change the fleet cube by one bit."""
    cubes = []
    for attach in (False, True):
        log, source = simulated_fleet(
            fleet_nodes=4, days=0.05, seed=seed, chunk_ticks=8,
        )
        engine = StreamEngine(log, interval_s=WINDOW_S, window_s=WINDOW_S)
        if attach:
            engine.attach_history(History())
        for chunk in source:
            engine.ingest(chunk)
        engine.drain()
        cubes.append(engine.cube())
    a, b = cubes
    return (
        np.array_equal(a.energy_j, b.energy_j)
        and np.array_equal(a.gpu_hours, b.gpu_hours)
        and a.cpu_energy_j == b.cpu_energy_j
    )


def measure(*, quick: bool = False, dir=None, seed: int = 0) -> dict:
    rows = int(round(DAYS * 86_400.0 / WINDOW_S))
    n_full = 30 if quick else 100
    n_mixed = 60 if quick else 300

    rss0_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    ctx = tempfile.TemporaryDirectory() if dir is None else None
    store_dir = Path(ctx.name if ctx is not None else dir)
    try:
        store = HistoryStore(
            history_columns(), dir=store_dir, window_s=WINDOW_S,
        )
        ingest_s = ingest(store, rows)
        latencies = time_queries(
            store, n_full=n_full, n_mixed=n_mixed, seed=seed,
        )
        rss1_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rollups = sample_rollups(
            store, buckets=SAMPLE_BUCKETS // 2 if quick else SAMPLE_BUCKETS,
            seed=seed,
        )
        written_mb = store.total_bytes() / 2**20
        segments = store.segment_count()
        levels = [store.rows(k) for k in range(store.n_levels)]
        store.close()
    finally:
        if ctx is not None:
            ctx.cleanup()

    return {
        "history_query": {
            "description": (
                f"{DAYS:g}-day synthetic campaign ({rows:,} windows x "
                f"{len(history_columns())} columns) ingested in "
                f"{BATCH_ROWS}-row batches into an on-disk history "
                f"store, then queried via memmap"
            ),
            "rows": rows,
            "level_rows": levels,
            "written_mb": round(written_mb, 2),
            "segments": segments,
            "ingest_s": round(ingest_s, 3),
            "ingest_rows_per_s": round(rows / ingest_s) if ingest_s else 0,
            "rss_ceiling_mb": RSS_CEILING_MB,
            "rss_delta_mb": round((rss1_kb - rss0_kb) / 1024.0, 2),
            **latencies,
            "rollup_sample": rollups,
            "history_invisible": invisibility_smoke(seed=seed),
        },
    }


def check(results: dict) -> int:
    failures = []
    q = results["history_query"]
    if q["written_mb"] <= RSS_CEILING_MB:
        failures.append(
            f"store holds only {q['written_mb']:.1f} MB — not above the "
            f"{RSS_CEILING_MB:.0f} MB ceiling, so nothing is proven "
            f"out-of-core"
        )
    if q["rss_delta_mb"] >= RSS_CEILING_MB:
        failures.append(
            f"peak-RSS delta {q['rss_delta_mb']:.1f} MB reached the "
            f"{RSS_CEILING_MB:.0f} MB ceiling; columns are being "
            f"materialized, not paged"
        )
    if q["rollup_sample"]["mismatches"]:
        failures.append(
            f"{q['rollup_sample']['mismatches']} sampled rollup value(s) "
            f"do not refold bitwise from level 0"
        )
    if not q["history_invisible"]:
        failures.append(
            "attaching a history changed the fleet cube (must be "
            "bitwise invisible)"
        )
    if q["full_span"]["p99_ms"] >= LIVE_P99_LIMIT_MS:
        failures.append(
            f"live full-span p99 {q['full_span']['p99_ms']:.2f} ms over "
            f"the {LIVE_P99_LIMIT_MS:.0f} ms disaster bound"
        )

    if BASELINE_PATH.exists():
        ref = json.loads(BASELINE_PATH.read_text())["history_query"]
        if ref["full_span"]["p99_ms"] >= QUERY_P99_LIMIT_MS:
            failures.append(
                f"recorded full-span p99 {ref['full_span']['p99_ms']:.2f} "
                f"ms breaks the < {QUERY_P99_LIMIT_MS:g} ms bar; "
                f"re-record on the reference machine"
            )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured results as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="gate RSS, latency, and bitwise exactness")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timed queries (CI mode; same 90-day "
                             "store — the RSS proof needs the full size)")
    parser.add_argument("--dir", default=None, metavar="DIR",
                        help="build the store here instead of a temp dir "
                             "(kept afterwards, e.g. for CI artifacts)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    results = measure(quick=args.quick, dir=args.dir)
    results["quick"] = args.quick
    print(json.dumps(results, indent=2))

    if args.history:
        import bench_history

        flags = bench_history.drift_flags(
            bench_history.timings_from_results(results),
            bench_history.load_history(),
        )
        bench_history.append_run(results, quick=args.quick)
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
