"""Bench: fleet budget enforcement and the per-kernel governor."""

from conftest import run_once

from repro.experiments import run


def test_ext_budget(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_budget", bench_config)
    print(result.text)

    rows = result.data["rows"]
    assert rows
    # Mild trims are cheap; cost grows monotonically-ish with depth.
    mild = [r for r in rows if r["fraction"] == 0.95]
    deep = [r for r in rows if r["fraction"] == 0.75]
    assert all(r["feasible"] for r in mild)
    assert max(r["mean_slowdown_pct"] for r in mild) < 10.0
    if deep:
        avg_mild = sum(r["mean_slowdown_pct"] for r in mild) / len(mild)
        avg_deep = sum(r["mean_slowdown_pct"] for r in deep) / len(deep)
        assert avg_deep > avg_mild


def test_ext_governor(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_governor", bench_config)
    print(result.text)

    gov = result.data["governor"]
    static = result.data["static_900"]
    # The governor saves real energy at (near) zero runtime cost, while
    # the static cap pays tens of percent for its larger savings.
    assert gov["saving_pct"] > 2.0
    assert gov["slowdown_pct"] <= 2.0 + 1e-6
    assert static["slowdown_pct"] > 20.0
    assert static["saving_pct"] > gov["saving_pct"]
