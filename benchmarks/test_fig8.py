"""Bench: Fig 8 — the system-wide GPU power distribution."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig8(benchmark, bench_config):
    result = run_once(benchmark, run, "fig8", bench_config)
    print(result.text)

    modes = np.asarray(result.data["mode_powers_w"])
    # Shape: multi-modal, with more peaks at low power than high power
    # and an idle mode near 89 W.
    assert len(modes) >= 3
    assert (modes < 300).sum() >= (modes > 420).sum()
    assert np.min(np.abs(modes - 89.0)) < 20.0
