"""Ablation: projection weighting policy and characterization source.

Two knobs DESIGN.md calls out:

* runtime-increase weighting — energy-weighted (default) vs
  GPU-hour-weighted;
* characterization source — Table III measured on the simulated device
  vs the paper's published Table III.
"""

from conftest import run_once

from repro.core import (
    measured_factors,
    paper_factors,
    project_savings,
)


def test_dt_weighting(benchmark, campaign_cube):
    factors = measured_factors("frequency")
    by_energy = run_once(
        benchmark,
        project_savings,
        campaign_cube,
        factors,
        dt_weighting="energy",
    )
    by_hours = project_savings(
        campaign_cube, factors, dt_weighting="gpu_hours"
    )
    r_e = by_energy.row_at(900)
    r_h = by_hours.row_at(900)
    print(
        f"dT at 900 MHz: energy-weighted {r_e.runtime_increase_pct:.1f} %, "
        f"GPU-hour-weighted {r_h.runtime_increase_pct:.1f} %"
    )
    # Savings are identical; only the reported slowdown changes, and
    # hour-weighting dilutes it (CI hours < CI energy share).
    assert r_e.total_mwh == r_h.total_mwh
    assert r_h.runtime_increase_pct < r_e.runtime_increase_pct


def test_factor_source(benchmark, campaign_cube):
    ours = run_once(
        benchmark,
        project_savings,
        campaign_cube,
        measured_factors("frequency"),
        campaign_energy_mwh=16820.0,
    )
    theirs = project_savings(
        campaign_cube,
        paper_factors("frequency"),
        campaign_energy_mwh=16820.0,
    )
    print(
        f"best no-slowdown savings: measured factors "
        f"{ours.best_no_slowdown_row.savings_no_slowdown_pct:.1f} % at "
        f"{ours.best_no_slowdown_row.cap:.0f} MHz; paper factors "
        f"{theirs.best_no_slowdown_row.savings_no_slowdown_pct:.1f} % at "
        f"{theirs.best_no_slowdown_row.cap:.0f} MHz (paper: 8.5 % at 900)"
    )
    # Both characterizations agree on the qualitative ceiling: mid-single
    # digit to low-double digit percent, at a mid-frequency cap.
    for table in (ours, theirs):
        best = table.best_no_slowdown_row
        assert 4.0 <= best.savings_no_slowdown_pct <= 13.0
        assert 700 <= best.cap <= 1500
