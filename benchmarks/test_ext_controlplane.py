"""Bench: the closed-loop control plane banks energy within budget."""

from conftest import run_once

from repro.experiments import run


def test_ext_controlplane(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_controlplane", bench_config)
    print(result.text)

    # Every live-vs-offline parity contract held.
    assert all(result.data["checks"].values()), result.data["checks"]

    # The closed loop banked real energy and stayed inside the budget.
    assert result.data["capped_mwh"] <= result.data["uncapped_mwh"]
    assert result.data["banked_mwh"] > 0
    assert result.data["slowdown_pct"] <= result.data["budget_pct"]

    # The published cap converged onto a real recommendation (the trail
    # starts uncapped before the first windows seal, then settles).
    assert result.data["final_cap"] is not None
    assert result.data["trail"][0]["cap"] is None
    assert result.data["trail"][-1]["cap"] == result.data["final_cap"]

    # The objective menu orders as the models dictate: pure energy caps
    # at least as low (aggressively) as EDP, which caps at least as low
    # as the performance-leaning ED2P.
    menu = result.data["objectives"]
    caps = {
        name: (menu[name]["cap"] if menu[name]["cap"] is not None
               else float("inf"))
        for name in menu
    }
    assert caps["energy"] <= caps["edp"] <= caps["ed2p"]
    assert menu["slowdown"]["runtime_increase_pct"] <= (
        result.data["budget_pct"]
    )
