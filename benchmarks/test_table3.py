"""Bench: Table III — benchmark cap-response percentages."""

from conftest import run_once

from repro.experiments import run

# Paper Table III, (VAI power %, VAI runtime %) per frequency cap.
PAPER_VAI_FREQ = {
    1500: (83.7, 112.8),
    1300: (68.2, 129.8),
    1100: (61.8, 152.2),
    900: (53.3, 182.4),
    700: (46.0, 231.0),
}


def test_table3(benchmark, bench_config):
    result = run_once(benchmark, run, "table3", bench_config)
    print(result.text)

    freq = result.data["frequency"]
    for cap, (paper_pow, paper_rt) in PAPER_VAI_FREQ.items():
        vai_pow, vai_rt = freq[cap][0], freq[cap][1]
        assert abs(vai_pow - paper_pow) < 7.0
        assert abs(vai_rt - paper_rt) < 12.0
        # MB runtime flat under frequency caps (paper: ~99 %).
        assert abs(freq[cap][4] - 100.0) < 4.0

    power = result.data["power"]
    # Paper: moderate power caps do nothing to the memory benchmark...
    for cap in (500, 400, 300):
        assert abs(power[cap][5] - 100.0) < 2.0
    # ... while 200 W slows it ~26 % and frequency capping saves energy
    # on it at every setting.
    assert abs(power[200][4] - 125.7) < 8.0
    assert all(freq[cap][5] < 90.0 for cap in PAPER_VAI_FREQ)
