#!/usr/bin/env python
"""Longitudinal benchmark history: append runs, flag slow drift.

``bench_batch.py --check`` catches disasters — a timed target more than
2x slower than the pinned baseline — but is blind to slow drift: five
successive 15 % regressions pass every gate while doubling the runtime.
This module keeps an append-only JSONL evidence trail
(``benchmarks/BENCH_history.jsonl``) of every measured run — git SHA,
UTC timestamp, and the scalar timings — and flags any timing more than
:data:`REGRESSION_PCT` above the trailing median of recorded runs.

Flags are advisory: shared CI runners are noisy enough that a hard gate
at 20 % would flake, so drift lines are printed (``DRIFT: ...``) while
the exit code stays with ``bench_batch --check``'s 2x gate.  The history
file is the evidence trail for a human decision to re-record the
baseline or hunt the regression.

Usage::

    python benchmarks/bench_batch.py --check --quick --history
                                    # measure, gate, append, flag drift
    python benchmarks/bench_history.py
                                    # show the recorded tail + drift flags
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional

HISTORY_PATH = Path(__file__).resolve().parent / "BENCH_history.jsonl"

#: A timing this far above the trailing median is flagged as drift.
REGRESSION_PCT = 20.0
#: Trailing entries the median is taken over.
WINDOW = 10
#: Fewer prior points than this and the median is noise, not a trend.
MIN_PRIOR = 3


def git_sha() -> str:
    """Short SHA of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def timings_from_results(results: dict) -> Dict[str, float]:
    """Flatten a ``bench_batch.measure`` dict to the tracked scalars."""
    out: Dict[str, float] = {}
    fig4 = results.get("fig4_grid")
    if fig4 is not None:
        out["fig4_scalar_ms"] = fig4["scalar_capsweep_ms"]
        out["fig4_batched_ms"] = fig4["batched_capsweep_ms"]
    join = results.get("join")
    if join is not None:
        out["join_ms"] = join["best_ms"]
    ingest = results.get("stream_ingest")
    if ingest is not None:
        out["stream_ingest_ms"] = ingest["best_ms"]
    # Drift tracking is one-sided (above-median = slower), so only the
    # wall-clock scalar is tracked for the shard bench; the scaling
    # factor has its own hard gate in bench_shard --check.
    shard = results.get("shard_scaling")
    if shard is not None:
        out["shard_serial_ms"] = shard["serial_ms"]
    serve = results.get("serve_load")
    if serve is not None:
        out["serve_p50_ms"] = serve["p50_ms"]
        out["serve_p99_ms"] = serve["p99_ms"]
    query = results.get("history_query")
    if query is not None:
        out["query_ingest_ms"] = 1e3 * query["ingest_s"]
        out["query_full_span_p99_ms"] = query["full_span"]["p99_ms"]
        out["query_mixed_p99_ms"] = query["mixed"]["p99_ms"]
    return out


def load_history(path: Path = HISTORY_PATH) -> List[dict]:
    """All recorded entries, oldest first; malformed lines are skipped."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and isinstance(
            entry.get("timings"), dict
        ):
            entries.append(entry)
    return entries


def append_timings(
    timings: Dict[str, float],
    *,
    path: Path = HISTORY_PATH,
    sha: Optional[str] = None,
    timestamp: Optional[str] = None,
    quick: bool = False,
    source: Optional[str] = None,
) -> dict:
    """Append one timings mapping to the history file; returns the entry.

    The shared writer behind :func:`append_run` (micro-benchmark runs)
    and ``--append`` (per-span timings from ``repro obs profile``); both
    kinds of entry share the JSONL schema, so :func:`drift_flags` tracks
    them uniformly — keys never collide because profile timings are
    namespaced ``span.*``.
    """
    entry = {
        "sha": sha if sha is not None else git_sha(),
        "time": (
            timestamp
            if timestamp is not None
            else datetime.now(timezone.utc).isoformat(timespec="seconds")
        ),
        "quick": bool(quick),
        "timings": {k: float(v) for k, v in timings.items()},
    }
    if source is not None:
        entry["source"] = source
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def append_run(
    results: dict,
    *,
    path: Path = HISTORY_PATH,
    sha: Optional[str] = None,
    timestamp: Optional[str] = None,
    quick: bool = False,
) -> dict:
    """Append one measured run to the history file; returns the entry."""
    return append_timings(
        timings_from_results(results),
        path=path,
        sha=sha,
        timestamp=timestamp,
        quick=quick,
    )


def drift_flags(
    timings: Dict[str, float],
    history: List[dict],
    *,
    window: int = WINDOW,
    threshold_pct: float = REGRESSION_PCT,
) -> List[str]:
    """Timings more than ``threshold_pct`` above their trailing median.

    The median is over up to ``window`` most recent recorded runs that
    carry the same key; with fewer than :data:`MIN_PRIOR` points there is
    no trend to drift from and the key is skipped.
    """
    flags = []
    for key, now in sorted(timings.items()):
        prior = [
            float(e["timings"][key])
            for e in history
            if key in e["timings"]
        ][-window:]
        if len(prior) < MIN_PRIOR:
            continue
        median = statistics.median(prior)
        if median > 0 and now > median * (1.0 + threshold_pct / 100.0):
            flags.append(
                f"{key}: {now:.2f} ms is "
                f"{100.0 * (now / median - 1.0):.0f} % above the "
                f"trailing median {median:.2f} ms "
                f"(last {len(prior)} runs)"
            )
    return flags


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--path", type=Path, default=HISTORY_PATH,
        help="history file (default: benchmarks/BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--tail", type=int, default=10,
        help="entries to display (default: 10)",
    )
    parser.add_argument(
        "--window", type=int, default=WINDOW,
        help=f"trailing-median window (default: {WINDOW})",
    )
    parser.add_argument(
        "--append", type=Path, default=None, metavar="FILE",
        help=(
            "append the timings from a profile_timings.json written by "
            "'repro obs profile' before reporting"
        ),
    )
    args = parser.parse_args(argv)

    if args.append is not None:
        doc = json.loads(args.append.read_text())
        timings = doc.get("timings")
        if not isinstance(timings, dict) or not timings:
            print(f"no timings in {args.append}", file=sys.stderr)
            return 2
        entry = append_timings(
            timings,
            path=args.path,
            source=doc.get("command") or str(args.append),
        )
        print(
            f"appended {len(entry['timings'])} timing(s) from "
            f"{args.append} at {entry['sha']}"
        )

    history = load_history(args.path)
    if not history:
        print(f"no history at {args.path}; run bench_batch.py --history")
        return 0

    keys = sorted({k for e in history for k in e["timings"]})
    header = f"{'sha':<12} {'time (UTC)':<20} {'mode':<6}"
    for key in keys:
        header += f" {key:>18}"
    print(header)
    for entry in history[-args.tail:]:
        row = (
            f"{entry.get('sha', '?'):<12} "
            f"{entry.get('time', '?'):<20} "
            f"{'quick' if entry.get('quick') else 'full':<6}"
        )
        for key in keys:
            value = entry["timings"].get(key)
            row += f" {value:>18.2f}" if value is not None else f" {'-':>18}"
        print(row)

    flags = drift_flags(
        history[-1]["timings"], history[:-1], window=args.window
    )
    print()
    if flags:
        for flag in flags:
            print(f"DRIFT: {flag}")
    else:
        print(
            f"latest run within {REGRESSION_PCT:.0f} % of the trailing "
            "median (or too few runs to judge)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
