"""Bench: the SLO burn-rate timeline is exact, ordered, and replayable."""

from conftest import run_once

from repro.experiments import run


def test_ext_slo(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_slo", bench_config)
    print(result.text)

    # Every determinism and parity contract held.
    assert all(result.data["checks"].values()), result.data["checks"]

    # The exact timeline from the burn algebra: page leads ticket in,
    # page clears first out, nothing else fires.
    timeline = result.data["timeline"]
    assert timeline == result.data["expected"]
    assert [(e["rule"], e["transition"]) for e in timeline] == [
        ("slo_cap_violation_fast_burn", "firing"),
        ("slo_cap_violation_slow_burn", "firing"),
        ("slo_cap_violation_fast_burn", "resolved"),
        ("slo_cap_violation_slow_burn", "resolved"),
    ]

    # Only the injected SLO was touched; the others kept full budget.
    slos = {row["name"]: row for row in result.data["slos"]}
    assert slos["cap_violation"]["budget_remaining"] < 1.0
    assert slos["energy_budget"]["burn_slow"] == 0.0
    assert slos["serve_latency"]["burn_slow"] == 0.0
    assert all(
        row["fast_state"] == "inactive" and row["slow_state"] == "inactive"
        for row in slos.values()
    )
