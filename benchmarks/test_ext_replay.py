"""Bench: phase-level replay vs the region-level projection (extension)."""

from conftest import run_once

from repro.experiments import run


def test_ext_replay(benchmark, bench_config):
    result = run_once(benchmark, run, "ext_replay", bench_config)
    print(result.text)

    # The two independent savings estimates agree within a few points at
    # every cap — the region-binning leap holds on this substrate.
    assert result.data["max_gap_pts"] < 5.0
    for row in result.data["rows"]:
        assert row["projection_pct"] > 0
        assert row["replay_pct"] > 0
    # Both estimates agree the deepest cap is the worst of the sweep.
    by_cap = {r["cap"]: r for r in result.data["rows"]}
    assert by_cap[700]["replay_pct"] == min(
        r["replay_pct"] for r in result.data["rows"]
    )
