"""Ablation: sensitivity of the projection to the mode boundaries.

The 200/420/560 W region boundaries are read off benchmark behaviour and
the paper admits they "may be diffused into one another".  This bench
shifts the memory/compute boundary by +-40 W and reports how the region
masses move — the projection's input sensitivity.
"""

import numpy as np
from conftest import run_once

from repro.core import decompose_modes


def test_boundary_sensitivity(benchmark, campaign_cube):
    nominal = run_once(benchmark, decompose_modes, campaign_cube)

    shifted_low = decompose_modes(
        campaign_cube, boundaries=(200.0, 380.0, 560.0)
    )
    shifted_high = decompose_modes(
        campaign_cube, boundaries=(200.0, 460.0, 560.0)
    )

    nom = nominal.gpu_hours_pct
    lo = shifted_low.gpu_hours_pct
    hi = shifted_high.gpu_hours_pct
    print("region GPU-hour % (r1..r4):")
    print(f"  boundary 380 W: {np.round(lo, 1)}")
    print(f"  boundary 420 W: {np.round(nom, 1)} (nominal)")
    print(f"  boundary 460 W: {np.round(hi, 1)}")

    # Moving the MI/CI boundary trades mass between regions 2 and 3 only.
    assert lo[1] < nom[1] < hi[1]
    assert lo[2] > nom[2] > hi[2]
    assert abs(lo[0] - nom[0]) < 0.5 and abs(hi[0] - nom[0]) < 0.5
    # The decomposition stays a partition.
    for shares in (nom, lo, hi):
        assert shares.sum() == 100.0 or abs(shares.sum() - 100.0) < 1e-6
    # Sensitivity is bounded: +-40 W moves at most ~15 points of mass,
    # so the projection's conclusions survive diffuse boundaries.
    assert abs(lo[1] - nom[1]) < 15.0
    assert abs(hi[1] - nom[1]) < 15.0
