"""Performance microbenchmarks for the library's hot paths.

Unlike the artifact benches (one timed round of a whole experiment),
these measure steady-state throughput of the kernels everything else is
built on, so regressions in the vectorized paths show up directly.
"""

import numpy as np
import pytest

from repro import units
from repro.core import StreamingHistogram, join_campaign
from repro.graph import louvain, social_network
from repro.gpu import GPUDevice
from repro.bench.vai import vai_kernel
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator
from repro.telemetry.profiles import PROFILES


@pytest.fixture(scope="module")
def small_fleet():
    mix = default_mix(fleet_nodes=16)
    log = SlurmSimulator(mix).run(units.days(1), rng=0)
    gen = FleetTelemetryGenerator(log, mix, seed=1)
    return log, gen.generate()


def test_histogram_add_throughput(benchmark):
    rng = np.random.default_rng(0)
    samples = rng.uniform(80, 600, size=1_000_000)
    hist = StreamingHistogram()

    benchmark(hist.add, samples)
    assert hist.total_count >= len(samples)


def test_device_run_latency(benchmark):
    device = GPUDevice()
    kernel = vai_kernel(4.0)

    result = benchmark(device.run, kernel)
    assert result.power_w > 500


def test_powercap_solve_latency(benchmark):
    device = GPUDevice(power_cap_w=300.0)
    kernel = vai_kernel(4.0)

    result = benchmark(device.run, kernel)
    assert result.f_core_hz < device.spec.f_max_hz


def test_profile_trace_throughput(benchmark):
    profile = PROFILES["multi_zone"]

    trace = benchmark(
        profile.sample_trace, 50_000, 15.0, 3, 4
    )
    assert trace.shape == (4, 50_000)


def test_join_throughput(benchmark, small_fleet):
    log, store = small_fleet

    cube = benchmark(join_campaign, store, log)
    assert cube.total_energy_j > 0


def test_louvain_edges_per_second(benchmark):
    graph = social_network(100_000, rng=0)

    result = benchmark.pedantic(
        louvain, args=(graph,), rounds=1, iterations=1
    )
    assert result.modularity > 0.1


def test_scheduler_throughput(benchmark):
    def schedule():
        mix = default_mix(fleet_nodes=64)
        return SlurmSimulator(mix).run(units.days(2), rng=7)

    log = benchmark.pedantic(schedule, rounds=1, iterations=1)
    assert len(log.jobs) > 50
