"""Performance microbenchmarks for the library's hot paths.

Unlike the artifact benches (one timed round of a whole experiment),
these measure steady-state throughput of the kernels everything else is
built on, so regressions in the vectorized paths show up directly.
"""

import numpy as np
import pytest

from repro import constants, units
from repro.core import StreamingHistogram, join_campaign
from repro.graph import louvain, social_network
from repro.gpu import GPUDevice, KernelBatch
from repro.gpu.powercap import clear_powercap_cache
from repro.bench.sweep import CapSweep
from repro.bench.vai import VAIBenchmark, vai_kernel
from repro.scheduler import SlurmSimulator, default_mix
from repro.telemetry import FleetTelemetryGenerator
from repro.telemetry.profiles import PROFILES


@pytest.fixture(scope="module")
def small_fleet():
    mix = default_mix(fleet_nodes=16)
    log = SlurmSimulator(mix).run(units.days(1), rng=0)
    gen = FleetTelemetryGenerator(log, mix, seed=1)
    return log, gen.generate()


def test_histogram_add_throughput(benchmark):
    rng = np.random.default_rng(0)
    samples = rng.uniform(80, 600, size=1_000_000)
    hist = StreamingHistogram()

    benchmark(hist.add, samples)
    assert hist.total_count >= len(samples)


def test_device_run_latency(benchmark):
    device = GPUDevice()
    kernel = vai_kernel(4.0)

    result = benchmark(device.run, kernel)
    assert result.power_w > 500


def test_powercap_solve_latency(benchmark):
    device = GPUDevice(power_cap_w=300.0)
    kernel = vai_kernel(4.0)

    result = benchmark(device.run, kernel)
    assert result.f_core_hz < device.spec.f_max_hz


def test_profile_trace_throughput(benchmark):
    profile = PROFILES["multi_zone"]

    trace = benchmark(
        profile.sample_trace, 50_000, 15.0, 3, 4
    )
    assert trace.shape == (4, 50_000)


def test_run_batch_grid_throughput(benchmark):
    """One Fig 4-sized cap x intensity grid per round, both knobs mixed."""
    device = GPUDevice()
    kernels = [
        vai_kernel(ai, global_wis=2**24)
        for ai in constants.VAI_INTENSITIES
    ]
    n = len(kernels)
    batch = KernelBatch.from_kernels(kernels).tile(11)
    fcaps = np.concatenate(
        [np.full(n, np.nan)]
        + [np.full(n, units.mhz(c)) for c in constants.FREQUENCY_CAPS_MHZ[1:]]
        + [np.full(5 * n, np.nan)]
    )
    pcaps = np.concatenate(
        [np.full(6 * n, np.nan)]
        + [np.full(n, float(c)) for c in (500, 400, 300, 200, 100)]
    )

    def grid():
        return device.run_batch(
            batch, frequency_caps_hz=fcaps, power_caps_w=pcaps
        )

    result = benchmark(grid)
    assert len(result) == 11 * n
    assert result.power_w.min() > 0


def test_capsweep_batched_fig4(benchmark):
    """The whole Fig 4 sweep (both knobs) through the batched harness."""
    bench = VAIBenchmark()

    def sweep():
        clear_powercap_cache()
        harness = CapSweep(bench)
        return (
            harness.frequency_sweep(constants.FREQUENCY_CAPS_MHZ[1:]),
            harness.power_sweep((500, 400, 300, 200, 100)),
        )

    freq, power = benchmark(sweep)
    assert len(freq) == 6 and len(power) == 6


def test_join_throughput(benchmark, small_fleet):
    log, store = small_fleet

    cube = benchmark(join_campaign, store, log)
    assert cube.total_energy_j > 0


def test_louvain_edges_per_second(benchmark):
    graph = social_network(100_000, rng=0)

    result = benchmark.pedantic(
        louvain, args=(graph,), rounds=1, iterations=1
    )
    assert result.modularity > 0.1


def test_scheduler_throughput(benchmark):
    def schedule():
        mix = default_mix(fleet_nodes=64)
        return SlurmSimulator(mix).run(units.days(2), rng=7)

    log = benchmark.pedantic(schedule, rounds=1, iterations=1)
    assert len(log.jobs) > 50
