"""Bench: Table VI — savings for selected domains and large job classes."""

from conftest import run_once

from repro.experiments import run


def test_table6(benchmark, bench_config):
    result = run_once(benchmark, run, "table6", bench_config)
    print(result.text)

    # Shape: six red-cell domains x classes A-C retain the bulk of the
    # system-wide savings (paper: Table VI ~= 77 % of Table V at 900 MHz).
    assert 1 <= len(result.data["domains"]) <= 6
    assert 0.5 < result.data["retained_fraction"] <= 1.0

    table = result.data["projection"]
    assert abs(table.total_energy_mwh - 16820.0) < 0.01
    assert table.best_row.savings_pct > 3.0
