"""Bench: Fig 5 — VAI runtime/power/energy normalized to uncapped."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig5(benchmark, bench_config):
    result = run_once(benchmark, run, "fig5", bench_config)
    print(result.text)

    freq_time = result.data["frequency_time_s"]
    freq_energy = result.data["frequency_energy_j"]
    caps = result.data["freq_caps"]          # descending MHz

    # Shape: compute-bound lines slow ~1/f; every line is monotone.
    hi_ai = np.asarray(freq_time["AI=1024"])
    assert np.all(np.diff(hi_ai) > 0)        # deeper cap, slower
    assert hi_ai[-1] > 2.0                   # ~2.4x at 700 MHz

    # Shape: energy-to-solution dips below 1 at mid caps for high-AI
    # lines and comes back up at the deepest cap (paper Fig 5).
    e = np.asarray(freq_energy["AI=1024"])
    assert e.min() < 0.95
    assert e[caps.index(700)] > e.min() + 0.05

    # Power caps barely touch lines whose draw is below the cap.
    p_time = result.data["power_time_s"]
    low_ai = np.asarray(p_time["AI=0"])[:2]  # 500/400 W caps
    assert np.allclose(low_ai, 1.0, atol=0.02)
