"""Bench: Fig 4 — the roofline under frequency and power caps."""

import numpy as np
from conftest import run_once

from repro.experiments import run


def test_fig4(benchmark, bench_config):
    result = run_once(benchmark, run, "fig4", bench_config)
    print(result.text)

    intensities = result.data["intensities"]
    tflops = result.data["uncapped_tflops"]
    power = result.data["uncapped_power_w"]

    # Shape: performance climbs along the memory roof then saturates.
    assert tflops[-1] >= max(tflops) * 0.97
    compute_side = intensities >= 8
    assert np.ptp(tflops[compute_side]) < 0.05 * tflops.max()

    # Shape: power peaks at the ridge (paper: 540 W at AI = 4), sits near
    # 380 W on the memory-bound side, and relaxes to ~420 W at high AI.
    assert result.data["peak_intensity"] == 4.0
    assert 520 <= result.data["peak_power_w"] <= 560
    assert 360 <= power[1] <= 400        # AI = 1/16
    assert 400 <= power[-1] <= 440       # AI = 1024
