#!/usr/bin/env python
"""Flight-recorder overhead gate: attached forensics stays bounded.

Streams the same simulated campaign through two :class:`StreamEngine`
instances — one bare, one with a :class:`repro.obs.forensics.Forensics`
facade attached (flight recorder + all five default anomaly detectors +
incident engine) — and compares wall-clock ingest time.  The natural
fleet's heterogeneity keeps the straggler detector firing, so the
measured path includes live finding/incident folding, not an idle
recorder.

Read the two numbers together.  The bare streaming join is a handful of
vectorized numpy passes per chunk, so the recorder's work — compact the
window, run five detectors, fold findings into incidents — reads as a
large *percentage* of a tiny baseline.  The absolute cost is what a
deployment feels: well under a millisecond per sealed window, against
windows that arrive every ten minutes.  The gate therefore bounds both:
``ms_per_window`` is the deployment-facing budget, ``overhead_pct`` the
drift tripwire.

The hard gate (``--check``) fails when:

* the two runs' analytic outputs differ in any bit (the recorder is
  specified as a pure read of the window stream);
* the *recorded baseline* breaks the per-window budget
  :data:`MS_PER_WINDOW_LIMIT` or the relative budget
  :data:`OVERHEAD_LIMIT_PCT` (re-record on the reference machine after
  intentional changes);
* the live overhead exceeds the disaster bound
  :data:`LIVE_OVERHEAD_LIMIT_PCT` (generous: shared CI runners are
  noisy; slow drift is the history trail's job).

Modes::

    python benchmarks/bench_forensics.py            # measure and report
    python benchmarks/bench_forensics.py --record   # (re)write baseline
    python benchmarks/bench_forensics.py --check    # gate (CI)
    python benchmarks/bench_forensics.py --check --quick --history
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_forensics.json"

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.forensics import Forensics  # noqa: E402
from repro.stream import StreamEngine, simulated_fleet  # noqa: E402

#: The recorded reference overhead must stay under these bounds.
OVERHEAD_LIMIT_PCT = 150.0
MS_PER_WINDOW_LIMIT = 2.0
#: Live disaster bound for --check (loose: CI runners are shared).
LIVE_OVERHEAD_LIMIT_PCT = 300.0

FLEET_NODES = 32
DAYS = 1.0
CHUNK_TICKS = 20
WINDOW_S = 600.0


def _one_pass(log, chunks, *, recorder: bool):
    engine = StreamEngine(log, window_s=WINDOW_S)
    if recorder:
        engine.attach_recorder(Forensics())
    t0 = time.perf_counter()
    for chunk in chunks:
        engine.ingest(chunk)
    engine.drain()
    return (time.perf_counter() - t0) * 1e3, engine


def measure(*, rounds: int, seed: int = 0) -> dict:
    log, source = simulated_fleet(
        fleet_nodes=FLEET_NODES, days=DAYS, seed=seed,
        chunk_ticks=CHUNK_TICKS,
    )
    chunks = list(source)            # materialized: generation untimed

    plain_ms, recorded_ms = [], []
    bitwise = True
    summary = None
    for _ in range(rounds):
        # Alternate order so cache warmth cannot bias one side.
        t_plain, plain = _one_pass(log, chunks, recorder=False)
        t_rec, rec = _one_pass(log, chunks, recorder=True)
        plain_ms.append(t_plain)
        recorded_ms.append(t_rec)
        a, b = plain.cube(copy=False), rec.cube(copy=False)
        bitwise = bitwise and (
            np.array_equal(a.energy_j, b.energy_j)
            and np.array_equal(a.gpu_hours, b.gpu_hours)
            and a.cpu_energy_j == b.cpu_energy_j
        )
        summary = rec.forensics.summary()

    best_plain = min(plain_ms)
    best_recorded = min(recorded_ms)
    overhead_pct = (
        100.0 * (best_recorded - best_plain) / best_plain
        if best_plain > 0 else 0.0
    )
    windows = summary["windows_recorded"]
    ms_per_window = (
        (best_recorded - best_plain) / windows if windows else 0.0
    )
    return {
        "forensics_overhead": {
            "description": (
                f"streaming ingest of {FLEET_NODES} nodes x {DAYS:g} "
                f"days ({len(chunks)} chunks, {WINDOW_S:.0f} s windows) "
                f"with vs without the flight recorder + default "
                f"detectors attached"
            ),
            "rounds": rounds,
            "plain_ms": round(best_plain, 2),
            "recorded_ms": round(best_recorded, 2),
            "overhead_pct": round(overhead_pct, 2),
            "ms_per_window": round(ms_per_window, 3),
            "bitwise_identical": bitwise,
            "windows_recorded": summary["windows_recorded"],
            "findings_total": summary["findings_total"],
            "incidents_total": summary["incidents_total"],
        },
    }


def check(results: dict) -> int:
    failures = []
    load = results["forensics_overhead"]
    if not load["bitwise_identical"]:
        failures.append(
            "recorder-attached run changed an analytic output bit"
        )
    if load["windows_recorded"] == 0:
        failures.append("recorder saw no windows; the workload is broken")
    if load["overhead_pct"] >= LIVE_OVERHEAD_LIMIT_PCT:
        failures.append(
            f"live recorder overhead {load['overhead_pct']:.1f} % over "
            f"the {LIVE_OVERHEAD_LIMIT_PCT:.0f} % disaster bound"
        )

    if BASELINE_PATH.exists():
        ref = json.loads(BASELINE_PATH.read_text())["forensics_overhead"]
        if ref["overhead_pct"] >= OVERHEAD_LIMIT_PCT:
            failures.append(
                f"recorded overhead {ref['overhead_pct']:.1f} % breaks "
                f"the < {OVERHEAD_LIMIT_PCT:g} % budget; re-record on "
                f"the reference machine"
            )
        if ref["ms_per_window"] >= MS_PER_WINDOW_LIMIT:
            failures.append(
                f"recorded {ref['ms_per_window']:.2f} ms per window "
                f"breaks the < {MS_PER_WINDOW_LIMIT:g} ms budget"
            )
    else:
        failures.append(f"no baseline at {BASELINE_PATH}; run with --record")

    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--record", action="store_true",
                        help="write the measured results as the baseline")
    parser.add_argument("--check", action="store_true",
                        help="gate bitwise identity and the overhead budget")
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds (CI mode)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="timed rounds per side (default 3; 2 with "
                             "--quick)")
    parser.add_argument("--history", action="store_true",
                        help="append this run to BENCH_history.jsonl and "
                             "flag >20%% drift vs the trailing median")
    args = parser.parse_args(argv)

    rounds = args.rounds
    if rounds is None:
        rounds = 2 if args.quick else 3
    results = measure(rounds=rounds)
    results["quick"] = args.quick
    print(json.dumps(results, indent=2))

    if args.history:
        import bench_history

        load = results["forensics_overhead"]
        timings = {
            "forensics_plain_ms": load["plain_ms"],
            "forensics_recorded_ms": load["recorded_ms"],
        }
        flags = bench_history.drift_flags(
            timings, bench_history.load_history()
        )
        bench_history.append_timings(
            timings, quick=args.quick, source="bench_forensics",
        )
        for flag in flags:
            print(f"DRIFT: {flag}")

    if args.record:
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
