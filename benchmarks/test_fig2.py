"""Bench: Fig 2 — telemetry vs ROCm SMI, and the GPU/CPU energy split."""

from conftest import run_once

from repro.experiments import run


def test_fig2(benchmark, bench_config):
    result = run_once(benchmark, run, "fig2", bench_config)
    print(result.text)
    # Fig 2(a): the two measurement paths agree.
    assert result.data["correlation"] > 0.99
    assert result.data["mae_w"] < 10.0
    # Fig 2(b): GPUs dominate node energy.
    assert result.data["gpu_energy_fraction"] > 0.65
