"""Fleet power-budget planning.

The paper's framing is a power-constrained era: centers must "optimize
the power-performance trade-off within constrained power budgets".  This
module answers the operational form of that question: given the jobs
running right now and a fleet GPU power budget, which jobs should be
capped how, so the budget holds with the least slowdown?

The planner is greedy on marginal efficiency: each candidate move (job j
from its current cap to the next deeper cap) is scored by watts shed per
unit of slowdown-energy incurred, and moves are applied best-first until
the fleet fits the budget.  Memory-bound jobs are therefore capped first
(they shed power for free), and compute-bound jobs only when the budget
forces it — the same ordering the paper's region analysis implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..constants import GPUS_PER_NODE
from ..errors import ProjectionError
from ..core.characterization import CapFactors
from .fingerprint import JobFingerprint


def _power_factors(factors: CapFactors, cap: float) -> tuple:
    """(CI, MI) *power* factors: energy factor / runtime factor."""
    e_ci, e_mi = factors.energy_at(cap)
    rt_ci, rt_mi = factors.runtime_at(cap)
    return e_ci / rt_ci, e_mi / rt_mi


def capped_mean_power_w(
    fp: JobFingerprint, factors: CapFactors, cap: Optional[float]
) -> float:
    """A job's expected mean power per GPU module under a cap."""
    if fp.gpu_hours <= 0:
        raise ProjectionError(f"job {fp.job_id} has no GPU hours")
    base = fp.region_energy_j
    if cap is not None:
        p_ci, p_mi = _power_factors(factors, cap)
        base = base.copy()
        base[1] *= p_mi
        base[2] *= p_ci
    return float(base.sum() / (fp.gpu_hours * 3600.0))


def capped_job_power_w(
    fp: JobFingerprint, factors: CapFactors, cap: Optional[float]
) -> float:
    """A job's expected *total* GPU power under a cap.

    Per-GPU mean scaled by the job's GPU count: what the job contributes
    to the fleet's instantaneous power draw.
    """
    return capped_mean_power_w(fp, factors, cap) * fp.num_nodes * GPUS_PER_NODE


def job_slowdown_pct(
    fp: JobFingerprint, factors: CapFactors, cap: Optional[float]
) -> float:
    """Energy-weighted slowdown of a job under a cap (percent)."""
    if cap is None:
        return 0.0
    rt_ci, rt_mi = factors.runtime_at(cap)
    e = fp.region_energy_j
    total = float(e.sum())
    if total <= 0:
        return 0.0
    return 100.0 * (
        e[1] * max(rt_mi - 1.0, 0.0) + e[2] * max(rt_ci - 1.0, 0.0)
    ) / total


@dataclass(frozen=True)
class BudgetPlan:
    """The planner's output for one snapshot of running jobs."""

    budget_w: float
    baseline_power_w: float
    planned_power_w: float
    caps: Dict[int, Optional[float]]
    feasible: bool

    @property
    def shed_w(self) -> float:
        return self.baseline_power_w - self.planned_power_w

    def mean_slowdown_pct(
        self, fingerprints: Dict[int, JobFingerprint], factors: CapFactors
    ) -> float:
        """Energy-weighted mean slowdown across the snapshot."""
        total = sum(fp.energy_j for fp in fingerprints.values())
        if total <= 0:
            return 0.0
        acc = 0.0
        for jid, fp in fingerprints.items():
            acc += fp.energy_j * job_slowdown_pct(
                fp, factors, self.caps.get(jid)
            )
        return acc / total


class PowerBudgetPlanner:
    """Greedy marginal-efficiency cap assignment under a fleet budget."""

    def __init__(self, factors: CapFactors) -> None:
        self.factors = factors
        # Deeper caps last; the uncapped state is represented by None.
        self._ladder: List[Optional[float]] = [None] + [
            float(c) for c in self.factors.caps()
        ]

    def plan(
        self,
        fingerprints: Dict[int, JobFingerprint],
        budget_w: float,
    ) -> BudgetPlan:
        """Assign caps so the snapshot's GPU power fits ``budget_w``."""
        if budget_w <= 0:
            raise ProjectionError("budget must be positive")
        if not fingerprints:
            raise ProjectionError("no running jobs to plan")

        state = {jid: 0 for jid in fingerprints}  # ladder index per job
        power = {
            jid: capped_job_power_w(fp, self.factors, None)
            for jid, fp in fingerprints.items()
        }
        baseline = sum(power.values())
        total = baseline

        while total > budget_w:
            best_jid = None
            best_score = 0.0
            for jid, fp in fingerprints.items():
                idx = state[jid]
                if idx + 1 >= len(self._ladder):
                    continue
                cur_cap = self._ladder[idx]
                nxt_cap = self._ladder[idx + 1]
                p_next = capped_job_power_w(fp, self.factors, nxt_cap)
                delta_p = max(power[jid] - p_next, 0.0)
                delta_slow = job_slowdown_pct(
                    fp, self.factors, nxt_cap
                ) - job_slowdown_pct(fp, self.factors, cur_cap)
                score = delta_p / (abs(delta_slow) + 1e-6)
                if best_jid is None or score > best_score:
                    best_jid = jid
                    best_score = score
            if best_jid is None:
                break  # every job at the deepest cap: infeasible
            state[best_jid] += 1
            power[best_jid] = capped_job_power_w(
                fingerprints[best_jid],
                self.factors,
                self._ladder[state[best_jid]],
            )
            total = sum(power.values())

        caps = {
            jid: self._ladder[idx] for jid, idx in state.items()
        }
        return BudgetPlan(
            budget_w=budget_w,
            baseline_power_w=baseline,
            planned_power_w=total,
            caps=caps,
            feasible=total <= budget_w,
        )
