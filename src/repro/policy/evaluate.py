"""Campaign replay: per-job policy vs uniform capping vs the oracle.

Three strategies over the same fingerprinted campaign:

* **per-job advisor** — each job gets its own recommended cap;
* **uniform cap** — one fleet-wide cap (what Table V projects);
* **oracle** — the paper's upper bound: every job gets its individually
  best cap with no slowdown budget.

Realized savings/slowdowns are evaluated with the same sensitivity model
the advisor used, so the comparison isolates the *policy* question (who
should be capped how) from the model question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import units
from ..errors import ProjectionError
from ..core.characterization import CapFactors
from .advisor import CapAdvisor
from .fingerprint import JobFingerprint


@dataclass(frozen=True)
class PolicyOutcome:
    """Fleet-level outcome of one capping strategy."""

    name: str
    saving_j: float
    total_energy_j: float
    capped_jobs: int
    total_jobs: int
    max_job_slowdown_pct: float
    mean_weighted_slowdown_pct: float

    @property
    def saving_pct(self) -> float:
        return 100.0 * self.saving_j / self.total_energy_j

    @property
    def saving_mwh(self) -> float:
        return units.to_mwh(self.saving_j)


def _aggregate(
    name: str,
    fingerprints: Dict[int, JobFingerprint],
    caps: Dict[int, Optional[float]],
    advisor: CapAdvisor,
) -> PolicyOutcome:
    total = sum(fp.energy_j for fp in fingerprints.values())
    if total <= 0:
        raise ProjectionError("campaign has no fingerprinted energy")
    saving = 0.0
    slowdowns: List[float] = []
    weighted = 0.0
    capped = 0
    for jid, fp in fingerprints.items():
        cap = caps.get(jid)
        if cap is None:
            slowdowns.append(0.0)
            continue
        s, dt = advisor.expected_outcome(fp, cap)
        saving += s
        weighted += dt * fp.energy_j
        slowdowns.append(dt)
        capped += 1
    return PolicyOutcome(
        name=name,
        saving_j=saving,
        total_energy_j=total,
        capped_jobs=capped,
        total_jobs=len(fingerprints),
        max_job_slowdown_pct=max(slowdowns) if slowdowns else 0.0,
        mean_weighted_slowdown_pct=weighted / total,
    )


def evaluate_policies(
    fingerprints: Dict[int, JobFingerprint],
    factors: CapFactors,
    *,
    max_slowdown_pct: float = 5.0,
    uniform_cap: float = 900.0,
) -> Dict[str, PolicyOutcome]:
    """Compare the three strategies on one fingerprinted campaign."""
    advisor = CapAdvisor(factors, max_slowdown_pct=max_slowdown_pct)

    per_job = {
        jid: rec.cap
        for jid, rec in advisor.recommend_all(fingerprints).items()
    }

    uniform = {jid: uniform_cap for jid in fingerprints}

    oracle_advisor = CapAdvisor(factors, max_slowdown_pct=float("inf"))
    oracle = {
        jid: rec.cap
        for jid, rec in oracle_advisor.recommend_all(fingerprints).items()
    }

    return {
        "per_job": _aggregate(
            f"per-job advisor (<= {max_slowdown_pct:g} % slowdown)",
            fingerprints, per_job, advisor,
        ),
        "uniform": _aggregate(
            f"uniform {uniform_cap:g} cap", fingerprints, uniform, advisor
        ),
        "oracle": _aggregate(
            "oracle upper bound", fingerprints, oracle, oracle_advisor
        ),
    }


def format_outcomes(outcomes: Dict[str, PolicyOutcome]) -> str:
    """Human-readable comparison table."""
    lines = [
        f"{'strategy':<38} {'saving %':>9} {'saving MWh':>11} "
        f"{'capped':>12} {'max dT %':>9} {'mean dT %':>10}"
    ]
    for o in outcomes.values():
        lines.append(
            f"{o.name:<38} {o.saving_pct:9.2f} {o.saving_mwh:11.2f} "
            f"{o.capped_jobs:5d}/{o.total_jobs:<6d} "
            f"{o.max_job_slowdown_pct:9.2f} "
            f"{o.mean_weighted_slowdown_pct:10.2f}"
        )
    return "\n".join(lines)
