"""Power-management policy extension.

The paper bounds the *best-case* savings of fleet-wide caps and, in its
discussion, points at the next step: "more precise application
fingerprinting, with more precise sensitivity prediction regarding power
management".  This subpackage builds that step on top of the
reproduction:

* :mod:`repro.policy.fingerprint` — per-job fingerprints from telemetry
  (region dwell, mean power, workload family);
* :mod:`repro.policy.advisor`     — per-job cap recommendation that
  maximizes expected savings under a slowdown budget, using the
  Table III characterization as the sensitivity model;
* :mod:`repro.policy.evaluate`    — campaign replay comparing the
  per-job policy against uniform capping and against the paper's
  oracle upper bound;
* :mod:`repro.policy.budget`      — fleet power-budget planning: which
  jobs to cap how when the center's power envelope shrinks;
* :mod:`repro.policy.live`        — fleet-wide cap advice from a live
  (streaming) campaign cube.
"""

from .fingerprint import JobFingerprint, fingerprint_jobs
from .advisor import CapAdvisor, Recommendation
from .evaluate import PolicyOutcome, evaluate_policies
from .budget import BudgetPlan, PowerBudgetPlanner
from .live import FleetRecommendation, recommend_fleet_cap

__all__ = [
    "JobFingerprint",
    "fingerprint_jobs",
    "CapAdvisor",
    "Recommendation",
    "PolicyOutcome",
    "evaluate_policies",
    "BudgetPlan",
    "PowerBudgetPlanner",
    "FleetRecommendation",
    "recommend_fleet_cap",
]
