"""Fleet-level cap advice from a live campaign cube.

The per-job advisor (:mod:`repro.policy.advisor`) needs job
fingerprints; an *online* power manager often has only the live
aggregate — the streaming engine's campaign cube as of the current
watermark.  This module turns that cube into a fleet-wide knob setting:
the cap with the best projected savings whose energy-weighted runtime
increase fits the slowdown budget, recomputed cheaply at every
snapshot because the cube is O(bins) state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.characterization import CapFactors
from ..core.join import CampaignCube
from ..core.projection import ProjectionTable, project_savings
from ..errors import ProjectionError


@dataclass(frozen=True)
class FleetRecommendation:
    """The advisor's verdict for the whole fleet, right now."""

    knob: str
    cap: Optional[float]           # None = leave the fleet uncapped
    expected_saving_mwh: float
    savings_pct: float
    runtime_increase_pct: float

    @property
    def capped(self) -> bool:
        return self.cap is not None


def recommend_fleet_cap(
    cube: CampaignCube,
    factors: CapFactors,
    *,
    max_slowdown_pct: float = 5.0,
    campaign_energy_mwh: Optional[float] = None,
    projection: Optional[ProjectionTable] = None,
) -> FleetRecommendation:
    """Best fleet-wide cap for a (possibly live) campaign cube.

    Maximizes projected total savings subject to the energy-weighted
    runtime increase staying within ``max_slowdown_pct``.  Pass an
    already-computed ``projection`` to reuse a snapshot's Table V.
    """
    if max_slowdown_pct < 0:
        raise ProjectionError("slowdown budget must be >= 0")
    table = (
        projection
        if projection is not None
        else project_savings(
            cube, factors, campaign_energy_mwh=campaign_energy_mwh
        )
    )
    best = None
    for row in table.rows:
        if row.runtime_increase_pct > max_slowdown_pct:
            continue
        if row.total_mwh <= 0:
            continue
        if best is None or row.total_mwh > best.total_mwh:
            best = row
    if best is None:
        return FleetRecommendation(
            knob=table.knob, cap=None, expected_saving_mwh=0.0,
            savings_pct=0.0, runtime_increase_pct=0.0,
        )
    return FleetRecommendation(
        knob=table.knob,
        cap=best.cap,
        expected_saving_mwh=best.total_mwh,
        savings_pct=best.savings_pct,
        runtime_increase_pct=best.runtime_increase_pct,
    )
