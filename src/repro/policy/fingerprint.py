"""Per-job fingerprints from power telemetry.

A fingerprint is the per-job analogue of the paper's modal decomposition:
how much of the job's GPU time and energy sits in each operating region.
It is computed from the same join as the campaign cube, but keyed by job
id, and classifies each job into a workload family — the "application
fingerprinting" the paper's discussion section asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Union

import numpy as np

from .. import constants
from ..errors import JoinError
from ..scheduler.log import SchedulerLog
from ..core.join import region_index
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore

#: Workload families, in the paper's Fig 9 vocabulary.
FAMILIES = ("latency_bound", "memory_intensive", "compute_intensive",
            "multi_zone")


@dataclass(frozen=True)
class JobFingerprint:
    """Observed power behaviour of one job."""

    job_id: int
    domain: str
    size_class: str
    num_nodes: int
    gpu_hours: float
    energy_j: float
    region_hours: np.ndarray     # shape (4,)
    region_energy_j: np.ndarray  # shape (4,)

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / (self.gpu_hours * 3600.0)

    @property
    def region_fractions(self) -> np.ndarray:
        total = self.region_hours.sum()
        return self.region_hours / total if total else self.region_hours

    @property
    def family(self) -> str:
        """Workload family from region dwell (Fig 9 panel vocabulary).

        Boost dwell counts toward the compute-intensive family — a job
        spending time above 560 W is running flat out.
        """
        frac = self.region_fractions
        if np.count_nonzero(frac >= 0.10) >= 3:
            return "multi_zone"
        merged = np.array([frac[0], frac[1], frac[2] + frac[3]])
        return FAMILIES[int(np.argmax(merged))]


def fingerprint_jobs(
    telemetry: Union[TelemetryStore, Iterable[TelemetryChunk]],
    log: SchedulerLog,
) -> Dict[int, JobFingerprint]:
    """Fingerprint every job in a campaign (streaming, O(jobs) memory)."""
    jobs = log.job_by_id()
    if not jobs:
        raise JoinError("scheduler log has no jobs")
    max_jid = max(jobs)
    hours = np.zeros((max_jid + 1, 4))
    energy = np.zeros((max_jid + 1, 4))

    if isinstance(telemetry, TelemetryStore):
        chunks: Iterable[TelemetryChunk] = [telemetry.chunk]
        interval = telemetry.interval_s
    else:
        chunks = telemetry
        interval = constants.TELEMETRY_INTERVAL_S
    hours_per_sample = interval / 3600.0

    saw_any = False
    for chunk in chunks:
        saw_any = True
        jid_row = np.zeros(len(chunk), dtype=np.int64)
        for node in np.unique(chunk.node_id):
            mask = chunk.node_id == node
            jid_row[mask] = log.job_id_grid(chunk.time_s[mask], int(node))
        power = chunk.gpu_power_w
        reg = region_index(power)
        key = (jid_row[:, None] * 4 + reg).reshape(-1)
        flat_p = power.reshape(-1).astype(np.float64)
        minlength = (max_jid + 1) * 4
        energy += (
            np.bincount(key, weights=flat_p, minlength=minlength)
            .reshape(max_jid + 1, 4)
            * interval
        )
        hours += (
            np.bincount(key, minlength=minlength).reshape(max_jid + 1, 4)
            * hours_per_sample
        )
    if not saw_any:
        raise JoinError("no telemetry chunks to fingerprint")

    out: Dict[int, JobFingerprint] = {}
    for jid, job in jobs.items():
        h = hours[jid]
        if h.sum() == 0:
            continue  # job too short to be sampled
        out[jid] = JobFingerprint(
            job_id=jid,
            domain=job.domain,
            size_class=job.size_class,
            num_nodes=job.num_nodes,
            gpu_hours=float(h.sum()),
            energy_j=float(energy[jid].sum()),
            region_hours=h.copy(),
            region_energy_j=energy[jid].copy(),
        )
    return out
