"""Per-job cap recommendation.

The advisor turns the benchmark characterization (Table III) into a
sensitivity model: for a job with fingerprinted region energies, a cap
``c`` is expected to save

    E2 * (1 - f_MI(c)) + E3 * (1 - f_CI(c))

at an energy-weighted slowdown of

    [E2 * (rt_MI(c) - 1) + E3 * (rt_CI(c) - 1)] / E_total.

The recommendation maximizes expected savings subject to a per-job
slowdown budget — jobs whose energy sits in the latency-bound region get
no cap (the paper found no savings there), memory-heavy jobs get deep
caps, compute-heavy jobs get mild or no caps depending on the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ProjectionError
from ..core.characterization import CapFactors
from .fingerprint import JobFingerprint


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one job."""

    job_id: int
    cap: Optional[float]          # None = leave uncapped
    expected_saving_j: float
    expected_slowdown_pct: float

    @property
    def capped(self) -> bool:
        return self.cap is not None


class CapAdvisor:
    """Recommend per-job caps under a slowdown budget."""

    def __init__(
        self,
        factors: CapFactors,
        *,
        max_slowdown_pct: float = 5.0,
        min_saving_fraction: float = 0.005,
    ) -> None:
        if max_slowdown_pct < 0:
            raise ProjectionError("slowdown budget must be >= 0")
        if not (0 <= min_saving_fraction < 1):
            raise ProjectionError("min_saving_fraction must be in [0, 1)")
        self.factors = factors
        self.max_slowdown_pct = max_slowdown_pct
        self.min_saving_fraction = min_saving_fraction

    def expected_outcome(
        self, fp: JobFingerprint, cap: float
    ) -> tuple:
        """(expected saving J, expected slowdown %) for one cap."""
        f_ci, f_mi = self.factors.energy_at(cap)
        rt_ci, rt_mi = self.factors.runtime_at(cap)
        e_mi = fp.region_energy_j[1]
        e_ci = fp.region_energy_j[2]
        saving = e_mi * (1.0 - f_mi) + e_ci * (1.0 - f_ci)
        slowdown = (
            100.0
            * (e_mi * max(rt_mi - 1.0, 0.0) + e_ci * max(rt_ci - 1.0, 0.0))
            / fp.energy_j
            if fp.energy_j > 0
            else 0.0
        )
        return saving, slowdown

    def recommend(self, fp: JobFingerprint) -> Recommendation:
        """Pick the cap with the best expected saving within budget."""
        best = Recommendation(
            job_id=fp.job_id, cap=None,
            expected_saving_j=0.0, expected_slowdown_pct=0.0,
        )
        floor = self.min_saving_fraction * fp.energy_j
        for cap in self.factors.caps():
            saving, slowdown = self.expected_outcome(fp, cap)
            if slowdown > self.max_slowdown_pct:
                continue
            if saving <= max(best.expected_saving_j, floor):
                continue
            best = Recommendation(
                job_id=fp.job_id, cap=cap,
                expected_saving_j=saving,
                expected_slowdown_pct=slowdown,
            )
        return best

    def recommend_all(
        self, fingerprints: Dict[int, JobFingerprint]
    ) -> Dict[int, Recommendation]:
        return {jid: self.recommend(fp) for jid, fp in fingerprints.items()}
