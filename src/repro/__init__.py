"""repro: reproduction of "Exploring the Frontiers of Energy Efficiency
using Power Management at System Scale" (SC 2024).

The package has four layers:

* substrates — :mod:`repro.gpu` (a calibrated MI250X power/performance
  simulator), :mod:`repro.graph` (CSR graphs + Louvain),
  :mod:`repro.scheduler` (SLURM-like job traffic), and
  :mod:`repro.telemetry` (out-of-band fleet power data);
* benchmarks — :mod:`repro.bench` (the VAI roofline tracer and the
  L2/HBM memory benchmark, Table III);
* core analysis — :mod:`repro.core` (telemetry join, modal
  decomposition, savings projection: Tables IV-VI, Figs 8-10);
* experiments — :mod:`repro.experiments` regenerates every table and
  figure; ``python -m repro run all`` prints them.

Quickstart::

    from repro import GPUDevice, KernelSpec, units

    device = GPUDevice(frequency_cap_hz=units.mhz(900))
    result = device.run(KernelSpec("k", flops=1e13, hbm_bytes=1e12))
    print(result.power_w, result.time_s)
"""

from . import constants, units
from .errors import ReproError
from .gpu import FrontierNode, GPUDevice, KernelSpec, MI250XSpec

__version__ = "1.0.0"

__all__ = [
    "constants",
    "units",
    "ReproError",
    "GPUDevice",
    "KernelSpec",
    "MI250XSpec",
    "FrontierNode",
    "__version__",
]
