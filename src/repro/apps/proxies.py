"""Three proxy applications spanning the paper's workload families.

Each proxy is a stylized kernel-of-a-real-workload whose phase structure
places it in one Table IV region:

* :func:`gemm_proxy` — a dense-solver iteration (HPL-like): large
  high-intensity FMA kernels with brief panel-exchange host phases.
  Compute-intensive (region 3): frequency caps cost runtime.
* :func:`stencil_proxy` — a CFD/climate step: low-intensity streaming
  sweeps plus halo-exchange host phases.  Memory-intensive (region 2):
  frequency caps save energy nearly for free.
* :func:`checkpoint_proxy` — a bursty producer that periodically
  checkpoints: short kernels between long I/O phases.  Latency/IO bound
  (region 1): caps change almost nothing in either direction.
"""

from __future__ import annotations

from ..errors import KernelError
from ..gpu import KernelSpec
from .application import Application
from .phase import HostPhase, KernelPhase


def gemm_proxy(steps: int = 8, *, scale: float = 1.0) -> Application:
    """A dense-solver proxy: compute-bound update + panel exchange."""
    if steps < 1 or scale <= 0:
        raise KernelError("steps must be >= 1 and scale positive")
    update = KernelSpec(
        name="gemm-update",
        flops=scale * 240e12,        # ~20 s of FMA at the achievable roof
        hbm_bytes=scale * 7.5e12,    # AI = 32: firmly compute-bound
        issue_bw_factor=2.2,
        compute_efficiency=0.95,
    )
    phases = []
    for step in range(steps):
        phases.append(KernelPhase(f"update-{step}", update))
        phases.append(HostPhase(f"panel-exchange-{step}", scale * 0.8))
    return Application("gemm-proxy", phases)


def stencil_proxy(steps: int = 8, *, scale: float = 1.0) -> Application:
    """A stencil/CFD proxy: streaming sweeps + halo exchange."""
    if steps < 1 or scale <= 0:
        raise KernelError("steps must be >= 1 and scale positive")
    sweep = KernelSpec(
        name="stencil-sweep",
        flops=scale * 7.5e12,
        hbm_bytes=scale * 30e12,     # AI = 0.25: memory-bound
        issue_bw_factor=2.6,         # deep, regular streaming
    )
    phases = []
    for step in range(steps):
        phases.append(KernelPhase(f"sweep-{step}", sweep))
        phases.append(HostPhase(f"halo-exchange-{step}", scale * 1.2))
    return Application("stencil-proxy", phases)


def checkpoint_proxy(steps: int = 6, *, scale: float = 1.0) -> Application:
    """A checkpoint-bound proxy: short bursts between long I/O phases."""
    if steps < 1 or scale <= 0:
        raise KernelError("steps must be >= 1 and scale positive")
    burst = KernelSpec(
        name="burst",
        flops=scale * 2e12,
        hbm_bytes=scale * 2e12,
        issue_bw_factor=1.8,
        occupancy=0.35,              # sparse, latency-bound burst
        stall_power_fraction=0.15,
    )
    phases = []
    for step in range(steps):
        phases.append(KernelPhase(f"burst-{step}", burst, repeats=2))
        phases.append(HostPhase(f"checkpoint-{step}", scale * 18.0))
    return Application("checkpoint-proxy", phases)


ALL_PROXIES = {
    "gemm": gemm_proxy,
    "stencil": stencil_proxy,
    "checkpoint": checkpoint_proxy,
}
