"""Application phases.

An application is a sequence of phases.  A :class:`KernelPhase` occupies
the GPU (its duration and power respond to the management knobs); a
:class:`HostPhase` leaves the GPU idling at a fixed wall-clock cost
(CPU work, MPI exchange, I/O) — the part of an application that power
management cannot touch but whose idle energy it still pays.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from ..gpu import KernelSpec


@dataclass(frozen=True)
class KernelPhase:
    """A GPU phase: one kernel, optionally repeated back to back."""

    name: str
    kernel: KernelSpec
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise KernelError(f"{self.name}: repeats must be >= 1")


@dataclass(frozen=True)
class HostPhase:
    """A host-side phase: the GPU idles for a fixed duration."""

    name: str
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise KernelError(f"{self.name}: duration must be positive")
