"""Proxy applications.

The paper's methodology section names two ways to study optimized codes:
proxy applications (a kernel of a full workload without its complexity)
and synthetic workloads (stress a specific subsystem).  The benchmarks in
:mod:`repro.bench` are the synthetic side; this subpackage is the proxy
side: applications modeled as alternating device-kernel and host phases,
executed on the simulated GPU.

* :mod:`repro.apps.phase`       — kernel and host phase descriptors
* :mod:`repro.apps.application` — the phase-sequence executor
* :mod:`repro.apps.proxies`     — a GEMM-heavy solver, a stencil/halo
  CFD proxy, and a checkpoint-bound proxy spanning the paper's three
  savable/unsavable workload families
"""

from .phase import HostPhase, KernelPhase
from .application import Application, AppRunResult
from .proxies import checkpoint_proxy, gemm_proxy, stencil_proxy

__all__ = [
    "HostPhase",
    "KernelPhase",
    "Application",
    "AppRunResult",
    "gemm_proxy",
    "stencil_proxy",
    "checkpoint_proxy",
]
