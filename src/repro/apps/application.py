"""Application executor: run a phase sequence on a device."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

import numpy as np

from .. import constants
from ..errors import KernelError
from ..gpu import GPUDevice
from ..rng import RngLike, ensure_rng
from .phase import HostPhase, KernelPhase

PhaseLike = Union[KernelPhase, HostPhase]


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of one phase at the device's current settings."""

    name: str
    kind: str             # "kernel" | "host"
    time_s: float
    power_w: float        # steady power while the phase runs
    energy_j: float


@dataclass(frozen=True)
class AppRunResult:
    """Outcome of one application run."""

    app: str
    phases: List[PhaseResult] = field(repr=False)

    @property
    def total_time_s(self) -> float:
        return sum(p.time_s for p in self.phases)

    @property
    def gpu_time_s(self) -> float:
        return sum(p.time_s for p in self.phases if p.kind == "kernel")

    @property
    def host_time_s(self) -> float:
        return sum(p.time_s for p in self.phases if p.kind == "host")

    @property
    def energy_j(self) -> float:
        return sum(p.energy_j for p in self.phases)

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.total_time_s

    @property
    def max_power_w(self) -> float:
        return max(p.power_w for p in self.phases)

    def power_trace(
        self,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
        noise_w: float = 0.0,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Render the run into a sampled power time series."""
        gen = ensure_rng(rng)
        n = max(1, int(np.ceil(self.total_time_s / interval_s)))
        t = (np.arange(n) + 0.5) * interval_s
        edges = np.cumsum([p.time_s for p in self.phases])
        powers = np.array([p.power_w for p in self.phases])
        idx = np.minimum(
            np.searchsorted(edges, t, side="right"), len(powers) - 1
        )
        trace = powers[idx]
        if noise_w > 0:
            trace = trace + gen.normal(0.0, noise_w, size=n)
        return np.maximum(trace, 0.0)


class Application:
    """A named phase sequence."""

    def __init__(self, name: str, phases: Sequence[PhaseLike]) -> None:
        if not phases:
            raise KernelError(f"application {name!r} has no phases")
        self.name = name
        self.phases = list(phases)

    def run(self, device: GPUDevice) -> AppRunResult:
        """Execute all phases under the device's current settings."""
        idle_w = device.spec.idle_w
        results: List[PhaseResult] = []
        for phase in self.phases:
            if isinstance(phase, KernelPhase):
                r = device.run(phase.kernel)
                time_s = r.time_s * phase.repeats
                results.append(
                    PhaseResult(
                        name=phase.name,
                        kind="kernel",
                        time_s=time_s,
                        power_w=r.power_w,
                        energy_j=r.power_w * time_s,
                    )
                )
            else:
                results.append(
                    PhaseResult(
                        name=phase.name,
                        kind="host",
                        time_s=phase.duration_s,
                        power_w=idle_w,
                        energy_j=idle_w * phase.duration_s,
                    )
                )
        return AppRunResult(app=self.name, phases=results)

    def gpu_fraction(self, device: GPUDevice) -> float:
        """Fraction of wall-clock the GPU is busy, at current settings."""
        run = self.run(device)
        return run.gpu_time_s / run.total_time_s
