"""Versioned read-through snapshot cache for the control plane.

Serving thousands of concurrent pollers must not contend with ingest.
The contract here:

* Ingest publishes an immutable :class:`ServeView` — a frozen copy of
  everything the API answers from (fleet cube snapshot, per-job stats,
  policy, cap decisions) — by **atomic reference swap** into
  :class:`SnapshotCache`.  Readers grab the reference once per request
  and never see a half-updated state: torn reads are impossible by
  construction, not by locking.
* Responses are **read-through cached as serialized bytes** on the
  view: the first request for a route renders JSON (sorted keys,
  deterministic float repr) and every later request for the same route
  and view returns the identical byte string.  Hot fleet routes are
  pre-rendered at publish, so the steady-state request path is one
  attribute read and one dict lookup — the sub-millisecond budget in
  ``benchmarks/bench_serve.py``.
* Version numbers increase by one per publish; a response's ``version``
  field tells a poller whether anything changed since its last poll.

Bitwise stability per sealed window is asserted in ``tests/serve/``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, Optional, Tuple

from ..errors import HistoryError, LogError
from ..obs.log.query import select as select_logs
from ..stream.engine import StreamSnapshot
from .analytics import JobStats
from .jobs import JobStateIndex
from .objectives import OBJECTIVES, CapDecision, decide_cap

#: Routes rendered eagerly at publish time (the load-test hot path).
HOT_ROUTES = ("fleet/cap", "fleet/savings", "policy", "jobs")


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: non-finite sentinels become null."""
    value = float(value)
    return value if math.isfinite(value) else None


def render_body(doc: dict) -> bytes:
    """The canonical serialization: sorted keys, newline-terminated."""
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode()


class ServeView:
    """One immutable published state of the control plane.

    Everything a request might read hangs off this object; nothing on
    it mutates after construction except the internal body cache, which
    only ever gains entries whose content is a pure function of the
    frozen state.
    """

    def __init__(
        self,
        *,
        version: int,
        policy: dict,
        snap: StreamSnapshot,
        jobs: JobStats,
        index: JobStateIndex,
        factors,
        decision: CapDecision,
        policy_version: int = 1,
        published_wall_s: Optional[float] = None,
        incidents: Optional[dict] = None,
        history=None,
        logs=None,
    ) -> None:
        self.version = version
        self.policy = dict(policy)
        self.snap = snap
        self.jobs = jobs
        self.index = index
        self.factors = factors
        self.decision = decision
        self.policy_version = policy_version
        #: Frozen forensics snapshot (``Forensics.serve_doc()`` shape);
        #: ``None`` when the plane runs without a flight recorder.
        self.incidents = incidents
        #: Frozen history read handle
        #: (:class:`~repro.obs.history.HistoryView`): the store plus
        #: the per-level row counts at publish time, so ``/v1/query``
        #: answers stay byte-stable however far ingest advances after
        #: this view was published.  ``None`` without a history store.
        self.history = history
        #: Frozen event-log read handle
        #: (:class:`~repro.obs.log.events.LogView`): the ring snapshot
        #: at publish time, so ``/v1/logs`` answers stay byte-stable
        #: while the live log keeps emitting.  ``None`` without a log.
        self.logs = logs
        self.published_wall_s = (
            published_wall_s if published_wall_s is not None else time.time()
        )
        self.sealed_until_s = snap.stats.sealed_until_s
        self.watermark_s = snap.stats.watermark_s
        self._bodies: Dict[str, Tuple[int, bytes]] = {}
        self._render_lock = threading.Lock()

    # -- request path -------------------------------------------------------------

    def body(self, route: str) -> Tuple[int, bytes]:
        """(status, bytes) for one canonical route key, memoized."""
        hit = self._bodies.get(route)
        if hit is not None:
            return hit
        status, doc = self._build(route)
        payload = render_body(doc)
        if status == 200 and len(self._bodies) < 8192:
            # Only successful bodies are memoized (404 routes are
            # request-controlled and would grow the cache without
            # bound); the size guard caps worst-case memory per view.
            with self._render_lock:
                self._bodies.setdefault(route, (status, payload))
            return self._bodies[route]
        return status, payload

    def prerender(self) -> "ServeView":
        for route in HOT_ROUTES:
            self.body(route)
        return self

    # -- document builders --------------------------------------------------------

    def _build(self, route: str) -> Tuple[int, dict]:
        parts = route.split("?", 1)[0].split("/")
        if route == "fleet/cap":
            return 200, self._fleet_cap_doc()
        if route == "fleet/savings":
            return 200, self._fleet_savings_doc()
        if route == "policy":
            return 200, self._policy_doc()
        if parts[0] == "jobs":
            if len(parts) == 1:
                return 200, self._jobs_doc(route)
            try:
                job_id = int(parts[1])
            except ValueError:
                return 404, {"error": f"bad job id {parts[1]!r}"}
            if self.index.get(job_id) is None:
                return 404, {"error": f"no job {job_id}"}
            if len(parts) == 2:
                return 200, self._job_doc(job_id)
            if len(parts) == 3 and parts[2] == "cap":
                return 200, self._job_cap_doc(job_id)
            if len(parts) == 3 and parts[2] == "savings":
                return 200, self._job_savings_doc(job_id)
        if parts[0] == "incidents":
            if self.incidents is None:
                return 404, {
                    "error": "forensics disabled (no flight recorder)"
                }
            if len(parts) == 1:
                return 200, self._incidents_doc()
            if len(parts) == 2:
                return self._incident_doc(parts[1])
        if parts[0] == "logs" and len(parts) == 1:
            if self.logs is None:
                return 404, {"error": "logging disabled (no event log)"}
            return self._logs_doc(route)
        if parts[0] in ("series", "query") and len(parts) == 1:
            if self.history is None:
                return 404, {
                    "error": "history disabled (no history store)"
                }
            if parts[0] == "series":
                return 200, self._series_doc()
            return self._query_doc(route)
        return 404, {"error": f"no endpoint /v1/{route}"}

    def _head(self) -> dict:
        stats = self.snap.stats
        return {
            "version": self.version,
            "sealed_until_s": _finite(self.sealed_until_s),
            "watermark_s": _finite(self.watermark_s),
            "windows_folded": stats.windows_folded,
            "samples_folded": stats.samples_folded,
        }

    def _advisor_dict(self) -> Optional[dict]:
        rec = self.snap.recommendation
        if rec is None:
            return None
        return {
            "knob": rec.knob,
            "cap": rec.cap,
            "expected_saving_mwh": rec.expected_saving_mwh,
            "savings_pct": rec.savings_pct,
            "runtime_increase_pct": rec.runtime_increase_pct,
        }

    def _fleet_cap_doc(self) -> dict:
        doc = self._head()
        doc["policy"] = self.policy
        doc["decision"] = self.decision.to_dict()
        # The stream-layer Table V advisor, for parity with `repro
        # stream` output (identical under the slowdown objective).
        doc["advisor"] = self._advisor_dict()
        return doc

    def _fleet_savings_doc(self) -> dict:
        cube = self.snap.cube
        doc = self._head()
        doc["policy"] = self.policy
        doc["energy"] = {
            "total_j": cube.total_energy_j,
            "by_region_j": [float(x) for x in cube.region_energy_j()],
            "gpu_hours": cube.total_gpu_hours,
        }
        doc["decision"] = self.decision.to_dict()
        doc["advisor"] = self._advisor_dict()
        return doc

    def _policy_doc(self) -> dict:
        doc = self._head()
        doc["policy"] = self.policy
        doc["policy_version"] = self.policy_version
        doc["objectives"] = {
            name: obj.description for name, obj in sorted(OBJECTIVES.items())
        }
        return doc

    def _job_row(self, job_id: int) -> dict:
        meta = self.index.meta(job_id)
        row = meta.to_dict()
        row["energy_j"] = self.jobs.job_energy_j(job_id)
        row["gpu_hours"] = float(self.jobs.gpu_hours[job_id].sum())
        row["samples"] = int(self.jobs.samples[job_id])
        return row

    def _jobs_doc(self, route: str) -> dict:
        limit = None
        if "?" in route:
            query = route.split("?", 1)[1]
            for part in query.split("&"):
                if part.startswith("limit="):
                    try:
                        limit = max(0, int(part[len("limit="):]))
                    except ValueError:
                        limit = None
        ids = self.jobs.active_job_ids()
        ids = [j for j in ids if self.index.get(j) is not None]
        ids.sort(key=lambda j: (-self.jobs.job_energy_j(j), j))
        doc = self._head()
        doc["count"] = len(ids)
        if limit is not None:
            ids = ids[:limit]
        doc["jobs"] = [self._job_row(j) for j in ids]
        return doc

    def _job_decision(self, job_id: int) -> CapDecision:
        return decide_cap(
            self.jobs.energy_j[job_id],
            self.factors,
            objective=self.policy["objective"],
            max_slowdown_pct=self.policy["max_slowdown_pct"],
        )

    def _job_doc(self, job_id: int) -> dict:
        doc = self._head()
        doc["job"] = self._job_row(job_id)
        doc["job"]["by_region_j"] = [
            float(x) for x in self.jobs.energy_j[job_id]
        ]
        doc["job"]["first_seen_s"] = _finite(self.jobs.first_seen_s[job_id])
        doc["job"]["last_seen_s"] = _finite(self.jobs.last_seen_s[job_id])
        doc["decision"] = self._job_decision(job_id).to_dict()
        return doc

    def _job_cap_doc(self, job_id: int) -> dict:
        doc = self._head()
        doc["job_id"] = job_id
        doc["policy"] = self.policy
        doc["decision"] = self._job_decision(job_id).to_dict()
        return doc

    def _incidents_doc(self) -> dict:
        doc = self._head()
        doc["summary"] = self.incidents.get("summary", {})
        doc["open"] = self.incidents.get("open", 0)
        doc["total"] = self.incidents.get("total", 0)
        doc["incidents"] = self.incidents.get("incidents", [])
        return doc

    def _incident_doc(self, incident_id: str) -> Tuple[int, dict]:
        for incident in self.incidents.get("incidents", []):
            if incident["id"] == incident_id:
                doc = self._head()
                doc["incident"] = incident
                doc["records"] = (
                    self.incidents.get("records_by_id", {})
                    .get(incident_id, [])
                )
                return 200, doc
        return 404, {"error": f"no incident {incident_id}"}

    def _series_doc(self) -> dict:
        doc = self._head()
        doc.update(self.history.series_doc())
        return doc

    def _query_doc(self, route: str) -> Tuple[int, dict]:
        """Answer ``/v1/query?series=...`` from the frozen history view.

        Time-range and step parameters default from the view's frozen
        span, so the rendered body is a pure function of the canonical
        route key plus the view — cacheable like every other route.
        """
        params: Dict[str, str] = {}
        if "?" in route:
            for part in route.split("?", 1)[1].split("&"):
                if "=" in part:
                    key, _, value = part.partition("=")
                    params[key] = value
        series = params.get("series")
        if not series:
            return 400, {"error": "query requires series=<name>"}
        span = self.history.span()
        if span is None:
            return 404, {"error": "no history rows yet"}
        window_s = self.history.store.window_s or 0.0
        try:
            t0 = float(params.get("t0", span[0]))
            t1 = float(params.get("t1", span[1] + window_s))
            step = float(
                params.get("step", max((t1 - t0) / 60.0, window_s))
            )
            agg = params.get("agg")
            level = (
                int(params["level"]) if "level" in params else None
            )
        except ValueError as exc:
            return 400, {"error": f"bad query parameter: {exc}"}
        try:
            result = self.history.select(
                series, t0, t1, step, agg=agg, level=level
            )
        except HistoryError as exc:
            return 400, {"error": str(exc)}
        doc = self._head()
        doc["query"] = result.to_dict()
        return 200, doc

    def _logs_doc(self, route: str) -> Tuple[int, dict]:
        """Answer ``/v1/logs`` from the frozen log view.

        Filters ride :func:`repro.obs.log.query.select`, a pure
        function of the frozen record tuple, so rendered bodies are
        cacheable like every other route.  ``limit`` keeps the newest
        matches and defaults to 200.
        """
        params: Dict[str, str] = {}
        if "?" in route:
            for part in route.split("?", 1)[1].split("&"):
                if "=" in part:
                    key, _, value = part.partition("=")
                    params[key] = value
        try:
            t0 = float(params["t0"]) if "t0" in params else None
            t1 = float(params["t1"]) if "t1" in params else None
            window = (
                int(params["window"]) if "window" in params else None
            )
            limit = max(0, int(params.get("limit", 200)))
        except ValueError as exc:
            return 400, {"error": f"bad logs parameter: {exc}"}
        try:
            records = select_logs(
                self.logs.records,
                t0=t0, t1=t1,
                min_severity=params.get("severity"),
                event=params.get("event"),
                window=window, limit=limit,
            )
        except LogError as exc:
            return 400, {"error": str(exc)}
        doc = self._head()
        doc["summary"] = {
            "emitted": self.logs.emitted,
            "suppressed": self.logs.suppressed,
            "sampled_out": self.logs.sampled_out,
            "evicted": self.logs.evicted,
            "resident": len(self.logs.records),
        }
        doc["count"] = len(records)
        doc["logs"] = records
        return 200, doc

    def _job_savings_doc(self, job_id: int) -> dict:
        decision = self._job_decision(job_id)
        fleet_j = self.snap.cube.total_energy_j
        doc = self._head()
        doc["job_id"] = job_id
        doc["energy_j"] = decision.baseline_energy_j
        doc["saving_j"] = decision.saving_j
        doc["savings_pct"] = decision.savings_pct
        doc["runtime_increase_pct"] = decision.runtime_increase_pct
        doc["fleet_share_pct"] = (
            100.0 * decision.baseline_energy_j / fleet_j
            if fleet_j > 0 else 0.0
        )
        return doc


class SnapshotCache:
    """Atomic publish/read of the current :class:`ServeView`."""

    def __init__(self) -> None:
        self._view: Optional[ServeView] = None
        self._publish_lock = threading.Lock()
        self._version = 0

    @property
    def view(self) -> Optional[ServeView]:
        # A bare attribute read: atomic under CPython, no reader lock.
        return self._view

    @property
    def version(self) -> int:
        return self._version

    def publish(self, build) -> ServeView:
        """Build and swap in the next view; ``build(version) -> ServeView``."""
        with self._publish_lock:
            version = self._version + 1
            view = build(version)
            view.prerender()
            self._version = version
            self._view = view
            return view
