"""The control plane: ingest + analytics + policy + publication.

:class:`ControlPlane` wires the pieces into one long-running service:

* a :class:`~repro.stream.engine.StreamEngine` folds arrival chunks
  into the fleet cube, with the per-job
  :class:`~repro.serve.analytics.JobAccumulator` riding the engine's
  window-observer hook so both folds see the identical canonical
  window sequence;
* after every ingest that seals windows, :meth:`refresh` publishes a
  new immutable :class:`~repro.serve.cache.ServeView` (fleet snapshot,
  per-job stats, cap decisions under the active objective) into the
  :class:`~repro.serve.cache.SnapshotCache`;
* :meth:`serve` exposes the cache over HTTP
  (:class:`~repro.serve.http.ControlPlaneServer`); request metrics land
  in the same :class:`~repro.obs.metrics.MetricsRegistry` the ingest
  mirrors write to, so one ``/metrics`` scrape covers both;
* ``serve_snapshot_age_s`` — how far the engine's sealed frontier has
  run ahead of the published view, in event-time seconds — rides the
  engine's metric-source hook into health rule evaluation, so the
  shipped ``serve_snapshot_stale`` rule fires when publication stalls
  behind ingest.

The policy (objective + slowdown budget) is mutable at runtime via
:meth:`set_policy` (the ``POST /v1/policy`` endpoint); every change
republishes immediately.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional

import numpy as np

from .. import constants
from ..core.characterization import CapFactors, measured_factors
from ..errors import ServeError
from ..obs import runtime as _obs
from ..obs.metrics import MetricsRegistry
from ..scheduler.log import SchedulerLog
from ..stream.buffer import DEFAULT_WINDOW_S
from ..stream.engine import StreamEngine
from ..telemetry.schema import TelemetryChunk
from .analytics import JobAccumulator
from .cache import ServeView, SnapshotCache
from .http import SERVE_LATENCY_BUCKETS, ControlPlaneServer
from .jobs import JobStateIndex
from .objectives import decide_cap, get_objective


def _frontier_s(stats) -> Optional[float]:
    """Folded event-time frontier of one engine snapshot, if any."""
    for candidate in (stats.sealed_until_s, stats.max_event_time_s):
        if np.isfinite(candidate):
            return float(candidate)
    return None


class PolicyState:
    """The mutable serving policy (objective + budget), version-stamped."""

    def __init__(
        self,
        *,
        objective: str = "slowdown",
        max_slowdown_pct: float = 5.0,
        knob: str = "frequency",
        campaign_energy_mwh: Optional[float] = None,
    ) -> None:
        get_objective(objective)
        if max_slowdown_pct < 0:
            raise ServeError("slowdown budget must be >= 0")
        self.objective = objective
        self.max_slowdown_pct = float(max_slowdown_pct)
        self.knob = knob
        self.campaign_energy_mwh = campaign_energy_mwh
        self.version = 1

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "max_slowdown_pct": self.max_slowdown_pct,
            "knob": self.knob,
            "campaign_energy_mwh": self.campaign_energy_mwh,
        }


class ControlPlane:
    """Live telemetry in, cached cap decisions out."""

    def __init__(
        self,
        log: SchedulerLog,
        *,
        factors: Optional[CapFactors] = None,
        objective: str = "slowdown",
        max_slowdown_pct: float = 5.0,
        campaign_energy_mwh: Optional[float] = None,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
        window_s: float = DEFAULT_WINDOW_S,
        lateness_s: float = 0.0,
        monitor=None,
        registry: Optional[MetricsRegistry] = None,
        forensics=True,
        history=None,
        event_log=None,
    ) -> None:
        self.log = log
        self.factors = (
            factors if factors is not None else measured_factors("frequency")
        )
        self.policy = PolicyState(
            objective=objective,
            max_slowdown_pct=max_slowdown_pct,
            knob=self.factors.knob,
            campaign_energy_mwh=campaign_energy_mwh,
        )
        self.engine = StreamEngine(
            log,
            interval_s=interval_s,
            window_s=window_s,
            lateness_s=lateness_s,
        )
        self.index = JobStateIndex(log)
        self.job_acc = JobAccumulator(self.index, interval_s=interval_s)
        self.engine.add_window_observer(self.job_acc.update)
        self.engine.add_metric_source(self.serve_metric_values)
        self.monitor = monitor
        if monitor is not None:
            self.engine.attach_health(monitor)
        # The flight recorder rides the same window-observer hook,
        # *after* the per-job fold, so a record sees the decision that
        # was in force while its window's samples were charged (window
        # observers run before refresh() republishes).
        if forensics is True:
            from ..obs.forensics import Forensics

            forensics = Forensics(
                tagger=self.index, monitor=monitor, interval_s=interval_s,
            )
        self.forensics = forensics if forensics else None
        if self.forensics is not None:
            self.forensics.set_tagger(self.index)
            if monitor is not None and self.forensics.monitor is None:
                self.forensics.set_monitor(monitor)
            self.forensics.set_decision_feed(self._decision_feed)
            self.engine.attach_recorder(self.forensics)
        self.registry = (
            registry
            if registry is not None
            else (monitor.registry if monitor is not None
                  else MetricsRegistry())
        )
        self.cache = SnapshotCache()
        #: Guards metric writes vs /metrics renders (the registry's own
        #: lock only covers family creation, not series iteration).
        self.metrics_lock = threading.Lock()
        # The history store rides the window-observer hook after the
        # per-job fold and the flight recorder, so its rows see the
        # same decision-in-force the recorder stamps.
        self.history = history if history else None
        if self.history is not None:
            if monitor is not None and self.history.monitor is None:
                self.history.set_monitor(monitor)
            self.history.set_decision_feed(self._decision_feed)
            self.history.set_registry(
                self.registry, lock=self.metrics_lock
            )
            self.engine.attach_history(self.history)
        # The structured event log attaches last on the same hook, so a
        # window-seal record sees state every earlier fold has already
        # advanced; serving-side events (decide_cap, publish, policy,
        # shutdown) are emitted by the methods below.
        self.event_log = event_log if event_log else None
        if self.event_log is not None:
            self.event_log.set_decision_feed(self._decision_feed)
            self.engine.attach_log(self.event_log)
            if monitor is not None:
                monitor.alerts.add_listener(self.event_log.alert_transition)
            if self.forensics is not None:
                self.forensics.set_event_log(self.event_log)
        self._req_seq = 0
        self._refresh_lock = threading.Lock()
        self._policy_lock = threading.Lock()
        self.stop_event = threading.Event()
        self._server: Optional[ControlPlaneServer] = None

    # -- ingest -------------------------------------------------------------------

    def ingest(self, chunk: TelemetryChunk) -> int:
        """Absorb one arrival chunk; republish if windows sealed."""
        folded = self.engine.ingest(chunk)
        if folded:
            self.refresh()
        return folded

    def drain(self) -> int:
        """Seal and fold everything buffered, then republish."""
        folded = self.engine.drain()
        self.refresh()
        return folded

    def run(
        self,
        source: Iterable[TelemetryChunk],
        *,
        max_chunks: Optional[int] = None,
        drain: bool = True,
        chunk_delay_s: float = 0.0,
    ) -> "ControlPlane":
        """Consume a source until it ends, the cap, or a stop request.

        ``chunk_delay_s`` paces arrivals (a live-fleet simulation knob);
        the wait doubles as the stop-request poll, so shutdown stays
        prompt even mid-source.
        """
        for i, chunk in enumerate(source):
            if self.stop_event.is_set():
                return self
            if max_chunks is not None and i >= max_chunks:
                break
            self.ingest(chunk)
            if chunk_delay_s > 0 and self.stop_event.wait(chunk_delay_s):
                return self
        if drain:
            self.drain()
        return self

    # -- publication --------------------------------------------------------------

    def refresh(self) -> ServeView:
        """Publish a fresh immutable view of the current sealed state."""
        with self._refresh_lock:
            with _obs.span("serve.refresh"):
                with self._policy_lock:
                    policy = self.policy.to_dict()
                    policy_version = self.policy.version
                snap = self.engine.snapshot(
                    factors=self.factors,
                    campaign_energy_mwh=policy["campaign_energy_mwh"],
                    max_slowdown_pct=policy["max_slowdown_pct"],
                )
                decision = decide_cap(
                    snap.cube.region_energy_j(),
                    self.factors,
                    objective=policy["objective"],
                    max_slowdown_pct=policy["max_slowdown_pct"],
                )
                incidents = (
                    self.forensics.serve_doc()
                    if self.forensics is not None
                    else None
                )
                history_view = (
                    self.history.reader_view()
                    if self.history is not None
                    else None
                )
                logs_view = (
                    self.event_log.reader_view()
                    if self.event_log is not None
                    else None
                )
                view = self.cache.publish(
                    lambda version: ServeView(
                        version=version,
                        policy=policy,
                        snap=snap,
                        jobs=self.job_acc.snapshot(),
                        index=self.index,
                        factors=self.factors,
                        decision=decision,
                        policy_version=policy_version,
                        incidents=incidents,
                        history=history_view,
                        logs=logs_view,
                    )
                )
                if self.event_log is not None:
                    frontier = _frontier_s(snap.stats)
                    t_s = frontier if frontier is not None else 0.0
                    self.event_log.emit(
                        "info", "serve.decide_cap",
                        (f"cap {decision.cap:g} W" if decision.capped
                         else "uncapped"),
                        t_s=t_s, cap_version=view.version,
                        objective=policy["objective"],
                        cap_w=(float(decision.cap)
                               if decision.capped else None),
                        savings_pct=float(decision.savings_pct),
                    )
                    self.event_log.emit(
                        "info", "serve.publish",
                        f"published view v{view.version}",
                        t_s=t_s, cap_version=view.version,
                        policy_version=policy_version,
                        windows=int(snap.stats.windows_folded),
                    )
            with self.metrics_lock:
                self.engine.export_metrics(self.registry)
            return view

    def set_policy(
        self,
        *,
        objective: Optional[str] = None,
        max_slowdown_pct: Optional[float] = None,
    ) -> ServeView:
        """Change the serving objective and/or budget; republish now."""
        with self._policy_lock:
            if objective is not None:
                get_objective(str(objective))
                self.policy.objective = str(objective)
            if max_slowdown_pct is not None:
                try:
                    budget = float(max_slowdown_pct)
                except (TypeError, ValueError):
                    raise ServeError(
                        f"bad slowdown budget {max_slowdown_pct!r}"
                    ) from None
                if budget < 0:
                    raise ServeError("slowdown budget must be >= 0")
                self.policy.max_slowdown_pct = budget
            self.policy.version += 1
            if self.event_log is not None:
                self.event_log.emit(
                    "info", "serve.policy",
                    f"policy v{self.policy.version}: "
                    f"{self.policy.objective} within "
                    f"{self.policy.max_slowdown_pct:g}% slowdown",
                    policy_version=self.policy.version,
                    objective=self.policy.objective,
                    max_slowdown_pct=self.policy.max_slowdown_pct,
                )
        return self.refresh()

    # -- serving ------------------------------------------------------------------

    def serve(
        self, *, host: str = "127.0.0.1", port: int = 0
    ) -> ControlPlaneServer:
        """Start the HTTP API (publishing an initial view if needed)."""
        if self.cache.view is None:
            self.refresh()
        if self._server is None:
            self._server = ControlPlaneServer(
                self, host=host, port=port
            ).start()
        return self._server

    def request_stop(self) -> None:
        """Ask the serve/ingest loops to wind down (graceful shutdown)."""
        if self.event_log is not None and not self.stop_event.is_set():
            self.event_log.emit(
                "info", "serve.shutdown", "graceful stop requested"
            )
        self.stop_event.set()

    def wait_until_stopped(self, *, poll_s: float = 0.1) -> None:
        """Block until a stop is requested (the post-drain serve loop)."""
        while not self.stop_event.wait(poll_s):
            pass

    def close(self) -> None:
        """Stop the HTTP server (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()

    def __enter__(self) -> "ControlPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _decision_feed(self):
        """What the flight recorder stamps on each sealed window.

        Reads the *published* view — the decision a live fleet was
        acting on while the window's samples were generated — not the
        decision the window itself will produce after the next refresh.
        """
        view = self.cache.view
        if view is None:
            return (None, None, None, None)
        decision = view.decision
        return (
            decision.cap if decision.capped else None,
            view.policy.get("objective"),
            view.version,
            _frontier_s(view.snap.stats),
        )

    # -- metrics ------------------------------------------------------------------

    def serve_metric_values(self) -> Dict[str, float]:
        """Serving gauges merged into the engine's metric stream.

        ``serve_snapshot_age_s`` is *event-time* staleness: how far the
        engine's sealed frontier has advanced past the published view's.
        It grows only when ingest seals windows the API has not been
        given — exactly the condition the ``serve_snapshot_stale``
        health rule watches — and is immune to wall-clock idleness of
        a fully drained stream.
        """
        view = self.cache.view
        if view is None:
            return {}
        values = {"serve_snapshot_version": float(view.version)}
        # Sealed frontier of a live engine; a *drained* engine reports a
        # non-finite sentinel, so fall back to the last event time —
        # otherwise draining without republishing would make the metric
        # vanish and silently resolve the staleness alert.
        frontier = _frontier_s(self.engine.stats)
        published = _frontier_s(view.snap.stats)
        if frontier is not None:
            values["serve_snapshot_age_s"] = max(
                0.0, frontier - (published if published is not None else 0.0)
            )
        return values

    def observe_request(
        self, endpoint: str, status: int, elapsed_s: float, view
    ) -> None:
        """Meter one HTTP request into the shared registry.

        With an event log attached, the latency observation carries an
        OpenMetrics exemplar — the trace id of the request (the active
        obs trace when tracing is on, else a per-plane request
        sequence) — so the slowest request in each histogram bucket
        stays findable from a ``to_prometheus(exemplars=True)`` render.
        A rate-limited ``serve.request`` debug record rides along.
        """
        exemplar = None
        if self.event_log is not None:
            st = _obs._STATE
            with self.metrics_lock:
                self._req_seq += 1
                trace_id = (
                    st.tracer.trace_id if st is not None
                    else f"req-{self._req_seq:x}"
                )
            exemplar = {"trace_id": trace_id}
            frontier = (
                _frontier_s(view.snap.stats) if view is not None else None
            )
            self.event_log.emit(
                "debug", "serve.request", f"{endpoint} {status}",
                t_s=frontier if frontier is not None else 0.0,
                trace_id=trace_id,
                endpoint=endpoint, status=int(status),
                elapsed_s=float(elapsed_s),
            )
        with self.metrics_lock:
            self.registry.counter(
                "serve_requests_total",
                "control-plane HTTP requests served",
                endpoint=endpoint, status=str(status),
            ).inc()
            self.registry.histogram(
                "serve_request_seconds",
                "control-plane request latency",
                buckets=SERVE_LATENCY_BUCKETS,
                endpoint=endpoint,
            ).observe(elapsed_s, exemplar=exemplar)
            if view is not None:
                self.registry.gauge(
                    "serve_cache_age_s",
                    "wall-clock age of the served snapshot",
                ).set(max(0.0, time.time() - view.published_wall_s))
