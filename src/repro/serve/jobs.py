"""Job-state join index: tag every telemetry sample with its job.

The control plane mirrors the slurm-monitor + nvml-monitor pattern:
one monitor watches the scheduler (who runs where), one watches the
GPUs (what power each draws), and a join keys the second by the first.
Here the scheduler side is a :class:`~repro.scheduler.log.SchedulerLog`
and the join primitive is its vectorized
:meth:`~repro.scheduler.log.SchedulerLog.job_id_table` — one
composite-key ``searchsorted`` labels a whole telemetry chunk with job
ids (0 = idle), exactly as the campaign join does.

The simulated SLURM log carries no user or partition columns, so
:class:`JobMeta` derives both deterministically: the user from the
``project_id`` (the paper's join recovers ownership the same way) and
the partition from the Table VII size class — stable across runs, so
served documents stay bitwise-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ServeError
from ..scheduler.log import SchedulerLog
from ..telemetry.schema import TelemetryChunk

#: Table VII size class -> batch partition (synthesized; the simulated
#: scheduler log has no partition column).  Classes A/B are the
#: capability jobs a real Frontier queues separately.
PARTITION_BY_CLASS: Dict[str, str] = {
    "A": "batch-capability",
    "B": "batch-capability",
    "C": "batch-large",
    "D": "batch",
    "E": "batch-small",
}


def user_of_project(project_id: str) -> str:
    """Deterministic pseudonymous owner of a project (``pi-<project>``)."""
    return f"pi-{project_id}"


@dataclass(frozen=True)
class JobMeta:
    """Serving-side metadata of one job (the ``/v1/jobs`` identity row)."""

    job_id: int
    user: str
    account: str
    partition: str
    domain: str
    size_class: str
    num_nodes: int
    start_time_s: float
    end_time_s: float

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "user": self.user,
            "account": self.account,
            "partition": self.partition,
            "domain": self.domain,
            "size_class": self.size_class,
            "num_nodes": self.num_nodes,
            "start_time_s": self.start_time_s,
            "end_time_s": self.end_time_s,
        }


class JobStateIndex:
    """Scheduler state, indexed for the serving path.

    Holds one :class:`JobMeta` per job and tags telemetry chunks with
    job ids via the same join primitive the campaign cube uses, so the
    per-job analytics attribute exactly the samples the fleet cube
    counts.
    """

    def __init__(self, log: SchedulerLog) -> None:
        self.log = log
        self._meta: Dict[int, JobMeta] = {}
        for job in log.jobs:
            partition = PARTITION_BY_CLASS.get(job.size_class)
            if partition is None:
                raise ServeError(
                    f"job {job.job_id}: unknown size class "
                    f"{job.size_class!r}"
                )
            self._meta[job.job_id] = JobMeta(
                job_id=job.job_id,
                user=user_of_project(job.project_id),
                account=job.project_id,
                partition=partition,
                domain=job.domain,
                size_class=job.size_class,
                num_nodes=job.num_nodes,
                start_time_s=job.start_time_s,
                end_time_s=job.end_time_s,
            )
        self.max_job_id = max(self._meta, default=0)

    def __len__(self) -> int:
        return len(self._meta)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._meta

    def meta(self, job_id: int) -> JobMeta:
        try:
            return self._meta[job_id]
        except KeyError:
            raise ServeError(f"unknown job id {job_id}") from None

    def get(self, job_id: int) -> Optional[JobMeta]:
        return self._meta.get(job_id)

    def job_ids(self) -> List[int]:
        return sorted(self._meta)

    def tag(self, chunk: TelemetryChunk) -> np.ndarray:
        """Job id of every row in ``chunk`` (0 = idle node)."""
        return self.log.job_id_table(chunk.time_s, chunk.node_id)
