"""The control-plane HTTP API.

Extends the :class:`~repro.obs.httpd.HttpService` lifecycle the health
exporter uses (same bind/close semantics, same ephemeral ``port=0``
behavior) with the serving endpoints:

====================================  =======================================
``GET /v1/fleet/cap``                 current fleet cap decision + advisor
``GET /v1/fleet/savings``             fleet energy + projected savings
``GET /v1/jobs``                      active jobs by energy (``?limit=N``)
``GET /v1/jobs/{id}``                 one job: metadata + energy + decision
``GET /v1/jobs/{id}/cap``             that job's recommended cap
``GET /v1/jobs/{id}/savings``         that job's savings-so-far
``GET /v1/incidents``                 incident list from the flight recorder
``GET /v1/incidents/{id}``            one incident + its recorder slice
``GET /v1/series``                    history schema, span, levels, SLOs
``GET /v1/query``                     history range query (``?series=...``)
``GET /v1/logs``                      structured event log (``?severity=``
                                      ``&event=&t0=&t1=&window=&limit=``)
``GET /v1/policy``                    active objective + available plug-ins
``POST /v1/policy``                   switch objective / slowdown budget
``POST /v1/admin/shutdown``           graceful stop (CLI serve loop exits)
``GET /metrics /health /alerts``      the observability endpoints, shared
                                      with ingest — one scrape covers both
====================================  =======================================

Every ``/v1`` answer comes from the immutable published
:class:`~repro.serve.cache.ServeView` (read-through byte cache; see
``docs/serving.md``), so request handling never touches ingest state.
Requests are metered into the plane's :class:`MetricsRegistry`:
``serve_requests_total{endpoint,status}``, a per-endpoint
``serve_request_seconds`` histogram with sub-millisecond buckets, and
the ``serve_cache_age_s`` gauge (wall age of the served view).
"""

from __future__ import annotations

import re
import time
from http.server import ThreadingHTTPServer

from ..errors import ServeError
from ..obs.history.query import QUERY_AGGS
from ..obs.httpd import HttpService, JsonRequestHandler
from ..obs.log.events import SEVERITIES

#: Sub-millisecond-resolving latency buckets (seconds) for the
#: serve_request_seconds histogram; the SLO gate is p99 < 5 ms.
SERVE_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

_INDEX_TEXT = (
    "repro control plane\n"
    "endpoints: /v1/fleet/cap /v1/fleet/savings /v1/jobs "
    "/v1/jobs/{id} /v1/jobs/{id}/cap /v1/jobs/{id}/savings "
    "/v1/incidents /v1/incidents/{id} "
    "/v1/series /v1/query /v1/logs "
    "/v1/policy (GET/POST) /v1/admin/shutdown (POST) "
    "/metrics /health /alerts\n"
)

_SERIES_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]{0,79}$")

#: Event names are dotted identifiers (``serve.decide_cap``); a
#: trailing dot is a valid prefix filter (``serve.``).
_EVENT_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]{0,79}$")


def _jobs_route_key(query: str) -> str:
    """Canonical cache key for ``/v1/jobs`` (bounded ``limit`` space)."""
    for part in query.split("&"):
        if part.startswith("limit="):
            try:
                limit = int(part[len("limit="):])
            except ValueError:
                break
            return f"jobs?limit={max(0, min(limit, 100_000))}"
    return "jobs"


def _query_route_key(query: str) -> str:
    """Canonical cache key for ``/v1/query``.

    Parameter values are normalized (floats via ``repr(float(...))``,
    names/aggs validated against closed sets, unknown keys dropped) so
    equivalent requests share one cached body and hostile values can't
    grow the key space unboundedly — invalid values map to sentinel
    keys the view answers with a 400.
    """
    params = {}
    for part in query.split("&"):
        if "=" in part:
            key, _, value = part.partition("=")
            params[key] = value
    pieces = []
    series = params.get("series", "")
    if not _SERIES_NAME_RE.match(series):
        series = ""
    pieces.append(f"series={series}")
    for key in ("t0", "t1", "step"):
        if key in params:
            try:
                pieces.append(f"{key}={float(params[key])!r}")
            except ValueError:
                pieces.append(f"{key}=bad")
    if "agg" in params:
        agg = params["agg"]
        pieces.append(
            f"agg={agg if agg in QUERY_AGGS else 'bad'}"
        )
    if "level" in params:
        try:
            pieces.append(f"level={int(params['level'])}")
        except ValueError:
            pieces.append("level=bad")
    return "query?" + "&".join(pieces)


def _logs_route_key(query: str) -> str:
    """Canonical cache key for ``/v1/logs``.

    Same normalization contract as :func:`_query_route_key`: floats via
    ``repr(float(...))``, severities/event names validated against
    closed sets or bounded patterns, unknown keys dropped, invalid
    values mapped to sentinel keys the view answers deterministically.
    """
    params = {}
    for part in query.split("&"):
        if "=" in part:
            key, _, value = part.partition("=")
            params[key] = value
    pieces = []
    for key in ("t0", "t1"):
        if key in params:
            try:
                pieces.append(f"{key}={float(params[key])!r}")
            except ValueError:
                pieces.append(f"{key}=bad")
    if "severity" in params:
        severity = params["severity"]
        pieces.append(
            f"severity={severity if severity in SEVERITIES else 'bad'}"
        )
    if "event" in params:
        event = params["event"]
        if not _EVENT_NAME_RE.match(event.rstrip(".")) or ".." in event:
            event = "bad"
        pieces.append(f"event={event}")
    if "window" in params:
        try:
            pieces.append(f"window={int(params['window'])}")
        except ValueError:
            pieces.append("window=bad")
    if "limit" in params:
        try:
            limit = int(params["limit"])
        except ValueError:
            limit = 200
        pieces.append(f"limit={max(0, min(limit, 100_000))}")
    return "logs?" + "&".join(pieces) if pieces else "logs"


class _Handler(JsonRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        t0 = time.perf_counter()
        plane = self.server.plane
        raw = self.path
        path = raw.split("?", 1)[0].rstrip("/") or "/"
        query = raw.split("?", 1)[1] if "?" in raw else ""
        view = plane.cache.view
        endpoint, status = path, 500
        try:
            endpoint, status = self._route(method, path, query, view, plane)
        except (BrokenPipeError, ConnectionResetError):
            return
        except ServeError as exc:
            status = 400
            self._send_json(status, {"error": str(exc)})
        except Exception as exc:
            status = 500
            self._send_error_500(exc)
        finally:
            plane.observe_request(
                endpoint, status, time.perf_counter() - t0, view
            )

    def _route(self, method, path, query, view, plane):
        """Dispatch one request; returns (endpoint label, status)."""
        registry = plane.registry
        monitor = plane.monitor
        if path == "/metrics" and method == "GET":
            # With an event log attached, latency buckets carry
            # OpenMetrics exemplars (trace id of the slowest request).
            with plane.metrics_lock:
                body = registry.to_prometheus(
                    exemplars=plane.event_log is not None
                )
            self._send(200, "text/plain; version=0.0.4", body)
            return path, 200
        if path == "/health" and method == "GET":
            if monitor is None:
                self._send_json(200, {"status": "ok", "rules": []})
                return path, 200
            doc = monitor.to_health_dict()
            status = 200 if doc["status"] == "ok" else 503
            self._send_json(status, doc)
            return path, status
        if path == "/alerts" and method == "GET":
            doc = (
                monitor.to_alerts_dict()
                if monitor is not None
                else {"firing": [], "history": []}
            )
            self._send_json(200, doc)
            return path, 200
        if path == "/" and method == "GET":
            self._send(200, "text/plain", _INDEX_TEXT)
            return path, 200

        if path == "/v1/admin/shutdown" and method == "POST":
            self._send_json(200, {"status": "shutting down"})
            plane.request_stop()
            return path, 200
        if path == "/v1/policy" and method == "POST":
            doc = self._read_json_body()
            new_view = plane.set_policy(
                objective=doc.get("objective"),
                max_slowdown_pct=doc.get("max_slowdown_pct"),
            )
            status, payload = new_view.body("policy")
            self._send_bytes(status, "application/json", payload)
            return path, status

        if method != "GET":
            self._send_json(405, {"error": f"no {method} {path}"})
            return path, 405
        if not path.startswith("/v1/"):
            self._send_json(404, {"error": f"no endpoint {path}"})
            return path, 404
        if view is None:
            self._send_json(503, {"error": "no snapshot published yet"})
            return path, 503

        rest = path[len("/v1/"):]
        parts = rest.split("/")
        if rest in ("fleet/cap", "fleet/savings", "policy"):
            key, endpoint = rest, path
        elif parts[0] == "jobs" and len(parts) == 1:
            key, endpoint = _jobs_route_key(query), "/v1/jobs"
        elif parts[0] == "jobs" and len(parts) in (2, 3):
            key = rest
            tail = "/" + parts[2] if len(parts) == 3 else ""
            endpoint = "/v1/jobs/{id}" + tail
        elif parts[0] == "incidents" and len(parts) == 1:
            key, endpoint = "incidents", "/v1/incidents"
        elif parts[0] == "incidents" and len(parts) == 2:
            key, endpoint = rest, "/v1/incidents/{id}"
        elif parts[0] == "series" and len(parts) == 1:
            key, endpoint = "series", "/v1/series"
        elif parts[0] == "query" and len(parts) == 1:
            key, endpoint = _query_route_key(query), "/v1/query"
        elif parts[0] == "logs" and len(parts) == 1:
            key, endpoint = _logs_route_key(query), "/v1/logs"
        else:
            self._send_json(404, {"error": f"no endpoint {path}"})
            return path, 404
        status, payload = view.body(key)
        self._send_bytes(status, "application/json", payload)
        return endpoint, status


class ControlPlaneServer(HttpService):
    """Serve one :class:`~repro.serve.service.ControlPlane` over HTTP.

    Same contract as the health exporter: daemon serving thread,
    ``port=0`` ephemeral binding, idempotent :meth:`start`/:meth:`close`,
    context-manager form joins the thread and releases the socket.
    """

    error_class = ServeError
    handler_class = _Handler
    service_name = "control plane"

    def __init__(self, plane, *, host: str = "127.0.0.1", port: int = 0):
        super().__init__(host=host, port=port)
        self.plane = plane

    def _configure(self, server: ThreadingHTTPServer) -> None:
        server.plane = self.plane
        server.on_handler_error = self._on_handler_error

    def _on_handler_error(self, path: str, exc: BaseException) -> None:
        plane = self.plane
        with plane.metrics_lock:
            plane.registry.counter(
                "serve_handler_errors_total",
                "unhandled handler exceptions answered with a 500",
            ).inc()
