"""Pluggable cap-decision objectives: energy, EDP, ED²P, slowdown budget.

Table V picks one fixed fleet cap by maximum projected savings under a
slowdown budget.  The power-capping-metric literature (see PAPERS.md)
shows the *metric* matters as much as the knob: minimizing energy,
energy-delay product (EDP), or ED²P yields different caps for the same
workload.  This module scores every characterized cap of a
:class:`~repro.core.characterization.CapFactors` against a pluggable
objective over a region-energy vector — the same (latency, MI, CI,
boost) split the projection uses, so region 2 scales by the MI energy
factor and region 3 by the CI factor, and the runtime increase is the
energy-weighted mean of the per-region runtime factors, exactly
mirroring :func:`repro.core.projection.project_savings`.

Because the arithmetic mirrors the projection term-for-term, a
``slowdown`` decision over a fleet cube's region energies lands on the
same cap as :func:`repro.policy.live.recommend_fleet_cap` — asserted in
``tests/serve/`` — while ``energy``/``edp``/``ed2p`` extend the menu.

New objectives plug in via :func:`register_objective`::

    register_objective(Objective(
        "edp_sq", "example", lambda e, dt, budget: e * (1 + dt / 100.0),
    ))
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.characterization import CapFactors
from ..errors import ServeError

#: Score signature: (projected_energy_j, runtime_increase_pct,
#: max_slowdown_pct) -> score.  Lower wins; +inf = infeasible.
ScoreFn = Callable[[float, float, float], float]


@dataclass(frozen=True)
class Objective:
    """One pluggable cap-scoring rule (lower score wins)."""

    name: str
    description: str
    score: ScoreFn


@dataclass(frozen=True)
class CapDecision:
    """The objective's verdict for one region-energy vector."""

    objective: str
    knob: str
    cap: Optional[float]            # None = leave uncapped
    baseline_energy_j: float
    projected_energy_j: float
    saving_j: float
    savings_pct: float
    runtime_increase_pct: float

    @property
    def capped(self) -> bool:
        return self.cap is not None

    def to_dict(self) -> dict:
        return {
            "objective": self.objective,
            "knob": self.knob,
            "cap": self.cap,
            "baseline_energy_j": self.baseline_energy_j,
            "projected_energy_j": self.projected_energy_j,
            "saving_j": self.saving_j,
            "savings_pct": self.savings_pct,
            "runtime_increase_pct": self.runtime_increase_pct,
        }


def _score_energy(energy_j: float, dt_pct: float, budget_pct: float) -> float:
    return energy_j


def _score_edp(energy_j: float, dt_pct: float, budget_pct: float) -> float:
    return energy_j * (1.0 + dt_pct / 100.0)


def _score_ed2p(energy_j: float, dt_pct: float, budget_pct: float) -> float:
    return energy_j * (1.0 + dt_pct / 100.0) ** 2


def _score_slowdown(
    energy_j: float, dt_pct: float, budget_pct: float
) -> float:
    return energy_j if dt_pct <= budget_pct else math.inf


#: The shipped objectives; extend via :func:`register_objective`.
OBJECTIVES: Dict[str, Objective] = {}


def register_objective(objective: Objective) -> Objective:
    """Add (or replace) an objective in the registry."""
    if not objective.name:
        raise ServeError("objective needs a name")
    if not callable(objective.score):
        raise ServeError(f"objective {objective.name!r}: score not callable")
    OBJECTIVES[objective.name] = objective
    return objective


register_objective(Objective(
    "energy",
    "minimize projected energy, slowdown ignored",
    _score_energy,
))
register_objective(Objective(
    "edp",
    "minimize energy x delay (EDP)",
    _score_edp,
))
register_objective(Objective(
    "ed2p",
    "minimize energy x delay^2 (ED2P, performance-leaning)",
    _score_ed2p,
))
register_objective(Objective(
    "slowdown",
    "minimize energy subject to the slowdown budget (the paper's rule)",
    _score_slowdown,
))


def objective_names() -> List[str]:
    return sorted(OBJECTIVES)


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ServeError(
            f"unknown objective {name!r}; known: "
            f"{', '.join(objective_names())}"
        ) from None


def decide_cap(
    region_energy_j: np.ndarray,
    factors: CapFactors,
    *,
    objective: str = "slowdown",
    max_slowdown_pct: float = 5.0,
) -> CapDecision:
    """Best cap for one region-energy vector under an objective.

    ``region_energy_j`` is the (4,) operating-region energy split of a
    fleet cube (:meth:`~repro.core.join.CampaignCube.region_energy_j`)
    or of one job's accumulated samples.  Candidates are the uncapped
    baseline plus every characterized cap, scored lower-is-better; ties
    keep the earlier candidate (uncapped first, then caps descending),
    so the decision is deterministic and never caps without strict
    improvement.
    """
    if max_slowdown_pct < 0:
        raise ServeError("slowdown budget must be >= 0")
    obj = get_objective(objective)
    region_energy_j = np.asarray(region_energy_j, dtype=np.float64)
    if region_energy_j.shape != (4,):
        raise ServeError(
            f"region energy must have shape (4,), got "
            f"{region_energy_j.shape}"
        )
    e_mi = float(region_energy_j[1])
    e_ci = float(region_energy_j[2])
    base_j = float(region_energy_j.sum())

    def uncapped() -> CapDecision:
        return CapDecision(
            objective=obj.name, knob=factors.knob, cap=None,
            baseline_energy_j=base_j, projected_energy_j=base_j,
            saving_j=0.0, savings_pct=0.0, runtime_increase_pct=0.0,
        )

    if base_j <= 0:
        return uncapped()

    best = uncapped()
    best_score = obj.score(base_j, 0.0, max_slowdown_pct)
    for cap in factors.caps():
        f_ci, f_mi = factors.energy_at(cap)
        rt_ci, rt_mi = factors.runtime_at(cap)
        saving = e_ci * (1.0 - f_ci) + e_mi * (1.0 - f_mi)
        projected = base_j - saving
        dt = 100.0 * (
            e_ci * max(rt_ci - 1.0, 0.0) + e_mi * max(rt_mi - 1.0, 0.0)
        ) / base_j
        score = obj.score(projected, dt, max_slowdown_pct)
        if score < best_score:
            best_score = score
            best = CapDecision(
                objective=obj.name, knob=factors.knob, cap=float(cap),
                baseline_energy_j=base_j, projected_energy_j=projected,
                saving_j=saving,
                savings_pct=100.0 * saving / base_j,
                runtime_increase_pct=dt,
            )
    return best
