"""The closed-loop power-management control plane (the "product").

The paper stops at *projected* savings; this package closes the loop
live.  A :class:`~repro.serve.service.ControlPlane` ingests telemetry
through the existing :class:`~repro.stream.engine.StreamEngine`, joins
scheduler/job state so every per-GPU sample carries ``job_id`` /
``user`` / ``partition`` (:mod:`~repro.serve.jobs`), maintains per-job
and per-fleet energy analytics with cap decisions under a pluggable
objective (:mod:`~repro.serve.objectives`, :mod:`~repro.serve.analytics`),
and serves the answers over HTTP (:mod:`~repro.serve.http`) from a
versioned read-through snapshot cache (:mod:`~repro.serve.cache`) —
thousands of concurrent pollers get sub-millisecond answers from the
last sealed window while ingest continues.

Usage::

    from repro.serve import ControlPlane

    plane = ControlPlane(log)
    with plane.serve(port=0) as server:
        for chunk in source:
            plane.ingest(chunk)     # pollers keep reading meanwhile
        plane.drain()
    # or from the CLI: ``repro serve``

See ``docs/serving.md`` for the API reference and cache semantics.
"""

from .analytics import JobAccumulator, JobStats
from .cache import ServeView, SnapshotCache
from .http import ControlPlaneServer
from .jobs import JobMeta, JobStateIndex
from .objectives import (
    OBJECTIVES,
    CapDecision,
    Objective,
    decide_cap,
    get_objective,
    objective_names,
    register_objective,
)
from .service import ControlPlane, PolicyState

__all__ = [
    "JobAccumulator",
    "JobStats",
    "ServeView",
    "SnapshotCache",
    "ControlPlaneServer",
    "JobMeta",
    "JobStateIndex",
    "OBJECTIVES",
    "CapDecision",
    "Objective",
    "decide_cap",
    "get_objective",
    "objective_names",
    "register_objective",
    "ControlPlane",
    "PolicyState",
]
