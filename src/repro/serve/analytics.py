"""Per-job energy analytics, folded live from sealed stream windows.

:class:`JobAccumulator` is the job-axis sibling of the campaign cube's
:class:`~repro.core.join.CampaignAccumulator`: the same join (one
composite-key ``searchsorted`` via :class:`~repro.serve.jobs.JobStateIndex`),
the same region split (:func:`~repro.core.join.region_index`), the same
one-``bincount`` fold — but keyed by ``job_id`` instead of
``(domain, class)``.  Feeding it the engine's sealed windows (via
:meth:`StreamEngine.add_window_observer`) in canonical order makes the
served per-job numbers bitwise-equal to an offline fold of
:func:`~repro.stream.sources.canonical_windows` over the same data —
the serving side of the streaming-vs-batch equivalence contract.

State is O(jobs x 4): a (max_job_id + 1, 4) energy/GPU-hour matrix plus
per-job sample counts and first/last-seen event times.  Row 0 is the
idle pseudo-job (samples with no allocation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .. import constants
from ..core.join import region_index
from ..telemetry.schema import TelemetryChunk
from .jobs import JobStateIndex


@dataclass(frozen=True)
class JobStats:
    """An immutable point-in-time copy of the per-job fold state."""

    energy_j: np.ndarray        # (n_jobs + 1, 4) per-region energy
    gpu_hours: np.ndarray       # (n_jobs + 1, 4) per-region GPU-hours
    samples: np.ndarray         # (n_jobs + 1,) telemetry rows folded
    first_seen_s: np.ndarray    # (n_jobs + 1,) +inf until first sample
    last_seen_s: np.ndarray     # (n_jobs + 1,) -inf until first sample

    def job_energy_j(self, job_id: int) -> float:
        return float(self.energy_j[job_id].sum())

    def active_job_ids(self) -> List[int]:
        """Job ids (idle row excluded) with at least one folded sample."""
        ids = np.nonzero(self.samples)[0]
        return [int(j) for j in ids if j != 0]


class JobAccumulator:
    """Incremental per-job region-energy fold (the serving-side join)."""

    def __init__(
        self,
        index: JobStateIndex,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        self.index = index
        self.interval_s = interval_s
        n = index.max_job_id + 1
        self.energy_j = np.zeros((n, 4))
        self.gpu_hours = np.zeros((n, 4))
        self.samples = np.zeros(n, dtype=np.int64)
        self.first_seen_s = np.full(n, np.inf)
        self.last_seen_s = np.full(n, -np.inf)
        self.windows_folded = 0

    def update(self, window: TelemetryChunk) -> None:
        """Fold one sealed window (canonical order for bitwise results)."""
        self.windows_folded += 1
        if not len(window):
            return
        interval = self.interval_s
        jid = self.index.tag(window)
        power = window.gpu_power_w                      # (n, gpus)
        reg = region_index(power)
        n_rows = self.energy_j.shape[0]
        key = (jid[:, None] * 4 + reg).reshape(-1)
        flat_p = power.reshape(-1).astype(np.float64)
        minlength = n_rows * 4
        self.energy_j += (
            np.bincount(key, weights=flat_p, minlength=minlength)
            .reshape(n_rows, 4) * interval
        )
        self.gpu_hours += (
            np.bincount(key, minlength=minlength).reshape(n_rows, 4)
            * (interval / 3600.0)
        )
        self.samples += np.bincount(jid, minlength=n_rows)
        np.minimum.at(self.first_seen_s, jid, window.time_s)
        np.maximum.at(self.last_seen_s, jid, window.time_s)

    def snapshot(self) -> JobStats:
        """A copy of the fold state, safe to read while ingest continues."""
        return JobStats(
            energy_j=self.energy_j.copy(),
            gpu_hours=self.gpu_hours.copy(),
            samples=self.samples.copy(),
            first_seen_s=self.first_seen_s.copy(),
            last_seen_s=self.last_seen_s.copy(),
        )
