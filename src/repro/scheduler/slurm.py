"""FIFO + EASY-backfill scheduling over the node pool.

A deliberately compact SLURM stand-in: jobs arrive from the workload mix,
wait FIFO, and start when enough free nodes exist.  When the queue head is
blocked it receives a *reservation* (the earliest instant enough nodes
will have been released), and queued jobs may backfill ahead of it only if
they cannot delay that reservation — the EASY rule.  Without the
reservation, leadership-scale jobs (class A needs >=60 % of the machine)
starve behind a stream of small jobs and the Fig 10 energy-by-class
structure disappears.

The output — which jobs ran where and when — is all the downstream power
analysis consumes; priorities, fairshare, and preemption are irrelevant to
the study and intentionally omitted.
"""

from __future__ import annotations

import heapq
from typing import List

from ..errors import ScheduleError
from ..rng import RngLike, ensure_rng
from .jobs import Job
from .log import NodeAllocation, SchedulerLog
from .workload import JobRequest, WorkloadMix


class SlurmSimulator:
    """Generate a scheduler log for a fleet over a time horizon."""

    def __init__(
        self,
        mix: WorkloadMix,
        *,
        target_utilization: float = 0.95,
        backfill_depth: int = 32,
        overload_factor: float = 1.7,
    ) -> None:
        if not (0 < target_utilization <= 1):
            raise ScheduleError("target_utilization must be in (0, 1]")
        if backfill_depth < 0:
            raise ScheduleError("backfill_depth must be >= 0")
        if overload_factor < 1.0:
            raise ScheduleError("overload_factor must be >= 1")
        self.mix = mix
        self.target_utilization = target_utilization
        self.backfill_depth = backfill_depth
        self.overload_factor = overload_factor

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _reservation(head: JobRequest, free_count: int, running: List[tuple]):
        """EASY reservation for a blocked head.

        Returns ``(t_res, shadow)``: the earliest time the head can start
        given current running jobs, and the node count that will remain
        free at that time after the head is placed (backfill jobs larger
        than ``shadow`` must finish before ``t_res``).
        """
        acc = free_count
        for end, _jid, nodes in sorted(running):
            acc += len(nodes)
            if acc >= head.num_nodes:
                return end, acc - head.num_nodes
        return float("inf"), 0

    def run(self, horizon_s: float, *, rng: RngLike = None) -> SchedulerLog:
        """Simulate ``horizon_s`` seconds of job traffic."""
        if horizon_s <= 0:
            raise ScheduleError("horizon must be positive")
        gen = ensure_rng(rng)
        n_nodes = self.mix.fleet_nodes

        # Arrival rate: offered load = overload_factor x the utilization
        # target, so the queue stays deep enough for backfill to realize
        # the target.
        probe = [self.mix.sample_request(0.0, gen) for _ in range(256)]
        mean_demand = sum(r.num_nodes * r.duration_s for r in probe) / len(
            probe
        )
        rate = (
            self.overload_factor
            * self.target_utilization
            * n_nodes
            / mean_demand
        )

        arrivals: List[JobRequest] = []
        t = 0.0
        while True:
            t += float(gen.exponential(1.0 / rate))
            if t >= horizon_s:
                break
            arrivals.append(self.mix.sample_request(t, gen))
        arrivals.reverse()  # pop() yields earliest first

        free = list(range(n_nodes))
        running: List[tuple] = []   # heap of (end, job_id, node list)
        pending: List[JobRequest] = []
        jobs: List[Job] = []
        allocations: List[NodeAllocation] = []
        job_id = 1
        now = 0.0

        def start(req: JobRequest) -> None:
            nonlocal job_id
            nodes = [free.pop() for _ in range(req.num_nodes)]
            end = now + req.duration_s
            jobs.append(
                Job(
                    job_id=job_id,
                    project_id=req.project_id,
                    domain=req.domain.name,
                    num_nodes=req.num_nodes,
                    submit_time_s=req.submit_time_s,
                    start_time_s=now,
                    end_time_s=end,
                    size_class=req.size_class,
                )
            )
            allocations.extend(
                NodeAllocation(
                    node_id=nid, job_id=job_id,
                    start_time_s=now, end_time_s=end,
                )
                for nid in nodes
            )
            heapq.heappush(running, (end, job_id, nodes))
            job_id += 1

        while (arrivals or pending or running) and now < horizon_s:
            # Admit arrivals and releases up to `now`.
            while arrivals and arrivals[-1].submit_time_s <= now:
                pending.append(arrivals.pop())
            while running and running[0][0] <= now:
                _end, _jid, nodes = heapq.heappop(running)
                free.extend(nodes)

            # Start the FIFO head while it fits.
            progressed = True
            while progressed and pending:
                progressed = False
                head = pending[0]
                if head.num_nodes > n_nodes:
                    pending.pop(0)  # can never run on this fleet
                    continue
                if head.num_nodes <= len(free):
                    start(pending.pop(0))
                    progressed = True
                    continue
                # EASY backfill behind the blocked head.
                t_res, shadow = self._reservation(head, len(free), running)
                for cand in list(pending[1 : 1 + self.backfill_depth]):
                    fits_now = cand.num_nodes <= len(free)
                    harmless = (
                        now + cand.duration_s <= t_res
                        or cand.num_nodes <= shadow
                    )
                    if fits_now and harmless:
                        pending.remove(cand)
                        start(cand)
                        progressed = True
                        break

            # Advance to the next event.
            next_release = running[0][0] if running else float("inf")
            next_arrival = (
                arrivals[-1].submit_time_s if arrivals else float("inf")
            )
            nxt = min(next_release, next_arrival)
            if nxt == float("inf") or nxt >= horizon_s:
                break
            now = nxt

        # Clamp to the horizon.
        jobs = [
            Job(
                job_id=j.job_id, project_id=j.project_id, domain=j.domain,
                num_nodes=j.num_nodes, submit_time_s=j.submit_time_s,
                start_time_s=j.start_time_s,
                end_time_s=min(j.end_time_s, horizon_s),
                size_class=j.size_class,
            )
            for j in jobs
            if j.start_time_s < horizon_s
        ]
        kept = {j.job_id for j in jobs}
        allocations = [
            NodeAllocation(
                node_id=a.node_id, job_id=a.job_id,
                start_time_s=a.start_time_s,
                end_time_s=min(a.end_time_s, horizon_s),
            )
            for a in allocations
            if a.job_id in kept and a.start_time_s < horizon_s
        ]
        return SchedulerLog(
            jobs=jobs, allocations=allocations,
            n_nodes=n_nodes, horizon_s=horizon_s,
        )
