"""Frontier scheduling policy (Table VII).

Five job-size classes A-E partition the node-count range 1..9408; larger
classes get longer maximum walltimes.  These classes are also the columns
of the Fig 10 heatmaps and the selection axis of Table VI.
"""

from __future__ import annotations

from .. import constants, units
from ..errors import ScheduleError


def job_size_class(num_nodes: int) -> str:
    """The Table VII class ("A".."E") for a job of ``num_nodes`` nodes."""
    if num_nodes < 1 or num_nodes > constants.NUM_COMPUTE_NODES:
        raise ScheduleError(
            f"num_nodes must be in 1..{constants.NUM_COMPUTE_NODES}, "
            f"got {num_nodes}"
        )
    for name, lo, hi, _walltime in constants.SCHEDULING_POLICY:
        if lo <= num_nodes <= hi:
            return name
    raise ScheduleError(f"no size class covers {num_nodes} nodes")


def max_walltime_s(size_class: str) -> float:
    """Maximum walltime (seconds) of a Table VII size class."""
    for name, _lo, _hi, walltime_h in constants.SCHEDULING_POLICY:
        if name == size_class:
            return units.hours(walltime_h)
    raise ScheduleError(f"unknown size class {size_class!r}")


def class_node_range(size_class: str) -> tuple:
    """(min_nodes, max_nodes) of a Table VII size class."""
    for name, lo, hi, _walltime_h in constants.SCHEDULING_POLICY:
        if name == size_class:
            return lo, hi
    raise ScheduleError(f"unknown size class {size_class!r}")
