"""SLURM-like scheduler substrate.

Generates the two job-metadata artifacts the paper's analysis joins with
telemetry (Table II rows b and c): the job-scheduler log (per-job metadata:
job id, project id, node count, begin/end time) and the per-node-per-job
allocation table.

* :mod:`repro.scheduler.policy`   — Table VII size classes and walltimes
* :mod:`repro.scheduler.jobs`     — job records and science domains
* :mod:`repro.scheduler.workload` — the synthetic science-domain job mix
* :mod:`repro.scheduler.slurm`    — FIFO + backfill placement
* :mod:`repro.scheduler.log`      — the resulting log tables
"""

from .policy import job_size_class, max_walltime_s
from .jobs import Job, ScienceDomain
from .workload import WorkloadMix, default_mix
from .slurm import SlurmSimulator
from .log import SchedulerLog

__all__ = [
    "job_size_class",
    "max_walltime_s",
    "Job",
    "ScienceDomain",
    "WorkloadMix",
    "default_mix",
    "SlurmSimulator",
    "SchedulerLog",
]
