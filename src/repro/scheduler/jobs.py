"""Job records and science domains.

A :class:`ScienceDomain` is the unit of workload characterization: the
paper derives it from the ``project_id`` prefix in the SLURM log and shows
(Fig 9) that jobs within a domain share a GPU power profile.  A
:class:`Job` is one scheduled execution; its ``project_id`` is formed from
the domain prefix exactly the way the paper's join recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ScheduleError
from .policy import job_size_class


@dataclass(frozen=True)
class ScienceDomain:
    """One science domain and its workload character.

    ``profile``
        Name of the GPU power profile in :mod:`repro.telemetry.profiles`.
    ``size_class_weights``
        Probability of a job landing in each Table VII class (A..E).
    ``duration_range_s``
        (min, max) of job durations, uniform in log space.
    ``share``
        Relative share of submitted node-hours attributed to the domain.
    """

    name: str
    profile: str
    share: float
    size_class_weights: Tuple[float, float, float, float, float]
    duration_range_s: Tuple[float, float]

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ScheduleError(f"{self.name}: share must be positive")
        if len(self.size_class_weights) != 5:
            raise ScheduleError(f"{self.name}: need 5 size-class weights")
        if abs(sum(self.size_class_weights) - 1.0) > 1e-6:
            raise ScheduleError(f"{self.name}: size weights must sum to 1")
        lo, hi = self.duration_range_s
        if not (0 < lo <= hi):
            raise ScheduleError(f"{self.name}: bad duration range")

    def project_id(self, index: int) -> str:
        """A project id whose prefix encodes the domain (paper join rule)."""
        return f"{self.name}{100 + index}"


@dataclass(frozen=True)
class Job:
    """One scheduled job (a row of the job-scheduler log, Table II b).

    ``size_class`` is stored rather than derived because scaled-down
    fleets keep the *full-scale* class label of each job (a class-B job on
    a 128-node simulation occupies the same machine fraction as on 9408
    nodes); when omitted, it is derived from ``num_nodes``.
    """

    job_id: int
    project_id: str
    domain: str
    num_nodes: int
    submit_time_s: float
    start_time_s: float
    end_time_s: float
    size_class: str = ""

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ScheduleError(f"job {self.job_id}: needs >= 1 node")
        if not (
            self.submit_time_s <= self.start_time_s < self.end_time_s
        ):
            raise ScheduleError(
                f"job {self.job_id}: inconsistent times "
                f"({self.submit_time_s}, {self.start_time_s}, "
                f"{self.end_time_s})"
            )
        if not self.size_class:
            object.__setattr__(
                self, "size_class", job_size_class(self.num_nodes)
            )

    @property
    def duration_s(self) -> float:
        return self.end_time_s - self.start_time_s

    @property
    def node_hours(self) -> float:
        return self.num_nodes * self.duration_s / 3600.0
