"""The synthetic science-domain workload mix.

The paper's Fig 9 shows that science domains have characteristic GPU power
modalities: some run compute-intensive (panels a-b), some latency/IO-bound
(c-d), some memory-intensive (e-f), and some span multiple zones (g-h).
This module defines a fleet mix of twelve domains over those profile
families, with shares calibrated (see ``tests/telemetry/test_fleet_calibration.py``)
so the generated three-month distribution reproduces Table IV's GPU-hour
shares: 29.8 / 49.5 / 19.5 / 1.1 % across the four operating regions.

Size-class weights skew large (A-C) because Frontier is operated as a
leadership-class system (the paper's Fig 10: most energy sits in classes
A-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from .. import constants
from ..errors import ScheduleError
from ..rng import RngLike, ensure_rng
from .jobs import ScienceDomain
from .policy import class_node_range, max_walltime_s

#: The default domain mix.  Profile names refer to
#: :data:`repro.telemetry.profiles.PROFILES`.
DEFAULT_DOMAINS: List[ScienceDomain] = [
    ScienceDomain("CHM", "compute_heavy", 0.07,
                  (0.18, 0.32, 0.30, 0.12, 0.08), (1800.0, 38000.0)),
    ScienceDomain("MAT", "compute_heavy_alt", 0.08,
                  (0.12, 0.33, 0.35, 0.12, 0.08), (1800.0, 38000.0)),
    ScienceDomain("NUC", "compute_heavy", 0.04,
                  (0.10, 0.25, 0.40, 0.15, 0.10), (1800.0, 30000.0)),
    ScienceDomain("BIO", "latency_bound", 0.06,
                  (0.03, 0.12, 0.35, 0.28, 0.22), (900.0, 20000.0)),
    ScienceDomain("CSC", "latency_bound_alt", 0.05,
                  (0.02, 0.10, 0.38, 0.28, 0.22), (900.0, 20000.0)),
    ScienceDomain("GEO", "latency_bound", 0.04,
                  (0.05, 0.15, 0.35, 0.25, 0.20), (900.0, 20000.0)),
    ScienceDomain("CLI", "memory_bound", 0.14,
                  (0.15, 0.30, 0.32, 0.13, 0.10), (3600.0, 40000.0)),
    ScienceDomain("CFD", "memory_bound_alt", 0.14,
                  (0.12, 0.30, 0.35, 0.13, 0.10), (3600.0, 40000.0)),
    ScienceDomain("FUS", "memory_bound", 0.09,
                  (0.18, 0.30, 0.30, 0.12, 0.10), (3600.0, 40000.0)),
    ScienceDomain("PHY", "multi_zone", 0.13,
                  (0.15, 0.30, 0.32, 0.13, 0.10), (1800.0, 40000.0)),
    ScienceDomain("AST", "multi_zone_alt", 0.10,
                  (0.12, 0.28, 0.35, 0.15, 0.10), (1800.0, 40000.0)),
    ScienceDomain("ENG", "mixed_low", 0.06,
                  (0.05, 0.15, 0.35, 0.25, 0.20), (900.0, 25000.0)),
]


@dataclass(frozen=True)
class JobRequest:
    """A job the workload generator wants scheduled."""

    domain: ScienceDomain
    project_id: str
    num_nodes: int
    size_class: str
    duration_s: float
    submit_time_s: float


class WorkloadMix:
    """Samples job requests from the domain mix.

    ``fleet_nodes`` lets scaled-down fleets keep the full-scale class
    structure: a class-B job on a 128-node fleet occupies the same
    *fraction* of the machine as on 9408 nodes, and keeps its class-B
    label for the Fig 10 / Table VI analyses.
    """

    def __init__(
        self,
        domains: Sequence[ScienceDomain] = tuple(DEFAULT_DOMAINS),
        *,
        fleet_nodes: int = constants.NUM_COMPUTE_NODES,
    ) -> None:
        if not domains:
            raise ScheduleError("workload mix needs at least one domain")
        if fleet_nodes < 1:
            raise ScheduleError("fleet_nodes must be >= 1")
        self.domains = list(domains)
        self.fleet_nodes = fleet_nodes
        total = sum(d.share for d in self.domains)
        self._domain_p = np.array([d.share / total for d in self.domains])
        self._scale = fleet_nodes / constants.NUM_COMPUTE_NODES
        # Node-seconds booked per domain so far: domain selection is
        # low-discrepancy (largest share deficit first) rather than iid,
        # which keeps realized domain shares close to their targets even
        # when a handful of leadership-size jobs dominate the campaign.
        self._booked = np.zeros(len(self.domains))

    def by_name(self) -> Dict[str, ScienceDomain]:
        return {d.name: d for d in self.domains}

    def _sample_nodes(self, size_class: str, rng) -> int:
        lo, hi = class_node_range(size_class)
        nodes_full = int(rng.integers(lo, hi + 1))
        scaled = max(1, int(round(nodes_full * self._scale)))
        return min(scaled, self.fleet_nodes)

    def sample_request(self, submit_time_s: float, rng: RngLike, index: int = 0) -> JobRequest:
        """Draw one job request at a submission time."""
        gen = ensure_rng(rng)
        deficit = self._domain_p * (self._booked.sum() + 1.0) - self._booked
        d_idx = int(np.argmax(deficit))
        domain = self.domains[d_idx]
        size_class = constants.JOB_SIZE_CLASSES[
            int(gen.choice(5, p=np.array(domain.size_class_weights)))
        ]
        num_nodes = self._sample_nodes(size_class, gen)
        lo, hi = domain.duration_range_s
        duration = float(np.exp(gen.uniform(np.log(lo), np.log(hi))))
        duration = min(duration, max_walltime_s(size_class))
        self._booked[d_idx] += num_nodes * duration
        return JobRequest(
            domain=domain,
            project_id=domain.project_id(int(gen.integers(0, 40))),
            num_nodes=num_nodes,
            size_class=size_class,
            duration_s=duration,
            submit_time_s=submit_time_s,
        )


def default_mix(fleet_nodes: int = constants.NUM_COMPUTE_NODES) -> WorkloadMix:
    """The calibrated Frontier-like workload mix."""
    return WorkloadMix(fleet_nodes=fleet_nodes)
