"""Scheduler log tables (Table II rows b and c).

:class:`SchedulerLog` holds the per-job table and the per-node-per-job
allocation table and offers the lookups the telemetry join needs:
which job (if any) ran on a node at a given time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ScheduleError
from .jobs import Job


@dataclass(frozen=True)
class NodeAllocation:
    """One node's participation in one job (per-node scheduler data)."""

    node_id: int
    job_id: int
    start_time_s: float
    end_time_s: float

    def __post_init__(self) -> None:
        if self.start_time_s >= self.end_time_s:
            raise ScheduleError(
                f"allocation on node {self.node_id}: empty interval"
            )


@dataclass(frozen=True)
class SchedulerLog:
    """The full scheduler output for one simulated campaign."""

    jobs: List[Job]
    allocations: List[NodeAllocation]
    n_nodes: int
    horizon_s: float

    def job_by_id(self) -> Dict[int, Job]:
        return {j.job_id: j for j in self.jobs}

    def allocations_for_node(self, node_id: int) -> List[NodeAllocation]:
        """Allocations of one node, sorted by start time."""
        out = [a for a in self.allocations if a.node_id == node_id]
        out.sort(key=lambda a: a.start_time_s)
        return out

    def utilization(self) -> float:
        """Realized node-seconds allocated / available."""
        busy = sum(
            a.end_time_s - a.start_time_s for a in self.allocations
        )
        return busy / (self.n_nodes * self.horizon_s)

    def validate_no_overlap(self) -> None:
        """Assert no node runs two jobs at once (scheduler invariant)."""
        per_node: Dict[int, List[NodeAllocation]] = {}
        for a in self.allocations:
            per_node.setdefault(a.node_id, []).append(a)
        for node_id, allocs in per_node.items():
            allocs.sort(key=lambda a: a.start_time_s)
            for prev, nxt in zip(allocs, allocs[1:]):
                if nxt.start_time_s < prev.end_time_s - 1e-9:
                    raise ScheduleError(
                        f"node {node_id}: jobs {prev.job_id} and "
                        f"{nxt.job_id} overlap"
                    )

    def job_id_grid(self, times_s: np.ndarray, node_id: int) -> np.ndarray:
        """Job id active on ``node_id`` at each time (0 = idle).

        Vectorized interval lookup used by both the telemetry generator
        and the join.
        """
        times_s = np.asarray(times_s)
        allocs = self.allocations_for_node(node_id)
        out = np.zeros(len(times_s), dtype=np.int64)
        if not allocs:
            return out
        starts = np.array([a.start_time_s for a in allocs])
        ends = np.array([a.end_time_s for a in allocs])
        ids = np.array([a.job_id for a in allocs])
        idx = np.searchsorted(starts, times_s, side="right") - 1
        valid = (idx >= 0) & (times_s < ends[np.clip(idx, 0, None)])
        out[valid] = ids[idx[valid]]
        return out

    @cached_property
    def _sorted_alloc_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Allocation columns sorted by ``(node, start)``, built once.

        The log is frozen after a run, but :meth:`job_id_table` runs per
        chunk in the streaming join and per window in the forensics job
        tagger — rebuilding these arrays from the Python allocation list
        each call dominated its cost.
        """
        a_node = np.array([a.node_id for a in self.allocations], dtype=np.int64)
        a_start = np.array([a.start_time_s for a in self.allocations])
        a_end = np.array([a.end_time_s for a in self.allocations])
        a_jid = np.array([a.job_id for a in self.allocations], dtype=np.int64)
        order = np.lexsort((a_start, a_node))
        return (
            a_node[order], a_start[order], a_end[order], a_jid[order]
        )

    def job_id_table(
        self, times_s: np.ndarray, node_ids: np.ndarray
    ) -> np.ndarray:
        """Job id active at each ``(time, node)`` pair (0 = idle).

        The whole-table analogue of :meth:`job_id_grid`: one composite-key
        ``searchsorted`` over allocations sorted by ``(node, start)``
        labels every row of a telemetry chunk at once, replacing the
        per-node lookup loop in the join.  Matches
        ``[job_id_grid(t, n) ...]`` exactly.
        """
        times_s = np.asarray(times_s, dtype=np.float64)
        node_ids = np.asarray(node_ids, dtype=np.int64)
        out = np.zeros(len(times_s), dtype=np.int64)
        if not self.allocations or not len(times_s):
            return out
        a_node, a_start, a_end, a_jid = self._sorted_alloc_arrays

        # Composite key: node major, start/time minor.  K exceeds every
        # time coordinate so keys from different nodes never interleave.
        k = float(max(self.horizon_s, a_end.max(), times_s.max())) + 1.0
        key_alloc = a_node * k + a_start
        key_row = node_ids * k + times_s
        idx = np.searchsorted(key_alloc, key_row, side="right") - 1
        # Float rounding of the composite sum can tie a time just below a
        # start with that start's key; step back one allocation there so
        # the raw-coordinate window test below sees the right candidate.
        over = (idx >= 0) & (a_node[idx] == node_ids) & (
            times_s < a_start[idx]
        )
        idx = np.where(over, idx - 1, idx)
        valid = (
            (idx >= 0)
            & (a_node[idx] == node_ids)
            & (times_s >= a_start[idx])
            & (times_s < a_end[idx])
        )
        out[valid] = a_jid[idx[valid]]
        return out

    # -- persistence -------------------------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar form for npz persistence."""
        return {
            "job_id": np.array([j.job_id for j in self.jobs]),
            "project_id": np.array([j.project_id for j in self.jobs]),
            "domain": np.array([j.domain for j in self.jobs]),
            "num_nodes": np.array([j.num_nodes for j in self.jobs]),
            "submit": np.array([j.submit_time_s for j in self.jobs]),
            "start": np.array([j.start_time_s for j in self.jobs]),
            "end": np.array([j.end_time_s for j in self.jobs]),
            "size_class": np.array([j.size_class for j in self.jobs]),
            "alloc_node": np.array([a.node_id for a in self.allocations]),
            "alloc_job": np.array([a.job_id for a in self.allocations]),
            "alloc_start": np.array(
                [a.start_time_s for a in self.allocations]
            ),
            "alloc_end": np.array([a.end_time_s for a in self.allocations]),
            "meta": np.array([self.n_nodes, self.horizon_s]),
        }

    @staticmethod
    def from_arrays(arrays: Dict[str, np.ndarray]) -> "SchedulerLog":
        """Inverse of :meth:`to_arrays`."""
        jobs = [
            Job(
                job_id=int(arrays["job_id"][i]),
                project_id=str(arrays["project_id"][i]),
                domain=str(arrays["domain"][i]),
                num_nodes=int(arrays["num_nodes"][i]),
                submit_time_s=float(arrays["submit"][i]),
                start_time_s=float(arrays["start"][i]),
                end_time_s=float(arrays["end"][i]),
                size_class=str(arrays["size_class"][i]),
            )
            for i in range(len(arrays["job_id"]))
        ]
        allocations = [
            NodeAllocation(
                node_id=int(arrays["alloc_node"][i]),
                job_id=int(arrays["alloc_job"][i]),
                start_time_s=float(arrays["alloc_start"][i]),
                end_time_s=float(arrays["alloc_end"][i]),
            )
            for i in range(len(arrays["alloc_node"]))
        ]
        n_nodes, horizon = arrays["meta"]
        return SchedulerLog(
            jobs=jobs,
            allocations=allocations,
            n_nodes=int(n_nodes),
            horizon_s=float(horizon),
        )

    def save(self, path) -> None:
        np.savez_compressed(path, **self.to_arrays())

    @staticmethod
    def load(path) -> "SchedulerLog":
        with np.load(path, allow_pickle=False) as data:
            return SchedulerLog.from_arrays(dict(data))
