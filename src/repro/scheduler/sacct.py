"""SLURM ``sacct``-style log ingest.

Real deployments export job accounting as pipe-separated ``sacct`` dumps;
this adapter converts them into a :class:`~repro.scheduler.log.SchedulerLog`
so production accounting feeds the same analysis path as the simulator.

Expected columns (header row, ``|``-separated, the classic sacct layout)::

    JobID|Account|NNodes|Submit|Start|End|NodeList
    1201|chm101|184|1680000000|1680000600|1680043200|frontier[0001-0184]

* times are unix seconds (or any consistent epoch);
* ``Account`` doubles as the project id — its alphabetic prefix is the
  science domain, exactly the paper's join rule;
* ``NodeList`` uses SLURM's compressed notation, e.g.
  ``frontier[0001-0003,0007]`` or ``node5``.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import List, Optional

from ..errors import ScheduleError
from .jobs import Job
from .log import NodeAllocation, SchedulerLog

REQUIRED_COLUMNS = (
    "JobID", "Account", "NNodes", "Submit", "Start", "End", "NodeList"
)

_NODELIST_RE = re.compile(r"^(?P<prefix>[^\[\]]*?)(?:\[(?P<body>[^\]]+)\])?$")


def parse_nodelist(nodelist: str) -> List[int]:
    """Expand SLURM compressed node notation into node indices.

    ``frontier[0001-0003,0007]`` -> [1, 2, 3, 7]; ``node5`` -> [5].
    """
    nodelist = nodelist.strip()
    if not nodelist:
        raise ScheduleError("empty NodeList")
    match = _NODELIST_RE.match(nodelist)
    if match is None:
        raise ScheduleError(f"unparseable NodeList {nodelist!r}")
    body = match.group("body")
    if body is None:
        digits = re.search(r"(\d+)$", nodelist)
        if not digits:
            raise ScheduleError(f"no node index in {nodelist!r}")
        return [int(digits.group(1))]
    nodes: List[int] = []
    for part in body.split(","):
        part = part.strip()
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ScheduleError(f"inverted range {part!r}")
            nodes.extend(range(lo, hi + 1))
        else:
            nodes.append(int(part))
    return nodes


def domain_of_account(account: str) -> str:
    """The science domain: the account's leading alphabetic prefix."""
    match = re.match(r"([A-Za-z]+)", account.strip())
    if not match:
        raise ScheduleError(f"account {account!r} has no domain prefix")
    return match.group(1).upper()


def read_sacct(
    path,
    *,
    n_nodes: Optional[int] = None,
    delimiter: str = "|",
) -> SchedulerLog:
    """Parse a sacct dump into a scheduler log.

    ``n_nodes`` sets the fleet size; when omitted it is inferred from the
    largest node index seen.  Times are shifted so the campaign starts at
    zero (the analysis pipeline's convention).
    """
    path = Path(path)
    jobs: List[Job] = []
    allocations: List[NodeAllocation] = []

    with path.open(newline="") as fh:
        reader = csv.DictReader(fh, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ScheduleError(f"{path}: empty file")
        missing = [c for c in REQUIRED_COLUMNS if c not in reader.fieldnames]
        if missing:
            raise ScheduleError(
                f"{path}: missing columns {', '.join(missing)}"
            )
        rows = list(reader)
    if not rows:
        raise ScheduleError(f"{path}: no jobs")

    t0 = min(float(r["Submit"]) for r in rows)
    max_node = 0
    horizon = 0.0
    for r in rows:
        try:
            job_id = int(r["JobID"])
            nodes = parse_nodelist(r["NodeList"])
            nnodes = int(r["NNodes"])
            submit = float(r["Submit"]) - t0
            start = float(r["Start"]) - t0
            end = float(r["End"]) - t0
        except (ValueError, ScheduleError) as exc:
            raise ScheduleError(
                f"{path}: bad row for job {r.get('JobID')!r}: {exc}"
            ) from exc
        if len(nodes) != nnodes:
            raise ScheduleError(
                f"job {job_id}: NNodes={nnodes} but NodeList has "
                f"{len(nodes)} nodes"
            )
        jobs.append(
            Job(
                job_id=job_id,
                project_id=r["Account"],
                domain=domain_of_account(r["Account"]),
                num_nodes=nnodes,
                submit_time_s=submit,
                start_time_s=start,
                end_time_s=end,
            )
        )
        allocations.extend(
            NodeAllocation(
                node_id=node, job_id=job_id,
                start_time_s=start, end_time_s=end,
            )
            for node in nodes
        )
        max_node = max(max_node, max(nodes))
        horizon = max(horizon, end)

    fleet = n_nodes if n_nodes is not None else max_node + 1
    if fleet <= max_node:
        raise ScheduleError(
            f"n_nodes={fleet} but NodeList references node {max_node}"
        )
    return SchedulerLog(
        jobs=jobs, allocations=allocations,
        n_nodes=fleet, horizon_s=horizon,
    )


def write_sacct(log: SchedulerLog, path, *, node_prefix: str = "node") -> None:
    """Export a scheduler log in the sacct format this module reads."""
    by_job: dict = {}
    for a in log.allocations:
        by_job.setdefault(a.job_id, []).append(a.node_id)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh, delimiter="|")
        writer.writerow(REQUIRED_COLUMNS)
        for job in log.jobs:
            nodes = sorted(by_job.get(job.job_id, []))
            body = ",".join(str(n) for n in nodes)
            writer.writerow(
                [
                    job.job_id,
                    job.project_id,
                    job.num_nodes,
                    f"{job.submit_time_s:.0f}",
                    f"{job.start_time_s:.0f}",
                    f"{job.end_time_s:.0f}",
                    f"{node_prefix}[{body}]",
                ]
            )
