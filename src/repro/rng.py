"""Seeded random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes both to a
``Generator`` so call sites never touch global NumPy random state, and
:func:`spawn` derives independent child streams for parallel workers — the
same pattern mpi4py programs use to give each rank its own stream.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 0x5EED


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` maps to a deterministic default seed so that library results
    are reproducible unless the caller explicitly asks for entropy.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(int(rng))


def spawn(rng: RngLike, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so children are independent regardless of
    how many are requested, which makes chunked/parallel generation produce
    identical results to serial generation with the same chunking.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    parent = ensure_rng(rng)
    seed_seq = parent.bit_generator.seed_seq  # type: ignore[attr-defined]
    if seed_seq is None:  # pragma: no cover - Generator always carries one
        seed_seq = np.random.SeedSequence(DEFAULT_SEED)
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]


def substream(base: RngLike, *path: object) -> np.random.Generator:
    """A deterministic generator addressed by identity path.

    ``substream(seed, "node", 17)`` always yields the same stream for
    the same ``(seed, path)``, independent of how many other substreams
    exist or which process asks — the property the sharded campaign
    engine (:mod:`repro.stream.shard`) relies on to make telemetry
    shard-count invariant.  Thin sugar over :func:`derive_seed`.
    """
    return np.random.default_rng(derive_seed(base, *path))


def derive_seed(base: RngLike, *components: object) -> int:
    """Derive a stable 63-bit seed from a base seed and hashable components.

    Used to give deterministic, decorrelated streams to entities addressed
    by identity (node id, job id) rather than by position.
    """
    base_int = DEFAULT_SEED if base is None else (
        int(base) if not isinstance(base, np.random.Generator)
        else int(ensure_rng(base).integers(2**31))
    )
    mask = (1 << 64) - 1
    acc = base_int & 0x7FFFFFFFFFFFFFFF
    for comp in components:
        # Stable per-component hash (hash() is salted for str across runs).
        h = 0
        for byte in str(comp).encode():
            h = ((h * 131) + byte) & mask
        # SplitMix64-style mixing keeps nearby ids decorrelated.
        acc = ((acc ^ h) * 0x9E3779B97F4A7C15) & mask
        acc ^= acc >> 31
    return acc & 0x7FFFFFFFFFFFFFFF
