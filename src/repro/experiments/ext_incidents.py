"""Extension: deterministic fault injection through the flight recorder.

The forensics layer (:mod:`repro.obs.forensics`) claims a strong
contract: attach a flight recorder to a streaming control plane and
every fault the fleet experiences folds into the *identical* incident
timeline — same incident ids, same event-time bounds, same attribution
— whatever the chunking was, across reruns, and (for window-content
detectors) even with no control plane at all.  This experiment proves
the contract by construction.

A synthetic 16-node fleet draws a flat, well-conditioned power profile
(every GPU near 300 W, all samples in the MI region), so a correctly
quiet detector set produces *zero* incidents — and then exactly three
faults are injected at known event times:

1. **straggler** — node 3 pinned to 540 W on all four GCDs for one
   hour (robust z far above the fleet, still under the vendor limit);
2. **cap violation** — one GCD of node 7 pushed to 575 W, above the
   560 W limit of paper Table I, for half an hour;
3. **publication stall** — the control plane's ``refresh()`` is
   withheld for one event-time hour (ingest keeps folding), so the
   published cap decision goes stale by more than three windows.

The expected timeline is therefore exactly ``inc-001`` (straggler,
attributed to node 3), ``inc-002`` (cap_violation, critical, node 7),
``inc-003`` (publication_stall, critical), all resolved by drain.

Checks:

* the three incidents appear with the predicted windows, severities,
  and node attribution, and nothing else fires (``exact_timeline``);
* rerunning the identical campaign reproduces the timeline verbatim
  (``reproducible``) and halving the arrival chunk size changes no
  field of it (``chunking_invariant``);
* an *offline* recorder fed the canonical windows — no control plane,
  no publication feed — reproduces the two window-content incidents
  bit for bit (``offline_parity``);
* the analytic outputs (fleet cube, per-job matrices) of the
  recorder-enabled plane are bitwise identical to a plane with
  forensics disabled (``recorder_bitwise``);
* every incident is resolved at drain, so the CI gate
  ``repro obs incidents --check`` passes (``all_resolved``);
* each incident's exported forensic bundle embeds a non-empty,
  window-bounded slice of the structured event log
  (``bundle_logs_embedded``), the slice reproduces verbatim under
  rerun (``log_slice_reproducible``), and its event ids are invariant
  under re-chunking (``log_ids_chunking_invariant``) — the
  determinism contract of :mod:`repro.obs.log`.
"""

from __future__ import annotations

import numpy as np

from .. import constants, units
from ..obs.forensics import (
    Forensics,
    build_bundle,
    default_detectors,
    forensics_doc,
)
from ..obs.log import EventLog
from ..obs.health.drift import DriftReference
from ..scheduler import SlurmSimulator, default_mix
from ..serve import ControlPlane
from ..serve.jobs import JobStateIndex
from ..stream import canonical_windows, replay_store
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore
from .registry import ExperimentConfig, ExperimentResult

#: Fixed geometry: the experiment asserts an *exact* timeline, so the
#: fleet and campaign length are pinned rather than config-scaled.
NODES = 16
CAMPAIGN_S = 43_200.0                 # half a day
WINDOW_TICKS = 40
WINDOW_S = WINDOW_TICKS * constants.TELEMETRY_INTERVAL_S   # 600 s

BASE_POWER_W = 300.0                  # + node id, so medians are crisp
NOISE_W = 3.0
CPU_POWER_W = 100.0

#: Fault schedule (event-time seconds; all multiples of the window).
STRAGGLER_NODE, STRAGGLER_W = 3, 540.0
STRAGGLER_T0, STRAGGLER_T1 = 10_800.0, 14_400.0      # windows 18..23
VIOLATION_NODE, VIOLATION_W = 7, 575.0
VIOLATION_T0, VIOLATION_T1 = 21_600.0, 23_400.0      # windows 36..38
STALL_T0, STALL_T1 = 28_800.0, 32_400.0              # refresh withheld


def _detectors():
    """The detector set tuned to the synthetic fleet.

    The mode-mix reference is pinned to the fleet's true mix (all MI),
    and the straggler threshold sits between the cap-violation node's
    mild excursion (|z| ~ 10: one hot GCD out of four) and the true
    straggler (|z| ~ 35: the whole node), so each fault trips exactly
    one detector.
    """
    return default_detectors(
        reference=DriftReference(
            gpu_hours_pct=(0.0, 100.0, 0.0, 0.0), label="synthetic MI fleet"
        ),
        z_threshold=15.0,
        tv_threshold=0.2,
        deviation_pct=50.0,
        max_lag_windows=3.0,
    )


def _synthetic_store(seed: int) -> TelemetryStore:
    """A flat fleet profile with the three faults stamped in."""
    ticks = int(round(CAMPAIGN_S / constants.TELEMETRY_INTERVAL_S))
    time_s = np.repeat(
        np.arange(ticks, dtype=np.float64) * constants.TELEMETRY_INTERVAL_S,
        NODES,
    )
    node_id = np.tile(np.arange(NODES, dtype=np.int32), ticks)
    rng = np.random.default_rng(seed)
    base = BASE_POWER_W + node_id.astype(np.float64)
    gpu = base[:, None] + rng.normal(
        0.0, NOISE_W, size=(ticks * NODES, constants.GPUS_PER_NODE)
    )
    straggler = (
        (node_id == STRAGGLER_NODE)
        & (time_s >= STRAGGLER_T0) & (time_s < STRAGGLER_T1)
    )
    gpu[straggler, :] = STRAGGLER_W
    violation = (
        (node_id == VIOLATION_NODE)
        & (time_s >= VIOLATION_T0) & (time_s < VIOLATION_T1)
    )
    gpu[violation, 2] = VIOLATION_W
    chunk = TelemetryChunk(
        time_s=time_s,
        node_id=node_id,
        gpu_power_w=np.clip(gpu, 1.0, None).astype(np.float32),
        cpu_power_w=np.full(ticks * NODES, CPU_POWER_W, dtype=np.float32),
    )
    return TelemetryStore(chunk)


def _run_plane(store, log, *, chunk_ticks: int, forensics,
               event_log=None):
    """Stream the campaign through a plane, stalling publication.

    Chunks whose event time falls in the stall span bypass
    ``plane.ingest`` and fold through ``plane.engine.ingest`` directly:
    windows keep sealing (observers, recorder, per-job fold all run)
    but no fresh :class:`~repro.serve.cache.ServeView` is published —
    exactly a wedged publication thread.
    """
    plane = ControlPlane(
        log,
        objective="slowdown",
        max_slowdown_pct=5.0,
        window_s=WINDOW_S,
        forensics=forensics,
        event_log=event_log,
    )
    for chunk in replay_store(store, chunk_ticks=chunk_ticks):
        if STALL_T0 <= float(chunk.time_s[0]) < STALL_T1:
            plane.engine.ingest(chunk)
        else:
            plane.ingest(chunk)
    plane.drain()
    return plane


def _timeline(forensics: Forensics) -> list:
    return [i.to_dict() for i in forensics.incidents.incidents]


def _scrub(rec: dict) -> dict:
    """Drop process-local correlation ids (trace/span) for comparison.

    Everything else in a window-correlated record — the per-event
    occurrence id, seq, event time, severity, message, fields — is
    part of the determinism contract and *is* compared.
    """
    return {k: v for k, v in rec.items()
            if k not in ("trace_id", "span_id")}


def _bundle_logs(plane) -> dict:
    """``{incident_id: embedded log slice}`` from exported bundles."""
    doc = forensics_doc(plane.forensics)
    return {
        inc["id"]: build_bundle(doc, inc["id"])["logs"]
        for inc in doc["incidents"]
    }


def _top_node(incident: dict):
    tops = incident.get("top_nodes", [])
    return tops[0]["id"] if tops else None


def run(config: ExperimentConfig) -> ExperimentResult:
    store = _synthetic_store(config.seed)
    log = SlurmSimulator(default_mix(fleet_nodes=NODES)).run(
        units.days(CAMPAIGN_S / 86_400.0), rng=config.seed
    )

    # Every instrumented plane carries a structured event log, so the
    # forensic bundles below embed correlated log slices; the ring is
    # sized past the campaign's emission count (no eviction).
    plane_a = _run_plane(
        store, log, chunk_ticks=20,
        forensics=Forensics(detectors=_detectors()),
        event_log=EventLog(capacity=16_384),
    )
    plane_b = _run_plane(
        store, log, chunk_ticks=20,
        forensics=Forensics(detectors=_detectors()),
        event_log=EventLog(capacity=16_384),
    )
    plane_c = _run_plane(
        store, log, chunk_ticks=40,
        forensics=Forensics(detectors=_detectors()),
        event_log=EventLog(capacity=16_384),
    )
    plane_plain = _run_plane(store, log, chunk_ticks=20, forensics=False)

    timeline = _timeline(plane_a.forensics)
    reproducible = timeline == _timeline(plane_b.forensics)
    chunking_invariant = timeline == _timeline(plane_c.forensics)

    # Offline recorder: the canonical windows fed straight to a bare
    # Forensics — no engine, no publication feed.  The window-content
    # incidents (straggler, cap violation) must come out identical.
    offline = Forensics(detectors=_detectors(), tagger=JobStateIndex(log))
    for window in canonical_windows(store, window_s=WINDOW_S):
        offline.observe_window(window)
    offline.finalize()
    offline_timeline = _timeline(offline)
    window_content = [
        i for i in timeline if i["detector"] != "publication_stall"
    ]
    offline_parity = offline_timeline == window_content

    cube_a, cube_p = plane_a.cache.view.snap.cube, \
        plane_plain.cache.view.snap.cube
    recorder_bitwise = (
        np.array_equal(cube_a.energy_j, cube_p.energy_j)
        and np.array_equal(cube_a.gpu_hours, cube_p.gpu_hours)
        and cube_a.cpu_energy_j == cube_p.cpu_energy_j
        and np.array_equal(
            plane_a.job_acc.energy_j, plane_plain.job_acc.energy_j
        )
        and np.array_equal(
            plane_a.job_acc.samples, plane_plain.job_acc.samples
        )
    )

    # Structured-log determinism: each exported bundle embeds the log
    # slice spanning its incident's window range (padded one window);
    # the slice reproduces verbatim under rerun, and its per-event
    # occurrence ids survive re-chunking (cadence-driven records never
    # enter bundles, so the halved chunk size changes no embedded id).
    logs_a, logs_b, logs_c = (
        _bundle_logs(plane_a), _bundle_logs(plane_b), _bundle_logs(plane_c)
    )
    bounds = {
        i["id"]: (i["first_window"] - 1, i["last_window"] + 1)
        for i in timeline
    }
    bundle_logs_embedded = bool(logs_a) and all(
        slice_ and all(
            bounds[inc_id][0] <= r["window"] <= bounds[inc_id][1]
            for r in slice_
        )
        for inc_id, slice_ in logs_a.items()
    )
    log_slice_reproducible = {
        inc_id: [_scrub(r) for r in slice_]
        for inc_id, slice_ in logs_a.items()
    } == {
        inc_id: [_scrub(r) for r in slice_]
        for inc_id, slice_ in logs_b.items()
    }
    log_ids_chunking_invariant = {
        inc_id: [r["id"] for r in slice_]
        for inc_id, slice_ in logs_a.items()
    } == {
        inc_id: [r["id"] for r in slice_]
        for inc_id, slice_ in logs_c.items()
    }

    by_detector = {i["detector"]: i for i in timeline}
    straggler = by_detector.get("straggler")
    violation = by_detector.get("cap_violation")
    stall = by_detector.get("publication_stall")

    checks = {
        "exact_timeline": (
            [i["detector"] for i in timeline]
            == ["straggler", "cap_violation", "publication_stall"]
            and [i["id"] for i in timeline]
            == ["inc-001", "inc-002", "inc-003"]
        ),
        "straggler_attributed": (
            straggler is not None
            and straggler["t_start_s"] == STRAGGLER_T0
            and straggler["t_end_s"] == STRAGGLER_T1
            and _top_node(straggler) == STRAGGLER_NODE
        ),
        "violation_attributed": (
            violation is not None
            and violation["severity"] == "critical"
            and violation["t_start_s"] == VIOLATION_T0
            and violation["t_end_s"] == VIOLATION_T1
            and _top_node(violation) == VIOLATION_NODE
        ),
        "stall_detected": (
            stall is not None
            and stall["severity"] == "critical"
            and STALL_T0 <= stall["t_start_s"]
            and stall["t_end_s"] <= STALL_T1 + WINDOW_S
        ),
        "reproducible": reproducible,
        "chunking_invariant": chunking_invariant,
        "offline_parity": offline_parity,
        "recorder_bitwise": recorder_bitwise,
        "all_resolved": not plane_a.forensics.incidents.open_incidents,
        "bundle_logs_embedded": bundle_logs_embedded,
        "log_slice_reproducible": log_slice_reproducible,
        "log_ids_chunking_invariant": log_ids_chunking_invariant,
    }

    summary = plane_a.forensics.summary()
    lines = [
        f"fault-injected fleet: {NODES} nodes x {CAMPAIGN_S / 3600.0:.0f} h "
        f"(window {WINDOW_S:.0f} s, {summary['windows_recorded']} windows "
        f"recorded, {summary['findings_total']} findings)",
        "",
        "injected faults:",
        f"  straggler       node {STRAGGLER_NODE} at {STRAGGLER_W:.0f} W, "
        f"t [{STRAGGLER_T0:,.0f}, {STRAGGLER_T1:,.0f}) s",
        f"  cap violation   node {VIOLATION_NODE} GCD 2 at "
        f"{VIOLATION_W:.0f} W (> {constants.GCD_MAX_POWER_W:.0f} W), "
        f"t [{VIOLATION_T0:,.0f}, {VIOLATION_T1:,.0f}) s",
        f"  delivery stall  publication withheld, "
        f"t [{STALL_T0:,.0f}, {STALL_T1:,.0f}) s",
        "",
        plane_a.forensics.timeline(),
        "",
        f"determinism: rerun identical={reproducible}, "
        f"chunk 300 s vs 600 s identical={chunking_invariant}, "
        f"offline window-content parity={offline_parity}",
        f"recorder overhead on analytics: fleet cube + per-job matrices "
        f"bitwise identical to a recorder-free plane={recorder_bitwise}",
        f"bundled event logs: "
        f"{sum(len(s) for s in logs_a.values())} records across "
        f"{len(logs_a)} bundles, rerun-verbatim={log_slice_reproducible}, "
        f"ids chunking-invariant={log_ids_chunking_invariant}",
    ]
    failed = sorted(k for k, ok in checks.items() if not ok)
    lines.append("")
    lines.append("all checks passed" if not failed else f"FAILED: {failed}")

    if config.out_dir:
        from ..obs.forensics import write_forensics_artifacts

        write_forensics_artifacts(
            config.out_dir,
            plane_a.forensics,
            command="repro run ext_incidents",
            registry=plane_a.registry,
            monitor=None,
        )

    data = {
        "incidents": timeline,
        "summary": summary,
        "checks": checks,
    }
    return ExperimentResult(
        exp_id="ext_incidents",
        title="Flight-recorder forensics under injected faults",
        text="\n".join(lines),
        data=data,
    )
