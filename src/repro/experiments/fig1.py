"""Fig 1: schematic of a Frontier compute node and its MI250X GPUs.

The paper's Fig 1 is an architecture diagram; the reproduction renders
it from the simulated node's actual specification, so the picture and
the model cannot drift apart.
"""

from __future__ import annotations

from .. import constants, units
from ..gpu.specs import NodeSpec
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    node = NodeSpec()
    gpu = node.gpu
    hbm_gib = constants.HBM_PER_GCD_BYTES / 2**30
    cpu_label = f"CPU {node.cpu_idle_w:.0f}-{node.cpu_max_w:.0f} W"
    gcd = f"| GCD {hbm_gib:.0f}GB HBM2e |"
    rule = f"  +{'-' * (len(gcd) - 2)}+{'-' * (len(gcd) - 2)}+"
    lines = [
        "Fig 1: one Frontier compute node (simulated specification)",
        "",
        "  +--------------------------------------------+",
        f"  | compute node: {cpu_label:<15} + 4x MI250X |",
        "  +--------------------------------------------+",
        "",
    ]
    for i in range(constants.GPUS_PER_NODE):
        lines.append(f"  MI250X #{i}:")
        lines.append(rule)
        lines.append(f"  {gcd}{gcd[1:]}")
        lines.append(rule)
    lines += [
        "",
        f"per module : TDP {gpu.tdp_w:.0f} W, idle {gpu.idle_w:.0f} W, "
        f"{units.to_mhz(gpu.f_min_hz):.0f}-"
        f"{units.to_mhz(gpu.f_max_hz):.0f} MHz",
        f"achievable : {units.to_tflops(gpu.achievable_flops):.0f} TFLOP/s "
        f"(simple kernels), {units.to_gbps(gpu.achievable_hbm_bw):.0f} GB/s "
        f"HBM, {units.to_mib(gpu.l2_bytes):.0f} MiB L2",
        f"node       : {constants.GPUS_PER_NODE} modules = "
        f"{constants.GCDS_PER_NODE} user-visible GCDs; "
        f"{constants.NUM_COMPUTE_NODES} nodes in the fleet",
        "(each GCD appears to users as one GPU; power telemetry and the "
        "region boundaries are module-level)",
    ]
    return ExperimentResult(
        exp_id="fig1",
        title="",
        text="\n".join(lines),
        data={
            "gpus_per_node": constants.GPUS_PER_NODE,
            "gcds_per_node": constants.GCDS_PER_NODE,
            "tdp_w": gpu.tdp_w,
            "idle_w": gpu.idle_w,
        },
    )
