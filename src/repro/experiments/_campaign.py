"""Shared campaign construction for the telemetry-driven experiments.

Fig 8/9/10 and Tables IV/V/VI all consume the same joined campaign; this
module builds it once per configuration and caches it for the process
lifetime, so ``repro run all`` does not regenerate the fleet per artifact.
"""

from __future__ import annotations

from functools import lru_cache

from .. import units
from ..core import CampaignCube, join_campaign
from ..scheduler import SlurmSimulator, default_mix
from ..scheduler.log import SchedulerLog
from ..telemetry import FleetTelemetryGenerator


@lru_cache(maxsize=4)
def build_campaign(
    fleet_nodes: int, days: float, seed: int
) -> tuple:
    """(SchedulerLog, CampaignCube) for one configuration (cached)."""
    mix = default_mix(fleet_nodes=fleet_nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=seed)
    gen = FleetTelemetryGenerator(log, mix, seed=seed + 1000)
    # Stream in node blocks: memory stays bounded at any fleet size.
    cube = join_campaign(gen.chunks(nodes_per_chunk=16), log)
    return log, cube


def campaign_cube(config) -> CampaignCube:
    """The joined campaign for an :class:`ExperimentConfig`."""
    _log, cube = build_campaign(config.fleet_nodes, config.days, config.seed)
    return cube


def campaign_log(config) -> SchedulerLog:
    log, _cube = build_campaign(config.fleet_nodes, config.days, config.seed)
    return log
