"""Shared campaign construction for the telemetry-driven experiments.

Fig 8/9/10 and Tables IV/V/VI all consume the same joined campaign; this
module builds it once per configuration and caches it for the process
lifetime, so ``repro run all`` does not regenerate the fleet per artifact.
"""

from __future__ import annotations

from functools import lru_cache

from .. import units
from ..core import CampaignCube, join_campaign
from ..obs import runtime as _obs
from ..scheduler import SlurmSimulator, default_mix
from ..scheduler.log import SchedulerLog
from ..telemetry import FleetTelemetryGenerator


def _freeze_cube(cube: CampaignCube) -> CampaignCube:
    """Make the cube's arrays read-only.

    The cube is shared by every experiment in the process via the
    ``build_campaign`` cache; an in-place edit by one would silently
    corrupt all the others.  Read-only arrays turn that aliasing bug
    into an immediate ``ValueError`` at the write site.
    """
    cube.energy_j.setflags(write=False)
    cube.gpu_hours.setflags(write=False)
    for hist in [cube.histogram, *cube.domain_histograms.values()]:
        hist.counts.setflags(write=False)
        hist.weight_sums.setflags(write=False)
    return cube


@lru_cache(maxsize=4)
def build_campaign(
    fleet_nodes: int, days: float, seed: int
) -> tuple:
    """(SchedulerLog, CampaignCube) for one configuration (cached).

    The returned cube's arrays are frozen (``writeable=False``): every
    caller aliases the same cached object, so consumers must copy
    before mutating.
    """
    with _obs.span(
        "campaign.build", fleet_nodes=fleet_nodes, days=days, seed=seed
    ):
        mix = default_mix(fleet_nodes=fleet_nodes)
        with _obs.span("campaign.simulate"):
            log = SlurmSimulator(mix).run(units.days(days), rng=seed)
        gen = FleetTelemetryGenerator(log, mix, seed=seed + 1000)
        # Stream in node blocks: memory stays bounded at any fleet size.
        cube = join_campaign(gen.chunks(nodes_per_chunk=16), log)
        return log, _freeze_cube(cube)


def campaign_cube(config) -> CampaignCube:
    """The joined campaign for an :class:`ExperimentConfig`."""
    _log, cube = build_campaign(config.fleet_nodes, config.days, config.seed)
    return cube


def campaign_log(config) -> SchedulerLog:
    log, _cube = build_campaign(config.fleet_nodes, config.days, config.seed)
    return log
