"""Fig 6: the memory benchmark across working-set sizes.

Average power, bandwidth, and completion time per working-set size, under
frequency caps (left column) and power caps (right column).  The knee at
the 16 MB L2 capacity and the cap breaches of the 140/200 W curves are
the paper's key observations.

Both columns run through the batched engine (the memory benchmark
exposes the batch protocol), so each knob's cap x working-set grid is a
single :meth:`~repro.gpu.GPUDevice.run_batch` call.
"""

from __future__ import annotations

from .. import constants, units
from ..bench import CapSweep, MemoryBenchmark
from ..core import report
from ..gpu.specs import default_spec
from .registry import ExperimentConfig, ExperimentResult

FREQ_CAPS = (1500, 1300, 1100, 900, 700)
POWER_CAPS = constants.MEMBENCH_POWER_CAPS_W[1:]   # 460 ... 140


def _series(points, metric):
    out = {}
    for cap, point in sorted(points.items(), reverse=True):
        label = "uncapped" if cap == 0 else f"{cap:g}"
        out[label] = point.result.column(metric)
    return out


def run(config: ExperimentConfig) -> ExperimentResult:
    bench = MemoryBenchmark()
    sweep = CapSweep(bench)
    freq_points = sweep.frequency_sweep(FREQ_CAPS)
    power_points = sweep.power_sweep(POWER_CAPS)
    sizes = freq_points[0].result.sizes_mib

    sections = []
    for knob, points in (("frequency (MHz)", freq_points),
                         ("power cap (W)", power_points)):
        for metric, label in (
            ("power_w", "avg power (W)"),
            ("gbps", "bandwidth (GB/s)"),
            ("time_s", "time (s)"),
        ):
            sections.append(
                report.render_series(
                    f"Fig 6 [{knob}] {label}",
                    "MiB",
                    [round(s, 3) for s in sizes],
                    _series(points, metric),
                )
            )
            sections.append("")

    spec = default_spec()
    breach = power_points[140].result
    breached = breach.hbm_region(spec).column("cap_breached")
    sections.append(
        f"L2 knee at {units.to_mib(spec.l2_bytes):.0f} MiB; 140 W cap "
        f"breached on {int(breached.sum())}/{len(breached)} HBM-resident "
        f"sizes (paper Fig 6d)."
    )
    return ExperimentResult(
        exp_id="fig6",
        title="",
        text="\n".join(sections),
        data={
            "sizes_mib": sizes,
            "uncapped_gbps": freq_points[0].result.column("gbps"),
            "breached_140w": breached,
        },
    )
