"""Fig 7: the Louvain application under frequency and power caps.

Runs real Louvain community detection on the paper's network suite (road
vs social, 3 K - 8 M edges scaled by ``config.graph_scale``), executes the
GPU pass stream on the simulated device per cap, and reports runtime,
average/maximum power, energy savings, and the detected modularity.
"""

from __future__ import annotations

from .. import units
from ..core import report
from ..graph import GPULouvainRunner, degree_stats, louvain
from ..graph.generators import paper_suite
from ..gpu import GPUDevice
from .registry import ExperimentConfig, ExperimentResult

FREQ_CAPS_MHZ = (1700, 1300, 1100, 900, 700, 500)
ROAD_POWER_CAPS_W = (220, 180, 140)


def run(config: ExperimentConfig) -> ExperimentResult:
    suite = paper_suite(scale=config.graph_scale, rng=config.seed)
    sections = []
    data = {}

    for named in suite:
        g = named.graph
        stats = degree_stats(g)
        lv = louvain(g)
        base = GPULouvainRunner(GPUDevice()).run(g, precomputed=lv)

        rows = {"runtime_x": [], "avg_power_w": [], "saving_pct": []}
        for mhz in FREQ_CAPS_MHZ:
            device = (
                GPUDevice()
                if mhz == 1700
                else GPUDevice(frequency_cap_hz=units.mhz(mhz))
            )
            r = GPULouvainRunner(device).run(g, precomputed=lv)
            rows["runtime_x"].append(r.total_time_s / base.total_time_s)
            rows["avg_power_w"].append(r.avg_power_w)
            rows["saving_pct"].append(
                100.0 * (1.0 - r.energy_j / base.energy_j)
            )

        sections.append(
            f"{named.name} ({named.kind}): {g.n_edges} edges, "
            f"d_max={stats.d_max}, d_avg={stats.d_avg:.1f}, "
            f"Q={lv.modularity:.3f}, {lv.n_communities} communities, "
            f"max power {base.max_power_w:.0f} W"
        )
        sections.append(
            report.render_series(
                "  frequency sweep",
                "MHz",
                list(FREQ_CAPS_MHZ),
                rows,
            )
        )
        data[named.name] = {
            "edges": g.n_edges,
            "modularity": lv.modularity,
            "max_power_w": base.max_power_w,
            **{k: list(v) for k, v in rows.items()},
        }

        if named.kind == "road":
            prow = {"runtime_x": [], "saving_pct": [], "max_power_w": []}
            for cap in ROAD_POWER_CAPS_W:
                r = GPULouvainRunner(GPUDevice(power_cap_w=cap)).run(
                    g, precomputed=lv
                )
                prow["runtime_x"].append(r.total_time_s / base.total_time_s)
                prow["saving_pct"].append(
                    100.0 * (1.0 - r.energy_j / base.energy_j)
                )
                prow["max_power_w"].append(r.max_power_w)
            sections.append(
                report.render_series(
                    "  power-cap sweep (paper: 205 W peak network)",
                    "W",
                    list(ROAD_POWER_CAPS_W),
                    prow,
                )
            )
            data[named.name]["power_caps"] = prow
        sections.append("")

    return ExperimentResult(
        exp_id="fig7", title="", text="\n".join(sections), data=data
    )
