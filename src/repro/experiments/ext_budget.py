"""Extension: fleet power-budget enforcement.

Takes snapshots of the simulated campaign (which jobs run at a given
instant), then asks the budget planner to fit the snapshot's GPU power
under progressively tighter fleet budgets.  The output is the cost curve
of power capping as an *operational* tool: how much slowdown a center
buys when its budget shrinks by 5/15/25 %.
"""

from __future__ import annotations

import numpy as np

from .. import units
from ..core import measured_factors
from ..core.timeline import fleet_timeline
from ..policy import fingerprint_jobs
from ..policy.budget import PowerBudgetPlanner, capped_job_power_w
from ..scheduler import default_mix
from ..telemetry import FleetTelemetryGenerator
from ._campaign import campaign_log
from .registry import ExperimentConfig, ExperimentResult

BUDGET_FRACTIONS = (0.95, 0.90, 0.85, 0.75, 0.65)


def run(config: ExperimentConfig) -> ExperimentResult:
    log = campaign_log(config)
    mix = default_mix(fleet_nodes=config.fleet_nodes)
    gen = FleetTelemetryGenerator(log, mix, seed=config.seed + 1000)
    fingerprints = fingerprint_jobs(gen.chunks(nodes_per_chunk=16), log)
    factors = measured_factors("frequency")
    planner = PowerBudgetPlanner(factors)

    # Snapshots at the campaign's quartiles plus the fleet power peak —
    # the instant a budget actually binds.
    timeline = fleet_timeline(
        gen.chunks(nodes_per_chunk=16), horizon_s=log.horizon_s
    )
    times = sorted(
        {log.horizon_s * q for q in (0.25, 0.5, 0.75)}
        | {timeline.peak_time_s}
    )
    lines = []
    rows = []
    for t in times:
        running = {
            j.job_id: fingerprints[j.job_id]
            for j in log.jobs
            if j.start_time_s <= t < j.end_time_s
            and j.job_id in fingerprints
        }
        if not running:
            continue
        baseline = sum(
            capped_job_power_w(fp, factors, None)
            for fp in running.values()
        )
        tag = " (fleet peak)" if t == timeline.peak_time_s else ""
        lines.append(
            f"snapshot t={units.to_hours(t):.1f} h{tag}: {len(running)} "
            f"jobs, {baseline / 1e3:.1f} kW of GPU power"
        )
        lines.append(
            f"{'budget':>8} {'feasible':>9} {'shed kW':>8} "
            f"{'capped':>8} {'mean dT %':>10}"
        )
        for frac in BUDGET_FRACTIONS:
            plan = planner.plan(running, budget_w=frac * baseline)
            capped = sum(1 for c in plan.caps.values() if c is not None)
            dt = plan.mean_slowdown_pct(running, factors)
            lines.append(
                f"{frac:8.0%} {str(plan.feasible):>9} "
                f"{plan.shed_w / 1e3:8.2f} {capped:4d}/{len(running):<3d} "
                f"{dt:10.2f}"
            )
            rows.append(
                {
                    "t_h": units.to_hours(t),
                    "fraction": frac,
                    "feasible": plan.feasible,
                    "shed_w": plan.shed_w,
                    "mean_slowdown_pct": dt,
                    "capped_jobs": capped,
                    "n_jobs": len(running),
                }
            )
        lines.append("")

    feasible_at = {}
    for row in rows:
        feasible_at.setdefault(row["fraction"], []).append(row["feasible"])
    deepest = min(
        (f for f, flags in feasible_at.items() if all(flags)),
        default=None,
    )
    dts = [r["mean_slowdown_pct"] for r in rows if r["fraction"] == 0.90]
    lines.append(
        f"a 10 % fleet budget trim costs "
        f"{np.mean(dts):.1f} % mean slowdown across snapshots"
        + (
            f"; budgets down to {deepest:.0%} stay feasible."
            if deepest is not None
            else "."
        )
    )
    return ExperimentResult(
        exp_id="ext_budget",
        title="",
        text="\n".join(lines),
        data={
            "rows": rows,
            "deepest_feasible_fraction": deepest,
            "fleet_peak_w": timeline.peak_w,
            "fleet_peak_to_mean": timeline.peak_to_mean,
        },
    )
