"""Fig 8: the system-wide distribution of GPU power utilization."""

from __future__ import annotations

from ..core import find_power_modes, report
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    hist = cube.histogram
    modes = find_power_modes(hist)
    lines = [
        report.render_fig8(hist),
        "",
        "detected modes (W): "
        + ", ".join(f"{m.power_w:.0f}" for m in modes),
        f"idle mode expected at 88-90 W; "
        f"{hist.range_fraction(560, 1e9) * 100:.1f} % of samples in the "
        "boost region",
    ]
    return ExperimentResult(
        exp_id="fig8",
        title="",
        text="\n".join(lines),
        data={
            "centers": hist.centers,
            "density": hist.smoothed_density(),
            "mode_powers_w": [m.power_w for m in modes],
        },
    )
