"""Fig 4: the roofline under frequency caps (left) and power caps (right).

For each arithmetic intensity, four panels: achieved TFLOP/s, achieved
GB/s, steady power, and time-to-solution normalized to the uncapped run.

Evaluation is batched: :class:`~repro.bench.sweep.CapSweep` detects the
VAI batch protocol and solves each knob's whole cap x intensity grid in
one :meth:`~repro.gpu.GPUDevice.run_batch` call (one vectorized bisection
for the power panel) instead of point-by-point scalar runs.
"""

from __future__ import annotations

import numpy as np

from .. import constants
from ..bench import CapSweep, VAIBenchmark
from ..core import report
from .registry import ExperimentConfig, ExperimentResult

FREQ_CAPS = constants.FREQUENCY_CAPS_MHZ[1:]       # 1500 ... 700
POWER_CAPS = (500, 400, 300, 200, 100)


def _panel(points, base, metric) -> dict:
    """Series per cap for one metric across the intensity grid."""
    out = {}
    for cap, point in sorted(points.items(), reverse=True):
        label = "uncapped" if cap == 0 else f"{cap:g}"
        col = point.result.column(metric)
        if metric == "time_s":
            col = col / base.column("time_s")
        out[label] = col
    return out


def run(config: ExperimentConfig) -> ExperimentResult:
    bench = VAIBenchmark()
    sweep = CapSweep(bench)
    freq_points = sweep.frequency_sweep(FREQ_CAPS)
    power_points = sweep.power_sweep(
        [c for c in POWER_CAPS if c >= 100]
    )
    intensities = freq_points[0].result.intensities
    base = freq_points[0].result

    sections = []
    for knob, points in (("frequency (MHz)", freq_points),
                         ("power cap (W)", power_points)):
        for metric, label in (
            ("tflops", "a) TFLOP/s"),
            ("gbps", "b) GB/s"),
            ("power_w", "c) power (W)"),
            ("time_s", "d) normalized time"),
        ):
            sections.append(
                report.render_series(
                    f"Fig 4 [{knob}] {label}",
                    "AI",
                    intensities.tolist(),
                    _panel(points, base, metric),
                )
            )
            sections.append("")

    peak_power = max(p.power_w for p in base.points)
    peak_at = base.points[
        int(np.argmax([p.power_w for p in base.points]))
    ].intensity
    sections.append(
        f"peak uncapped power {peak_power:.0f} W at AI={peak_at:g} "
        f"(paper: 540 W at AI=4)"
    )
    return ExperimentResult(
        exp_id="fig4",
        title="",
        text="\n".join(sections),
        data={
            "intensities": intensities,
            "uncapped_power_w": base.column("power_w"),
            "uncapped_tflops": base.column("tflops"),
            "peak_power_w": peak_power,
            "peak_intensity": peak_at,
        },
    )
