"""Experiment registry and runner."""

from __future__ import annotations

import importlib
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Optional

from ..errors import ExperimentError
from ..obs import runtime as _obs


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for all experiments.

    Defaults are sized for a laptop-scale run (minutes, not hours); the
    distributions and projections are scale-invariant by design, and MWh
    columns are normalized to the paper's 16 820 MWh campaign.
    """

    fleet_nodes: int = 96       # scaled stand-in for 9408 nodes
    days: float = 4.0           # scaled stand-in for 91 days
    seed: int = 0
    graph_scale: float = 0.02   # Fig 7 network sizes relative to the paper
    campaign_energy_mwh: float = 16820.0
    out_dir: Optional[str] = None

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated artifact."""

    exp_id: str
    title: str
    text: str                       # the printed rows/series
    data: dict = field(default_factory=dict)

    def save(self, out_dir: str) -> Path:
        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        out = path / f"{self.exp_id}.txt"
        out.write_text(self.text + "\n")
        return out


#: id -> (title, module, function name)
_TABLE: Dict[str, tuple] = {
    "fig1": ("Frontier node schematic from the simulated spec",
             "repro.experiments.fig1", "run"),
    "fig2": ("Telemetry vs ROCm SMI + GPU/CPU energy split",
             "repro.experiments.fig2", "run"),
    "fig3": ("L2 access pattern and the cyclic hit model",
             "repro.experiments.fig3", "run"),
    "fig4": ("Roofline under frequency and power caps",
             "repro.experiments.fig4", "run"),
    "fig5": ("VAI normalized runtime/power/energy",
             "repro.experiments.fig5", "run"),
    "fig6": ("Memory benchmark vs working-set size",
             "repro.experiments.fig6", "run"),
    "fig7": ("Louvain application under caps",
             "repro.experiments.fig7", "run"),
    "fig8": ("System-wide GPU power distribution",
             "repro.experiments.fig8", "run"),
    "fig9": ("Per-science-domain distributions",
             "repro.experiments.fig9", "run"),
    "fig10": ("Energy/savings heatmaps by domain and size",
              "repro.experiments.fig10", "run"),
    "table1": ("Frontier system summary",
               "repro.experiments.tables_static", "run_table1"),
    "table2": ("Telemetry dataset summary",
               "repro.experiments.tables_static", "run_table2"),
    "table3": ("Benchmark cap response",
               "repro.experiments.table3", "run"),
    "table4": ("Operating-region decomposition",
               "repro.experiments.table4", "run"),
    "table5": ("System-wide savings projection",
               "repro.experiments.table5", "run"),
    "table6": ("Savings for selected domains and large jobs",
               "repro.experiments.table6", "run"),
    "table7": ("Scheduling policy",
               "repro.experiments.tables_static", "run_table7"),
    # Extensions beyond the paper's artifacts (its discussion section's
    # future work): per-job policy evaluation and proxy validation.
    "ext_policy": ("Per-job cap advisor vs uniform capping vs oracle",
                   "repro.experiments.ext_policy", "run"),
    "ext_validation": ("Region-boundary diffusion of the power proxy",
                       "repro.experiments.ext_validation", "run"),
    "ext_robustness": ("Headline stability across seeds and fleet scale",
                       "repro.experiments.ext_robustness", "run"),
    "ext_replay": ("Phase-level replay vs region-level projection",
                   "repro.experiments.ext_replay", "run"),
    "ext_proxies": ("Proxy-application cap response",
                    "repro.experiments.ext_proxies", "run"),
    "ext_budget": ("Fleet power-budget enforcement",
                   "repro.experiments.ext_budget", "run"),
    "ext_governor": ("Per-kernel governor vs static capping",
                     "repro.experiments.ext_governor", "run"),
    "ext_boost": ("Bounding the uncharacterized boost region",
                  "repro.experiments.ext_boost", "run"),
    "ext_sensitivity": ("Headline sensitivity to model calibration",
                        "repro.experiments.ext_sensitivity", "run"),
    "ext_stream": ("Streaming ingestion vs the batch pipeline",
                   "repro.experiments.ext_stream", "run"),
    "ext_frontier": ("Three months of Frontier via the sharded engine",
                     "repro.experiments.ext_frontier", "run"),
    "ext_controlplane": ("Closed-loop control plane banking energy live",
                         "repro.experiments.ext_controlplane", "run"),
    "ext_incidents": ("Flight-recorder forensics under injected faults",
                      "repro.experiments.ext_incidents", "run"),
    "ext_slo": ("SLO burn-rate alerting over the history store",
                "repro.experiments.ext_slo", "run"),
}

EXPERIMENT_IDS = tuple(_TABLE)


def get_experiment(exp_id: str) -> Callable:
    """Resolve an experiment id to its runner."""
    try:
        _title, module_name, fn_name = _TABLE[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(_TABLE)}"
        ) from None
    module = importlib.import_module(module_name)
    return getattr(module, fn_name)


def run(
    exp_id: str, config: Optional[ExperimentConfig] = None
) -> ExperimentResult:
    """Run one experiment and (optionally) persist its text output.

    With observability enabled, the run is wrapped in an
    ``experiment.<id>`` span, its wall time feeds the
    ``experiment_seconds`` histogram, and — when the config has an
    ``out_dir`` — a ``<id>.manifest.json`` provenance manifest is
    written next to the artifact, carrying only this experiment's slice
    of the trace.
    """
    config = config if config is not None else ExperimentConfig()
    title = _TABLE[exp_id][0] if exp_id in _TABLE else ""
    fn = get_experiment(exp_id)
    st = _obs.state()
    span_mark = len(st.tracer.finished) if st is not None else 0
    wall0, cpu0 = time.perf_counter(), time.process_time()
    with _obs.span("experiment." + exp_id):
        result = fn(config)
    wall_s = time.perf_counter() - wall0
    cpu_s = time.process_time() - cpu0
    if result.exp_id != exp_id:
        raise ExperimentError(
            f"runner for {exp_id} returned result id {result.exp_id}"
        )
    if not result.title:
        result = ExperimentResult(
            exp_id=result.exp_id, title=title, text=result.text,
            data=result.data,
        )
    saved: Optional[Path] = None
    if config.out_dir:
        saved = result.save(config.out_dir)
    if st is not None:
        st.registry.counter(
            "experiments_total", "experiments executed",
        ).inc()
        st.registry.histogram(
            "experiment_seconds", "experiment wall time",
            experiment=exp_id,
        ).observe(wall_s)
        if saved is not None:
            from ..obs import manifest as _manifest

            _manifest.build_manifest(
                command=f"repro run {exp_id}",
                config=asdict(config),
                outputs=[saved],
                wall_s=wall_s,
                cpu_s=cpu_s,
                spans=list(st.tracer.finished[span_mark:]),
            ).write(Path(config.out_dir) / f"{exp_id}.manifest.json")
    return result
