"""Experiment runners: one module per paper table/figure.

Each experiment regenerates the rows/series of one published artifact on
the simulated substrate.  Use :func:`repro.experiments.registry.run` or
the CLI (``python -m repro run fig4``).
"""

from .registry import (
    EXPERIMENT_IDS,
    ExperimentConfig,
    ExperimentResult,
    get_experiment,
    run,
)

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentConfig",
    "ExperimentResult",
    "get_experiment",
    "run",
]
