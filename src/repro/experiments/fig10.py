"""Fig 10: energy and projected-savings heatmaps (domain x size class)."""

from __future__ import annotations

import numpy as np

from ..core import compute_heatmaps, measured_factors, report
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    factors = measured_factors("frequency")
    heatmaps = compute_heatmaps(
        cube,
        factors,
        cap=1100.0,
        campaign_energy_mwh=config.campaign_energy_mwh,
    )
    by_class = heatmaps.energy_mwh.sum(axis=0)
    large_share = by_class[:3].sum() / by_class.sum()
    lines = [
        report.render_fig10(heatmaps),
        "",
        f"classes A-C hold {100 * large_share:.1f} % of GPU energy "
        "(paper: most energy in large jobs)",
    ]
    return ExperimentResult(
        exp_id="fig10",
        title="",
        text="\n".join(lines),
        data={
            "domains": heatmaps.domains,
            "classes": heatmaps.classes,
            "energy_mwh": heatmaps.energy_mwh,
            "savings_mwh": heatmaps.savings_mwh,
            "large_class_energy_share": float(large_share),
            "top_domain": heatmaps.domains[
                int(np.argmax(heatmaps.savings_mwh.max(axis=1)))
            ],
        },
    )
