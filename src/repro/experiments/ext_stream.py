"""Extension: streaming ingestion vs the batch pipeline.

The paper analyzed its three months of telemetry after the fact; an
operational power manager has to produce the same answers online.  This
experiment drives the :mod:`repro.stream` engine over one campaign's
telemetry three ways — in event-time order, shuffled within a lateness
horizon, and shuffled with injected duplicate records — and checks that
every drained run reproduces the batch join *bitwise* (canonical-window
contract) while agreeing with the node-major batch experiments to float
tolerance.  It also reports what the batch path cannot: ingest
statistics (duplicates, late drops, peak resident samples) and the
fleet cap advice available at the final watermark.

A fourth, deliberately broken delivery exercises the health layer: the
engine gets no lateness allowance and a window far smaller than the
delivery jitter, so a deterministic share of samples arrives behind the
sealed frontier and is dropped — and the default alert ruleset must
notice.  The resulting
event-time alert timeline (pending/firing/resolved transitions of the
``stream_late_dropped`` rate rule and friends) is part of the
experiment's output.
"""

from __future__ import annotations

import numpy as np

from .. import constants, units
from ..core import decompose_modes, join_campaign, measured_factors
from ..obs.health import DriftReference, HealthMonitor, render_events
from ..scheduler import SlurmSimulator, default_mix
from ..stream import StreamEngine, canonical_windows, perturb, replay_store
from ..telemetry import FleetTelemetryGenerator
from .registry import ExperimentConfig, ExperimentResult

#: Event-time window and allowed lateness (aggregated ticks).
WINDOW_TICKS = 40
LATENESS_TICKS = 8
DUP_FRACTION = 0.05


def _cubes_equal(a, b) -> bool:
    return (
        np.array_equal(a.energy_j, b.energy_j)
        and np.array_equal(a.gpu_hours, b.gpu_hours)
        and np.array_equal(a.histogram.counts, b.histogram.counts)
        and np.array_equal(
            a.histogram.weight_sums, b.histogram.weight_sums
        )
        and a.cpu_energy_j == b.cpu_energy_j
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    # A streaming-sized slice of the configured campaign: the contract
    # is scale-invariant and the perturbed replays materialize rows.
    fleet_nodes = min(config.fleet_nodes, 32)
    days = min(config.days, 1.0)
    mix = default_mix(fleet_nodes=fleet_nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=config.seed)
    gen = FleetTelemetryGenerator(log, mix, seed=config.seed + 1000)
    store = gen.generate()

    window_s = WINDOW_TICKS * constants.TELEMETRY_INTERVAL_S
    lateness_s = LATENESS_TICKS * constants.TELEMETRY_INTERVAL_S
    batch = join_campaign(canonical_windows(store, window_s=window_s), log)
    node_major = join_campaign(store, log)

    runs = {}
    for label, source, lateness in (
        ("in-order", replay_store(store, chunk_ticks=20), 0.0),
        (
            "shuffled",
            perturb(store, seed=config.seed, lateness_s=lateness_s),
            lateness_s,
        ),
        (
            "shuffled+dup",
            perturb(
                store,
                seed=config.seed + 1,
                lateness_s=lateness_s,
                dup_fraction=DUP_FRACTION,
            ),
            lateness_s,
        ),
    ):
        engine = StreamEngine(
            log, window_s=window_s, lateness_s=lateness
        ).run(source)
        runs[label] = engine

    factors = measured_factors("frequency")
    lines = [
        f"streaming vs batch on {fleet_nodes} nodes x {days:g} days "
        f"(window {window_s:.0f} s, lateness {lateness_s:.0f} s):",
        "",
        f"{'delivery':<14} {'bitwise':>8} {'dups':>7} {'late':>6} "
        f"{'peak resident':>14} {'max|dE| (J)':>12}",
    ]
    data = {"bitwise": {}, "stats": {}}
    for label, engine in runs.items():
        cube = engine.cube()
        equal = _cubes_equal(cube, batch)
        s = engine.stats
        gap = float(np.abs(cube.energy_j - node_major.energy_j).max())
        lines.append(
            f"{label:<14} {str(equal):>8} {s.duplicates:>7} "
            f"{s.late_dropped:>6} {s.peak_resident_samples:>14} "
            f"{gap:>12.3g}"
        )
        data["bitwise"][label] = equal
        data["stats"][label] = {
            "duplicates": s.duplicates,
            "late_dropped": s.late_dropped,
            "peak_resident_samples": s.peak_resident_samples,
            "samples_in": s.samples_in,
            "node_major_max_abs_diff_j": gap,
        }

    snapshot = runs["shuffled+dup"].snapshot(
        factors=factors, campaign_energy_mwh=config.campaign_energy_mwh
    )
    lines.append("")
    lines.append(
        "the drained stream reproduces the batch join bitwise under "
        "every delivery; the node-major batch cube agrees to float "
        "rounding (grouping of the float adds differs)."
    )
    lines.append("")
    lines.append(snapshot.render())

    # Health layer under a broken delivery: give the engine no lateness
    # allowance and a window shorter than the delivery jitter, so a
    # deterministic share of samples arrives behind the sealed frontier
    # and drops.  The drift reference is pinned to the batch
    # decomposition, and the event-time alert timeline is recorded.
    # Uses its own monitor/registry, so the experiment output is
    # identical whether global observability is on or off.
    monitor = HealthMonitor(
        reference=DriftReference.from_table(
            decompose_modes(batch), label="batch Table IV"
        )
    )
    broken_window_s = lateness_s / 4
    broken = StreamEngine(
        log, window_s=broken_window_s, lateness_s=0.0
    ).attach_health(monitor)
    broken.run(perturb(
        store,
        seed=config.seed + 2,
        lateness_s=lateness_s,
        rows_per_chunk=512,
    ))
    broken_stats = broken.stats
    health = monitor.to_health_dict()
    fired = sorted({
        ev["rule"] for ev in monitor.events if ev["transition"] == "firing"
    })
    lines.append("")
    lines.append(
        f"health layer on a broken delivery ({broken_window_s:.0f} s "
        f"windows, no lateness allowance, {lateness_s:.0f} s delivery "
        f"jitter): {broken_stats.late_dropped} of "
        f"{broken_stats.samples_in} samples dropped late, final status "
        f"{health['status']!r}"
    )
    lines.append(render_events(
        monitor.events, title="alert timeline (event time):"
    ))

    rec = snapshot.recommendation
    data["recommendation"] = {
        "cap": rec.cap if rec is not None else None,
        "savings_pct": rec.savings_pct if rec is not None else 0.0,
    }
    data["table4_gpu_hours_pct"] = (
        snapshot.table4.gpu_hours_pct if snapshot.table4 else None
    )
    data["alerts"] = {
        "late_dropped": broken_stats.late_dropped,
        "samples_in": broken_stats.samples_in,
        "status": health["status"],
        "fired_rules": fired,
        "timeline": list(monitor.events),
    }
    return ExperimentResult(
        exp_id="ext_stream",
        title="",
        text="\n".join(lines),
        data=data,
    )
