"""Tables I, II and VII: configuration tables.

These are specification tables rather than measurements; reproducing them
verifies the simulated system is parameterized like the published one.
"""

from __future__ import annotations

from .. import constants, units
from ..core.report import format_table
from ..gpu.specs import default_spec
from .registry import ExperimentConfig, ExperimentResult


def run_table1(config: ExperimentConfig) -> ExperimentResult:
    spec = default_spec()
    rows = [
        ["Compute nodes", f"{constants.NUM_COMPUTE_NODES}"],
        ["Peak performance", f"{constants.PEAK_PERFORMANCE_EFLOPS} EF"],
        ["Peak power", f"{constants.PEAK_POWER_MW} MW"],
        ["GPUs per node", f"{constants.GPUS_PER_NODE} x AMD MI250X"],
        ["GCDs per GPU", f"{constants.GCDS_PER_GPU}"],
        ["HBM per GCD", f"{units.to_mib(constants.HBM_PER_GCD_BYTES) / 1024:.0f} GB"],
        ["GPU max power", f"{spec.tdp_w:.0f} W"],
        ["GPU max frequency", f"{units.to_mhz(spec.f_max_hz):.0f} MHz"],
        ["GPU idle power", f"{spec.idle_w:.0f} W"],
        ["Achievable HBM bandwidth", f"{units.to_gbps(spec.achievable_hbm_bw):.0f} GB/s"],
    ]
    text = "Table I: Frontier system summary (simulated)\n" + format_table(
        ["item", "value"], rows
    )
    return ExperimentResult(exp_id="table1", title="", text=text)


def run_table2(config: ExperimentConfig) -> ExperimentResult:
    rows = [
        ["(a)", "Power telemetry data",
         f"{constants.TELEMETRY_INTERVAL_S:.0f} s",
         "out-of-band per-node GPU/CPU power (aggregated from "
         f"{constants.SENSOR_INTERVAL_S:.0f} s sensors)"],
        ["(b)", "Job scheduler log", "per-job",
         "job id, project id, num nodes, begin/end time"],
        ["(c)", "Per-node scheduler data", "per-node-per-job",
         "which jobs ran on each compute node"],
    ]
    text = "Table II: telemetry dataset summary\n" + format_table(
        ["id", "name", "resolution", "description"], rows
    )
    return ExperimentResult(exp_id="table2", title="", text=text)


def run_table7(config: ExperimentConfig) -> ExperimentResult:
    rows = [
        [name, f"{lo} - {hi}", f"{wall:.0f}"]
        for name, lo, hi, wall in constants.SCHEDULING_POLICY
    ]
    text = "Table VII: Frontier job scheduling policy\n" + format_table(
        ["job size", "num nodes", "max walltime (h)"], rows
    )
    return ExperimentResult(exp_id="table7", title="", text=text)
