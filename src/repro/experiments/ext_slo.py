"""Extension: multi-window SLO burn-rate alerting over the history store.

The history layer (:mod:`repro.obs.history`) claims the same contract
the flight recorder proved for incidents, now for service-level
objectives: attach a history to a streaming engine and every sealed
window compacts into a columnar row, rolls up deterministically, and
drives multi-window burn-rate SLO rules whose alert timeline is a pure
function of the window sequence — identical across reruns, arrival
chunkings, and in-memory vs on-disk stores.  This experiment proves
the contract by construction.

A 2-node fleet draws a perfectly flat 250 W profile (every GCD far
below both the 560 W hardware limit and the 532 W power budget), so
every shipped SLO is quiet — and then one sustained fault is injected:
for three hours starting at day 1, two of the eight GCDs are pinned to
575 W, above the hardware limit.  That makes 25 % of GPU samples "bad"
for the ``cap_violation`` SLO (objective 99.9 %), a burn rate of 250x
sustainable inside the burst — far over both alert thresholds.

Because the windows are 15 s and the burst spans hours, the standard
multi-window rules order **exactly**: the fast page (5 m and 1 h both
>= 14.4x) fires ~210 s into the burst, the slow ticket (6 h and 3 d
both >= 6x) fires ~35 min in, the fast rule resolves ~5 min after the
burst ends, and the slow ticket resolves only once the 6 h window has
nearly slid off the burst — every timestamp computable by hand from
the burn algebra (see ``_expected_timeline``).

Checks:

* the four transitions appear at the predicted event times and nothing
  else fires (``exact_timeline``), the page leading the ticket both in
  and out (``fast_before_slow``);
* rerunning reproduces the timeline verbatim (``reproducible``) and
  halving the arrival chunk size changes no field (``chunking_
  invariant``);
* an on-disk store and an in-memory store of the same campaign hold
  bitwise-identical columns at every rollup level (``store_parity``),
  and every rollup bucket refolds bitwise from its level-0 rows
  (``rollups_exact``);
* :func:`repro.obs.history.replay` over the written store reproduces
  the live evaluator's gauges exactly (``replay_parity``);
* the fleet cube of the history-enabled engine is bitwise identical to
  a bare engine's (``history_invisible``), and both alerts resolve by
  drain (``all_resolved``).
"""

from __future__ import annotations

import tempfile

import numpy as np

from .. import constants, units
from ..obs.history import History, replay, verify_rollups
from ..scheduler import SlurmSimulator, default_mix
from ..stream import replay_store
from ..stream.engine import StreamEngine
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore
from .registry import ExperimentConfig, ExperimentResult

#: Fixed geometry: the experiment asserts an *exact* timeline, so the
#: fleet and campaign length are pinned rather than config-scaled.
NODES = 2
CAMPAIGN_S = 129_600.0                # a day and a half
WINDOW_S = constants.TELEMETRY_INTERVAL_S   # one window per tick

BASE_POWER_W = 250.0                  # flat and far under the cap
CPU_POWER_W = 100.0

#: The injected burst: node 0, GCDs 0-1 pinned over the 560 W limit
#: for three hours — 2 of 8 GCDs, a 25 % violation rate.
BURST_T0, BURST_T1 = 86_400.0, 97_200.0
BURST_W = 575.0
BAD_FRACTION = 2.0 / (NODES * constants.GPUS_PER_NODE)


def _synthetic_store() -> TelemetryStore:
    """The flat two-node profile with the burst stamped in (no RNG)."""
    ticks = int(round(CAMPAIGN_S / constants.TELEMETRY_INTERVAL_S))
    time_s = np.repeat(
        np.arange(ticks, dtype=np.float64) * constants.TELEMETRY_INTERVAL_S,
        NODES,
    )
    node_id = np.tile(np.arange(NODES, dtype=np.int32), ticks)
    gpu = np.full(
        (ticks * NODES, constants.GPUS_PER_NODE), BASE_POWER_W
    )
    burst = (
        (node_id == 0) & (time_s >= BURST_T0) & (time_s < BURST_T1)
    )
    gpu[burst, 0:2] = BURST_W
    chunk = TelemetryChunk(
        time_s=time_s,
        node_id=node_id,
        gpu_power_w=gpu.astype(np.float32),
        cpu_power_w=np.full(ticks * NODES, CPU_POWER_W, dtype=np.float32),
    )
    return TelemetryStore(chunk)


def _run_history(store, log, *, chunk_ticks: int, dir=None):
    """Stream the campaign through an engine with a history attached."""
    engine = StreamEngine(
        log,
        interval_s=constants.TELEMETRY_INTERVAL_S,
        window_s=WINDOW_S,
    )
    history = History(dir=dir)
    engine.attach_history(history)
    for chunk in replay_store(store, chunk_ticks=chunk_ticks):
        engine.ingest(chunk)
    engine.drain()
    return engine, history


def _next_window_end(t: float) -> float:
    """First window end at or after the algebraic crossing ``t``."""
    return float(np.ceil(t / WINDOW_S)) * WINDOW_S


def _expected_timeline() -> list:
    """The four transition times from the burn algebra.

    With a violation ratio ``r`` inside the burst and error budget
    ``b = 0.001``, a trailing window of span ``W`` starting at the
    campaign origin burns at ``(r * overlap / W) / b`` where
    ``overlap`` is the burst time the window has covered.  Each rule
    is the min of its two windows, so the *binding* window is:

    * fast firing  — the 1 h window needs ``overlap >= 14.4 b W / r``;
    * slow firing  — the 3 d window (still anchored at t = 0) needs
      ``(burst elapsed) / now >= 6 b / r``;
    * fast resolve — the 5 m window must drop below threshold as it
      slides off the burst;
    * slow resolve — the 6 h window keeps >= 6x burn the longest.
    """
    budget = 0.001
    rate = BAD_FRACTION
    fast_fire = BURST_T0 + 14.4 * budget * 3_600.0 / rate
    slow_fire = BURST_T0 / (1.0 - 6.0 * budget / rate)
    fast_resolve = BURST_T1 + 300.0 - 14.4 * budget * 300.0 / rate
    slow_resolve = BURST_T1 + 21_600.0 - 6.0 * budget * 21_600.0 / rate
    return [
        ("slo_cap_violation_fast_burn", "firing",
         _next_window_end(fast_fire)),
        ("slo_cap_violation_slow_burn", "firing",
         _next_window_end(slow_fire)),
        ("slo_cap_violation_fast_burn", "resolved",
         _next_window_end(fast_resolve)),
        ("slo_cap_violation_slow_burn", "resolved",
         _next_window_end(slow_resolve)),
    ]


def _events(history) -> list:
    return [
        (e["rule"], e["transition"], e["t_s"]) for e in history.events()
    ]


def _store_columns(store) -> list:
    """Every column of every level as raw bytes (bitwise comparison)."""
    out = []
    for level in range(store.n_levels):
        rows = store.rows(level)
        for name, _agg in store.columns:
            out.append(store.column_slice(name, level, 0, rows).tobytes())
    return out


def run(config: ExperimentConfig) -> ExperimentResult:
    store = _synthetic_store()
    log = SlurmSimulator(default_mix(fleet_nodes=NODES)).run(
        units.days(CAMPAIGN_S / 86_400.0), rng=config.seed
    )

    engine_a, hist_a = _run_history(store, log, chunk_ticks=20)
    _engine_b, hist_b = _run_history(store, log, chunk_ticks=20)
    _engine_c, hist_c = _run_history(store, log, chunk_ticks=40)

    with tempfile.TemporaryDirectory() as tmp:
        _engine_d, hist_d = _run_history(
            store, log, chunk_ticks=20, dir=tmp
        )
        store_parity = (
            _store_columns(hist_a.store) == _store_columns(hist_d.store)
        )
        disk_mismatches = verify_rollups(hist_d.store)
        replay_ev = replay(hist_d.store)
        replay_parity = (
            replay_ev.last_values == hist_a.evaluator.last_values
        )

    # A bare engine, no history: the fold must not change by one bit.
    engine_plain = StreamEngine(
        log, interval_s=constants.TELEMETRY_INTERVAL_S, window_s=WINDOW_S,
    )
    for chunk in replay_store(store, chunk_ticks=20):
        engine_plain.ingest(chunk)
    engine_plain.drain()
    cube_a, cube_p = engine_a.cube(), engine_plain.cube()
    history_invisible = (
        np.array_equal(cube_a.energy_j, cube_p.energy_j)
        and np.array_equal(cube_a.gpu_hours, cube_p.gpu_hours)
        and cube_a.cpu_energy_j == cube_p.cpu_energy_j
    )

    timeline = _events(hist_a)
    expected = _expected_timeline()
    fire_t = {
        (rule, tr): t for rule, tr, t in timeline
    }
    checks = {
        "exact_timeline": timeline == expected,
        "fast_before_slow": (
            fire_t.get(("slo_cap_violation_fast_burn", "firing"), 1e18)
            < fire_t.get(("slo_cap_violation_slow_burn", "firing"), 0)
            and fire_t.get(
                ("slo_cap_violation_fast_burn", "resolved"), 1e18
            )
            < fire_t.get(("slo_cap_violation_slow_burn", "resolved"), 0)
        ),
        "reproducible": timeline == _events(hist_b),
        "chunking_invariant": timeline == _events(hist_c),
        "store_parity": store_parity,
        "rollups_exact": (
            verify_rollups(hist_a.store) == [] and disk_mismatches == []
        ),
        "replay_parity": replay_parity,
        "history_invisible": history_invisible,
        "all_resolved": not hist_a.slo_alerts.firing(),
    }

    burst_h = (BURST_T1 - BURST_T0) / 3_600.0
    lines = [
        f"SLO burn-rate drill: {NODES} nodes x "
        f"{CAMPAIGN_S / 86_400.0:g} days at {WINDOW_S:.0f} s windows "
        f"({hist_a.windows_recorded} windows recorded)",
        "",
        f"injected fault: 2/{NODES * constants.GPUS_PER_NODE} GCDs at "
        f"{BURST_W:.0f} W (> {constants.GCD_MAX_POWER_W:.0f} W limit) "
        f"for {burst_h:g} h from t={BURST_T0:,.0f} s — "
        f"{100 * BAD_FRACTION:.0f} % violation rate, "
        f"{BAD_FRACTION / 0.001:.0f}x burn against the 99.9 % objective",
        "",
        hist_a.timeline(),
        "",
        "expected from the burn algebra:",
    ]
    for rule, transition, t in expected:
        lines.append(f"  t={t:>9,.0f} s  {transition:<9} {rule}")
    lines += [
        "",
        f"determinism: rerun identical={checks['reproducible']}, "
        f"chunk 300 s vs 600 s identical={checks['chunking_invariant']}, "
        f"disk store bitwise-equal to memory={store_parity}",
        f"rollups refold bitwise={checks['rollups_exact']}, "
        f"offline replay matches live gauges={replay_parity}",
        f"history overhead on analytics: fleet cube bitwise identical "
        f"to a history-free engine={history_invisible}",
    ]
    failed = sorted(k for k, ok in checks.items() if not ok)
    lines.append("")
    lines.append("all checks passed" if not failed else f"FAILED: {failed}")

    data = {
        "timeline": [
            {"rule": r, "transition": tr, "t_s": t}
            for r, tr, t in timeline
        ],
        "expected": [
            {"rule": r, "transition": tr, "t_s": t}
            for r, tr, t in expected
        ],
        "slos": hist_a.slo_rows(),
        "checks": checks,
    }
    return ExperimentResult(
        exp_id="ext_slo",
        title="SLO burn-rate alerting over the history store",
        text="\n".join(lines),
        data=data,
    )
