"""Extension: three months of Frontier through the sharded engine.

The paper's campaign is 9,408 nodes observed for 91 days — about five
billion aggregated telemetry rows.  The single-process experiments top
out around 16-96 nodes, so this experiment scales the *same* synthetic
campaign up a node-count ladder (96 -> 9,408 nodes) through the sharded
campaign engine (:mod:`repro.stream.shard`):

1. **invariance** — at the base tier, the sharded cube must be bitwise
   identical whether folded in 1 shard or 4 (the engine's contract);
2. **measured tiers** — a short slice (~1 h of event time) of each
   tier up to ``MEASURE_MAX_NODES`` runs end to end (generation +
   reorder + fold + merge) to measure sustained row throughput;
3. **the Frontier ladder** — every tier's full 91-day campaign is
   sized in rows and costed in wall-clock from the measured
   throughput, serially and at the 8-worker scaling the shard
   benchmark gates (``benchmarks/bench_shard.py``).

The point is operational: with per-shard checkpoints and worker
processes, "three months of Frontier" is hours of compute, not a
wall of unreachable memory — the gateway the ROADMAP's scale items
build on.
"""

from __future__ import annotations

import numpy as np

from .. import constants
from ..stream.shard import ShardConfig, run_sharded_campaign
from .registry import ExperimentConfig, ExperimentResult

#: The Frontier node-count ladder (the paper's fleet is the top rung).
TIERS = (96, 588, 1176, 4704, constants.NUM_COMPUTE_NODES)

#: Tiers at or below this size are measured end to end; larger tiers
#: are costed from the largest measured tier's sustained throughput.
MEASURE_MAX_NODES = 1176

#: Event-time slice used for the measured runs (days).  ~1.2 h: long
#: enough to amortize per-unit setup, short enough for CI.
MEASURE_DAYS = 0.05

#: Shard width used for the measured runs.
MEASURE_SHARDS = 8

#: The scaling factor the shard benchmark gates at 8 workers.
GATED_SCALING_8W = 3.0


def _cubes_equal(a, b) -> bool:
    return (
        np.array_equal(a.energy_j, b.energy_j)
        and np.array_equal(a.gpu_hours, b.gpu_hours)
        and np.array_equal(a.histogram.counts, b.histogram.counts)
        and np.array_equal(
            a.histogram.weight_sums, b.histogram.weight_sums
        )
        and a.cpu_energy_j == b.cpu_energy_j
    )


def campaign_rows(nodes: int, days: float) -> int:
    """Aggregated telemetry rows (node-ticks) of a campaign."""
    return nodes * int(np.floor(days * 86400.0 / constants.TELEMETRY_INTERVAL_S))


def run(config: ExperimentConfig) -> ExperimentResult:
    cfg = ShardConfig()
    base_nodes = min(config.fleet_nodes, 96)

    # 1. Invariance at the base tier: 1 shard vs 4 shards, bitwise.
    inv_days = min(config.days, 0.25)
    one = run_sharded_campaign(
        fleet_nodes=base_nodes, days=inv_days, seed=config.seed,
        shards=1, cfg=cfg,
    )
    four = run_sharded_campaign(
        fleet_nodes=base_nodes, days=inv_days, seed=config.seed,
        shards=4, cfg=cfg,
    )
    invariant = _cubes_equal(one.cube, four.cube)

    # 2. Measured tiers: a short slice of each, end to end.
    measured = {}
    for nodes in TIERS:
        if nodes > MEASURE_MAX_NODES:
            continue
        r = run_sharded_campaign(
            fleet_nodes=nodes, days=MEASURE_DAYS, seed=config.seed,
            shards=MEASURE_SHARDS, cfg=cfg,
        )
        measured[nodes] = {
            "rows": r.stats.samples_folded,
            "wall_s": r.wall_s,
            "rows_per_s": r.stats.samples_folded / r.wall_s,
            "n_units": r.n_units,
            "shards": r.shards,
        }
    ref_nodes = max(measured)
    rows_per_s = measured[ref_nodes]["rows_per_s"]

    # 3. The 91-day ladder, costed from the measured throughput.
    days = float(constants.CAMPAIGN_DAYS)
    lines = [
        f"sharded campaign engine on the Frontier ladder "
        f"(fold units of {cfg.unit_nodes} nodes, "
        f"window {cfg.window_s:.0f} s):",
        "",
        f"shard-count invariance at {base_nodes} nodes x {inv_days:g} "
        f"days: 1 shard vs 4 shards bitwise identical = {invariant}",
        "",
        f"measured ({MEASURE_DAYS * 24:.1f} h slices, "
        f"{MEASURE_SHARDS} shards, serial fold):",
        f"{'nodes':>7} {'rows':>12} {'wall (s)':>9} {'rows/s':>11}",
    ]
    for nodes, m in measured.items():
        lines.append(
            f"{nodes:>7} {m['rows']:>12,} {m['wall_s']:>9.2f} "
            f"{m['rows_per_s']:>11,.0f}"
        )
    lines += [
        "",
        f"projected 91-day campaigns at the measured "
        f"{rows_per_s:,.0f} rows/s (8-worker column assumes the "
        f">= {GATED_SCALING_8W:g}x scaling gated by bench_shard):",
        f"{'nodes':>7} {'GCDs':>7} {'rows (91 d)':>14} "
        f"{'serial':>10} {'8 workers':>10}",
    ]
    ladder = {}
    for nodes in TIERS:
        rows = campaign_rows(nodes, days)
        serial_s = rows / rows_per_s
        scaled_s = serial_s / GATED_SCALING_8W
        ladder[nodes] = {
            "gcds": nodes * constants.GCDS_PER_NODE,
            "rows_91d": rows,
            "serial_s": serial_s,
            "workers8_s": scaled_s,
            "measured": nodes in measured,
        }
        tag = "*" if nodes in measured else " "
        lines.append(
            f"{nodes:>7} {ladder[nodes]['gcds']:>7,} {rows:>14,} "
            f"{serial_s / 3600:>9.1f}h {scaled_s / 3600:>9.1f}h{tag}"
        )
    lines += [
        "  (* throughput measured at this tier)",
        "",
        f"three months of Frontier "
        f"({constants.NUM_COMPUTE_NODES:,} nodes, "
        f"{ladder[constants.NUM_COMPUTE_NODES]['rows_91d']:,} rows) "
        f"folds in "
        f"~{ladder[constants.NUM_COMPUTE_NODES]['workers8_s'] / 3600:.1f} h "
        f"at 8 workers, checkpointed per shard — the full-scale "
        f"campaign is compute-bound, not memory-bound: resident state "
        f"stays at one fold unit per worker "
        f"(peak {measured[ref_nodes]['rows'] // measured[ref_nodes]['n_units']:,} "
        f"rows) plus O(bins) cube state.",
    ]
    data = {
        "invariant_1_vs_4_shards": invariant,
        "measured": measured,
        "ladder": ladder,
        "rows_per_s": rows_per_s,
        "unit_nodes": cfg.unit_nodes,
    }
    return ExperimentResult(
        exp_id="ext_frontier",
        title="",
        text="\n".join(lines),
        data=data,
    )
