"""Fig 9: per-science-domain GPU power distributions."""

from __future__ import annotations

from ..core import domain_distributions, report
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    dists = domain_distributions(cube)
    families = {
        "compute intensive (Fig 9 a-b)": [
            d for d in dists.values() if d.dominant_region == 3
        ],
        "latency/IO bound (Fig 9 c-d)": [
            d for d in dists.values() if d.dominant_region == 1
        ],
        "memory intensive (Fig 9 e-f)": [
            d
            for d in dists.values()
            if d.dominant_region == 2 and not d.is_multi_zone
        ],
        "multi-zone (Fig 9 g-h)": [
            d for d in dists.values() if d.is_multi_zone
        ],
    }
    lines = [report.render_fig9(dists), ""]
    for family, members in families.items():
        names = ", ".join(sorted(m.domain for m in members)) or "(none)"
        lines.append(f"{family}: {names}")
    return ExperimentResult(
        exp_id="fig9",
        title="",
        text="\n".join(lines),
        data={
            name: {
                "region_pct": d.region_pct,
                "modes_w": [m.power_w for m in d.modes],
                "gpu_hours": d.gpu_hours,
            }
            for name, d in dists.items()
        },
    )
