"""Extension: robustness of the headline across seeds and fleet scale.

The paper's projection rests on one three-month sample of one machine.
The simulation can ask the question the paper could not: how stable is
the headline number under resampling (different job arrival streams) and
under fleet scale?  This experiment repeats the campaign across seeds and
two fleet sizes and reports the spread of the best no-slowdown savings.
"""

from __future__ import annotations

import numpy as np

from ..core import measured_factors, project_savings
from ..core.pipeline import run_campaign
from .registry import ExperimentConfig, ExperimentResult

SEEDS = (0, 1, 2)


def _headline(fleet_nodes: int, days: float, seed: int, factors) -> dict:
    run = run_campaign(fleet_nodes=fleet_nodes, days=days, seed=seed)
    table = project_savings(
        run.cube, factors, campaign_energy_mwh=16820.0
    )
    best = table.best_no_slowdown_row
    return {
        "seed": seed,
        "nodes": fleet_nodes,
        "no_slowdown_pct": best.savings_no_slowdown_pct,
        "best_pct": table.best_row.savings_pct,
        "best_cap": table.best_row.cap,
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    factors = measured_factors("frequency")
    scales = [config.fleet_nodes // 2, config.fleet_nodes]
    rows = [
        _headline(nodes, config.days / 2, seed, factors)
        for nodes in scales
        for seed in SEEDS
    ]

    lines = ["headline savings across seeds and fleet scale:"]
    lines.append(
        f"{'nodes':>6} {'seed':>5} {'best %':>7} {'cap':>6} "
        f"{'no-slowdown %':>14}"
    )
    for r in rows:
        lines.append(
            f"{r['nodes']:>6} {r['seed']:>5} {r['best_pct']:7.2f} "
            f"{r['best_cap']:6.0f} {r['no_slowdown_pct']:14.2f}"
        )
    ns = np.array([r["no_slowdown_pct"] for r in rows])
    best = np.array([r["best_pct"] for r in rows])
    lines.append(
        f"\nno-slowdown savings: {ns.mean():.2f} +/- {ns.std():.2f} % "
        f"(range {ns.min():.2f}-{ns.max():.2f})"
    )
    lines.append(
        f"best savings:        {best.mean():.2f} +/- {best.std():.2f} %"
    )
    lines.append(
        "the headline is a property of the workload mix, not of one "
        "campaign sample — its spread across resamples is well under a "
        "percentage point."
    )
    return ExperimentResult(
        exp_id="ext_robustness",
        title="",
        text="\n".join(lines),
        data={
            "rows": rows,
            "no_slowdown_mean": float(ns.mean()),
            "no_slowdown_std": float(ns.std()),
            "best_mean": float(best.mean()),
            "best_std": float(best.std()),
        },
    )
