"""Table V: system-wide savings projection for both knobs.

Projects with the benchmark factors measured on the simulated device, and
— as a cross-check — with the paper's own published Table III factors.
"""

from __future__ import annotations

from ..core import measured_factors, paper_factors, project_savings, report
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    sections = []
    data = {}
    for knob in ("frequency", "power"):
        measured = project_savings(
            cube,
            measured_factors(knob),
            campaign_energy_mwh=config.campaign_energy_mwh,
        )
        with_paper = project_savings(
            cube,
            paper_factors(knob),
            campaign_energy_mwh=config.campaign_energy_mwh,
        )
        sections.append(report.render_table5(measured))
        sections.append(
            f"[{knob}] with the paper's own Table III factors: best "
            f"{with_paper.best_row.savings_pct:.2f} % at "
            f"{with_paper.best_row.cap:.0f}; best no-slowdown "
            f"{with_paper.best_no_slowdown_row.savings_no_slowdown_pct:.2f} "
            f"% at {with_paper.best_no_slowdown_row.cap:.0f}"
        )
        sections.append("")
        data[knob] = measured
        data[f"{knob}_paper_factors"] = with_paper

    best = data["frequency"].best_row
    sections.append(
        f"headline: up to {best.savings_pct:.1f} % "
        f"({best.total_mwh:.0f} MWh) at a {best.cap:.0f} MHz cap "
        f"with {best.runtime_increase_pct:.1f} % runtime increase "
        "(paper: 8.8 % / 1493.9 MWh at 900 MHz with 11.2 %)"
    )
    return ExperimentResult(
        exp_id="table5", title="", text="\n".join(sections), data=data
    )
