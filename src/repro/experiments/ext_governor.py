"""Extension: per-kernel governor vs static capping.

Compares the idealized sensitivity-aware DVFS governor against the
paper's static caps on a mixed kernel stream (memory streams + compute
kernels at comparable energy weight): the governor banks the
memory-side savings of a deep static cap at none of its runtime cost.
"""

from __future__ import annotations

from .. import units
from ..bench.membench import membench_kernel
from ..bench.vai import vai_kernel
from ..gpu.governor import SensitivityGovernor, governor_vs_static
from .registry import ExperimentConfig, ExperimentResult


def _mixed_stream():
    stream = membench_kernel(units.gib(1), passes=5)
    return [stream, stream, stream, vai_kernel(16.0), vai_kernel(256.0)]


def run(config: ExperimentConfig) -> ExperimentResult:
    kernels = _mixed_stream()
    lines = ["per-kernel decisions (2 % slowdown tolerance):"]
    governor = SensitivityGovernor()
    for kernel in {k.name: k for k in kernels}.values():
        d = governor.decide(kernel)
        state = f"{d.f_mhz:.0f} MHz cap" if d.capped else "uncapped"
        lines.append(
            f"  {kernel.name:<22} -> {state:<14} "
            f"(predicted {d.predicted_power_w:.0f} W, "
            f"slowdown x{d.predicted_slowdown:.3f})"
        )

    results = {}
    lines.append("")
    lines.append(
        f"{'strategy':<10} {'saving %':>9} {'slowdown %':>11}"
    )
    for cap in (1300.0, 900.0):
        cmp = governor_vs_static(kernels, static_cap_mhz=cap)
        results[cap] = cmp
        lines.append(
            f"static{cap:5.0f} {cmp['static']['saving_pct']:9.2f} "
            f"{cmp['static']['slowdown_pct']:11.2f}"
        )
    gov = results[900.0]["governor"]
    lines.append(
        f"{'governor':<10} {gov['saving_pct']:9.2f} "
        f"{gov['slowdown_pct']:11.2f}"
    )
    lines.append(
        "\nthe governor banks the *free* share of the static caps' "
        "savings (the memory-side energy) at ~zero runtime cost; the "
        "remainder is fundamentally a runtime trade that only a deeper "
        "slowdown tolerance can buy — the kernel-granularity endpoint of "
        "the paper's sensitivity-aware future work."
    )
    return ExperimentResult(
        exp_id="ext_governor",
        title="",
        text="\n".join(lines),
        data={
            "governor": gov,
            "static_900": results[900.0]["static"],
            "static_1300": results[1300.0]["static"],
        },
    )
