"""Extension: bounding the uncharacterized boost region.

The paper measures 1.1 % of GPU-hours above 560 W (Table IV region 4)
but declines to project savings for it: the benchmarks measure steady
state and cannot hold boost.  The simulation can bound the omission from
both sides:

* *energy side* — region 4's energy share of the campaign, and the
  "excess" energy above a flat 560 W (what perfectly suppressing boost
  transients could maximally reclaim);
* *thermal side* — the RC model's boost windows and duty cycles, showing
  boost is a transient regime, so region 4 cannot grow large enough to
  change any conclusion.
"""

from __future__ import annotations

from .. import constants, units
from ..gpu.thermal import ThermalModel
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    hist = cube.histogram

    total_energy = cube.total_energy_j
    region4_energy = float(cube.region_energy_j()[3])
    region4_share = region4_energy / total_energy

    # Energy above a flat TDP line within region 4: the part a cap could
    # at most reclaim without touching any sub-TDP operation.
    tdp = constants.GCD_MAX_POWER_W
    mask = hist.centers >= tdp
    above = hist.weight_sums[mask]
    centers = hist.centers[mask]
    excess = float(
        (above * (1.0 - tdp / centers)).sum()
    ) / hist.total_weight * total_energy

    # Scale both to the paper's campaign.
    scale = units.mwh(config.campaign_energy_mwh) / total_energy
    region4_mwh = units.to_mwh(region4_energy * scale)
    excess_mwh = units.to_mwh(excess * scale)

    thermal = ThermalModel()
    window_hot = thermal.boost_window_s(
        thermal.steady_temp_c(540.0), 600.0
    )
    duty = thermal.duty_cycle(600.0, 505.0)

    lines = [
        f"region 4 (>= 560 W): {100 * region4_share:.2f} % of campaign "
        f"energy = {region4_mwh:.0f} MWh of "
        f"{config.campaign_energy_mwh:.0f} MWh",
        f"energy above the 560 W line: {excess_mwh:.1f} MWh "
        f"({100 * excess_mwh / config.campaign_energy_mwh:.3f} % of the "
        "campaign) — the most any boost-suppression policy could reclaim",
        "",
        "thermal bounds (RC model, warm-water cooling):",
        f"  boost window from a hot (540 W) start : {window_hot:.0f} s",
        f"  long-run boost duty over a 505 W base : {100 * duty:.0f} %",
        f"  sustainable power under the throttle  : "
        f"{thermal.sustainable_power_w():.0f} W",
        "",
        "conclusion: even if boost were fully characterized and fully "
        "suppressed, the headline moves by well under a percentage "
        "point; the paper's decision to leave region 4 unprojected is "
        "immaterial. Region 4 is small because boost-capable phases are "
        "rare, with thermals bounding each excursion to tens of seconds.",
    ]
    return ExperimentResult(
        exp_id="ext_boost",
        title="",
        text="\n".join(lines),
        data={
            "region4_share": region4_share,
            "region4_mwh": region4_mwh,
            "excess_mwh": excess_mwh,
            "boost_window_hot_s": window_hot,
            "boost_duty": duty,
        },
    )
