"""Fig 5: VAI runtime/power/energy normalized to the uncapped run.

One line per arithmetic intensity, swept over frequency caps (left) and
power caps (right); values are relative to 1700 MHz / 560 W.

Like Fig 4, both sweeps run through the batched engine: the full
cap x intensity grid is a single :meth:`~repro.gpu.GPUDevice.run_batch`
call per knob.
"""

from __future__ import annotations

from .. import constants
from ..bench import CapSweep, VAIBenchmark
from ..core import report
from .registry import ExperimentConfig, ExperimentResult

#: A reduced intensity set keeps the printed figure readable; the full
#: grid is in the returned data.
SHOWN_INTENSITIES = (0.0, 1 / 16, 1.0, 4.0, 64.0, 1024.0)


def _normalized(points, metric):
    base = points[0].result
    caps = sorted((c for c in points if c != 0), reverse=True)
    series = {}
    for ai in SHOWN_INTENSITIES:
        base_point = base.point_at(ai)
        series[f"AI={ai:g}"] = [
            getattr(points[c].result.point_at(ai), metric)
            / getattr(base_point, metric)
            for c in caps
        ]
    return caps, series


def run(config: ExperimentConfig) -> ExperimentResult:
    bench = VAIBenchmark()
    sweep = CapSweep(bench)
    freq_points = sweep.frequency_sweep(constants.FREQUENCY_CAPS_MHZ[1:])
    power_points = sweep.power_sweep((500, 400, 300, 200, 100))

    sections = []
    data = {}
    for knob, points in (("frequency (MHz)", freq_points),
                         ("power (W)", power_points)):
        for metric, label in (
            ("time_s", "runtime"),
            ("power_w", "power"),
            ("energy_j", "energy to solution"),
        ):
            caps, series = _normalized(points, metric)
            sections.append(
                report.render_series(
                    f"Fig 5 [{knob}] normalized {label}",
                    "cap",
                    caps,
                    series,
                )
            )
            sections.append("")
            data[f"{knob.split()[0]}_{metric}"] = series
    data["freq_caps"] = sorted(
        (c for c in freq_points if c != 0), reverse=True
    )
    return ExperimentResult(
        exp_id="fig5", title="", text="\n".join(sections), data=data
    )
