"""Extension: proxy-application cap response.

Runs the three proxy applications (dense solver, stencil, checkpoint-
bound) under the frequency-cap grid and reports per-application slowdown
and savings — the application-level face of the Table IV regions, and
the workload diversity a per-job policy exploits.
"""

from __future__ import annotations

from .. import units
from ..apps.proxies import ALL_PROXIES
from ..core import report
from ..gpu import GPUDevice
from .registry import ExperimentConfig, ExperimentResult

CAPS_MHZ = (1700, 1500, 1300, 1100, 900, 700)


def run(config: ExperimentConfig) -> ExperimentResult:
    sections = []
    data = {}
    for key, factory in ALL_PROXIES.items():
        app = factory()
        base = app.run(GPUDevice())
        rows = {"runtime_x": [], "saving_pct": [], "avg_power_w": []}
        for mhz in CAPS_MHZ:
            device = (
                GPUDevice()
                if mhz == 1700
                else GPUDevice(frequency_cap_hz=units.mhz(mhz))
            )
            r = app.run(device)
            rows["runtime_x"].append(r.total_time_s / base.total_time_s)
            rows["saving_pct"].append(
                100.0 * (1.0 - r.energy_j / base.energy_j)
            )
            rows["avg_power_w"].append(r.avg_power_w)
        sections.append(
            f"{app.name}: avg {base.avg_power_w:.0f} W, max "
            f"{base.max_power_w:.0f} W, GPU busy "
            f"{100 * base.gpu_time_s / base.total_time_s:.0f} % of wall"
        )
        sections.append(
            report.render_series("  frequency sweep", "MHz",
                                 list(CAPS_MHZ), rows)
        )
        sections.append("")
        data[key] = {
            "base_avg_power_w": base.avg_power_w,
            **{k: list(v) for k, v in rows.items()},
        }

    sections.append(
        "the stencil proxy saves double digits for free, the solver pays "
        "~30-85 % runtime for single digits, and the checkpoint-bound app "
        "barely moves — the per-application spread behind the per-job "
        "policy (ext_policy)."
    )
    return ExperimentResult(
        exp_id="ext_proxies",
        title="",
        text="\n".join(sections),
        data=data,
    )
