"""Extension: the closed-loop control plane banking real energy.

The paper's Table V is an open-loop projection: fold three months of
telemetry, then report what a fleet cap *would have* saved.  The
control plane (:mod:`repro.serve`) closes the loop: it publishes a cap
recommendation from every sealed window and a live fleet applies it to
the windows that follow.  This experiment simulates exactly that — one
campaign streamed chunk by chunk through a
:class:`~repro.serve.service.ControlPlane`, with a window observer
playing the role of the fleet's power manager: each newly sealed window
is charged at the *currently published* cap (one refresh of control
delay, as a real deployment would have), scaling the MI/CI region
energies by the measured cap factors and accumulating the runtime cost
the same energy-weighted way the projection does.

Checks, all printed and asserted in the result data:

* the recommendation converges (the published cap stops changing once
  enough windows have sealed);
* the closed-loop campaign banks energy: capped <= uncapped, with the
  energy-weighted slowdown inside the policy budget;
* the served analytics are *bitwise* equal to an offline batch fold of
  the same sealed windows (per-job matrices, fleet cube, and the cap
  decision itself), and the slowdown-objective decision lands on the
  same cap as the stream layer's Table V advisor;
* the objective menu spreads as expected: ``energy`` caps at least as
  aggressively as ``edp`` >= ``ed2p``, and ``slowdown`` respects the
  budget.
"""

from __future__ import annotations

import numpy as np

from .. import constants, units
from ..core import join_campaign, measured_factors
from ..core.join import region_index
from ..scheduler import SlurmSimulator, default_mix
from ..serve import ControlPlane, JobAccumulator, decide_cap
from ..serve.objectives import objective_names
from ..stream import canonical_windows, replay_store
from ..telemetry import FleetTelemetryGenerator
from .registry import ExperimentConfig, ExperimentResult

#: Event-time window (aggregated ticks), matching ext_stream.
WINDOW_TICKS = 40


class ClosedLoopBank:
    """The simulated fleet: charges each sealed window at the live cap."""

    def __init__(self, plane: ControlPlane) -> None:
        self.plane = plane
        self.factors = plane.factors
        self.interval_s = plane.engine.buffer.interval_s
        self.uncapped_j = 0.0
        self.capped_j = 0.0
        self.slowdown_weight_j = 0.0
        self.windows_capped = 0
        self.windows_uncapped = 0

    def update(self, window) -> None:
        if not len(window):
            return
        power = window.gpu_power_w
        region_j = np.bincount(
            region_index(power).reshape(-1),
            weights=power.reshape(-1).astype(np.float64),
            minlength=4,
        ) * self.interval_s
        total_j = float(region_j.sum())
        self.uncapped_j += total_j
        view = self.plane.cache.view
        decision = view.decision if view is not None else None
        if decision is None or not decision.capped:
            self.capped_j += total_j
            self.windows_uncapped += 1
            return
        cap = decision.cap
        f_ci, f_mi = self.factors.energy_at(cap)
        rt_ci, rt_mi = self.factors.runtime_at(cap)
        e_mi, e_ci = float(region_j[1]), float(region_j[2])
        self.capped_j += total_j - e_ci * (1.0 - f_ci) - e_mi * (1.0 - f_mi)
        self.slowdown_weight_j += (
            e_ci * max(rt_ci - 1.0, 0.0) + e_mi * max(rt_mi - 1.0, 0.0)
        )
        self.windows_capped += 1

    @property
    def slowdown_pct(self) -> float:
        if self.uncapped_j <= 0:
            return 0.0
        return 100.0 * self.slowdown_weight_j / self.uncapped_j


def _cubes_equal(a, b) -> bool:
    return (
        np.array_equal(a.energy_j, b.energy_j)
        and np.array_equal(a.gpu_hours, b.gpu_hours)
        and a.cpu_energy_j == b.cpu_energy_j
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    fleet_nodes = min(config.fleet_nodes, 32)
    days = min(config.days, 1.0)
    mix = default_mix(fleet_nodes=fleet_nodes)
    log = SlurmSimulator(mix).run(units.days(days), rng=config.seed)
    store = FleetTelemetryGenerator(
        log, mix, seed=config.seed + 1000
    ).generate()
    window_s = WINDOW_TICKS * constants.TELEMETRY_INTERVAL_S
    budget_pct = 5.0

    plane = ControlPlane(
        log,
        objective="slowdown",
        max_slowdown_pct=budget_pct,
        campaign_energy_mwh=config.campaign_energy_mwh,
        window_s=window_s,
    )
    bank = ClosedLoopBank(plane)
    plane.engine.add_window_observer(bank.update)

    # Stream the campaign, recording the published cap after every chunk
    # — the convergence trail of the closed loop.
    trail = []
    last_cap = object()
    chunks = 0
    for chunk in replay_store(store, chunk_ticks=20):
        chunks += 1
        plane.ingest(chunk)
        view = plane.cache.view
        cap = view.decision.cap if view is not None else None
        if cap != last_cap:
            trail.append((chunks, plane.engine.stats.windows_folded, cap))
            last_cap = cap
    plane.drain()
    final = plane.cache.view
    if final.decision.cap != last_cap:
        trail.append(
            (chunks, plane.engine.stats.windows_folded, final.decision.cap)
        )

    # Offline batch fold of the identical sealed windows: the parity
    # reference for everything the control plane served.
    windows = list(canonical_windows(store, window_s=window_s))
    offline_jobs = JobAccumulator(plane.index)
    for window in windows:
        offline_jobs.update(window)
    offline_cube = join_campaign(iter(windows), log)
    jobs_bitwise = (
        np.array_equal(offline_jobs.energy_j, plane.job_acc.energy_j)
        and np.array_equal(offline_jobs.gpu_hours, plane.job_acc.gpu_hours)
        and np.array_equal(offline_jobs.samples, plane.job_acc.samples)
    )
    cube_bitwise = _cubes_equal(offline_cube, final.snap.cube)
    offline_decision = decide_cap(
        offline_cube.region_energy_j(),
        plane.factors,
        objective="slowdown",
        max_slowdown_pct=budget_pct,
    )
    decision_bitwise = offline_decision == final.decision
    rec = final.snap.recommendation
    advisor_cap = rec.cap if rec is not None and rec.capped else None
    advisor_parity = advisor_cap == final.decision.cap

    saved_j = bank.uncapped_j - bank.capped_j
    lines = [
        f"closed-loop control plane on {fleet_nodes} nodes x {days:g} "
        f"days (window {window_s:.0f} s, objective slowdown, budget "
        f"{budget_pct:g} %):",
        "",
        "published-cap convergence trail:",
        f"  {'chunk':>6} {'windows':>8} {'cap':>10}",
    ]
    for chunk_i, n_windows, cap in trail:
        shown = f"{cap:.0f} MHz" if cap is not None else "uncapped"
        lines.append(f"  {chunk_i:>6} {n_windows:>8} {shown:>10}")
    lines.append("")
    lines.append(
        f"fleet energy: uncapped {units.to_mwh(bank.uncapped_j):.3f} "
        f"MWh, closed-loop {units.to_mwh(bank.capped_j):.3f} MWh "
        f"-> banked {units.to_mwh(saved_j):.3f} MWh "
        f"({100.0 * saved_j / bank.uncapped_j:.2f} %) across "
        f"{bank.windows_capped} capped / {bank.windows_uncapped} "
        f"uncapped windows"
    )
    lines.append(
        f"energy-weighted slowdown {bank.slowdown_pct:.2f} % "
        f"(budget {budget_pct:g} %)"
    )
    lines.append("")
    lines.append(
        f"served vs offline batch fold of the same sealed windows: "
        f"per-job matrices bitwise={jobs_bitwise}, fleet cube "
        f"bitwise={cube_bitwise}, cap decision equal={decision_bitwise}, "
        f"advisor parity={advisor_parity}"
    )

    region_j = final.snap.cube.region_energy_j()
    lines.append("")
    lines.append("objective menu on the final fleet state:")
    lines.append(
        f"  {'objective':<10} {'cap':>10} {'save %':>8} {'dT %':>7}"
    )
    menu = {}
    for name in objective_names():
        d = decide_cap(
            region_j, plane.factors,
            objective=name, max_slowdown_pct=budget_pct,
        )
        shown = f"{d.cap:.0f} MHz" if d.capped else "uncapped"
        lines.append(
            f"  {name:<10} {shown:>10} {d.savings_pct:>8.2f} "
            f"{d.runtime_increase_pct:>7.2f}"
        )
        menu[name] = {
            "cap": d.cap,
            "savings_pct": d.savings_pct,
            "runtime_increase_pct": d.runtime_increase_pct,
        }

    checks = {
        "banked_energy": bank.capped_j <= bank.uncapped_j,
        "slowdown_within_budget": bank.slowdown_pct <= budget_pct,
        "jobs_bitwise": jobs_bitwise,
        "cube_bitwise": cube_bitwise,
        "decision_bitwise": decision_bitwise,
        "advisor_parity": advisor_parity,
        "converged": len(trail) >= 1,
    }
    lines.append("")
    failed = sorted(k for k, ok in checks.items() if not ok)
    lines.append(
        "all checks passed" if not failed else f"FAILED: {failed}"
    )
    data = {
        "uncapped_mwh": units.to_mwh(bank.uncapped_j),
        "capped_mwh": units.to_mwh(bank.capped_j),
        "banked_mwh": units.to_mwh(saved_j),
        "slowdown_pct": bank.slowdown_pct,
        "budget_pct": budget_pct,
        "final_cap": final.decision.cap,
        "snapshots_published": final.version,
        "trail": [
            {"chunk": c, "windows": w, "cap": cap} for c, w, cap in trail
        ],
        "checks": checks,
        "objectives": menu,
    }
    return ExperimentResult(
        exp_id="ext_controlplane",
        title="Closed-loop control plane banking energy live",
        text="\n".join(lines),
        data=data,
    )
