"""CSV export of experiment data.

Each experiment returns a ``data`` dict alongside its rendered text; this
module flattens the array-valued entries into CSV files so the regenerated
series can be re-plotted with any tool.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List

import numpy as np

from .registry import ExperimentResult


def _flatten(prefix: str, value, out: Dict[str, np.ndarray]) -> None:
    """Collect 1-D numeric arrays (and scalars) under dotted keys."""
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
        return
    if isinstance(value, (int, float, np.floating, np.integer)):
        out[prefix] = np.array([value])
        return
    if isinstance(value, (list, tuple)):
        arr = np.asarray(value)
        if arr.dtype.kind in "if" and arr.ndim == 1:
            out[prefix] = arr
        return
    if isinstance(value, np.ndarray):
        if value.dtype.kind in "if":
            if value.ndim == 1:
                out[prefix] = value
            elif value.ndim == 2:
                for i in range(value.shape[0]):
                    out[f"{prefix}[{i}]"] = value[i]
        return
    # Non-numeric payloads (strings, result objects) are not exportable.


def export_csv(result: ExperimentResult, out_dir: str) -> List[Path]:
    """Write the numeric content of an experiment to CSV.

    Columns of equal length are grouped into one file per length so
    related series (e.g. an x-axis and its y-columns) stay together.
    Returns the written paths (empty if nothing was exportable).
    """
    flat: Dict[str, np.ndarray] = {}
    _flatten("", result.data, flat)
    if not flat:
        return []

    by_length: Dict[int, Dict[str, np.ndarray]] = {}
    for key, arr in flat.items():
        by_length.setdefault(len(arr), {})[key] = arr

    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for length, columns in sorted(by_length.items()):
        suffix = "" if len(by_length) == 1 else f"_{length}"
        out = path / f"{result.exp_id}{suffix}.csv"
        with out.open("w", newline="") as fh:
            writer = csv.writer(fh)
            names = sorted(columns)
            writer.writerow(names)
            for i in range(length):
                writer.writerow([f"{columns[n][i]:.10g}" for n in names])
        written.append(out)
    return written
