"""Table III: average power/runtime/energy of both benchmarks per cap.

Both sweeps behind the table (VAI and the memory benchmark, each knob)
run through the batched engine: :func:`~repro.bench.tables.compute_table3`
builds :class:`~repro.bench.sweep.CapSweep` harnesses that evaluate each
knob's whole cap x kernel grid in one batched device call.
"""

from __future__ import annotations

from ..bench import compute_table3
from ..core import report
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    freq = compute_table3(knob="frequency")
    power = compute_table3(knob="power")
    text = "\n\n".join(
        [report.render_table3(freq), report.render_table3(power)]
    )
    return ExperimentResult(
        exp_id="table3",
        title="",
        text=text,
        data={
            "frequency": {
                r.cap: (
                    r.vai_power_pct, r.vai_runtime_pct, r.vai_energy_pct,
                    r.mb_power_pct, r.mb_runtime_pct, r.mb_energy_pct,
                )
                for r in freq.rows
            },
            "power": {
                r.cap: (
                    r.vai_power_pct, r.vai_runtime_pct, r.vai_energy_pct,
                    r.mb_power_pct, r.mb_runtime_pct, r.mb_energy_pct,
                )
                for r in power.rows
            },
        },
    )
