"""Table VI: savings restricted to red-cell domains and classes A-C."""

from __future__ import annotations

from ..core import measured_factors, project_savings, report
from ..core.heatmap import table6_selection
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    factors = measured_factors("frequency")
    selected, domains = table6_selection(cube, factors)
    full = project_savings(
        cube, factors, campaign_energy_mwh=config.campaign_energy_mwh
    )
    part = project_savings(
        selected,
        factors,
        campaign_energy_mwh=config.campaign_energy_mwh,
        reference_cube=cube,
    )
    retained = part.best_row.total_mwh / full.best_row.total_mwh
    lines = [
        f"selected domains (red heatmap cells): {', '.join(domains)}",
        "size classes: A, B, C",
        "",
        report.render_table5(part),
        "",
        f"the selection retains {100 * retained:.0f} % of the system-wide "
        "best-case savings (paper Table VI vs Table V)",
    ]
    return ExperimentResult(
        exp_id="table6",
        title="",
        text="\n".join(lines),
        data={
            "domains": domains,
            "projection": part,
            "retained_fraction": retained,
        },
    )
