"""Fig 3: the L2 chunk-cycling access pattern, and the hit model it implies.

The paper's Fig 3 is a schematic of the GPU-benches access pattern
(every block streams chunk ``block_id % n_chunks``).  This experiment
renders the pattern and — beyond the paper — validates the analytic L2
hit model the memory benchmark rests on, by simulating the same cyclic
reference stream against a real set-associative cache under strict-LRU
and random replacement.
"""

from __future__ import annotations

from ..core import report
from ..gpu.cache import l2_hit_fraction
from ..gpu.cachesim import CacheGeometry, cyclic_hit_rate
from ..gpu.specs import default_spec
from .registry import ExperimentConfig, ExperimentResult

#: Scaled cache (full L2 simulation would take minutes for no extra
#: information: hit behaviour depends only on the ws/capacity ratio).
SIM_CAPACITY_BYTES = 512 * 1024

RATIOS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 3.0)


def run(config: ExperimentConfig) -> ExperimentResult:
    geometry = CacheGeometry(capacity_bytes=SIM_CAPACITY_BYTES)
    spec = default_spec().with_overrides(
        l2_bytes=float(SIM_CAPACITY_BYTES)
    )

    pattern = [
        "Fig 3 pattern: kernel of B blocks over n memory chunks;",
        "block i streams chunk (i mod n), so every chunk is re-read",
        "cyclically by many blocks:",
        "",
        "  chunk:   0   1   2   0   1   2   0   1   2  ...",
        "  block:   0   1   2   3   4   5   6   7   8  ...",
        "",
    ]

    lru, rnd, model = [], [], []
    for ratio in RATIOS:
        ws = int(ratio * geometry.capacity_bytes)
        lru.append(cyclic_hit_rate(geometry, ws, policy="lru"))
        rnd.append(
            cyclic_hit_rate(geometry, ws, policy="random", rng=config.seed)
        )
        model.append(l2_hit_fraction(spec, ws))

    table = report.render_series(
        "steady-state hit rate vs working-set / capacity",
        "ws/C",
        list(RATIOS),
        {
            "strict LRU (sim)": lru,
            "random repl. (sim)": rnd,
            "analytic model": model,
        },
    )
    conclusion = (
        "\nthe analytic model (hold, linear collapse over one capacity, "
        "zero beyond 2x) brackets between strict LRU's cliff and random "
        "replacement's tail — the basis of the 16 MB knee in Fig 6."
    )
    return ExperimentResult(
        exp_id="fig3",
        title="",
        text="\n".join(pattern) + table + conclusion,
        data={
            "ratios": list(RATIOS),
            "lru": lru,
            "random": rnd,
            "model": model,
        },
    )
