"""Extension: sensitivity of the headline to the model calibration.

The simulator's power model carries fitted parameters (the uncore
P-state response, the compute/memory cross term, the voltage-curve
intercept).  This experiment perturbs each one, re-measures Table III on
the perturbed device, re-projects the campaign, and reports how far the
headline moves — the reproduction's error bars with respect to its own
calibration choices.
"""

from __future__ import annotations

from typing import Dict

from ..bench.tables import compute_table3
from ..core.characterization import factors_from_table3
from ..core.projection import project_savings
from ..gpu.specs import default_spec
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult

#: Perturbations: parameter -> (low, high) overrides of the default spec.
PERTURBATIONS: Dict[str, tuple] = {
    "psi_cap0 (uncore P-state floor)": ("psi_cap0", 0.62, 0.78),
    "cross_power_w (engine overlap)": ("cross_power_w", 130.0, 200.0),
    "v0 (voltage-curve intercept)": ("v0", 0.50, 0.70),
    "hbm_power_w (memory coefficient)": ("hbm_power_w", 260.0, 310.0),
}


def _headline(cube, spec, campaign_mwh: float) -> dict:
    factors = factors_from_table3(compute_table3(spec, knob="frequency"))
    table = project_savings(cube, factors, campaign_energy_mwh=campaign_mwh)
    return {
        "best_pct": table.best_row.savings_pct,
        "best_cap": table.best_row.cap,
        "no_slowdown_pct": (
            table.best_no_slowdown_row.savings_no_slowdown_pct
        ),
    }


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    base_spec = default_spec()
    baseline = _headline(cube, base_spec, config.campaign_energy_mwh)

    lines = [
        f"baseline headline: best {baseline['best_pct']:.2f} % at "
        f"{baseline['best_cap']:.0f} MHz; no-slowdown "
        f"{baseline['no_slowdown_pct']:.2f} %",
        "",
        f"{'parameter':<34} {'value':>8} {'best %':>7} {'cap':>6} "
        f"{'no-slowdown %':>14}",
    ]
    rows = {}
    max_shift = 0.0
    for label, (field, lo, hi) in PERTURBATIONS.items():
        for value in (lo, hi):
            spec = base_spec.with_overrides(**{field: value})
            h = _headline(cube, spec, config.campaign_energy_mwh)
            shift = abs(h["best_pct"] - baseline["best_pct"])
            max_shift = max(max_shift, shift)
            rows[f"{field}={value:g}"] = h
            lines.append(
                f"{label:<34} {value:8g} {h['best_pct']:7.2f} "
                f"{h['best_cap']:6.0f} {h['no_slowdown_pct']:14.2f}"
            )
    lines.append(
        f"\nmax headline shift across perturbations: {max_shift:.2f} "
        "points, and it comes almost entirely from psi_cap0 — the uncore "
        "P-state response that Table III's MB power column measures. "
        "Every other fitted parameter moves the headline by under a "
        "point. In other words, the projected ceiling *is* a measurement "
        "of how much HBM/uncore power a DVFS ceiling sheds; the "
        "qualitative conclusions (frequency capping wins, mid-frequency "
        "optimum, several-percent no-slowdown ceiling) survive every "
        "perturbation."
    )
    return ExperimentResult(
        exp_id="ext_sensitivity",
        title="",
        text="\n".join(lines),
        data={"baseline": baseline, "rows": rows, "max_shift": max_shift},
    )
