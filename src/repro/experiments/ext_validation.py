"""Extension: quantifying region-boundary diffusion.

The paper: "boundary regions may be diffused into one another [but] the
order of the zone classification is accurate".  With known ground truth,
the diffusion is measurable: this experiment reports the analytic
confusion matrix of the power-proxy classification under the fleet's
profile mix, plus its sensitivity to boundary placement.
"""

from __future__ import annotations

from ..core.validate import fleet_confusion, render_confusion
from ..scheduler import default_mix
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    mix = default_mix(fleet_nodes=config.fleet_nodes)
    weights = {d.profile: 0.0 for d in mix.domains}
    for d in mix.domains:
        weights[d.profile] += d.share

    nominal = fleet_confusion(weights)
    shifted = fleet_confusion(weights, boundaries=(220.0, 440.0, 560.0))

    lines = [
        render_confusion(nominal),
        "",
        "with boundaries shifted +20 W (220/440/560):",
        f"  overall accuracy {100 * shifted.accuracy:.2f} % "
        f"(nominal {100 * nominal.accuracy:.2f} %)",
        "",
        "conclusion: the 15 s power proxy assigns "
        f"{100 * nominal.accuracy:.1f} % of busy samples to the correct "
        "region; the diffusion the paper worries about is a "
        f"{100 * nominal.misclassified_fraction():.1f} % effect and does "
        "not disturb the zone ordering.",
    ]
    return ExperimentResult(
        exp_id="ext_validation",
        title="",
        text="\n".join(lines),
        data={
            "matrix": nominal.matrix,
            "accuracy": nominal.accuracy,
            "per_region_accuracy": nominal.per_region_accuracy,
            "shifted_accuracy": shifted.accuracy,
        },
    )
