"""Fig 2: telemetry validation and the GPU/CPU energy split.

(a) Out-of-band telemetry vs ROCm SMI for one application run: the two
    views of the same power signal agree to within sensor noise.
(b) The node-level energy histogram: GPUs dominate node energy, which is
    why the study focuses on GPU power management.
"""

from __future__ import annotations

import numpy as np

from .. import constants
from ..rng import ensure_rng
from ..telemetry.profiles import PROFILES
from ..telemetry.rocm_smi import compare_telemetry_vs_smi
from ..core import report
from ._campaign import campaign_cube, campaign_log
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    rng = ensure_rng(config.seed)

    # (a) One application run at raw sensor cadence.
    profile = PROFILES["multi_zone"]
    true_signal = profile.sample_trace(
        1800, constants.SENSOR_INTERVAL_S, rng=rng
    )[0]
    cmp = compare_telemetry_vs_smi(true_signal, rng=rng)

    # (b) GPU share of node energy across the fleet campaign.
    cube = campaign_cube(config)
    gpu_j = cube.total_energy_j
    cpu_j = cube.cpu_energy_j
    gpu_frac = gpu_j / (gpu_j + cpu_j)

    n = min(len(cmp.telemetry_w), 40)
    text = "\n".join(
        [
            "Fig 2(a): out-of-band telemetry vs ROCm SMI (15 s cadence)",
            f"  correlation          : {cmp.correlation:.4f}",
            f"  mean absolute error  : {cmp.mean_abs_error_w:.2f} W",
            f"  mean relative error  : {100 * cmp.mean_relative_error:.2f} %",
            "",
            report.render_series(
                "  first samples (W)",
                "t(s)",
                (np.arange(n) * constants.TELEMETRY_INTERVAL_S).tolist(),
                {
                    "telemetry": cmp.telemetry_w[:n],
                    "rocm_smi": cmp.smi_w[:n],
                },
            ),
            "",
            "Fig 2(b): node energy split over the campaign",
            f"  GPU energy fraction  : {100 * gpu_frac:.1f} %",
            f"  CPU energy fraction  : {100 * (1 - gpu_frac):.1f} %",
            "  (paper: non-GPU components are dwarfed, <20 % when busy)",
        ]
    )
    return ExperimentResult(
        exp_id="fig2",
        title="",
        text=text,
        data={
            "correlation": cmp.correlation,
            "mae_w": cmp.mean_abs_error_w,
            "gpu_energy_fraction": gpu_frac,
            "telemetry_w": cmp.telemetry_w,
            "smi_w": cmp.smi_w,
            "n_nodes": campaign_log(config).n_nodes,
        },
    )
