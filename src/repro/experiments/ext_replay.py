"""Extension: phase-level replay vs the region-level projection.

Two independent estimates of campaign savings under a frequency cap:

* the paper's method — one benchmark factor per operating region applied
  to region energies (Table V);
* phase replay — every profile phase mapped to a surrogate kernel and run
  through the device model individually.

Their agreement validates the paper's central leap; their gap prices the
one-factor-per-region binning.
"""

from __future__ import annotations

from .. import units
from ..core import measured_factors, project_savings
from ..core.replay import fleet_replay_savings
from ..scheduler import default_mix
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult

CAPS_MHZ = (1500, 1300, 1100, 900, 700)


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    mix = default_mix(fleet_nodes=config.fleet_nodes)

    # Busy-energy weights per profile, from the joined campaign.
    busy = cube.busy_view()
    domains = mix.by_name()
    weights: dict = {}
    for name in busy.domains:
        share = float(busy.energy_j[busy.domain_idx(name)].sum())
        profile = domains[name].profile
        weights[profile] = weights.get(profile, 0.0) + share
    busy_energy = sum(weights.values())
    busy_fraction = busy_energy / cube.total_energy_j

    projection = project_savings(cube, measured_factors("frequency"))

    lines = [
        f"{'cap (MHz)':>10} {'projection %':>13} {'phase replay %':>15} "
        f"{'gap (pts)':>10}"
    ]
    rows = []
    for cap in CAPS_MHZ:
        proj_pct = projection.row_at(cap).savings_pct
        replay = fleet_replay_savings(
            weights, frequency_cap_hz=units.mhz(cap)
        )
        # Replay covers busy energy only; idle energy saves nothing.
        replay_pct = 100.0 * replay["savings_fraction"] * busy_fraction
        rows.append(
            {
                "cap": cap,
                "projection_pct": proj_pct,
                "replay_pct": replay_pct,
                "runtime_factor": replay["runtime_factor"],
            }
        )
        lines.append(
            f"{cap:>10} {proj_pct:13.2f} {replay_pct:15.2f} "
            f"{replay_pct - proj_pct:+10.2f}"
        )

    gaps = [abs(r["replay_pct"] - r["projection_pct"]) for r in rows]
    lines.append(
        f"\nmax |gap| {max(gaps):.2f} points: the region-level binning "
        "tracks the phase-level estimate, so the paper's "
        "one-factor-per-region leap is sound on this substrate."
    )
    lines.append(
        "the replay runs slightly higher at mid caps because it also "
        "credits the latency-bound region (whose uncore power does drop "
        "under a DVFS ceiling) — the paper's exclusion of region 1 makes "
        "its upper bound conservative there — and lower at 700 MHz, "
        "where deep caps start to hurt latency-bound phases."
    )
    return ExperimentResult(
        exp_id="ext_replay",
        title="",
        text="\n".join(lines),
        data={"rows": rows, "max_gap_pts": max(gaps),
              "busy_fraction": busy_fraction},
    )
