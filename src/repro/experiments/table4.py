"""Table IV: modal decomposition of the campaign power distribution."""

from __future__ import annotations

from .. import constants
from ..core import decompose_modes, report
from ._campaign import campaign_cube
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    cube = campaign_cube(config)
    table = decompose_modes(cube)
    paper = constants.PAPER_REGION_GPU_HOURS_PCT
    lines = [
        report.render_table4(table),
        "",
        "paper GPU-hours shares: "
        + " / ".join(f"{p:.1f}" for p in paper)
        + " %",
        "ours:                   "
        + " / ".join(f"{p:.1f}" for p in table.gpu_hours_pct)
        + " %",
    ]
    return ExperimentResult(
        exp_id="table4",
        title="",
        text="\n".join(lines),
        data={
            "gpu_hours_pct": table.gpu_hours_pct,
            "energy_mwh": table.energy_mwh,
            "paper_pct": paper,
        },
    )
