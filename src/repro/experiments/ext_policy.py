"""Extension: per-job power-management policy evaluation.

Not a paper artifact — the follow-on its discussion motivates: fingerprint
every job from telemetry, recommend a per-job frequency cap under a
slowdown budget, and compare against uniform capping and the oracle upper
bound (which is what Table V projects).
"""

from __future__ import annotations

from collections import Counter

from ..core import measured_factors
from ..policy import evaluate_policies, fingerprint_jobs
from ..policy.evaluate import format_outcomes
from ..scheduler import default_mix
from ..telemetry import FleetTelemetryGenerator
from ._campaign import campaign_log
from .registry import ExperimentConfig, ExperimentResult


def run(config: ExperimentConfig) -> ExperimentResult:
    log = campaign_log(config)
    mix = default_mix(fleet_nodes=config.fleet_nodes)
    gen = FleetTelemetryGenerator(log, mix, seed=config.seed + 1000)
    fingerprints = fingerprint_jobs(gen.chunks(nodes_per_chunk=16), log)
    factors = measured_factors("frequency")
    outcomes = evaluate_policies(
        fingerprints, factors, max_slowdown_pct=5.0, uniform_cap=900.0
    )

    families = Counter(fp.family for fp in fingerprints.values())
    capture = (
        outcomes["per_job"].saving_j / outcomes["oracle"].saving_j
        if outcomes["oracle"].saving_j > 0
        else 0.0
    )
    lines = [
        f"{len(fingerprints)} jobs fingerprinted; families: "
        + ", ".join(f"{k}={v}" for k, v in sorted(families.items())),
        "",
        format_outcomes(outcomes),
        "",
        f"the per-job advisor captures {100 * capture:.0f} % of the oracle "
        "savings while keeping every job within its 5 % slowdown budget; "
        "the uniform cap exceeds the budget on compute-bound jobs.",
    ]
    return ExperimentResult(
        exp_id="ext_policy",
        title="",
        text="\n".join(lines),
        data={
            "outcomes": outcomes,
            "families": dict(families),
            "oracle_capture": capture,
        },
    )
