"""Process-parallel map utilities for fleet-scale generation.

The paper's telemetry spans 9408 nodes; generating even a scaled fleet is
embarrassingly parallel across node chunks.  :func:`chunked_map` mirrors the
MPI rank-decomposition idiom — partition the index space, give each worker
its own RNG stream, combine results deterministically — but is built on
``concurrent.futures`` so it works in any Python environment.  Results are
identical for any worker count (including 0, i.e. serial), which the tests
verify.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar

from .obs import runtime as _obs

T = TypeVar("T")


def partition(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous slices.

    The split is balanced the way MPI block decompositions are: the first
    ``n_items % n_chunks`` chunks get one extra element.  Empty chunks are
    never returned.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
    n_chunks = min(n_chunks, n_items) or (1 if n_items else 0)
    bounds: List[Tuple[int, int]] = []
    base, extra = divmod(n_items, n_chunks) if n_chunks else (0, 0)
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def default_workers() -> int:
    """A conservative worker count: physical parallelism minus headroom."""
    return max(1, (os.cpu_count() or 2) - 1)


def chunked_map(
    fn: Callable[..., T],
    chunks: Sequence[tuple],
    *,
    workers: int = 0,
) -> List[T]:
    """Apply ``fn(*chunk)`` to each chunk, optionally in worker processes.

    ``workers <= 1`` runs serially (no process pool, easiest to debug and
    profile, per the optimization-workflow guide).  Results are returned in
    chunk order regardless of completion order, so parallel and serial
    execution are bitwise identical when ``fn`` is deterministic.

    With observability enabled (:mod:`repro.obs`), every chunk runs under
    a ``parallel.task`` span; worker processes collect their own spans
    and metrics — and, when profiling is on, their own stack samples —
    and the parent merges them back in chunk order, so the trace tree,
    the counters, and the folded profile are worker-count invariant too.
    Disabled (the default), the submission path is exactly the plain one.
    """
    if workers <= 1:
        if _obs.enabled():
            results: List[T] = []
            for i, chunk in enumerate(chunks):
                with _obs.span("parallel.task", chunk=i):
                    results.append(fn(*chunk))
            return results
        return [fn(*chunk) for chunk in chunks]
    ctx = _obs.export_context()
    if ctx is None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, *chunk) for chunk in chunks]
            return [f.result() for f in futures]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        traced = [
            pool.submit(_obs.run_traced, fn, chunk, ctx, {"chunk": i})
            for i, chunk in enumerate(chunks)
        ]
        outs = [f.result() for f in traced]
    results = []
    for result, payload in outs:
        _obs.absorb(payload)
        results.append(result)
    return results
