"""Frontier system constants.

These mirror Table I (system summary), Table IV (operating-region
boundaries), Table VII (scheduling policy) and the campaign-level figures
quoted in the paper (three months of telemetry, 16 820 MWh of GPU energy).

Everything here is a *specification* constant; calibrated model parameters
(power coefficients, voltage curves) live in :mod:`repro.gpu.specs`.
"""

from __future__ import annotations

from . import units

# --- Table I: Frontier system summary ---------------------------------------

NUM_COMPUTE_NODES = 9408
PEAK_PERFORMANCE_EFLOPS = 1.9
PEAK_POWER_MW = 29.0
GPUS_PER_NODE = 4           # AMD MI250X modules
GCDS_PER_GPU = 2            # Graphics Compute Dies per MI250X
GCDS_PER_NODE = GPUS_PER_NODE * GCDS_PER_GPU
HBM_PER_GCD_BYTES = units.gib(64)
GCD_MAX_POWER_W = 560.0     # per-module TDP; the paper reports per-GPU power
GCD_MAX_FREQUENCY_HZ = units.mhz(1700)
GCD_MIN_FREQUENCY_HZ = units.mhz(500)

# Idle power of a fully-instantiated MI250X module (paper: 88-90 W).
GPU_IDLE_POWER_W = 89.0

# --- telemetry cadence (Table II) --------------------------------------------

SENSOR_INTERVAL_S = 2.0       # raw out-of-band sensor cadence
TELEMETRY_INTERVAL_S = 15.0   # aggregated cadence used for analysis
ROCM_SMI_INTERVAL_S = 1.0     # in-band ROCm SMI polling cadence (Fig 2a)

# --- campaign ----------------------------------------------------------------

CAMPAIGN_DAYS = 91                      # "three months" of telemetry
CAMPAIGN_SECONDS = units.days(CAMPAIGN_DAYS)
CAMPAIGN_GPU_ENERGY_MWH = 16820.0       # total GPU energy over the campaign

# --- Table IV: operating regions ---------------------------------------------

# Boundaries in watts between the four modes of operation.
REGION_LATENCY_MAX_W = 200.0       # region 1: latency / network / IO bound
REGION_MEMORY_MAX_W = 420.0        # region 2: memory intensive
REGION_COMPUTE_MAX_W = 560.0       # region 3: compute intensive
# region 4: boosted frequency, >= 560 W

# Paper-reported share of GPU hours in each region (%).
PAPER_REGION_GPU_HOURS_PCT = (29.8, 49.5, 19.5, 1.1)

# --- benchmark sweep grids ----------------------------------------------------

FREQUENCY_CAPS_MHZ = (1700, 1500, 1300, 1100, 900, 700)
POWER_CAPS_W = (560, 500, 400, 300, 200)
MEMBENCH_POWER_CAPS_W = (560, 460, 380, 300, 200, 140)

# VAI arithmetic-intensity grid: 0 is a stream copy; then powers of two
# from 1/16 to 1024 (flops per byte).
VAI_INTENSITIES = (0.0,) + tuple(2.0**e for e in range(-4, 11))

# --- Table VII: Frontier job scheduling policy --------------------------------

# (class, min nodes, max nodes, max walltime hours)
SCHEDULING_POLICY = (
    ("A", 5645, 9408, 12.0),
    ("B", 1882, 5644, 12.0),
    ("C", 184, 1881, 12.0),
    ("D", 92, 183, 6.0),
    ("E", 1, 91, 2.0),
)

JOB_SIZE_CLASSES = tuple(row[0] for row in SCHEDULING_POLICY)
