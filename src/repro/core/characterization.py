"""Benchmark cap-response factors consumed by the projection.

The projection needs, for each cap setting, the energy and runtime
factors of the compute-intensive (CI, from the VAI benchmark) and
memory-intensive (MI, from the memory benchmark) characterizations —
exactly Table III.  Two sources are provided:

* :func:`measured_factors` — run the benchmarks on the simulated device
  (the self-contained reproduction path);
* :func:`paper_factors` — the percentages printed in the paper's
  Table III, for projecting with the authors' own characterization
  (an ablation on how much the substrate's calibration matters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ProjectionError
from ..gpu.specs import MI250XSpec
from ..bench.tables import Table3, compute_table3


@dataclass(frozen=True)
class CapFactors:
    """Cap -> (CI, MI) energy and runtime factors, as fractions of 1."""

    knob: str                                   # "frequency" | "power"
    energy: Dict[float, Tuple[float, float]]    # cap -> (ci, mi)
    runtime: Dict[float, Tuple[float, float]]

    def caps(self):
        return sorted(self.energy, reverse=True)

    def energy_at(self, cap: float) -> Tuple[float, float]:
        try:
            return self.energy[cap]
        except KeyError:
            raise ProjectionError(
                f"no {self.knob} characterization at cap {cap}"
            ) from None

    def runtime_at(self, cap: float) -> Tuple[float, float]:
        try:
            return self.runtime[cap]
        except KeyError:
            raise ProjectionError(
                f"no {self.knob} characterization at cap {cap}"
            ) from None


def factors_from_table3(table: Table3) -> CapFactors:
    """Convert a Table III into projection factors."""
    return CapFactors(
        knob=table.knob,
        energy=table.energy_factors(),
        runtime=table.runtime_factors(),
    )


def measured_factors(
    knob: str = "frequency", spec: Optional[MI250XSpec] = None
) -> CapFactors:
    """Measure Table III on the simulated device and convert it."""
    return factors_from_table3(compute_table3(spec, knob=knob))


# Paper Table III, exactly as printed: cap -> (VAI, MB) percentages.
_PAPER_FREQ_ENERGY = {
    1700: (100.0, 100.0),
    1500: (94.4, 86.9),
    1300: (88.6, 84.3),
    1100: (94.0, 83.8),
    900: (97.3, 79.7),
    700: (106.3, 95.7),
}
_PAPER_FREQ_RUNTIME = {
    1700: (100.0, 100.0),
    1500: (112.8, 99.7),
    1300: (129.8, 99.5),
    1100: (152.2, 98.9),
    900: (182.4, 99.0),
    700: (231.0, 99.1),
}
_PAPER_POWER_ENERGY = {
    560: (100.0, 100.0),
    500: (99.7, 92.2),
    400: (95.0, 93.6),
    300: (91.3, 94.7),
    200: (105.7, 84.6),
}
_PAPER_POWER_RUNTIME = {
    560: (100.0, 100.0),
    500: (100.4, 99.9),
    400: (105.2, 100.1),
    300: (128.4, 100.0),
    200: (222.3, 125.7),
}


def paper_factors(knob: str = "frequency") -> CapFactors:
    """The paper's published Table III as projection factors."""
    if knob == "frequency":
        energy, runtime = _PAPER_FREQ_ENERGY, _PAPER_FREQ_RUNTIME
    elif knob == "power":
        energy, runtime = _PAPER_POWER_ENERGY, _PAPER_POWER_RUNTIME
    else:
        raise ProjectionError(f"unknown knob {knob!r}")
    return CapFactors(
        knob=knob,
        energy={
            cap: (ci / 100.0, mi / 100.0) for cap, (ci, mi) in energy.items()
        },
        runtime={
            cap: (ci / 100.0, mi / 100.0)
            for cap, (ci, mi) in runtime.items()
        },
    )
