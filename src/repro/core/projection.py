"""System-scale energy-savings projection (Tables V and VI).

The projection multiplies each projectable region's campaign energy by
the benchmark-measured energy factor for a cap setting:

* region 3 (compute intensive, 420-560 W) scales by the VAI (CI) factor,
* region 2 (memory intensive, 200-420 W) scales by the MB (MI) factor,
* regions 1 and 4 are excluded — the benchmarks showed no savings for
  latency-bound work, and the boost region was not characterized.

This mirrors Section V-C: the result is an *upper bound* for best-case
savings, not a deployment prediction.  The runtime-increase column is the
energy-weighted mean of the per-region runtime factors (GPU-hour
weighting is available as an ablation knob), and the "no-slowdown"
column counts only regions whose characterized runtime is unchanged —
which is how the paper's ΔT=0 column equals its MI column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .. import units
from ..errors import ProjectionError
from ..obs import runtime as _obs
from .characterization import CapFactors
from .join import CampaignCube

#: Runtime factors within this tolerance of 1.0 count as "no slowdown".
NO_SLOWDOWN_TOL = 0.005


@dataclass(frozen=True)
class ProjectionRow:
    """One cap setting of Table V / VI."""

    cap: float
    ci_mwh: float               # savings from the compute-intensive region
    mi_mwh: float               # savings from the memory-intensive region
    total_mwh: float
    savings_pct: float
    runtime_increase_pct: float
    savings_no_slowdown_pct: float


@dataclass(frozen=True)
class ProjectionTable:
    """A full projection over one knob's cap grid."""

    knob: str
    total_energy_mwh: float
    rows: List[ProjectionRow]

    def row_at(self, cap: float) -> ProjectionRow:
        for r in self.rows:
            if r.cap == cap:
                return r
        raise ProjectionError(f"no projection row at cap {cap}")

    @property
    def best_row(self) -> ProjectionRow:
        """The cap with the highest total savings."""
        return max(self.rows, key=lambda r: r.total_mwh)

    @property
    def best_no_slowdown_row(self) -> ProjectionRow:
        """The cap with the highest savings at zero runtime cost."""
        return max(self.rows, key=lambda r: r.savings_no_slowdown_pct)


def project_savings(
    cube: CampaignCube,
    factors: CapFactors,
    *,
    campaign_energy_mwh: Optional[float] = None,
    reference_cube: Optional[CampaignCube] = None,
    dt_weighting: str = "energy",
) -> ProjectionTable:
    """Project savings for every characterized cap over a campaign.

    ``campaign_energy_mwh`` rescales the reference total energy to a
    target campaign size (the paper's 16 820 MWh three-month total) so
    scaled fleets report full-scale megawatt-hours; percentages are
    unaffected.  ``reference_cube`` sets the denominator: Table VI
    projects a *selected* cube (a few domains, classes A-C) while
    reporting percentages of the full campaign, so the full cube is
    passed as the reference.  ``dt_weighting`` selects how per-region
    runtime increases combine ("energy" or "gpu_hours").
    """
    if dt_weighting not in ("energy", "gpu_hours"):
        raise ProjectionError(f"unknown dt_weighting {dt_weighting!r}")
    with _obs.span("projection.project", knob=factors.knob):
        return _project(
            cube,
            factors,
            campaign_energy_mwh=campaign_energy_mwh,
            reference_cube=reference_cube,
            dt_weighting=dt_weighting,
        )


def _project(
    cube: CampaignCube,
    factors: CapFactors,
    *,
    campaign_energy_mwh: Optional[float],
    reference_cube: Optional[CampaignCube],
    dt_weighting: str,
) -> ProjectionTable:
    ref = reference_cube if reference_cube is not None else cube
    region_energy = cube.region_energy_j()
    total_j = ref.total_energy_j
    if total_j <= 0 or cube.total_energy_j <= 0:
        raise ProjectionError("campaign has no energy")
    scale = 1.0
    if campaign_energy_mwh is not None:
        if campaign_energy_mwh <= 0:
            raise ProjectionError("campaign energy must be positive")
        scale = units.mwh(campaign_energy_mwh) / total_j

    e_mi = region_energy[1] * scale     # region 2
    e_ci = region_energy[2] * scale     # region 3
    e_total = total_j * scale

    if dt_weighting == "energy":
        w_mi, w_ci = e_mi, e_ci
        w_total = e_total
    else:
        region_hours = cube.region_gpu_hours()
        w_mi, w_ci = region_hours[1], region_hours[2]
        w_total = cube.total_gpu_hours

    rows = []
    for cap in factors.caps():
        f_ci, f_mi = factors.energy_at(cap)
        rt_ci, rt_mi = factors.runtime_at(cap)
        ci_save = e_ci * (1.0 - f_ci)
        mi_save = e_mi * (1.0 - f_mi)
        total_save = ci_save + mi_save
        dt = 100.0 * (
            w_ci * max(rt_ci - 1.0, 0.0) + w_mi * max(rt_mi - 1.0, 0.0)
        ) / w_total
        no_slowdown = 0.0
        if rt_mi <= 1.0 + NO_SLOWDOWN_TOL:
            no_slowdown += mi_save
        if rt_ci <= 1.0 + NO_SLOWDOWN_TOL:
            no_slowdown += ci_save
        rows.append(
            ProjectionRow(
                cap=cap,
                ci_mwh=units.to_mwh(ci_save),
                mi_mwh=units.to_mwh(mi_save),
                total_mwh=units.to_mwh(total_save),
                savings_pct=100.0 * total_save / e_total,
                runtime_increase_pct=dt,
                savings_no_slowdown_pct=100.0 * no_slowdown / e_total,
            )
        )
    return ProjectionTable(
        knob=factors.knob,
        total_energy_mwh=units.to_mwh(e_total),
        rows=rows,
    )
