"""Time-resolved fleet power.

Aggregates telemetry into a fleet power time series — the view a
facility operator watches: total GPU draw in megawatts, its peaks, and
the load-duration curve.  Streaming like everything else: chunks
accumulate into per-time-bin sums, so fleet size never matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from .. import constants, units
from ..errors import TelemetryError
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore


@dataclass(frozen=True)
class FleetTimeline:
    """Fleet GPU power over time."""

    times_s: np.ndarray        # bin start times
    gpu_power_w: np.ndarray    # fleet GPU power per bin
    cpu_power_w: np.ndarray    # fleet CPU power per bin
    interval_s: float

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.gpu_power_w):
            raise TelemetryError("timeline columns must align")

    @property
    def peak_w(self) -> float:
        return float(self.gpu_power_w.max())

    @property
    def mean_w(self) -> float:
        return float(self.gpu_power_w.mean())

    @property
    def peak_time_s(self) -> float:
        return float(self.times_s[int(np.argmax(self.gpu_power_w))])

    @property
    def peak_to_mean(self) -> float:
        """The provisioning headroom a flat power budget must cover."""
        return self.peak_w / self.mean_w if self.mean_w else 0.0

    def energy_mwh(self) -> float:
        return units.to_mwh(
            float(self.gpu_power_w.sum(dtype=np.float64)) * self.interval_s
        )

    def duration_curve(self, n_points: int = 100) -> np.ndarray:
        """Load-duration curve: power exceeded for each time fraction.

        ``curve[i]`` is the fleet power exceeded during fraction
        ``i / (n_points - 1)`` of the campaign — the standard utility
        view of how peaky a load is.
        """
        if n_points < 2:
            raise TelemetryError("need at least 2 curve points")
        sorted_desc = np.sort(self.gpu_power_w)[::-1]
        idx = np.minimum(
            (np.linspace(0, 1, n_points) * (len(sorted_desc) - 1)).astype(int),
            len(sorted_desc) - 1,
        )
        return sorted_desc[idx]

    def exceedance_fraction(self, threshold_w: float) -> float:
        """Fraction of the campaign the fleet draws above ``threshold_w``."""
        if len(self.gpu_power_w) == 0:
            return 0.0
        return float((self.gpu_power_w > threshold_w).mean())


def fleet_timeline(
    telemetry: Union[TelemetryStore, Iterable[TelemetryChunk]],
    *,
    horizon_s: float,
    interval_s: float = constants.TELEMETRY_INTERVAL_S,
) -> FleetTimeline:
    """Build the fleet timeline from telemetry (streaming)."""
    if horizon_s <= 0 or interval_s <= 0:
        raise TelemetryError("horizon and interval must be positive")
    n_bins = int(np.ceil(horizon_s / interval_s))
    gpu = np.zeros(n_bins)
    cpu = np.zeros(n_bins)

    if isinstance(telemetry, TelemetryStore):
        chunks: Iterable[TelemetryChunk] = [telemetry.chunk]
    else:
        chunks = telemetry

    saw_any = False
    for chunk in chunks:
        saw_any = True
        idx = (chunk.time_s / interval_s).astype(np.int64)
        if len(idx) and (idx.min() < 0 or idx.max() >= n_bins):
            raise TelemetryError("sample outside the declared horizon")
        gpu += np.bincount(
            idx,
            weights=chunk.gpu_power_w.sum(axis=1, dtype=np.float64),
            minlength=n_bins,
        )
        cpu += np.bincount(
            idx,
            weights=chunk.cpu_power_w.astype(np.float64),
            minlength=n_bins,
        )
    if not saw_any:
        raise TelemetryError("no telemetry chunks for the timeline")

    return FleetTimeline(
        times_s=np.arange(n_bins) * interval_s,
        gpu_power_w=gpu,
        cpu_power_w=cpu,
        interval_s=interval_s,
    )
