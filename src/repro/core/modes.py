"""Modal decomposition of the power distribution (Table IV).

The paper partitions the GPU power axis into four operating regions using
the benchmark characterization of Section IV: frequency/power capping only
showed savings in the memory- and compute-intensive regions, so the
decomposition is what turns a raw power distribution into projectable
per-mode energies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .. import units
from ..errors import ProjectionError
from .join import REGION_BOUNDS, REGION_NAMES, CampaignCube


@dataclass(frozen=True)
class ModeRow:
    """One row of Table IV."""

    region: int                  # 1-based, as the paper numbers them
    name: str
    range_w: Tuple[float, float]
    gpu_hours: float
    gpu_hours_pct: float
    energy_mwh: float
    energy_pct: float


@dataclass(frozen=True)
class ModeTable:
    """The full Table IV plus energy columns used by the projection."""

    rows: List[ModeRow]

    def row(self, region: int) -> ModeRow:
        for r in self.rows:
            if r.region == region:
                return r
        raise ProjectionError(f"no region {region}")

    @property
    def gpu_hours_pct(self) -> np.ndarray:
        return np.array([r.gpu_hours_pct for r in self.rows])

    @property
    def energy_mwh(self) -> np.ndarray:
        return np.array([r.energy_mwh for r in self.rows])


def decompose_modes(
    cube: CampaignCube,
    *,
    boundaries: Sequence[float] = REGION_BOUNDS,
) -> ModeTable:
    """Compute Table IV from a joined campaign.

    Custom ``boundaries`` support the ablation study on mode-boundary
    sensitivity; with non-default boundaries the region masses are
    recomputed from the campaign histogram rather than the cube (whose
    region axis is binned at the default boundaries).
    """
    boundaries = tuple(boundaries)
    if list(boundaries) != sorted(boundaries) or len(boundaries) != 3:
        raise ProjectionError("need three increasing region boundaries")

    if boundaries == tuple(REGION_BOUNDS):
        hours = cube.region_gpu_hours()
        energy = cube.region_energy_j()
    else:
        hist = cube.histogram
        lo_edges = (0.0,) + boundaries
        hi_edges = boundaries + (float("inf"),)
        fractions = np.array(
            [hist.range_fraction(lo, hi) for lo, hi in zip(lo_edges, hi_edges)]
        )
        weights = np.array(
            [hist.range_weight(lo, hi) for lo, hi in zip(lo_edges, hi_edges)]
        )
        hours = fractions * cube.total_gpu_hours
        total_w = weights.sum()
        energy = (
            weights / total_w * cube.total_energy_j
            if total_w
            else np.zeros(4)
        )

    total_hours = hours.sum()
    total_energy = energy.sum()
    if total_hours == 0:
        raise ProjectionError("campaign has no samples")

    lo_edges = (0.0,) + boundaries
    hi_edges = boundaries + (float("inf"),)
    rows = [
        ModeRow(
            region=i + 1,
            name=REGION_NAMES[i],
            range_w=(lo_edges[i], hi_edges[i]),
            gpu_hours=float(hours[i]),
            gpu_hours_pct=float(100 * hours[i] / total_hours),
            energy_mwh=units.to_mwh(float(energy[i])),
            energy_pct=float(100 * energy[i] / total_energy),
        )
        for i in range(4)
    ]
    return ModeTable(rows=rows)
