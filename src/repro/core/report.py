"""Plain-text renderers for every reproduced table and figure.

Each ``render_*`` function returns a string formatted like the paper's
artifact so the benchmark harness can print the same rows/series the
paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..bench.tables import Table3
from .domains import DomainDistribution
from .heatmap import HeatmapPair
from .modes import ModeTable
from .projection import ProjectionTable


def _rule(widths: Sequence[int]) -> str:
    return "+".join("-" * (w + 2) for w in widths)


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Fixed-width ASCII table."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        _rule(widths),
    ]
    for r in rows:
        lines.append(" | ".join(r[i].rjust(widths[i]) for i in range(len(r))))
    return "\n".join(lines)


def render_table3(table: Table3) -> str:
    """Table III: benchmark cap response."""
    unit = "MHz" if table.knob == "frequency" else "W"
    headers = [
        f"cap ({unit})",
        "VAI power%", "VAI runtime%", "VAI energy%",
        "MB power%", "MB runtime%", "MB energy%",
    ]
    rows = [
        [
            f"{r.cap:.0f}",
            f"{r.vai_power_pct:.1f}", f"{r.vai_runtime_pct:.1f}",
            f"{r.vai_energy_pct:.1f}",
            f"{r.mb_power_pct:.1f}", f"{r.mb_runtime_pct:.1f}",
            f"{r.mb_energy_pct:.1f}",
        ]
        for r in table.rows
    ]
    return (
        f"Table III ({table.knob} cap): benchmark response, % of uncapped\n"
        + format_table(headers, rows)
    )


def render_table4(table: ModeTable) -> str:
    """Table IV: operating regions."""
    headers = ["region", "mode", "range (W)", "GPU hrs (%)", "energy (%)"]
    rows = []
    for r in table.rows:
        hi = "inf" if r.range_w[1] == float("inf") else f"{r.range_w[1]:.0f}"
        rows.append(
            [
                str(r.region),
                r.name,
                f"{r.range_w[0]:.0f}-{hi}",
                f"{r.gpu_hours_pct:.1f}",
                f"{r.energy_pct:.1f}",
            ]
        )
    return "Table IV: GPU modalities and resource utilization\n" + format_table(
        headers, rows
    )


def render_table5(table: ProjectionTable) -> str:
    """Table V (or VI): projected savings."""
    unit = "MHz" if table.knob == "frequency" else "W"
    headers = [
        f"cap ({unit})", "C.I. (MWh)", "M.I. (MWh)", "T.S. (MWh)",
        "savings (%)", "dT (%)", "savings dT=0 (%)",
    ]
    rows = [
        [
            f"{r.cap:.0f}",
            f"{r.ci_mwh:.1f}", f"{r.mi_mwh:.1f}", f"{r.total_mwh:.1f}",
            f"{r.savings_pct:.2f}", f"{r.runtime_increase_pct:.2f}",
            f"{r.savings_no_slowdown_pct:.2f}",
        ]
        for r in table.rows
        if r.total_mwh != 0.0 or r.cap not in (1700.0, 560.0)
    ]
    return (
        f"Projected savings ({table.knob} cap), total campaign "
        f"{table.total_energy_mwh:.0f} MWh\n" + format_table(headers, rows)
    )


def render_fig8(hist) -> str:
    """Fig 8 series: the system-wide power distribution."""
    dens = hist.smoothed_density()
    lines = ["Fig 8: system-wide GPU power distribution (W, density)"]
    step = max(1, hist.n_bins // 64)
    for i in range(0, hist.n_bins, step):
        bar = "#" * int(60 * dens[i] / dens.max()) if dens.max() else ""
        lines.append(f"{hist.centers[i]:7.1f} {dens[i]:.3e} {bar}")
    return "\n".join(lines)


def render_fig9(distributions: Dict[str, DomainDistribution]) -> str:
    """Fig 9 summary: per-domain modality."""
    headers = [
        "domain", "GPU hrs", "energy %", "r1 %", "r2 %", "r3 %", "r4 %",
        "dominant", "modes (W)",
    ]
    rows = []
    for name in sorted(distributions):
        d = distributions[name]
        rows.append(
            [
                name,
                f"{d.gpu_hours:.0f}",
                f"{d.energy_pct_of_campaign:.1f}",
                *(f"{x:.1f}" for x in d.region_pct),
                str(d.dominant_region) + ("*" if d.is_multi_zone else ""),
                ",".join(f"{m.power_w:.0f}" for m in d.modes[:5]),
            ]
        )
    return (
        "Fig 9: science-domain characterization (* = multi-zone)\n"
        + format_table(headers, rows)
    )


def render_fig10(heatmaps: HeatmapPair) -> str:
    """Fig 10: energy and savings heatmaps."""
    out = [
        f"Fig 10(a): total GPU energy (MWh) by domain x size class",
    ]
    headers = ["domain"] + list(heatmaps.classes)
    rows = [
        [d] + [f"{heatmaps.energy_mwh[i, j]:.0f}" for j in range(len(heatmaps.classes))]
        for i, d in enumerate(heatmaps.domains)
    ]
    out.append(format_table(headers, rows))
    out.append(
        f"\nFig 10(b): projected savings (MWh) at {heatmaps.cap:.0f} MHz"
    )
    red = heatmaps.savings_threshold()
    rows = []
    for i, d in enumerate(heatmaps.domains):
        row = [d]
        for j in range(len(heatmaps.classes)):
            v = heatmaps.savings_mwh[i, j]
            mark = "*" if v >= red else " "
            row.append(f"{v:.1f}{mark}")
        rows.append(row)
    out.append(format_table(headers, rows))
    out.append("(* = red cell: top-quantile savings)")
    return "\n".join(out)


def render_series(
    title: str, x_label: str, x: Sequence, columns: Dict[str, Sequence]
) -> str:
    """Generic figure-series renderer (Figs 2, 4, 5, 6, 7)."""
    headers = [x_label] + list(columns)
    rows = []
    for i in range(len(x)):
        rows.append(
            [f"{x[i]:g}"]
            + [f"{np.asarray(col)[i]:.4g}" for col in columns.values()]
        )
    return f"{title}\n" + format_table(headers, rows)
