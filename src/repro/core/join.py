"""Telemetry x scheduler-log join.

Telemetry alone has no job metadata (paper Section III-A); joining it with
the SLURM log recovers, for every GPU power sample, the job — and hence
the science domain and size class — that produced it.  The join output is
a :class:`CampaignCube`: energy and GPU-hours indexed by
``(domain, size class, operating region)``, plus the system-wide and
per-domain power histograms.  Every downstream artifact (Table IV, V, VI,
Fig 8, 9, 10) is a view of this cube, so the join runs once per campaign
and streams in O(bins) memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

import numpy as np

from .. import constants
from ..errors import JoinError
from ..obs import runtime as _obs
from ..scheduler.log import SchedulerLog
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore
from .histogram import StreamingHistogram, add_grouped

#: Pseudo-domain for samples with no running job.
IDLE_DOMAIN = "_idle"
#: Pseudo-class used for idle samples.
IDLE_CLASS = "-"

REGION_BOUNDS = (
    constants.REGION_LATENCY_MAX_W,
    constants.REGION_MEMORY_MAX_W,
    constants.REGION_COMPUTE_MAX_W,
)

REGION_NAMES = (
    "latency/network/IO bound",
    "memory intensive",
    "compute intensive",
    "boosted frequency",
)


def region_index(power_w: np.ndarray) -> np.ndarray:
    """Table IV region (0..3) of each power sample.

    Boundary samples go to the upper region: 200 W is memory-intensive,
    560 W is boosted (the paper's ">= 560" region 4).
    """
    return np.searchsorted(
        np.asarray(REGION_BOUNDS), np.asarray(power_w), side="right"
    )


@dataclass
class CampaignCube:
    """Joined campaign statistics.

    ``energy_j`` and ``gpu_hours`` have shape
    ``(n_domains, n_classes, 4)`` where the last domain row is the idle
    pseudo-domain and the last class column the idle pseudo-class.
    """

    domains: List[str]
    classes: List[str]
    energy_j: np.ndarray
    gpu_hours: np.ndarray
    histogram: StreamingHistogram
    domain_histograms: Dict[str, StreamingHistogram]
    interval_s: float = constants.TELEMETRY_INTERVAL_S
    cpu_energy_j: float = 0.0

    # -- index helpers -----------------------------------------------------------

    def domain_idx(self, name: str) -> int:
        try:
            return self.domains.index(name)
        except ValueError:
            raise JoinError(f"unknown domain {name!r}") from None

    def class_idx(self, name: str) -> int:
        try:
            return self.classes.index(name)
        except ValueError:
            raise JoinError(f"unknown size class {name!r}") from None

    # -- aggregates --------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        return float(self.energy_j.sum())

    @property
    def total_gpu_hours(self) -> float:
        return float(self.gpu_hours.sum())

    def region_energy_j(self) -> np.ndarray:
        """Energy per operating region, shape (4,)."""
        return self.energy_j.sum(axis=(0, 1))

    def region_gpu_hours(self) -> np.ndarray:
        return self.gpu_hours.sum(axis=(0, 1))

    def busy_view(self) -> "CampaignCube":
        """The cube without the idle pseudo-domain/class rows."""
        d = [x for x in self.domains if x != IDLE_DOMAIN]
        c = [x for x in self.classes if x != IDLE_CLASS]
        d_idx = [self.domains.index(x) for x in d]
        c_idx = [self.classes.index(x) for x in c]
        return CampaignCube(
            domains=d,
            classes=c,
            energy_j=self.energy_j[np.ix_(d_idx, c_idx)],
            gpu_hours=self.gpu_hours[np.ix_(d_idx, c_idx)],
            histogram=self.histogram,
            domain_histograms={
                k: v for k, v in self.domain_histograms.items() if k in d
            },
            interval_s=self.interval_s,
            cpu_energy_j=self.cpu_energy_j,
        )

    def select(
        self, domains: Iterable[str], classes: Iterable[str]
    ) -> "CampaignCube":
        """Restrict the cube to selected domains and classes (Table VI)."""
        d = list(domains)
        c = list(classes)
        d_idx = [self.domain_idx(x) for x in d]
        c_idx = [self.class_idx(x) for x in c]
        return CampaignCube(
            domains=d,
            classes=c,
            energy_j=self.energy_j[np.ix_(d_idx, c_idx)],
            gpu_hours=self.gpu_hours[np.ix_(d_idx, c_idx)],
            histogram=self.histogram,
            domain_histograms={
                k: v for k, v in self.domain_histograms.items() if k in d
            },
            interval_s=self.interval_s,
            cpu_energy_j=self.cpu_energy_j,
        )


class CampaignAccumulator:
    """Incremental telemetry-x-log fold into a :class:`CampaignCube`.

    One instance holds the O(bins) running state of a campaign join:
    the (domain, class, region) energy/GPU-hour cube, the system and
    per-domain power histograms, and the CPU energy total.  ``update``
    absorbs one :class:`TelemetryChunk`; ``cube`` reads the state out.
    :func:`join_campaign` is a thin driver over this class, and the
    streaming engine (:mod:`repro.stream`) folds live windows through
    the very same code path — which is what makes the drained stream
    bitwise-identical to the batch join over the same chunk sequence.
    """

    def __init__(
        self,
        log: SchedulerLog,
        *,
        interval_s: float = constants.TELEMETRY_INTERVAL_S,
    ) -> None:
        jobs = log.job_by_id()
        self.log = log
        self.interval_s = interval_s
        self.domains = sorted({j.domain for j in jobs.values()}) + [
            IDLE_DOMAIN
        ]
        self.classes = list(constants.JOB_SIZE_CLASSES) + [IDLE_CLASS]
        d_index = {name: i for i, name in enumerate(self.domains)}
        c_index = {name: i for i, name in enumerate(self.classes)}

        self.energy_j = np.zeros((len(self.domains), len(self.classes), 4))
        self.gpu_hours = np.zeros_like(self.energy_j)
        self.histogram = StreamingHistogram()
        self.domain_histograms = {
            name: StreamingHistogram() for name in self.domains
        }
        self.cpu_energy_j = 0.0
        self.n_chunks = 0

        # Vectorized job-id -> (domain, class) lookup tables.
        max_jid = max(jobs, default=0)
        self._dom_of_job = np.full(
            max_jid + 1, d_index[IDLE_DOMAIN], dtype=np.int64
        )
        self._cls_of_job = np.full(
            max_jid + 1, c_index[IDLE_CLASS], dtype=np.int64
        )
        for jid, job in jobs.items():
            self._dom_of_job[jid] = d_index[job.domain]
            self._cls_of_job[jid] = c_index[job.size_class]

    def clone_empty(self) -> "CampaignAccumulator":
        """A zero-state accumulator sharing this one's lookup tables.

        Building the job-id -> (domain, class) tables walks every job in
        the log, so callers that fold many independent sub-campaigns
        against the same log (the sharded engine folds one accumulator
        per fold unit) clone a template instead of re-deriving them.
        The axes and tables are shared by reference — they are never
        mutated after construction.
        """
        new = object.__new__(CampaignAccumulator)
        new.log = self.log
        new.interval_s = self.interval_s
        new.domains = self.domains
        new.classes = self.classes
        new.energy_j = np.zeros_like(self.energy_j)
        new.gpu_hours = np.zeros_like(self.gpu_hours)
        new.histogram = StreamingHistogram()
        new.domain_histograms = {
            name: StreamingHistogram() for name in self.domains
        }
        new.cpu_energy_j = 0.0
        new.n_chunks = 0
        new._dom_of_job = self._dom_of_job
        new._cls_of_job = self._cls_of_job
        return new

    def update(self, chunk: TelemetryChunk) -> None:
        """Fold one chunk into the running campaign state.

        Traced as a ``join.update`` span when observability is on; the
        disabled wrapper costs one global read and a branch.
        """
        st = _obs.state()
        if st is None:
            return self._update_impl(chunk)
        with st.tracer.span("join.update") as sp:
            self._update_impl(chunk)
            sp.set(rows=len(chunk.time_s))
        st.registry.counter(
            "join_samples_total",
            "telemetry rows folded into the campaign cube",
        ).inc(len(chunk.time_s))

    def _update_impl(self, chunk: TelemetryChunk) -> None:
        """Uninstrumented body of :meth:`update` (the timed hot path)."""
        interval = self.interval_s
        self.n_chunks += 1
        self.cpu_energy_j += (
            float(chunk.cpu_power_w.sum(dtype=np.float64)) * interval
        )
        # Label each row with (domain, class) via the scheduler log: one
        # composite-key searchsorted over the whole chunk (no node loop).
        jid = self.log.job_id_table(chunk.time_s, chunk.node_id)
        d_row = self._dom_of_job[jid]
        c_row = self._cls_of_job[jid]

        power = chunk.gpu_power_w  # (n, gpus)
        reg = region_index(power)
        # Accumulate the 3-D cube with one bincount over composite keys.
        n_d, n_c = len(self.domains), len(self.classes)
        key = (
            (d_row[:, None] * n_c + c_row[:, None]) * 4 + reg
        ).reshape(-1)
        flat_p = power.reshape(-1).astype(np.float64)
        minlength = n_d * n_c * 4
        self.energy_j += (
            np.bincount(key, weights=flat_p, minlength=minlength).reshape(
                n_d, n_c, 4
            )
            * interval
        )
        self.gpu_hours += np.bincount(key, minlength=minlength).reshape(
            n_d, n_c, 4
        ) * (interval / 3600.0)

        self.histogram.add(flat_p)
        # Per-domain histograms in one composite-key bincount pass; the
        # repeat aligns row labels with the row-major sample flattening.
        add_grouped(
            [self.domain_histograms[name] for name in self.domains],
            np.repeat(d_row, power.shape[1]),
            flat_p,
        )

    def cube(self, *, copy: bool = False) -> CampaignCube:
        """The campaign cube of everything folded so far.

        With ``copy=True`` the cube owns snapshots of the state arrays,
        so further ``update`` calls do not mutate it (live queries).
        """
        if copy:
            hist = self.histogram.copy()
            domain_hists = {
                name: h.copy()
                for name, h in self.domain_histograms.items()
            }
            return CampaignCube(
                domains=list(self.domains),
                classes=list(self.classes),
                energy_j=self.energy_j.copy(),
                gpu_hours=self.gpu_hours.copy(),
                histogram=hist,
                domain_histograms=domain_hists,
                interval_s=self.interval_s,
                cpu_energy_j=self.cpu_energy_j,
            )
        return CampaignCube(
            domains=self.domains,
            classes=self.classes,
            energy_j=self.energy_j,
            gpu_hours=self.gpu_hours,
            histogram=self.histogram,
            domain_histograms=self.domain_histograms,
            interval_s=self.interval_s,
            cpu_energy_j=self.cpu_energy_j,
        )

    # -- checkpoint support (used by repro.stream.checkpoint) ---------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar form of the accumulator state for npz persistence."""
        hists = [self.histogram] + [
            self.domain_histograms[n] for n in self.domains
        ]
        return {
            "acc_domains": np.array(self.domains),
            "acc_classes": np.array(self.classes),
            "acc_energy_j": self.energy_j,
            "acc_gpu_hours": self.gpu_hours,
            "acc_scalars": np.array(
                [self.cpu_energy_j, float(self.n_chunks), self.interval_s]
            ),
            "acc_hist_bins": np.array(
                [
                    self.histogram.lo,
                    self.histogram.hi,
                    self.histogram.bin_width,
                ]
            ),
            "acc_hist_counts": np.stack([h.counts for h in hists]),
            "acc_hist_weights": np.stack([h.weight_sums for h in hists]),
            "acc_hist_clipped": np.array(
                [h.n_clipped for h in hists], dtype=np.int64
            ),
        }

    def load_state_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_arrays` (same log required)."""
        if list(arrays["acc_domains"]) != self.domains or list(
            arrays["acc_classes"]
        ) != self.classes:
            raise JoinError(
                "checkpoint axes do not match this scheduler log"
            )
        lo, hi, width = (float(x) for x in arrays["acc_hist_bins"])
        self.energy_j = np.array(arrays["acc_energy_j"], dtype=np.float64)
        self.gpu_hours = np.array(arrays["acc_gpu_hours"], dtype=np.float64)
        self.cpu_energy_j = float(arrays["acc_scalars"][0])
        self.n_chunks = int(arrays["acc_scalars"][1])
        self.interval_s = float(arrays["acc_scalars"][2])
        hists = [StreamingHistogram(lo, hi, width)]
        for _ in self.domains:
            hists.append(StreamingHistogram(lo, hi, width))
        for i, h in enumerate(hists):
            h.counts = np.array(
                arrays["acc_hist_counts"][i], dtype=np.float64
            )
            h.weight_sums = np.array(
                arrays["acc_hist_weights"][i], dtype=np.float64
            )
            h.n_clipped = int(arrays["acc_hist_clipped"][i])
        self.histogram = hists[0]
        self.domain_histograms = dict(zip(self.domains, hists[1:]))


def join_campaign(
    telemetry: Union[TelemetryStore, Iterable[TelemetryChunk]],
    log: SchedulerLog,
) -> CampaignCube:
    """Join telemetry with the scheduler log into a campaign cube.

    Accepts a materialized store or any iterable of chunks (streaming
    mode); statistics are identical either way.
    """
    if isinstance(telemetry, TelemetryStore):
        chunks: Iterable[TelemetryChunk] = [telemetry.chunk]
        interval = telemetry.interval_s
    else:
        chunks = telemetry
        interval = constants.TELEMETRY_INTERVAL_S

    with _obs.span("join.campaign"):
        acc = CampaignAccumulator(log, interval_s=interval)
        for chunk in chunks:
            acc.update(chunk)
    if acc.n_chunks == 0:
        raise JoinError("no telemetry chunks to join")
    return acc.cube()
