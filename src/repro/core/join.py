"""Telemetry x scheduler-log join.

Telemetry alone has no job metadata (paper Section III-A); joining it with
the SLURM log recovers, for every GPU power sample, the job — and hence
the science domain and size class — that produced it.  The join output is
a :class:`CampaignCube`: energy and GPU-hours indexed by
``(domain, size class, operating region)``, plus the system-wide and
per-domain power histograms.  Every downstream artifact (Table IV, V, VI,
Fig 8, 9, 10) is a view of this cube, so the join runs once per campaign
and streams in O(bins) memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union

import numpy as np

from .. import constants
from ..errors import JoinError
from ..scheduler.log import SchedulerLog
from ..telemetry.schema import TelemetryChunk
from ..telemetry.store import TelemetryStore
from .histogram import StreamingHistogram, add_grouped

#: Pseudo-domain for samples with no running job.
IDLE_DOMAIN = "_idle"
#: Pseudo-class used for idle samples.
IDLE_CLASS = "-"

REGION_BOUNDS = (
    constants.REGION_LATENCY_MAX_W,
    constants.REGION_MEMORY_MAX_W,
    constants.REGION_COMPUTE_MAX_W,
)

REGION_NAMES = (
    "latency/network/IO bound",
    "memory intensive",
    "compute intensive",
    "boosted frequency",
)


def region_index(power_w: np.ndarray) -> np.ndarray:
    """Table IV region (0..3) of each power sample.

    Boundary samples go to the upper region: 200 W is memory-intensive,
    560 W is boosted (the paper's ">= 560" region 4).
    """
    return np.searchsorted(
        np.asarray(REGION_BOUNDS), np.asarray(power_w), side="right"
    )


@dataclass
class CampaignCube:
    """Joined campaign statistics.

    ``energy_j`` and ``gpu_hours`` have shape
    ``(n_domains, n_classes, 4)`` where the last domain row is the idle
    pseudo-domain and the last class column the idle pseudo-class.
    """

    domains: List[str]
    classes: List[str]
    energy_j: np.ndarray
    gpu_hours: np.ndarray
    histogram: StreamingHistogram
    domain_histograms: Dict[str, StreamingHistogram]
    interval_s: float = constants.TELEMETRY_INTERVAL_S
    cpu_energy_j: float = 0.0

    # -- index helpers -----------------------------------------------------------

    def domain_idx(self, name: str) -> int:
        try:
            return self.domains.index(name)
        except ValueError:
            raise JoinError(f"unknown domain {name!r}") from None

    def class_idx(self, name: str) -> int:
        try:
            return self.classes.index(name)
        except ValueError:
            raise JoinError(f"unknown size class {name!r}") from None

    # -- aggregates --------------------------------------------------------------

    @property
    def total_energy_j(self) -> float:
        return float(self.energy_j.sum())

    @property
    def total_gpu_hours(self) -> float:
        return float(self.gpu_hours.sum())

    def region_energy_j(self) -> np.ndarray:
        """Energy per operating region, shape (4,)."""
        return self.energy_j.sum(axis=(0, 1))

    def region_gpu_hours(self) -> np.ndarray:
        return self.gpu_hours.sum(axis=(0, 1))

    def busy_view(self) -> "CampaignCube":
        """The cube without the idle pseudo-domain/class rows."""
        d = [x for x in self.domains if x != IDLE_DOMAIN]
        c = [x for x in self.classes if x != IDLE_CLASS]
        d_idx = [self.domains.index(x) for x in d]
        c_idx = [self.classes.index(x) for x in c]
        return CampaignCube(
            domains=d,
            classes=c,
            energy_j=self.energy_j[np.ix_(d_idx, c_idx)],
            gpu_hours=self.gpu_hours[np.ix_(d_idx, c_idx)],
            histogram=self.histogram,
            domain_histograms={
                k: v for k, v in self.domain_histograms.items() if k in d
            },
            interval_s=self.interval_s,
            cpu_energy_j=self.cpu_energy_j,
        )

    def select(
        self, domains: Iterable[str], classes: Iterable[str]
    ) -> "CampaignCube":
        """Restrict the cube to selected domains and classes (Table VI)."""
        d = list(domains)
        c = list(classes)
        d_idx = [self.domain_idx(x) for x in d]
        c_idx = [self.class_idx(x) for x in c]
        return CampaignCube(
            domains=d,
            classes=c,
            energy_j=self.energy_j[np.ix_(d_idx, c_idx)],
            gpu_hours=self.gpu_hours[np.ix_(d_idx, c_idx)],
            histogram=self.histogram,
            domain_histograms={
                k: v for k, v in self.domain_histograms.items() if k in d
            },
            interval_s=self.interval_s,
            cpu_energy_j=self.cpu_energy_j,
        )


def join_campaign(
    telemetry: Union[TelemetryStore, Iterable[TelemetryChunk]],
    log: SchedulerLog,
) -> CampaignCube:
    """Join telemetry with the scheduler log into a campaign cube.

    Accepts a materialized store or any iterable of chunks (streaming
    mode); statistics are identical either way.
    """
    jobs = log.job_by_id()
    domains = sorted({j.domain for j in jobs.values()}) + [IDLE_DOMAIN]
    classes = list(constants.JOB_SIZE_CLASSES) + [IDLE_CLASS]
    d_index = {name: i for i, name in enumerate(domains)}
    c_index = {name: i for i, name in enumerate(classes)}

    energy = np.zeros((len(domains), len(classes), 4))
    hours = np.zeros_like(energy)
    hist = StreamingHistogram()
    domain_hists = {name: StreamingHistogram() for name in domains}
    cpu_energy = 0.0

    if isinstance(telemetry, TelemetryStore):
        chunks: Iterable[TelemetryChunk] = [telemetry.chunk]
        interval = telemetry.interval_s
    else:
        chunks = telemetry
        interval = constants.TELEMETRY_INTERVAL_S

    hours_per_sample = interval / 3600.0

    # Vectorized job-id -> (domain, class) lookup tables.
    max_jid = max(jobs, default=0)
    dom_of_job = np.full(max_jid + 1, d_index[IDLE_DOMAIN], dtype=np.int64)
    cls_of_job = np.full(max_jid + 1, c_index[IDLE_CLASS], dtype=np.int64)
    for jid, job in jobs.items():
        dom_of_job[jid] = d_index[job.domain]
        cls_of_job[jid] = c_index[job.size_class]

    saw_any = False
    for chunk in chunks:
        saw_any = True
        cpu_energy += float(chunk.cpu_power_w.sum(dtype=np.float64)) * interval
        # Label each row with (domain, class) via the scheduler log: one
        # composite-key searchsorted over the whole chunk (no node loop).
        jid = log.job_id_table(chunk.time_s, chunk.node_id)
        d_row = dom_of_job[jid]
        c_row = cls_of_job[jid]

        power = chunk.gpu_power_w  # (n, gpus)
        reg = region_index(power)
        # Accumulate the 3-D cube with one bincount over composite keys.
        n_d, n_c = len(domains), len(classes)
        key = (
            (d_row[:, None] * n_c + c_row[:, None]) * 4 + reg
        ).reshape(-1)
        flat_p = power.reshape(-1).astype(np.float64)
        minlength = n_d * n_c * 4
        energy += (
            np.bincount(key, weights=flat_p, minlength=minlength).reshape(
                n_d, n_c, 4
            )
            * interval
        )
        hours += np.bincount(key, minlength=minlength).reshape(
            n_d, n_c, 4
        ) * hours_per_sample

        hist.add(flat_p)
        # Per-domain histograms in one composite-key bincount pass; the
        # repeat aligns row labels with the row-major sample flattening.
        add_grouped(
            [domain_hists[name] for name in domains],
            np.repeat(d_row, power.shape[1]),
            flat_p,
        )

    if not saw_any:
        raise JoinError("no telemetry chunks to join")
    return CampaignCube(
        domains=domains,
        classes=classes,
        energy_j=energy,
        gpu_hours=hours,
        histogram=hist,
        domain_histograms=domain_hists,
        interval_s=interval,
        cpu_energy_j=cpu_energy,
    )
