"""Domain x size-class heatmaps (Fig 10) and the Table VI selection.

Fig 10(a) maps total GPU energy over (science domain, job size class);
Fig 10(b) maps the projected savings under an 1100 MHz frequency cap.
Table VI then restricts the projection to the domains holding at least
one "red" (high-savings) heatmap cell and to the large job classes A-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import units
from ..errors import ProjectionError
from .characterization import CapFactors
from .join import CampaignCube

#: Size classes Table VI keeps ("significantly large jobs").
LARGE_CLASSES = ("A", "B", "C")


@dataclass(frozen=True)
class HeatmapPair:
    """Fig 10: energy and projected-savings heatmaps."""

    domains: List[str]
    classes: List[str]
    energy_mwh: np.ndarray     # (n_domains, n_classes)
    savings_mwh: np.ndarray    # same shape
    cap: float

    def savings_threshold(self, quantile: float = 0.85) -> float:
        """The 'red cell' threshold: top-quantile of positive savings."""
        positive = self.savings_mwh[self.savings_mwh > 0]
        if len(positive) == 0:
            return float("inf")
        return float(np.quantile(positive, quantile))


def compute_heatmaps(
    cube: CampaignCube,
    factors: CapFactors,
    *,
    cap: float = 1100.0,
    campaign_energy_mwh: float | None = None,
) -> HeatmapPair:
    """Compute the Fig 10 heatmaps at one cap setting."""
    f_ci, f_mi = factors.energy_at(cap)
    busy = cube.busy_view()
    scale = 1.0
    if campaign_energy_mwh is not None:
        if campaign_energy_mwh <= 0:
            raise ProjectionError("campaign energy must be positive")
        scale = units.mwh(campaign_energy_mwh) / cube.total_energy_j

    energy = busy.energy_j * scale                      # (d, c, region)
    total = energy.sum(axis=2)
    savings = energy[:, :, 2] * (1.0 - f_ci) + energy[:, :, 1] * (
        1.0 - f_mi
    )
    return HeatmapPair(
        domains=busy.domains,
        classes=busy.classes,
        energy_mwh=units.to_mwh(total),
        savings_mwh=units.to_mwh(savings),
        cap=cap,
    )


def select_red_domains(
    heatmaps: HeatmapPair,
    *,
    n_domains: int = 6,
) -> List[str]:
    """Domains with at least one red (top-savings) cell, as in Table VI.

    The paper selects six domains; ``n_domains`` keeps the strongest
    ``n`` by their maximum cell savings.
    """
    if n_domains <= 0:
        raise ProjectionError("n_domains must be positive")
    best_cell = heatmaps.savings_mwh.max(axis=1)
    order = np.argsort(best_cell)[::-1]
    picked = [heatmaps.domains[i] for i in order[:n_domains] if best_cell[i] > 0]
    return picked


def table6_selection(
    cube: CampaignCube,
    factors: CapFactors,
    *,
    cap: float = 1100.0,
    n_domains: int = 6,
) -> Tuple[CampaignCube, List[str]]:
    """The Table VI sub-campaign: red-cell domains x classes A-C."""
    heatmaps = compute_heatmaps(cube, factors, cap=cap)
    domains = select_red_domains(heatmaps, n_domains=n_domains)
    if not domains:
        raise ProjectionError("no domain shows any projected savings")
    selected = cube.select(domains, LARGE_CLASSES)
    return selected, domains
