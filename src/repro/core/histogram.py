"""Streaming weighted histograms and modal peak finding.

Full-scale Frontier telemetry (~4 x 10^10 samples) cannot be materialized;
every Fig 8/9 distribution and every Table IV/V aggregate in this package
is therefore accumulated through :class:`StreamingHistogram`, which holds
O(bins) state and can absorb chunks of any size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import signal

from ..errors import TelemetryError


class StreamingHistogram:
    """Fixed-bin histogram that accumulates counts and a weight column.

    ``add(values, weights)`` is the only hot call; everything else reads
    the accumulated state.  Counts track sample populations (GPU-hours);
    weights track an additive quantity per sample (energy).
    """

    def __init__(
        self,
        lo: float = 0.0,
        hi: float = 650.0,
        bin_width: float = 2.0,
    ) -> None:
        if hi <= lo or bin_width <= 0:
            raise TelemetryError("invalid histogram range")
        self.lo = lo
        self.hi = hi
        self.bin_width = bin_width
        self.n_bins = int(np.ceil((hi - lo) / bin_width))
        self.counts = np.zeros(self.n_bins, dtype=np.float64)
        self.weight_sums = np.zeros(self.n_bins, dtype=np.float64)
        self.n_clipped = 0

    @property
    def edges(self) -> np.ndarray:
        return self.lo + np.arange(self.n_bins + 1) * self.bin_width

    @property
    def centers(self) -> np.ndarray:
        return self.lo + (np.arange(self.n_bins) + 0.5) * self.bin_width

    @property
    def total_count(self) -> float:
        return float(self.counts.sum())

    @property
    def total_weight(self) -> float:
        return float(self.weight_sums.sum())

    def add(
        self, values: np.ndarray, weights: Optional[np.ndarray] = None
    ) -> None:
        """Accumulate a chunk of samples (out-of-range values clip)."""
        values = np.asarray(values, dtype=float).reshape(-1)
        idx = ((values - self.lo) / self.bin_width).astype(np.int64)
        clipped = (idx < 0) | (idx >= self.n_bins)
        self.n_clipped += int(clipped.sum())
        idx = np.clip(idx, 0, self.n_bins - 1)
        self.counts += np.bincount(idx, minlength=self.n_bins)
        if weights is None:
            self.weight_sums += np.bincount(
                idx, weights=values, minlength=self.n_bins
            )
        else:
            weights = np.asarray(weights, dtype=float).reshape(-1)
            if weights.shape != values.shape:
                raise TelemetryError("weights must match values")
            self.weight_sums += np.bincount(
                idx, weights=weights, minlength=self.n_bins
            )

    def copy(self) -> "StreamingHistogram":
        """An independent clone (own arrays; safe to mutate or merge)."""
        out = StreamingHistogram(self.lo, self.hi, self.bin_width)
        out.counts = self.counts.copy()
        out.weight_sums = self.weight_sums.copy()
        out.n_clipped = self.n_clipped
        return out

    def merge(self, other: "StreamingHistogram") -> None:
        """Absorb another histogram with identical binning."""
        if (
            other.lo != self.lo
            or other.hi != self.hi
            or other.bin_width != self.bin_width
        ):
            raise TelemetryError("cannot merge histograms with unlike bins")
        self.counts += other.counts
        self.weight_sums += other.weight_sums
        self.n_clipped += other.n_clipped

    def density(self) -> np.ndarray:
        """Probability density over bin centers."""
        total = self.total_count
        if total == 0:
            raise TelemetryError("empty histogram has no density")
        return self.counts / (total * self.bin_width)

    def range_fraction(self, lo: float, hi: float) -> float:
        """Fraction of samples with lo <= value < hi (bin-resolution)."""
        mask = (self.centers >= lo) & (self.centers < hi)
        total = self.total_count
        return float(self.counts[mask].sum() / total) if total else 0.0

    def range_weight(self, lo: float, hi: float) -> float:
        """Summed weights for samples with lo <= value < hi."""
        mask = (self.centers >= lo) & (self.centers < hi)
        return float(self.weight_sums[mask].sum())

    def smoothed_density(self, sigma_bins: float = 3.0) -> np.ndarray:
        """Gaussian-smoothed density (the Fig 8/9 curves)."""
        dens = self.density()
        radius = int(np.ceil(4 * sigma_bins))
        x = np.arange(-radius, radius + 1)
        kernel = np.exp(-0.5 * (x / sigma_bins) ** 2)
        kernel /= kernel.sum()
        return np.convolve(dens, kernel, mode="same")


def add_grouped(
    hists: List[StreamingHistogram],
    group_idx: np.ndarray,
    values: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> None:
    """Accumulate each sample into ``hists[group_idx[i]]`` in one pass.

    A single composite-key ``bincount`` (group major, bin minor) replaces
    one masked :meth:`StreamingHistogram.add` call per group.  ``bincount``
    accumulates sequentially in array order — the same element order each
    per-group subset saw — so the resulting state is bitwise identical to
    the per-group path.  All histograms must share their binning.
    """
    if not hists:
        raise TelemetryError("add_grouped needs at least one histogram")
    ref = hists[0]
    for h in hists[1:]:
        if (
            h.lo != ref.lo
            or h.hi != ref.hi
            or h.bin_width != ref.bin_width
        ):
            raise TelemetryError("add_grouped needs identically binned histograms")
    values = np.asarray(values, dtype=float).reshape(-1)
    group_idx = np.asarray(group_idx, dtype=np.int64).reshape(-1)
    if group_idx.shape != values.shape:
        raise TelemetryError("group indices must match values")
    if group_idx.size and (
        group_idx.min() < 0 or group_idx.max() >= len(hists)
    ):
        raise TelemetryError("group index out of range")
    n_groups, n_bins = len(hists), ref.n_bins

    idx = ((values - ref.lo) / ref.bin_width).astype(np.int64)
    clipped = (idx < 0) | (idx >= n_bins)
    idx = np.clip(idx, 0, n_bins - 1)
    key = group_idx * n_bins + idx
    minlength = n_groups * n_bins
    counts = np.bincount(key, minlength=minlength).reshape(n_groups, n_bins)
    if weights is None:
        w = values
    else:
        w = np.asarray(weights, dtype=float).reshape(-1)
        if w.shape != values.shape:
            raise TelemetryError("weights must match values")
    wsums = np.bincount(key, weights=w, minlength=minlength).reshape(
        n_groups, n_bins
    )
    n_clip = np.bincount(group_idx[clipped], minlength=n_groups)
    for g, h in enumerate(hists):
        h.counts += counts[g]
        h.weight_sums += wsums[g]
        h.n_clipped += int(n_clip[g])


@dataclass(frozen=True)
class PowerMode:
    """One local maximum of the power distribution."""

    power_w: float
    density: float
    prominence: float


def find_power_modes(
    hist: StreamingHistogram,
    *,
    sigma_bins: float = 3.0,
    min_prominence_frac: float = 0.05,
) -> List[PowerMode]:
    """Locate the modes (local maxima) of a power distribution.

    The paper reads these peaks off the Fig 8/9 distributions to identify
    the prevalent zones of operation.
    """
    dens = hist.smoothed_density(sigma_bins=sigma_bins)
    prominence = min_prominence_frac * dens.max()
    peaks, props = signal.find_peaks(dens, prominence=prominence)
    centers = hist.centers
    return [
        PowerMode(
            power_w=float(centers[p]),
            density=float(dens[p]),
            prominence=float(props["prominences"][i]),
        )
        for i, p in enumerate(peaks)
    ]
