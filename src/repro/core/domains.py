"""Per-science-domain power distribution analysis (Fig 9).

The disaggregation of the system-wide distribution into domains is what
shows that GPU power is a usable proxy for resource utilization: each
domain's applications cluster into a few modes, and the dominant region
identifies the domain's workload family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import JoinError
from .histogram import PowerMode, StreamingHistogram, find_power_modes
from .join import IDLE_DOMAIN, CampaignCube


@dataclass(frozen=True)
class DomainDistribution:
    """One Fig 9 panel."""

    domain: str
    histogram: StreamingHistogram
    gpu_hours: float
    energy_pct_of_campaign: float
    region_pct: np.ndarray          # share of the domain's hours per region
    modes: List[PowerMode]

    @property
    def dominant_region(self) -> int:
        """1-based region holding the most GPU-hours."""
        return int(np.argmax(self.region_pct)) + 1

    @property
    def is_multi_zone(self) -> bool:
        """True when significant mass sits in 3+ regions (Fig 9 g-h)."""
        return int(np.count_nonzero(self.region_pct >= 10.0)) >= 3


def domain_distributions(cube: CampaignCube) -> Dict[str, DomainDistribution]:
    """Build the Fig 9 panels for every (non-idle) domain."""
    out: Dict[str, DomainDistribution] = {}
    total_energy = cube.total_energy_j
    if total_energy <= 0:
        raise JoinError("campaign has no energy")
    for name in cube.domains:
        if name == IDLE_DOMAIN:
            continue
        d = cube.domain_idx(name)
        hours_by_region = cube.gpu_hours[d].sum(axis=0)
        hours = float(hours_by_region.sum())
        if hours == 0:
            continue
        hist = cube.domain_histograms[name]
        out[name] = DomainDistribution(
            domain=name,
            histogram=hist,
            gpu_hours=hours,
            energy_pct_of_campaign=float(
                100.0 * cube.energy_j[d].sum() / total_energy
            ),
            region_pct=100.0 * hours_by_region / hours,
            modes=find_power_modes(hist),
        )
    return out
