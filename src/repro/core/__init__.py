"""The paper's core contribution: telemetry-driven savings projection.

Pipeline (Sections III-C/D and V of the paper):

1. :mod:`repro.core.join`      — join telemetry with scheduler logs into a
   :class:`~repro.core.join.CampaignCube` (energy and GPU-hours indexed by
   domain x size class x operating region, plus power histograms);
2. :mod:`repro.core.histogram` — streaming weighted histograms, KDE and
   peak finding for the Fig 8/9 distributions;
3. :mod:`repro.core.modes`     — modal decomposition into the four
   operating regions (Table IV);
4. :mod:`repro.core.characterization` — benchmark cap-response factors
   (measured Table III, or the paper's published values);
5. :mod:`repro.core.projection` — system-scale energy-savings projection
   (Tables V and VI);
6. :mod:`repro.core.domains` / :mod:`repro.core.heatmap` — per-domain
   distributions (Fig 9) and domain x size-class heatmaps (Fig 10);
7. :mod:`repro.core.report`    — plain-text renderers for every artifact.
"""

from .histogram import StreamingHistogram, find_power_modes
from .join import CampaignAccumulator, CampaignCube, join_campaign
from .modes import ModeTable, decompose_modes
from .characterization import CapFactors, measured_factors, paper_factors
from .projection import ProjectionRow, ProjectionTable, project_savings
from .domains import domain_distributions
from .heatmap import HeatmapPair, compute_heatmaps, select_red_domains
from . import report

__all__ = [
    "StreamingHistogram",
    "find_power_modes",
    "CampaignAccumulator",
    "CampaignCube",
    "join_campaign",
    "ModeTable",
    "decompose_modes",
    "CapFactors",
    "measured_factors",
    "paper_factors",
    "ProjectionRow",
    "ProjectionTable",
    "project_savings",
    "domain_distributions",
    "HeatmapPair",
    "compute_heatmaps",
    "select_red_domains",
    "report",
]
