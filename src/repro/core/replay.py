"""Phase-level replay: verifying the projection through the device model.

The paper's projection makes one leap: multiply each *region's* energy by
a single benchmark factor.  The simulation can check that leap, because
every fleet power level can be mapped back onto the device model:

1. for each profile phase, build a *surrogate kernel* whose uncapped
   steady power matches the phase mean — memory-side arithmetic
   intensities for powers on the rising branch (374-540 W), derated
   occupancy for latency-bound powers below the memory floor;
2. run the surrogate under the cap on the simulated device, yielding a
   *phase-specific* energy factor and slowdown;
3. aggregate over the fleet's profile mix.

The result is a second, finer-grained estimate of campaign savings.  Its
gap to the region-level projection measures how much the paper's
one-factor-per-region binning costs — the quantitative answer to the
"boundary regions may be diffused" caveat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ProjectionError
from ..gpu import GPUDevice, KernelSpec
from ..gpu.specs import MI250XSpec, default_spec
from ..telemetry.profiles import PROFILES, PowerProfile

#: Issue character assumed for fleet application phases: deeper than VAI
#: (real codes batch their loads) but not perfectly pipelined.
SURROGATE_ISSUE_BW_FACTOR = 2.0

#: Arithmetic-intensity search range: the rising branch of the power
#: curve (memory floor up to the ridge).
_AI_LO, _AI_HI = 0.03125, 4.0


def _steady_power(spec: MI250XSpec, kernel: KernelSpec) -> float:
    return GPUDevice(spec).run(kernel).power_w


def _kernel(ai: float, occupancy: float = 1.0) -> KernelSpec:
    volume = 1e12
    return KernelSpec(
        name=f"surrogate-ai{ai:g}-occ{occupancy:g}",
        flops=ai * volume,
        hbm_bytes=volume,
        issue_bw_factor=SURROGATE_ISSUE_BW_FACTOR,
        occupancy=occupancy,
    )


def surrogate_kernel_for_power(
    power_w: float, spec: Optional[MI250XSpec] = None
) -> KernelSpec:
    """A kernel whose uncapped steady power matches ``power_w``.

    Below the memory-bound floor the arithmetic intensity is pinned and
    occupancy is derated (latency-bound work); on the rising branch the
    intensity is bisected; at or above the ridge power the ridge kernel
    is returned (boost phases are transient ridge operation).
    """
    spec = spec if spec is not None else default_spec()
    if power_w < spec.idle_w:
        raise ProjectionError(
            f"no workload draws below idle ({power_w:.0f} W)"
        )

    floor = _steady_power(spec, _kernel(_AI_LO))
    ridge = _steady_power(spec, _kernel(_AI_HI))
    if power_w >= ridge:
        return _kernel(_AI_HI)

    if power_w <= floor:
        # Latency-bound: bisect occupancy at a low intensity.
        lo, hi = 0.01, 1.0
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if _steady_power(spec, _kernel(_AI_LO, mid)) < power_w:
                lo = mid
            else:
                hi = mid
        return _kernel(_AI_LO, 0.5 * (lo + hi))

    # Memory/compute mix: bisect intensity on the rising branch.
    lo, hi = _AI_LO, _AI_HI
    for _ in range(50):
        mid = 0.5 * (lo + hi)
        if _steady_power(spec, _kernel(mid)) < power_w:
            lo = mid
        else:
            hi = mid
    return _kernel(0.5 * (lo + hi))


@dataclass(frozen=True)
class PhaseReplay:
    """One phase's behaviour under a cap."""

    uncapped_power_w: float
    capped_power_w: float
    slowdown: float              # capped time / uncapped time

    @property
    def energy_factor(self) -> float:
        return (
            self.capped_power_w * self.slowdown / self.uncapped_power_w
        )


@dataclass(frozen=True)
class ProfileReplay:
    """A profile's aggregate behaviour under a cap."""

    profile: str
    energy_factor: float         # capped energy / uncapped energy
    runtime_factor: float        # energy-weighted slowdown
    phases: Dict[float, PhaseReplay]


def replay_profile(
    profile: PowerProfile,
    *,
    frequency_cap_hz: float,
    spec: Optional[MI250XSpec] = None,
) -> ProfileReplay:
    """Replay every phase of a profile under a frequency cap."""
    spec = spec if spec is not None else default_spec()
    capped_device = GPUDevice(spec, frequency_cap_hz=frequency_cap_hz)
    base_device = GPUDevice(spec)

    phases: Dict[float, PhaseReplay] = {}
    energy_unc = 0.0
    energy_cap = 0.0
    weighted_slowdown = 0.0
    for phase, weight in zip(profile.phases, profile.weights):
        kernel = surrogate_kernel_for_power(phase.mean_w, spec)
        base = base_device.run(kernel)
        capped = capped_device.run(kernel)
        replay = PhaseReplay(
            uncapped_power_w=base.power_w,
            capped_power_w=capped.power_w,
            slowdown=capped.time_s / base.time_s,
        )
        phases[phase.mean_w] = replay
        e_u = weight * base.power_w
        energy_unc += e_u
        energy_cap += weight * capped.power_w * replay.slowdown
        weighted_slowdown += e_u * replay.slowdown
    return ProfileReplay(
        profile=profile.name,
        energy_factor=energy_cap / energy_unc,
        runtime_factor=weighted_slowdown / energy_unc,
        phases=phases,
    )


def fleet_replay_savings(
    profile_weights: Dict[str, float],
    *,
    frequency_cap_hz: float,
    spec: Optional[MI250XSpec] = None,
) -> Dict[str, float]:
    """Fleet-level phase-replay savings for a profile mix.

    ``profile_weights`` maps profile names to their share of busy fleet
    energy.  Returns the aggregate energy factor, savings fraction, and
    energy-weighted runtime factor.
    """
    total = sum(profile_weights.values())
    if total <= 0:
        raise ProjectionError("profile weights must have positive mass")
    energy_factor = 0.0
    runtime_factor = 0.0
    for name, weight in profile_weights.items():
        if name not in PROFILES:
            raise ProjectionError(f"unknown profile {name!r}")
        replay = replay_profile(
            PROFILES[name], frequency_cap_hz=frequency_cap_hz, spec=spec
        )
        energy_factor += (weight / total) * replay.energy_factor
        runtime_factor += (weight / total) * replay.runtime_factor
    return {
        "energy_factor": energy_factor,
        "savings_fraction": 1.0 - energy_factor,
        "runtime_factor": runtime_factor,
    }
