"""Phase-level replay: verifying the projection through the device model.

The paper's projection makes one leap: multiply each *region's* energy by
a single benchmark factor.  The simulation can check that leap, because
every fleet power level can be mapped back onto the device model:

1. for each profile phase, build a *surrogate kernel* whose uncapped
   steady power matches the phase mean — memory-side arithmetic
   intensities for powers on the rising branch (374-540 W), derated
   occupancy for latency-bound powers below the memory floor;
2. run the surrogate under the cap on the simulated device, yielding a
   *phase-specific* energy factor and slowdown;
3. aggregate over the fleet's profile mix.

The result is a second, finer-grained estimate of campaign savings.  Its
gap to the region-level projection measures how much the paper's
one-factor-per-region binning costs — the quantitative answer to the
"boundary regions may be diffused" caveat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ProjectionError
from ..gpu import GPUDevice, KernelBatch, KernelSpec
from ..gpu.perf import execute_batch
from ..gpu.power import steady_power_batch
from ..gpu.specs import MI250XSpec, default_spec
from ..telemetry.profiles import PROFILES, PowerProfile

#: Issue character assumed for fleet application phases: deeper than VAI
#: (real codes batch their loads) but not perfectly pipelined.
SURROGATE_ISSUE_BW_FACTOR = 2.0

#: Arithmetic-intensity search range: the rising branch of the power
#: curve (memory floor up to the ridge).
_AI_LO, _AI_HI = 0.03125, 4.0


def _steady_power(spec: MI250XSpec, kernel: KernelSpec) -> float:
    return GPUDevice(spec).run(kernel).power_w


def _kernel(ai: float, occupancy: float = 1.0) -> KernelSpec:
    volume = 1e12
    return KernelSpec(
        name=f"surrogate-ai{ai:g}-occ{occupancy:g}",
        flops=ai * volume,
        hbm_bytes=volume,
        issue_bw_factor=SURROGATE_ISSUE_BW_FACTOR,
        occupancy=occupancy,
    )


def surrogate_kernel_for_power(
    power_w: float, spec: Optional[MI250XSpec] = None
) -> KernelSpec:
    """A kernel whose uncapped steady power matches ``power_w``.

    Below the memory-bound floor the arithmetic intensity is pinned and
    occupancy is derated (latency-bound work); on the rising branch the
    intensity is bisected; at or above the ridge power the ridge kernel
    is returned (boost phases are transient ridge operation).
    """
    spec = spec if spec is not None else default_spec()
    if power_w < spec.idle_w:
        raise ProjectionError(
            f"no workload draws below idle ({power_w:.0f} W)"
        )

    floor = _steady_power(spec, _kernel(_AI_LO))
    ridge = _steady_power(spec, _kernel(_AI_HI))
    if power_w >= ridge:
        return _kernel(_AI_HI)

    if power_w <= floor:
        # Latency-bound: bisect occupancy at a low intensity.
        lo, hi = 0.01, 1.0
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if _steady_power(spec, _kernel(_AI_LO, mid)) < power_w:
                lo = mid
            else:
                hi = mid
        return _kernel(_AI_LO, 0.5 * (lo + hi))

    # Memory/compute mix: bisect intensity on the rising branch.
    lo, hi = _AI_LO, _AI_HI
    for _ in range(50):
        mid = 0.5 * (lo + hi)
        if _steady_power(spec, _kernel(mid)) < power_w:
            lo = mid
        else:
            hi = mid
    return _kernel(0.5 * (lo + hi))


def _surrogate_batch(ai: np.ndarray, occupancy: np.ndarray) -> KernelBatch:
    """Columnar surrogate kernels — mirrors :func:`_kernel` field-for-field."""
    volume = 1e12
    n = len(ai)
    return KernelBatch(
        flops=ai * volume,
        hbm_bytes=np.full(n, volume),
        l2_bytes=np.zeros(n),
        working_set_bytes=np.full(n, np.nan),
        issue_bw_factor=np.full(n, SURROGATE_ISSUE_BW_FACTOR),
        compute_efficiency=np.ones(n),
        occupancy=np.asarray(occupancy, dtype=np.float64),
        divergence=np.zeros(n),
        launch_overhead_s=np.zeros(n),
        stall_power_fraction=np.zeros(n),
    )


def _steady_power_batch(spec: MI250XSpec, batch: KernelBatch) -> np.ndarray:
    """Uncapped steady power per point — the batched :func:`_steady_power`."""
    f = np.full(len(batch), spec.f_max_hz)
    profile = execute_batch(spec, batch, f)
    return steady_power_batch(spec, profile, f_core_hz=f, uncore_capped=False)


def surrogate_kernels_for_powers(
    powers_w: Sequence[float], spec: Optional[MI250XSpec] = None
) -> List[KernelSpec]:
    """Solve :func:`surrogate_kernel_for_power` for many powers at once.

    Both inner searches — occupancy for latency-bound powers, arithmetic
    intensity on the rising branch — run as lock-stepped vectorized
    bisections (the scalar loops halve fixed intervals, so every point
    shares the iteration schedule), giving bitwise-identical kernels to
    the scalar oracle in 50 whole-array model evaluations per branch.
    """
    spec = spec if spec is not None else default_spec()
    powers = np.asarray(list(powers_w), dtype=np.float64)
    if np.any(powers < spec.idle_w):
        bad = powers[powers < spec.idle_w][0]
        raise ProjectionError(
            f"no workload draws below idle ({bad:.0f} W)"
        )
    floor = _steady_power(spec, _kernel(_AI_LO))
    ridge = _steady_power(spec, _kernel(_AI_HI))

    n = len(powers)
    ai = np.full(n, _AI_HI)
    occ = np.ones(n)
    at_ridge = powers >= ridge
    latency = ~at_ridge & (powers <= floor)
    rising = ~at_ridge & ~latency

    if latency.any():
        p = powers[latency]
        lo = np.full(p.size, 0.01)
        hi = np.ones(p.size)
        ai_lo = np.full(p.size, _AI_LO)
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            below = _steady_power_batch(spec, _surrogate_batch(ai_lo, mid)) < p
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        ai[latency] = _AI_LO
        occ[latency] = 0.5 * (lo + hi)

    if rising.any():
        p = powers[rising]
        lo = np.full(p.size, _AI_LO)
        hi = np.full(p.size, _AI_HI)
        ones = np.ones(p.size)
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            below = _steady_power_batch(spec, _surrogate_batch(mid, ones)) < p
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        ai[rising] = 0.5 * (lo + hi)

    return [_kernel(float(a), float(o)) for a, o in zip(ai, occ)]


@dataclass(frozen=True)
class PhaseReplay:
    """One phase's behaviour under a cap."""

    uncapped_power_w: float
    capped_power_w: float
    slowdown: float              # capped time / uncapped time

    @property
    def energy_factor(self) -> float:
        return (
            self.capped_power_w * self.slowdown / self.uncapped_power_w
        )


@dataclass(frozen=True)
class ProfileReplay:
    """A profile's aggregate behaviour under a cap."""

    profile: str
    energy_factor: float         # capped energy / uncapped energy
    runtime_factor: float        # energy-weighted slowdown
    phases: Dict[float, PhaseReplay]


def replay_profile(
    profile: PowerProfile,
    *,
    frequency_cap_hz: float,
    spec: Optional[MI250XSpec] = None,
) -> ProfileReplay:
    """Replay every phase of a profile under a frequency cap.

    All phase surrogates are solved in one vectorized search and both
    device configurations evaluate the whole phase list in one
    :meth:`GPUDevice.run_batch` call each; per-phase accumulation stays
    in profile order so the aggregates match the scalar loop bitwise.
    """
    spec = spec if spec is not None else default_spec()
    capped_device = GPUDevice(spec, frequency_cap_hz=frequency_cap_hz)
    base_device = GPUDevice(spec)

    kernels = surrogate_kernels_for_powers(
        [phase.mean_w for phase in profile.phases], spec
    )
    base = base_device.run_batch(kernels)
    capped = capped_device.run_batch(kernels)

    phases: Dict[float, PhaseReplay] = {}
    energy_unc = 0.0
    energy_cap = 0.0
    weighted_slowdown = 0.0
    for i, (phase, weight) in enumerate(zip(profile.phases, profile.weights)):
        replay = PhaseReplay(
            uncapped_power_w=float(base.power_w[i]),
            capped_power_w=float(capped.power_w[i]),
            slowdown=float(capped.time_s[i]) / float(base.time_s[i]),
        )
        phases[phase.mean_w] = replay
        e_u = weight * replay.uncapped_power_w
        energy_unc += e_u
        energy_cap += weight * replay.capped_power_w * replay.slowdown
        weighted_slowdown += e_u * replay.slowdown
    return ProfileReplay(
        profile=profile.name,
        energy_factor=energy_cap / energy_unc,
        runtime_factor=weighted_slowdown / energy_unc,
        phases=phases,
    )


def fleet_replay_savings(
    profile_weights: Dict[str, float],
    *,
    frequency_cap_hz: float,
    spec: Optional[MI250XSpec] = None,
) -> Dict[str, float]:
    """Fleet-level phase-replay savings for a profile mix.

    ``profile_weights`` maps profile names to their share of busy fleet
    energy.  Returns the aggregate energy factor, savings fraction, and
    energy-weighted runtime factor.
    """
    total = sum(profile_weights.values())
    if total <= 0:
        raise ProjectionError("profile weights must have positive mass")
    energy_factor = 0.0
    runtime_factor = 0.0
    for name, weight in profile_weights.items():
        if name not in PROFILES:
            raise ProjectionError(f"unknown profile {name!r}")
        replay = replay_profile(
            PROFILES[name], frequency_cap_hz=frequency_cap_hz, spec=spec
        )
        energy_factor += (weight / total) * replay.energy_factor
        runtime_factor += (weight / total) * replay.runtime_factor
    return {
        "energy_factor": energy_factor,
        "savings_fraction": 1.0 - energy_factor,
        "runtime_factor": runtime_factor,
    }
