"""End-to-end campaign pipeline with process parallelism.

Ties the substrates together the way a production analysis would: one
scheduler run, then telemetry generation *and* joining proceed per node
block — optionally across worker processes — and the partial campaign
cubes are merged.  Because every telemetry stream is seeded by (job,
node) identity, the result is bitwise identical for any worker count or
block size (the mpi4py rank-decomposition contract), which the tests
verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import units
from ..errors import JoinError
from ..obs import runtime as _obs
from ..parallel import chunked_map, partition
from ..scheduler import SlurmSimulator, default_mix
from ..scheduler.log import SchedulerLog
from ..telemetry import FleetTelemetryGenerator
from .join import CampaignCube, join_campaign


def merge_cubes(a: CampaignCube, b: CampaignCube) -> CampaignCube:
    """Merge two partial cubes from the same campaign.

    The merge is non-aliasing: the returned cube owns fresh histogram
    and array state, and neither input is mutated — merging the same
    partials twice (a traced re-run, a retried block) can never
    double-count.
    """
    if a.domains != b.domains or a.classes != b.classes:
        raise JoinError("cannot merge cubes with different axes")
    if a.interval_s != b.interval_s:
        raise JoinError("cannot merge cubes with different cadences")
    with _obs.span("pipeline.merge"):
        histogram = a.histogram.copy()
        histogram.merge(b.histogram)
        domain_histograms = {}
        for name in a.domain_histograms:
            merged = a.domain_histograms[name].copy()
            merged.merge(b.domain_histograms[name])
            domain_histograms[name] = merged
        return CampaignCube(
            domains=list(a.domains),
            classes=list(a.classes),
            energy_j=a.energy_j + b.energy_j,
            gpu_hours=a.gpu_hours + b.gpu_hours,
            histogram=histogram,
            domain_histograms=domain_histograms,
            interval_s=a.interval_s,
            cpu_energy_j=a.cpu_energy_j + b.cpu_energy_j,
        )


def _block_cube(log_arrays: dict, fleet_nodes: int, seed: int,
                lo: int, hi: int) -> CampaignCube:
    """Generate + join one node block (runs inside worker processes).

    The scheduler log travels as plain arrays so the task pickles small
    and reconstructs cheaply.
    """
    with _obs.span("pipeline.block", node_lo=lo, node_hi=hi):
        log = SchedulerLog.from_arrays(log_arrays)
        mix = default_mix(fleet_nodes=fleet_nodes)
        gen = FleetTelemetryGenerator(log, mix, seed=seed)
        chunks = (gen.node_chunk(nid) for nid in range(lo, hi))
        cube = join_campaign(chunks, log)
    _obs.counter_inc("pipeline_blocks_total")
    return cube


@dataclass(frozen=True)
class CampaignRun:
    """A complete simulated campaign."""

    log: SchedulerLog
    cube: CampaignCube


def run_campaign(
    *,
    fleet_nodes: int = 96,
    days: float = 4.0,
    seed: int = 0,
    workers: int = 1,
    nodes_per_block: int = 16,
    log: Optional[SchedulerLog] = None,
) -> CampaignRun:
    """Simulate, generate, and join one campaign.

    ``workers > 1`` fans the node blocks out over a process pool; the
    merged cube is identical to the serial result.
    """
    with _obs.span(
        "pipeline.run_campaign", fleet_nodes=fleet_nodes, workers=workers
    ):
        if log is None:
            mix = default_mix(fleet_nodes=fleet_nodes)
            with _obs.span("pipeline.simulate"):
                log = SlurmSimulator(mix).run(units.days(days), rng=seed)
        telemetry_seed = seed + 1000
        log_arrays = log.to_arrays()

        n_blocks = max(1, -(-log.n_nodes // nodes_per_block))
        blocks = [
            (log_arrays, log.n_nodes, telemetry_seed, lo, hi)
            for lo, hi in partition(log.n_nodes, n_blocks)
        ]
        cubes = chunked_map(_block_cube, blocks, workers=workers)
        cube = cubes[0]
        for other in cubes[1:]:
            cube = merge_cubes(cube, other)
    return CampaignRun(log=log, cube=cube)


def memory_footprint_estimate(
    fleet_nodes: int, days: float, nodes_per_block: int = 16
) -> dict:
    """Bytes needed to materialize vs to stream a campaign.

    The ratio is the point of the streaming design: a full Frontier
    campaign (9408 nodes x 91 days, ~2 x 10^10 GPU samples) would need
    ~150 GB materialized in this row layout but streams through ~270 MB.
    """
    samples_per_node = int(units.days(days) / 15.0)
    bytes_per_row = 8 + 4 + 4 * 4 + 4   # time + node + 4 gpu + cpu
    materialized = fleet_nodes * samples_per_node * bytes_per_row
    streamed = min(fleet_nodes, nodes_per_block) * samples_per_node * (
        bytes_per_row
    )
    return {
        "materialized_bytes": materialized,
        "streamed_bytes": streamed,
        "ratio": materialized / max(streamed, 1),
        "samples": fleet_nodes * samples_per_node * 4,
    }
