"""Validation of the power-proxy method: how diffuse are the regions?

The paper concedes that "boundary regions may be diffused into one
another": a 15-second power sample near 200 W or 420 W could belong to
either neighbouring mode.  Because the simulated fleet knows the ground
truth — every sample is drawn from a known profile phase — the diffusion
can be *quantified*: this module computes, per profile phase, the
probability that sampling noise pushes a sample across a region boundary,
and aggregates that into a region-level confusion matrix.

The computation is analytic (Gaussian tail mass per phase), so it is
exact up to the phase model rather than Monte Carlo noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy import stats

from .. import constants
from ..errors import ProjectionError
from ..telemetry.profiles import PROFILES, PowerProfile
from .join import REGION_BOUNDS

#: Effective noise on an aggregated 15 s sample (sensor noise shrinks by
#: sqrt(samples per window)).
_AGGREGATED_NOISE_W = 2.5 / np.sqrt(
    constants.TELEMETRY_INTERVAL_S / constants.SENSOR_INTERVAL_S
)


@dataclass(frozen=True)
class RegionConfusion:
    """Region-level confusion of the power-proxy classification."""

    matrix: np.ndarray          # (4, 4): true region -> observed region
    accuracy: float             # trace / total
    per_region_accuracy: np.ndarray

    def misclassified_fraction(self) -> float:
        return 1.0 - self.accuracy


def phase_region_mass(
    mean_w: float,
    std_w: float,
    boundaries: Sequence[float] = REGION_BOUNDS,
) -> np.ndarray:
    """Probability mass of N(mean, std) in each region."""
    if std_w < 0:
        raise ProjectionError("negative standard deviation")
    sigma = float(np.hypot(std_w, _AGGREGATED_NOISE_W))
    edges = np.concatenate([[-np.inf], np.asarray(boundaries), [np.inf]])
    cdf = stats.norm.cdf(edges, loc=mean_w, scale=sigma)
    return np.diff(cdf)


def profile_confusion(
    profile: PowerProfile,
    boundaries: Sequence[float] = REGION_BOUNDS,
) -> np.ndarray:
    """(4, 4) matrix: true region of each phase -> observed region mass."""
    bounds = np.asarray(boundaries)
    matrix = np.zeros((4, 4))
    for phase, weight in zip(profile.phases, profile.weights):
        true_region = int(np.searchsorted(bounds, phase.mean_w, side="right"))
        matrix[true_region] += weight * phase_region_mass(
            phase.mean_w, phase.std_w, boundaries
        )
    return matrix


def fleet_confusion(
    profile_weights: Optional[Dict[str, float]] = None,
    boundaries: Sequence[float] = REGION_BOUNDS,
) -> RegionConfusion:
    """Aggregate confusion over a mix of profiles.

    ``profile_weights`` maps profile names to fleet weights (defaults to
    a uniform mix over the library).
    """
    if profile_weights is None:
        profile_weights = {name: 1.0 for name in PROFILES}
    total = sum(profile_weights.values())
    if total <= 0:
        raise ProjectionError("profile weights must have positive mass")

    matrix = np.zeros((4, 4))
    for name, weight in profile_weights.items():
        if name not in PROFILES:
            raise ProjectionError(f"unknown profile {name!r}")
        matrix += (weight / total) * profile_confusion(
            PROFILES[name], boundaries
        )

    row_sums = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        per_region = np.where(
            row_sums > 0, np.diag(matrix) / row_sums, 1.0
        )
    return RegionConfusion(
        matrix=matrix,
        accuracy=float(np.trace(matrix) / matrix.sum()),
        per_region_accuracy=per_region,
    )


def render_confusion(confusion: RegionConfusion) -> str:
    """Readable confusion report."""
    lines = [
        "power-proxy region classification (rows = true, cols = observed)",
        "        r1      r2      r3      r4",
    ]
    for i in range(4):
        cells = " ".join(f"{confusion.matrix[i, j]:7.4f}" for j in range(4))
        lines.append(f"r{i + 1}  {cells}")
    lines.append(
        f"overall accuracy {100 * confusion.accuracy:.2f} %; per-region "
        + ", ".join(
            f"r{i + 1}={100 * a:.1f}%"
            for i, a in enumerate(confusion.per_region_accuracy)
        )
    )
    return "\n".join(lines)
