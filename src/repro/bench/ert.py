"""Empirical roofline probes (the paper's ERT reference point).

The Empirical Roofline Tool measures a machine's achievable compute and
bandwidth ceilings with FMA and streaming micro-kernels.  Here the probes
run against the simulated device and recover the calibrated roofs, which
downstream code uses to draw roofline ceilings (Fig 4) and to locate the
ridge point that separates the memory- and compute-bound regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import units
from ..gpu import GPUDevice, KernelSpec
from .membench import MEMBENCH_ISSUE_BW_FACTOR


@dataclass(frozen=True)
class EmpiricalRoofline:
    """Measured ceilings of a device configuration."""

    peak_tflops: float
    peak_gbps: float

    @property
    def ridge_intensity(self) -> float:
        """Flops/byte where the two ceilings intersect."""
        return (self.peak_tflops * 1e12) / (self.peak_gbps * 1e9)

    def attainable_tflops(self, intensity) -> np.ndarray:
        """Roofline ceiling at the given arithmetic intensities."""
        ai = np.asarray(intensity, dtype=float)
        mem_roof = self.peak_gbps * 1e9 * ai / 1e12
        return np.minimum(mem_roof, self.peak_tflops)


def _flops_probe() -> KernelSpec:
    """An FMA micro-kernel with negligible memory traffic."""
    return KernelSpec(
        name="ert-fma",
        flops=1e14,
        hbm_bytes=1e6,
        issue_bw_factor=MEMBENCH_ISSUE_BW_FACTOR,
    )


def _bandwidth_probe() -> KernelSpec:
    """A deep-issue streaming kernel with no flops."""
    return KernelSpec(
        name="ert-stream",
        flops=0.0,
        hbm_bytes=1e13,
        issue_bw_factor=MEMBENCH_ISSUE_BW_FACTOR,
    )


def measure_roofline(device: GPUDevice) -> EmpiricalRoofline:
    """Probe the device's achievable ceilings under its current caps."""
    flops_run = device.run(_flops_probe())
    bw_run = device.run(_bandwidth_probe())
    return EmpiricalRoofline(
        peak_tflops=units.to_tflops(flops_run.achieved_flops),
        peak_gbps=units.to_gbps(bw_run.achieved_bw),
    )
