"""Table III assembly: cap-response percentages of the two benchmarks.

For each cap the table reports, relative to the uncapped run:

* ``vai_*`` — the VAI benchmark averaged across all arithmetic
  intensities (the compute-intensive characterization, "CI");
* ``mb_*`` — the memory benchmark over its HBM-resident region
  (the memory-intensive characterization, "MI").

Following the paper's own arithmetic, the energy column is the product of
the average-power and average-runtime columns (Table III's printed energy
values equal power% x runtime% to within rounding).

These percentages are the transfer function from benchmark to fleet: the
system-scale projection (Tables V and VI) multiplies per-mode fleet energy
by ``1 - energy_pct/100``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import constants
from ..errors import ProjectionError
from ..gpu.specs import MI250XSpec, default_spec
from ..obs import runtime as _obs
from .membench import MemoryBenchmark
from .sweep import CapSweep
from .vai import VAIBenchmark


@dataclass(frozen=True)
class Table3Row:
    """One cap setting's response, all values in percent of uncapped."""

    cap: float                # MHz or W; the uncapped row uses the max value
    vai_power_pct: float
    vai_runtime_pct: float
    vai_energy_pct: float
    mb_power_pct: float
    mb_runtime_pct: float
    mb_energy_pct: float


@dataclass(frozen=True)
class Table3:
    """The full table for one knob ("frequency" or "power")."""

    knob: str
    rows: List[Table3Row]

    def row_at(self, cap: float) -> Table3Row:
        for row in self.rows:
            if row.cap == cap:
                return row
        raise ProjectionError(f"no Table III row at cap {cap} ({self.knob})")

    @property
    def caps(self) -> List[float]:
        return [row.cap for row in self.rows]

    def energy_factors(self) -> Dict[float, tuple]:
        """cap -> (CI energy factor, MI energy factor), as fractions."""
        return {
            row.cap: (row.vai_energy_pct / 100.0, row.mb_energy_pct / 100.0)
            for row in self.rows
        }

    def runtime_factors(self) -> Dict[float, tuple]:
        """cap -> (CI runtime factor, MI runtime factor), as fractions."""
        return {
            row.cap: (row.vai_runtime_pct / 100.0, row.mb_runtime_pct / 100.0)
            for row in self.rows
        }


def _vai_aggregates(result, baseline) -> tuple:
    """(avg power %, avg runtime %) across arithmetic intensities."""
    power = 100.0 * np.mean(result.column("power_w")) / np.mean(
        baseline.column("power_w")
    )
    runtime = 100.0 * np.mean(
        result.column("time_s") / baseline.column("time_s")
    )
    return float(power), float(runtime)


def _mb_aggregates(result, baseline, spec) -> tuple:
    """(power %, runtime %) over the HBM-resident region, time-weighted."""
    res = result.hbm_region(spec)
    base = baseline.hbm_region(spec)
    power = 100.0 * res.mean("power_w") / base.mean("power_w")
    runtime = 100.0 * np.sum(res.column("time_s")) / np.sum(
        base.column("time_s")
    )
    return float(power), float(runtime)


def compute_table3(
    spec: Optional[MI250XSpec] = None,
    *,
    knob: str = "frequency",
    caps: Optional[Sequence[float]] = None,
    vai: Optional[VAIBenchmark] = None,
    mem: Optional[MemoryBenchmark] = None,
) -> Table3:
    """Measure Table III for one knob on the simulated device."""
    with _obs.span("bench.table3", knob=knob):
        return _compute_table3(spec, knob=knob, caps=caps, vai=vai, mem=mem)


def _compute_table3(
    spec: Optional[MI250XSpec],
    *,
    knob: str,
    caps: Optional[Sequence[float]],
    vai: Optional[VAIBenchmark],
    mem: Optional[MemoryBenchmark],
) -> Table3:
    spec = spec if spec is not None else default_spec()
    vai = vai if vai is not None else VAIBenchmark()
    mem = mem if mem is not None else MemoryBenchmark()

    vai_sweep = CapSweep(vai, spec)
    mem_sweep = CapSweep(mem, spec)
    if knob == "frequency":
        caps = caps if caps is not None else constants.FREQUENCY_CAPS_MHZ
        caps = [c for c in caps if c < constants.GCD_MAX_FREQUENCY_HZ / 1e6]
        vai_points = vai_sweep.frequency_sweep(caps)
        mem_points = mem_sweep.frequency_sweep(caps)
        baseline_cap = constants.GCD_MAX_FREQUENCY_HZ / 1e6
    elif knob == "power":
        caps = caps if caps is not None else constants.POWER_CAPS_W
        caps = [c for c in caps if c < constants.GCD_MAX_POWER_W]
        vai_points = vai_sweep.power_sweep(caps)
        mem_points = mem_sweep.power_sweep(caps)
        baseline_cap = constants.GCD_MAX_POWER_W
    else:
        raise ProjectionError(f"unknown knob {knob!r}")

    vai_base = vai_points[0].result
    mem_base = mem_points[0].result

    rows = [
        Table3Row(
            cap=baseline_cap,
            vai_power_pct=100.0, vai_runtime_pct=100.0, vai_energy_pct=100.0,
            mb_power_pct=100.0, mb_runtime_pct=100.0, mb_energy_pct=100.0,
        )
    ]
    for cap in caps:
        v_pow, v_rt = _vai_aggregates(vai_points[cap].result, vai_base)
        m_pow, m_rt = _mb_aggregates(mem_points[cap].result, mem_base, spec)
        rows.append(
            Table3Row(
                cap=float(cap),
                vai_power_pct=v_pow,
                vai_runtime_pct=v_rt,
                vai_energy_pct=v_pow * v_rt / 100.0,
                mb_power_pct=m_pow,
                mb_runtime_pct=m_rt,
                mb_energy_pct=m_pow * m_rt / 100.0,
            )
        )
    return Table3(knob=knob, rows=rows)
